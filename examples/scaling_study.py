#!/usr/bin/env python
"""Scaling study: which of the paper's conclusions need its data volume?

Generates campaigns at several fractions of the paper's 4.37 M CEs and
tracks a few shape claims across scales.  Calibrated *totals* hold at any
scale by construction; *statistical* claims (concentration quantiles,
region orderings, rack spikes) need volume -- a practical illustration of
why eight months of production telemetry mattered.
"""

import numpy as np

from repro.analysis.distributions import concentration_curve, per_node_counts
from repro.analysis.positional import counts_by_rack, counts_by_region
from repro.synth import CampaignGenerator

SCALES = (0.02, 0.1, 0.4, 1.0)


def main() -> None:
    print(f"{'scale':>6} {'CEs':>10} {'error nodes':>12} {'top-8':>7} "
          f"{'spike x':>8} {'regions b>t>m':>14}")
    for scale in SCALES:
        campaign = CampaignGenerator(seed=7, scale=scale).generate()
        per_node = per_node_counts(campaign.errors, campaign.topology.n_nodes)
        curve = concentration_curve(per_node)
        racks = counts_by_rack(campaign.errors, campaign.topology)
        others = np.delete(racks, racks.argmax())
        spike = racks.max() / max(others.max(), 1)
        region = counts_by_region(campaign.errors, campaign.topology)
        ordering = region[0] > region[2] > region[1]
        print(
            f"{scale:>6g} {campaign.n_errors:>10,} "
            f"{int((per_node > 0).sum()):>12} {curve.share_of_top(8):>7.2f} "
            f"{spike:>8.2f} {str(bool(ordering)):>14}"
        )
    print(
        "\ncalibrated totals scale linearly; the statistical claims "
        "(top-8 share,\nspike factor, region ordering) stabilise only "
        "toward full volume --\nthe acceptance suite therefore pins "
        "scale=1.0."
    )


if __name__ == "__main__":
    main()
