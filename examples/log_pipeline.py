#!/usr/bin/env python
"""The real study's workflow: text logs in, conclusions out.

Writes a campaign out as the text log families described in the paper's
data release (syslog CE records, BMC sensor CSV, inventory snapshots,
HET lines), then runs the whole analysis *from the parsed text*,
demonstrating that the pipeline never needs the generator's ground truth.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro._util import DAY_S
from repro.analysis.replacements import replacement_table
from repro.faults.classify import mode_counts
from repro.faults.coalesce import coalesce
from repro.faults.types import FaultMode
from repro.logs.bmc import filter_valid_samples, read_bmc_log, write_bmc_log
from repro.logs.het import read_het_log, write_het_log
from repro.logs.inventory import (
    InventoryModel,
    replacements_from_snapshot_file,
    write_inventory_snapshots,
)
from repro.logs.syslog import read_ce_log, write_ce_log
from repro.synth import CampaignGenerator
from repro.synth.replacements import Component


def main() -> None:
    campaign = CampaignGenerator(seed=11, scale=0.01).generate()
    workdir = Path(tempfile.mkdtemp(prefix="astra-logs-"))
    print(f"writing text logs to {workdir}")

    # 1. Syslog CE records -> parse -> coalesce -> fault modes.
    ce_path = workdir / "ce.log"
    n = write_ce_log(campaign.errors, ce_path)
    parsed = read_ce_log(ce_path)
    print(f"\nCE log: wrote {n} lines, parsed {parsed.errors.size} "
          f"({parsed.n_malformed} malformed)")
    faults = coalesce(parsed.errors)
    for mode, count in mode_counts(faults).items():
        if count:
            print(f"  {mode.label:<14} {count} faults")

    # 2. Inventory snapshots -> diff -> Table 1.
    inv_path = workdir / "inventory.csv"
    model = InventoryModel(
        campaign.replacements, campaign.topology, campaign.node_config
    )
    t0, t1 = campaign.calibration.inventory_window
    scan_days = list(np.arange(t0, t1, 7 * DAY_S))  # weekly scans
    write_inventory_snapshots(inv_path, model, scan_days)
    recovered = replacements_from_snapshot_file(inv_path)
    print(f"\ninventory: {len(scan_days)} scans, "
          f"{recovered.size} replacements recovered by diffing")
    for row in replacement_table(recovered, campaign.topology, campaign.node_config):
        print(f"  {row.render()}")

    # 3. BMC sensor CSV -> validity filtering.
    bmc_path = workdir / "bmc.csv"
    t0, _ = campaign.calibration.sensor_window
    write_bmc_log(bmc_path, campaign.sensors, [0, 1, 2, 3], t0, t0 + DAY_S)
    samples = read_bmc_log(bmc_path)
    valid, excluded = filter_valid_samples(samples)
    print(f"\nBMC log: {samples.size} samples, {excluded:.2%} excluded as invalid")
    temps = valid[valid["sensor"] < 6]["value"]
    print(f"  temperature range {temps.min():.1f}..{temps.max():.1f} degC")

    # 4. HET lines -> DUE subset.
    het_path = workdir / "het.log"
    write_het_log(campaign.het, het_path)
    het = read_het_log(het_path)
    print(f"\nHET log: {het.size} events, "
          f"{int(het['non_recoverable'].sum())} NON-RECOVERABLE")


if __name__ == "__main__":
    main()
