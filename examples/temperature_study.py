#!/usr/bin/env python
"""Temperature study: does heat correlate with correctable errors?

Reproduces the section 3.3 methodology at reduced scale: windowed
pre-error DIMM temperatures (Figure 9) and the Schroeder-style decile
analysis (Figure 13), and prints the verdict the paper reaches -- on
Astra, it does not.
"""

import numpy as np

from repro._util import DAY_S, HOUR_S
from repro.analysis.temperature import (
    ce_count_vs_temperature,
    decile_curve,
    monthly_ce_counts,
    monthly_node_sensor_means,
)
from repro.synth import CampaignGenerator


def main() -> None:
    campaign = CampaignGenerator(seed=5, scale=0.05).generate()
    t0, t1 = campaign.calibration.sensor_window
    errors = campaign.errors
    errors = errors[(errors["time"] >= t0) & (errors["time"] < t1)]
    print(f"{errors.size:,} CEs inside the environmental window\n")

    print("Figure 9 methodology: mean errored-DIMM temperature over the")
    print("window preceding each CE, with a linear fit per window length:")
    for label, window in (("1 hour", HOUR_S), ("1 day", DAY_S), ("1 week", 7 * DAY_S)):
        corr = ce_count_vs_temperature(errors, campaign.sensors, window)
        verdict = "correlated" if corr.strongly_positive() else "NOT correlated"
        print(
            f"  {label:>7}: slope {corr.fit.slope:+8.1f} errors/degC-bin, "
            f"r={corr.fit.rvalue:+.2f}  -> {verdict}"
        )

    print("\nFigure 13 methodology: monthly-average CPU temperature deciles")
    print("vs mean monthly CE rate:")
    n_nodes = campaign.topology.n_nodes
    window = campaign.calibration.sensor_window
    temps = monthly_node_sensor_means(
        campaign.sensors, 0, window, n_nodes, grid_s=12 * 3600.0
    )
    ces = monthly_ce_counts(campaign.errors, window, n_nodes,
                            slots=tuple(range(8)))
    curve = decile_curve(temps.ravel(), ces.ravel().astype(np.float64))
    for x, y in zip(curve.decile_max, curve.mean_rate):
        bar = "#" * int(min(40, y * 40 / max(curve.mean_rate.max(), 1e-9)))
        print(f"  <= {x:5.1f} degC  {y:8.3f}  {bar}")
    print(f"\n  1st..9th decile span: {curve.temperature_span():.1f} degC "
          "(paper: ~7 degC -- far narrower than Schroeder's 20+)")
    trend = "rises" if curve.increasing_trend() else "does NOT rise"
    print(f"  CE rate {trend} with temperature")


if __name__ == "__main__":
    main()
