#!/usr/bin/env python
"""Full paper reproduction: every table and figure, one report.

Generates the paper-volume campaign (4.37 M CEs; pass ``--scale`` to
shrink it) and regenerates Table 1 and Figures 2-15, printing the
combined report with every shape claim's pass/fail status.

    python examples/full_reproduction.py --scale 0.2
"""

import argparse
import sys
import time

from repro import experiments
from repro.synth import CampaignGenerator

#: Analysis parameters that keep the heaviest sensor joins tractable.
PARAMS = {
    "fig09": dict(max_errors=120_000),
    "fig13": dict(grid_s=12 * 3600.0),
    "fig14": dict(grid_s=12 * 3600.0),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    print(f"generating campaign (seed={args.seed}, scale={args.scale})...",
          file=sys.stderr)
    campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
    campaign.faults()
    print(f"  {campaign.n_errors:,} CEs in "
          f"{time.perf_counter() - t0:.1f}s", file=sys.stderr)

    results = {}
    for exp_id, title in experiments.list_experiments():
        t1 = time.perf_counter()
        results[exp_id] = experiments.run(
            exp_id, campaign, **PARAMS.get(exp_id, {})
        )
        print(f"  {exp_id}: {time.perf_counter() - t1:.1f}s", file=sys.stderr)

    print(experiments.render_report(results))
    return 0 if all(r.all_checks_pass for r in results.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
