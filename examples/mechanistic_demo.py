#!/usr/bin/env python
"""Mechanistic demo: one stuck DRAM cell, end to end.

Everything the study measures starts with physics like this: a defective
cell disagrees with what was stored, the SEC-DED codec corrects the read
and logs a CE, the logs coalesce into a fault, the fault gets a mode.
This demo runs that chain on the simulated rank -- no statistics, just a
defect and the machinery -- and shows the paper's row-information
limitation arising naturally.
"""

from repro.faults.classify import mode_counts
from repro.faults.coalesce import coalesce
from repro.faults.types import FaultMode
from repro.logs.syslog import format_ce_record
from repro.machine.dram import DRAMGeometry
from repro.machine.memsim import Defect, DefectKind, SimulatedRank


def main() -> None:
    geometry = DRAMGeometry(n_banks=4, n_rows=64, n_columns=16)
    rank = SimulatedRank(node=1203, slot=9, rank=0, geometry=geometry, seed=3)

    print("injecting three defects into node 1203, DIMM slot J, rank 0:")
    print("  1. flaky bit      bank 0, row 3,  col 2,  bit 5")
    print("  2. column defect  bank 1, col 6,  bit 9")
    print("  3. row defect     bank 2, row 8,  bit 1\n")
    rank.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=3, column=2, bit=5))
    rank.inject(Defect(DefectKind.COLUMN_DEFECT, bank=1, column=6, bit=9))
    rank.inject(Defect(DefectKind.ROW_DEFECT, bank=2, row=8, bit=1))

    # A workload touches the defective cells.
    t = 0.0
    for _ in range(12):
        rank.read(0, 3, 2, t)  # hits the flaky bit
        t += 60.0
    for row in range(16):
        rank.read(1, row, 6, t)  # walks the bad column
        t += 60.0
    rank.scrub_pass(2, 8, t0=t)  # the scrubber sweeps the bad row

    log = rank.ce_log
    print(f"the ECC path corrected and logged {log.size} CEs; first three:")
    for rec in log[:3]:
        print(f"  {format_ce_record(rec)}")

    faults = coalesce(log)
    print(f"\ncoalesced into {faults.size} faults:")
    for mode, count in mode_counts(faults).items():
        if count:
            print(f"  {mode.label:<14} {count}")

    print(
        "\nnote the row defect: its errors span columns of one bank, and"
        "\nbecause Astra-style CE records carry no row field it classifies"
        "\nas single-bank -- the exact limitation section 3.2 describes."
    )
    assert mode_counts(faults)[FaultMode.SINGLE_ROW] == 0


if __name__ == "__main__":
    main()
