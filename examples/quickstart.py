#!/usr/bin/env python
"""Quickstart: generate a campaign, coalesce errors into faults, analyse.

Runs at 5% of the paper's data volume in a few seconds and prints the
headline numbers of the study: total CEs, the fault-mode breakdown, the
per-node concentration, and one full regenerated figure.
"""

import numpy as np

from repro import experiments
from repro.analysis.distributions import concentration_curve, per_node_counts
from repro.faults.classify import errors_per_mode, mode_counts
from repro.faults.types import FaultMode
from repro.synth import CampaignGenerator


def main() -> None:
    print("generating a 5%-scale Astra campaign (seed 7)...")
    campaign = CampaignGenerator(seed=7, scale=0.05).generate()
    print(f"  {campaign.n_errors:,} correctable-error records")
    print(f"  {campaign.replacements.size} hardware replacements")
    print(f"  {campaign.het.size} HET (uncorrectable-error) records")
    print()

    # The paper's central move: coalesce errors into faults.
    faults = campaign.faults()
    print(f"coalesced into {faults.size:,} faults:")
    counts = mode_counts(faults)
    errors = errors_per_mode(faults)
    for mode in FaultMode:
        if counts[mode]:
            print(
                f"  {mode.label:<14} {counts[mode]:>6} faults, "
                f"{errors[mode]:>9,} errors"
            )
    print()

    # Concentration: a handful of nodes carry most of the error volume.
    per_node = per_node_counts(campaign.errors, campaign.topology.n_nodes)
    curve = concentration_curve(per_node)
    print(
        f"nodes with >=1 CE: {(per_node > 0).sum()} of "
        f"{campaign.topology.n_nodes} "
        f"({(per_node == 0).mean():.0%} error-free)"
    )
    print(f"top-8 nodes hold {curve.share_of_top(8):.0%} of all CEs")
    print()

    # Regenerate one of the paper's figures end to end.
    result = experiments.run("fig12", campaign)
    print(result.render())


if __name__ == "__main__":
    main()
