#!/usr/bin/env python
"""Mitigation study: page retirement and node exclusion on Astra's faults.

Section 3.2 argues that because Astra's fault population is dominated by
small-footprint faults (single-bit/word), lightweight mitigations pay
off.  This example sweeps both policies over a campaign and prints the
trade-off frontier: errors avoided vs capacity given up.
"""

from repro.mitigation.exclude_list import ExcludeListPolicy, simulate_exclude_list
from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    simulate_page_retirement,
)
from repro.synth import CampaignGenerator


def main() -> None:
    campaign = CampaignGenerator(seed=3, scale=0.1).generate()
    print(f"campaign: {campaign.n_errors:,} CEs on "
          f"{campaign.topology.n_nodes} nodes\n")

    print("page retirement (retire a 4 KiB page at its k-th CE):")
    print(f"  {'k':>3} {'errors avoided':>15} {'fraction':>9} "
          f"{'pages':>6} {'KiB retired':>12}")
    for threshold in (1, 2, 3, 4, 8, 16, 64):
        report = simulate_page_retirement(
            campaign.errors, PageRetirementPolicy(threshold=threshold)
        )
        print(
            f"  {threshold:>3} {report.errors_avoided:>15,} "
            f"{report.avoided_fraction:>9.1%} {report.pages_retired:>6} "
            f"{report.retired_bytes / 1024:>12.0f}"
        )
    print("\n  (storm records carry no address and can never be retired;")
    print("   they bound the avoidable fraction from above)")

    print("\nnode exclude list (remove a node after B CEs in 7 days):")
    print(f"  {'B':>7} {'errors avoided':>15} {'fraction':>9} "
          f"{'nodes':>6} {'node-days lost':>15}")
    for budget in (50, 200, 1000, 5000, 20000):
        report = simulate_exclude_list(
            campaign.errors,
            ExcludeListPolicy(ce_budget=budget, window_s=7 * 86400.0),
        )
        print(
            f"  {budget:>7} {report.errors_avoided:>15,} "
            f"{report.avoided_fraction:>9.1%} {report.nodes_excluded:>6} "
            f"{report.node_seconds_lost / 86400.0:>15.0f}"
        )
    print("\n  (the Figure 5b concentration is why a tiny exclude list")
    print("   absorbs most of the fleet's error volume)")


if __name__ == "__main__":
    main()
