#!/usr/bin/env python
"""Fleet triage: what an Astra operator would do with this library.

Consumes a campaign the way a site reliability run-book would: shard the
CE stream per rack with the parallel engine, build a rack "heat map" of
errors vs faults, flag exclude-list candidates, and list the DIMM slots
to inspect during the next maintenance window.
"""

import numpy as np

from repro.analysis.counts import counts_by
from repro.analysis.distributions import concentration_curve, per_node_counts
from repro.experiments.base import sparkline
from repro.machine.node import DIMM_SLOTS
from repro.mitigation.exclude_list import ExcludeListPolicy, simulate_exclude_list
from repro.parallel.executor import ShardMapReduce, parallel_coalesce
from repro.parallel.sharding import merge_counts
from repro.synth import CampaignGenerator


def _rack_errors(shard):
    return np.array([shard.size])


def main() -> None:
    campaign = CampaignGenerator(seed=13, scale=0.1).generate()
    topo = campaign.topology
    print(f"triage over {campaign.n_errors:,} CEs on {topo.n_nodes} nodes\n")

    # Shard-parallel coalescing (the scalable path for archive-sized logs).
    faults = parallel_coalesce(campaign.errors, topo, n_workers=0)
    print(f"{faults.size} distinct faults after per-rack coalescing\n")

    # Rack heat map: errors spike somewhere faults do not.
    racks_e = np.bincount(topo.rack_of(campaign.errors["node"]), minlength=36)
    racks_f = np.bincount(
        topo.rack_of(faults["node"].astype(np.int64)), minlength=36
    )
    print("rack heat map (racks 0..35):")
    print(f"  errors  {sparkline(racks_e, width=36)}")
    print(f"  faults  {sparkline(racks_f, width=36)}")
    spike = int(np.argmax(racks_e))
    print(
        f"  -> rack {spike} carries {racks_e[spike] / racks_e.sum():.0%} of all"
        f" CEs but {racks_f[spike] / max(racks_f.sum(), 1):.0%} of faults:"
        " a logging storm, not a sick rack\n"
    )

    # Exclude-list candidates.
    per_node = per_node_counts(campaign.errors, topo.n_nodes)
    curve = concentration_curve(per_node)
    worst = np.argsort(per_node)[::-1][:8]
    print("exclude-list candidates (top-8 CE nodes, "
          f"{curve.share_of_top(8):.0%} of the fleet's CEs):")
    for node in worst:
        loc = topo.locate(int(node))
        print(
            f"  node {int(node):4d}  rack {loc.rack:2d} chassis {loc.chassis:2d}"
            f"  {per_node[node]:>8,} CEs"
        )
    report = simulate_exclude_list(
        campaign.errors, ExcludeListPolicy(ce_budget=500, window_s=7 * 86400)
    )
    print(
        f"  policy check: budget-500/week excludes {report.nodes_excluded} "
        f"nodes and absorbs {report.avoided_fraction:.0%} of CEs\n"
    )

    # Maintenance hit list: which slots keep faulting.
    slot_faults, _ = counts_by(faults, "slot")
    order = np.argsort(slot_faults)[::-1]
    print("DIMM slots by fault count (inspect the top of this list):")
    print("  " + "  ".join(f"{DIMM_SLOTS[i]}:{slot_faults[i]}" for i in order))


if __name__ == "__main__":
    main()
