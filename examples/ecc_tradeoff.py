#!/usr/bin/env python
"""The ECC design trade-off Astra made: SEC-DED instead of Chipkill.

Section 2.2: "Unlike many HPC platforms of its size, Astra does not
utilize Chipkill ... it uses the cheaper and less power-hungry
single-error-correction, double-error-detection (SEC-DED) ECC."
Section 3.2 spells out a consequence: multi-rank/multi-bank faults
"would manifest as uncorrectable memory errors".

This example injects physically motivated error patterns through both
*real* codecs -- the Hsiao SEC-DED(72,64) that models Astra and an
SSC-DSD chipkill-class symbol code over GF(256) -- and then sizes the
consequence against the campaign's own fault-mode mix.
"""

from repro.analysis.ecc_study import compare_schemes, render_comparison
from repro.faults.classify import errors_per_mode, mode_counts
from repro.faults.types import FaultMode
from repro.synth import CampaignGenerator


def main() -> None:
    print("pattern-level outcomes (2,000 Monte-Carlo trials each):\n")
    results = compare_schemes(trials=2000, seed=7)
    print(render_comparison(results))

    chip = results["single device failure"]["secded"]
    print(
        f"\na failing x8 chip under SEC-DED: {chip.detected / 20:.0f}% DUEs "
        f"and {chip.miscorrected / 20:.0f}% *silent miscorrections*;"
        "\nunder Chipkill: 100% corrected."
    )

    print("\nsizing it against the study's fault mix (5% campaign):")
    campaign = CampaignGenerator(seed=7, scale=0.05).generate()
    faults = campaign.faults()
    counts = mode_counts(faults)
    errors = errors_per_mode(faults)
    single_word = counts[FaultMode.SINGLE_WORD]
    print(
        f"  {single_word} single-word faults ({errors[FaultMode.SINGLE_WORD]:,}"
        " errors) are multi-bit-same-device events: each CE was one bit at"
        "\n  a time, but a double-bit read among them is a DUE under SEC-DED"
        " and a plain correction under Chipkill."
    )
    print(
        "  single-column and single-bank faults span many words; their DUE"
        "\n  exposure scales with the fault's footprint -- the paper's page-"
        "retirement argument applies either way."
    )


if __name__ == "__main__":
    main()
