"""Serving front-door latency/throughput benchmark.

Spawns ``repro serve`` as a real subprocess over a freshly synthesised
campaign (warm risk table, rollup cubes attached), then drives it with
many concurrent keep-alive HTTP clients on raw asyncio sockets:

- ``startup``: train-to-first-byte -- model fit, campaign fold, port
  bind (the cost of getting a warm cache);
- ``load``: a fixed endpoint mix (point risk lookups, top-k, alerts
  tail, rollup query passthrough, stats) spread over N concurrent
  connections, reported as sustained RPS and p50/p95/p99 per-request
  latency measured client-side;
- every response is required to come back ``200`` with a parseable
  JSON body -- a mangled or dropped response is a bench failure, not
  a skipped sample.

Writes a JSON report (default ``BENCH_serve.json``).  ``--check``
additionally asserts the committed floors -- sustained RPS at or above
``--min-rps`` (default 500) and p95 latency at or below
``--max-p95-ms`` (default 50) -- which is what the CI perf-smoke job
runs at a reduced request count.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --requests 4000 \\
        --clients 32 --check --min-rps 200
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Committed floors: the warm cache must sustain this many requests
#: per second with this p95, across the whole endpoint mix.
RPS_FLOOR = 500.0
P95_MS_CEILING = 50.0

#: Endpoint mix one client cycles through (weights via repetition).
_PATH_MIX = (
    "/v1/risk?node=1085",
    "/v1/risk?node=7",
    "/v1/risk/top?k=10",
    "/v1/risk?node=1182",
    "/v1/stats",
    "/v1/risk?node=919",
    "/v1/query?select=errors&group_by=rack&top_k=5",
    "/healthz",
)


def _pctl(samples: list, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _prepare(workdir: Path, scale: float) -> tuple[Path, Path]:
    """Train a model and synthesise the campaign the server folds."""
    from repro.logs.campaign_io import write_campaign
    from repro.predict import train_and_evaluate
    from repro.query import build_store
    from repro.synth import CampaignGenerator

    model, _report = train_and_evaluate(
        train_seeds=(101,), eval_seeds=(201,), scale=scale, jobs=0
    )
    model_path = workdir / "model.json"
    model.save(model_path)

    campaign = CampaignGenerator(seed=301, scale=scale).generate()
    camp_dir = workdir / "camp"
    write_campaign(campaign, camp_dir)
    store = build_store(campaign.errors, faults=campaign.faults())
    store.snapshot(camp_dir / "rollups")
    return model_path, camp_dir


def _spawn_server(model_path: Path, camp_dir: Path, workdir: Path):
    ready = workdir / "ready.json"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", str(model_path), str(camp_dir),
            "--ready-file", str(ready),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        env=os.environ.copy(),
    )
    deadline = time.time() + 60.0
    while time.time() < deadline:
        if ready.exists():
            return proc, json.loads(ready.read_text())
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited with {proc.returncode} before ready"
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server did not become ready within 60s")


async def _client(
    host: str, port: int, n_requests: int, offset: int,
    latencies: list, errors: list,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(n_requests):
            path = _PATH_MIX[(offset + i) % len(_PATH_MIX)]
            t0 = time.perf_counter()
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1])
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = await reader.readexactly(length)
            latencies.append(time.perf_counter() - t0)
            if status != 200:
                errors.append(f"{path}: status {status}")
            else:
                json.loads(body)  # a half-written body is a failure
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _drive(
    host: str, port: int, clients: int, total_requests: int
) -> tuple[list, list, float]:
    latencies: list = []
    errors: list = []
    per_client = max(total_requests // clients, 1)
    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            _client(host, port, per_client, k * 3, latencies, errors)
            for k in range(clients)
        )
    )
    return latencies, errors, time.perf_counter() - t0


def run(
    clients: int,
    requests: int,
    scale: float,
    out_path: Path,
    check: bool,
    min_rps: float,
    max_p95_ms: float,
) -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        workdir = Path(tmp)
        t0 = time.perf_counter()
        model_path, camp_dir = _prepare(workdir, scale)
        prepare_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        proc, ready = _spawn_server(model_path, camp_dir, workdir)
        startup_s = time.perf_counter() - t0
        try:
            latencies, errs, wall_s = asyncio.run(
                _drive(ready["host"], ready["port"], clients, requests)
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    n_ok = len(latencies) - len(errs)
    rps = len(latencies) / wall_s
    p50, p95, p99 = (_pctl(latencies, q) * 1e3 for q in (50, 95, 99))
    if errs:
        failures.append(
            f"{len(errs)} non-200/mangled responses (first: {errs[0]})"
        )
    if check and rps < min_rps:
        failures.append(
            f"sustained {rps:.0f} RPS below the {min_rps:.0f} floor"
        )
    if check and p95 > max_p95_ms:
        failures.append(
            f"p95 {p95:.2f} ms above the {max_p95_ms:.0f} ms ceiling"
        )

    report = {
        "schema": 1,
        "clients": clients,
        "requests": len(latencies),
        "scale": scale,
        "endpoint_mix": list(_PATH_MIX),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "floors": {"min_rps": min_rps, "max_p95_ms": max_p95_ms},
        "results": {
            "prepare_s": round(prepare_s, 3),
            "startup_s": round(startup_s, 3),
            "wall_s": round(wall_s, 3),
            "rps": round(rps, 1),
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "ok": n_ok,
            "errors": len(errs),
        },
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    r = report["results"]
    print(
        f"{clients} clients sustained {r['rps']:.0f} RPS, latency "
        f"p50 {r['p50_ms']:.2f} / p95 {r['p95_ms']:.2f} / "
        f"p99 {r['p99_ms']:.2f} ms "
        f"(startup {r['startup_s']:.2f}s over {r['ok']} requests)"
    )
    print(f"wrote {out_path}")

    if check:
        if failures:
            print("SERVE-BENCH FAILURES:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(
            f"serve bench OK: {rps:.0f} RPS >= {min_rps:.0f}, "
            f"p95 {p95:.2f} ms <= {max_p95_ms:.0f} ms, all responses clean"
        )
    elif failures:
        # Response integrity failures matter even without --check.
        for f in failures:
            print(f"warning: {f}", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--clients", type=int, default=64,
                    help="concurrent keep-alive connections")
    ap.add_argument("--requests", type=int, default=20_000,
                    help="total requests across all clients")
    ap.add_argument("--scale", type=float, default=0.02,
                    help="campaign volume scale for the warm table")
    ap.add_argument("--out", type=Path, default=Path("BENCH_serve.json"))
    ap.add_argument("--check", action="store_true",
                    help="assert the RPS floor and the p95 ceiling")
    ap.add_argument("--min-rps", type=float, default=RPS_FLOOR,
                    help="sustained-RPS floor for --check")
    ap.add_argument("--max-p95-ms", type=float, default=P95_MS_CEILING,
                    help="p95 latency ceiling for --check (ms)")
    args = ap.parse_args(argv)
    return run(
        args.clients, args.requests, args.scale, args.out, args.check,
        args.min_rps, args.max_p95_ms,
    )


if __name__ == "__main__":
    raise SystemExit(main())
