"""Detection-power study: could the instruments see a real effect?

The reproduction's negative results (Figures 9, 13, 14) deserve a power
analysis: re-weight the CE stream so temperature *does* drive errors at
several effect sizes and measure what the Figure 9 instrument reports.

Two findings, both asserted:

1. the instrument responds -- its correlation rises monotonically with
   the injected coupling strength; and
2. even couplings far stronger than the literature's (error rate
   doubling every 2 degC instead of every 10-20) do not produce the
   "strong correlation" signature in Astra-shaped data, because the CE
   population is storm-dominated.  The paper's inability to see a
   temperature effect is thus over-determined: there is no effect in its
   data, *and* an effect of the reported sizes would have been below
   this instrument's detection floor anyway.
"""

import numpy as np

from repro._util import DAY_S
from repro.analysis.temperature import ce_count_vs_temperature
from repro.synth.counterfactual import apply_temperature_coupling

#: Injected effect sizes: degC of temperature per error-rate doubling.
#: Smaller is stronger; None is the uncoupled baseline.
EFFECTS = (None, 8.0, 4.0, 2.0)


def _analyse(campaign, n_sub: int = 120_000):
    t0, t1 = campaign.calibration.sensor_window
    errors = campaign.errors
    errors = errors[(errors["time"] >= t0) & (errors["time"] < t1)]
    rng = np.random.default_rng(5)
    idx = np.sort(rng.choice(errors.size, min(n_sub, errors.size), replace=False))
    sub = errors[idx]

    rows = []
    for doubling in EFFECTS:
        stream = (
            sub
            if doubling is None
            else apply_temperature_coupling(
                sub, campaign.sensors, doubling_deg_c=doubling, seed=1
            )
        )
        corr = ce_count_vs_temperature(stream, campaign.sensors, DAY_S)
        rows.append((doubling, stream.size, corr.fit.slope, corr.fit.rvalue))
    return rows


def test_counterfactual_power(paper_campaign, benchmark, report_sink):
    rows = benchmark.pedantic(
        lambda: _analyse(paper_campaign), rounds=1, iterations=1
    )
    lines = ["== counterfactual detection power (Figure 9 instrument) ==", ""]
    lines.append(f"{'doubling degC':>14} {'errors':>8} {'slope':>9} {'fit r':>7}")
    for doubling, n, slope, r in rows:
        label = "none" if doubling is None else f"{doubling:g}"
        lines.append(f"{label:>14} {n:>8} {slope:>9.1f} {r:>7.3f}")
    lines.append("")
    lines.append(
        "reading: r rises with the injected effect (the instrument works)"
        "\nbut never reaches the strong-correlation bar (r > 0.5) -- in"
        "\nstorm-dominated CE data, effects of the literature's size are"
        "\nbelow the detection floor of this analysis."
    )
    report_sink("counterfactual_power", "\n".join(lines))

    rs = [r for _, _, _, r in rows]
    # Monotone response to effect strength (EFFECTS is ordered weak->strong).
    assert all(b > a - 0.02 for a, b in zip(rs, rs[1:]))
    assert rs[-1] > rs[0] + 0.1
    # ... yet even the strongest injected coupling stays sub-"strong".
    assert rs[-1] < 0.5
