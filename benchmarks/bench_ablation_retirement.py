"""Ablation: page retirement and node exclusion (section 3.2 implications).

Sweeps the page-retirement threshold and the exclude-list budget over the
full campaign, reporting errors avoided against capacity retired / node
time lost -- quantifying the paper's argument that small-footprint faults
make lightweight mitigation effective.
"""

from repro.mitigation.exclude_list import ExcludeListPolicy, simulate_exclude_list
from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    simulate_page_retirement,
)


def _analyse(errors):
    retire_rows = []
    for threshold in (1, 2, 4, 16):
        report = simulate_page_retirement(
            errors, PageRetirementPolicy(threshold=threshold)
        )
        retire_rows.append(
            (
                threshold,
                report.errors_avoided,
                report.avoided_fraction,
                report.pages_retired,
                report.retired_bytes / 2**20,
            )
        )
    exclude_rows = []
    for budget in (100, 1000, 10_000):
        report = simulate_exclude_list(
            errors, ExcludeListPolicy(ce_budget=budget, window_s=7 * 86400.0)
        )
        exclude_rows.append(
            (
                budget,
                report.errors_avoided,
                report.avoided_fraction,
                report.nodes_excluded,
                report.node_seconds_lost / 86400.0,
            )
        )
    return retire_rows, exclude_rows


def test_mitigation_ablation(paper_campaign, benchmark, report_sink):
    retire_rows, exclude_rows = benchmark.pedantic(
        lambda: _analyse(paper_campaign.errors), rounds=1, iterations=1
    )
    lines = ["== ablation: page retirement / exclude list ==", ""]
    lines.append(f"{'thresh':>7} {'avoided':>9} {'frac':>6} {'pages':>6} {'MiB':>7}")
    for t, avoided, frac, pages, mib in retire_rows:
        lines.append(f"{t:>7} {avoided:>9} {frac:>6.2f} {pages:>6} {mib:>7.1f}")
    lines.append("")
    lines.append(f"{'budget':>7} {'avoided':>9} {'frac':>6} {'nodes':>6} {'node-days':>10}")
    for b, avoided, frac, nodes, days in exclude_rows:
        lines.append(f"{b:>7} {avoided:>9} {frac:>6.2f} {nodes:>6} {days:>10.0f}")
    report_sink("ablation_retirement", "\n".join(lines))

    # Retirement absorbs the attributed error volume at tiny cost.
    t2 = dict((r[0], r) for r in retire_rows)[2]
    assert t2[2] > 0.30  # >30% of ALL errors (storm records unaddressable)
    assert t2[4] < 100  # well under 100 MiB retired fleet-wide
    # Lower thresholds avoid more.
    avoided = [r[1] for r in retire_rows]
    assert avoided == sorted(avoided, reverse=True)
    # A small exclude list captures most of the volume.
    b1000 = dict((r[0], r) for r in exclude_rows)[1000]
    assert b1000[2] > 0.5 and b1000[3] < 100
