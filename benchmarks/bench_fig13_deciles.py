"""Regenerate Figure 13: temperature deciles vs monthly CE rate."""


def test_fig13(run_experiment):
    run_experiment("fig13")
