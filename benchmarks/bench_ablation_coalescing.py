"""Ablation: sensitivity of fault counts to the coalescing key.

Two knobs from the methodology (section 3.2):

- bank splitting: coalescing per (node, slot, rank) instead of per bank
  merges co-located faults and manufactures MULTI_BANK records that
  SEC-DED memory would actually surface as DUEs;
- row availability: Astra's records lack the row field; platforms that
  emit it can distinguish single-row faults from single-bank ones.
"""

from repro.faults.classify import mode_counts
from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.faults.types import FaultMode
from repro.synth import CampaignGenerator


def _analyse(campaign, row_campaign):
    default = coalesce(campaign.errors)
    merged = coalesce(campaign.errors, CoalesceOptions(split_banks=False))
    # The same row-confined physics, seen two ways: Astra's records
    # (no row field) versus a row-reporting platform's.
    astra_view = coalesce(row_campaign.errors)
    row_view = coalesce(row_campaign.errors, CoalesceOptions(row_available=True))
    return {
        "default": (default.size, mode_counts(default)),
        "rank-granularity": (merged.size, mode_counts(merged)),
        "row-physics, astra-records": (astra_view.size, mode_counts(astra_view)),
        "row-physics, row-records": (row_view.size, mode_counts(row_view)),
    }


def test_coalescing_ablation(paper_campaign, benchmark, report_sink):
    # A variant campaign where half the bank-footprint faults are really
    # single-row, on a platform whose CE records carry the row field.
    row_campaign = CampaignGenerator(
        seed=paper_campaign.seed,
        scale=paper_campaign.scale,
        row_fault_fraction=0.5,
    ).generate(emit_rows=True)
    out = benchmark.pedantic(
        lambda: _analyse(paper_campaign, row_campaign), rounds=1, iterations=1
    )

    lines = ["== ablation: coalescing options ==", ""]
    for name, (n, modes) in out.items():
        mode_text = ", ".join(
            f"{m.label}={c}" for m, c in modes.items() if c
        )
        lines.append(f"{name:<28} faults={n:<6} {mode_text}")
    report_sink("ablation_coalescing", "\n".join(lines))

    n_default = out["default"][0]
    n_merged, modes_merged = out["rank-granularity"]
    assert n_merged < n_default, "rank granularity must merge faults"
    assert modes_merged[FaultMode.MULTI_BANK] > 0
    # Astra's records collapse single-row into single-bank (the paper's
    # stated limitation); row records recover the distinction.
    astra_modes = out["row-physics, astra-records"][1]
    row_modes = out["row-physics, row-records"][1]
    assert astra_modes[FaultMode.SINGLE_ROW] == 0
    assert row_modes[FaultMode.SINGLE_ROW] > 0
    assert row_modes[FaultMode.SINGLE_BANK] < astra_modes[FaultMode.SINGLE_BANK]
