"""Regenerate Figure 8 of the paper on the full-scale campaign."""


def test_fig08(run_experiment):
    run_experiment("fig08")
