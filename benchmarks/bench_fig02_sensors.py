"""Regenerate Figure 2 of the paper on the full-scale campaign."""


def test_fig02(run_experiment):
    run_experiment("fig02")
