"""Regenerate Figure 15 of the paper on the full-scale campaign."""


def test_fig15(run_experiment):
    run_experiment("fig15")
