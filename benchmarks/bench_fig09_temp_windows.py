"""Regenerate Figure 9: CE count vs pre-error DIMM temperature.

The window-mean evaluation is the heaviest analysis in the study; the
bench subsamples to 150 k errors (the histogram/fit shape is stable well
below that size).
"""


def test_fig09(run_experiment):
    run_experiment("fig09", max_errors=150_000)
