"""Regenerate Figure 10 of the paper on the full-scale campaign."""


def test_fig10(run_experiment):
    run_experiment("fig10")
