"""Ablation: patrol scrub interval vs alignment-DUE exposure.

Quantifies the lever under Astra's SEC-DED choice: how often two upsets
must align in a word to defeat the code, as a function of how frequently
memory is scrubbed.  The upset rate comes from the campaign's transient
fault count; the memory size is Astra's 332 TB.
"""

from repro.mitigation.scrub import (
    expected_alignment_dues,
    scrub_sensitivity,
    upset_rate_from_campaign,
)

#: Astra's aggregate memory in 8-byte ECC words (332 TB, section 2.2).
ASTRA_WORDS = int(332e12 // 8)


def test_scrub_sensitivity(paper_campaign, benchmark, report_sink):
    campaign = paper_campaign
    window = campaign.calibration.error_window
    duration_h = (window[1] - window[0]) / 3600.0

    def analyse():
        rate = upset_rate_from_campaign(campaign.faults(), window, ASTRA_WORDS)
        return rate, scrub_sensitivity(rate, ASTRA_WORDS, duration_h)

    rate, points = benchmark.pedantic(analyse, rounds=1, iterations=1)

    lines = ["== ablation: scrub interval vs alignment DUEs ==", ""]
    lines.append(f"estimated transient upset rate: {rate:.3e} per word-hour")
    lines.append(f"{'scrub interval':>16} {'expected alignment DUEs':>26}")
    for p in points:
        label = f"{p.scrub_interval_h:g} h"
        lines.append(f"{label:>16} {p.expected_dues:>26.3e}")
    report_sink("ablation_scrub", "\n".join(lines))

    dues = [p.expected_dues for p in points]
    assert dues == sorted(dues)  # longer intervals, more exposure
    # Even at monthly scrubbing, alignment DUEs stay below the ~24
    # device-fault DUEs the HET recorded: scrubbing is not the binding
    # constraint on Astra's DUE budget.
    assert dues[-1] < 24
