"""Regenerate Figure 3 of the paper on the full-scale campaign."""


def test_fig03(run_experiment):
    run_experiment("fig03")
