"""Ablation/extension: survival analysis of the replacement data.

Quantifies section 3.1's infant-mortality narrative with Weibull fits,
Kaplan-Meier end-of-window survival and period hazards, per component.
"""

from repro.analysis.survival import replacement_survival
from repro.synth.replacements import Component


def _analyse(campaign):
    window = campaign.calibration.inventory_window
    return {
        kind: replacement_survival(
            campaign.replacements, kind, window,
            campaign.topology, campaign.node_config,
        )
        for kind in Component
    }


def test_replacement_survival(paper_campaign, benchmark, report_sink):
    reports = benchmark.pedantic(
        lambda: _analyse(paper_campaign), rounds=1, iterations=1
    )
    lines = ["== survival analysis of replacements ==", ""]
    lines.append(
        f"{'component':<14} {'Weibull k':>10} {'scale(d)':>9} "
        f"{'infant hazard x':>16} {'survive window':>15}"
    )
    for kind, r in reports.items():
        lines.append(
            f"{kind.label:<14} {r.weibull.shape:>10.2f} "
            f"{r.weibull.scale:>9.0f} {r.infant_hazard_ratio:>16.2f} "
            f"{r.km_survival_end:>15.3f}"
        )
    report_sink("survival", "\n".join(lines))

    # DIMMs and motherboards show the classic infant-mortality signature.
    for kind in (Component.MOTHERBOARD, Component.DIMM):
        assert reports[kind].weibull.decreasing_hazard
        assert reports[kind].infant_hazard_ratio > 1.2
    # Nearly all units survive the stabilisation window.
    for r in reports.values():
        assert r.km_survival_end > 0.8
