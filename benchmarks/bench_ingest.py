"""Ingest/emit throughput benchmark for the text fast path.

Measures, for each text family (CE syslog, HET, BMC CSV, inventory):

- emit: writing the clean log, fast (column-wise) vs slow (per-record);
- ingest-clean: parsing the writer's own output, fast vs slow;
- ingest-corrupted: parsing a :mod:`repro.inject`-corrupted copy under
  the ``repair`` policy, fast vs slow.

Writes a JSON report (default ``BENCH_ingest.json``) consumable by
``python -m repro.logs.bench_compare old.json new.json``.  The committed
baseline must show the CE clean-ingest speedup >= 5x at 1,000,000 lines
(the PR's acceptance criterion); ``--check`` makes this script fail
loudly if the fast path did not engage or was slower than the per-line
path, which is what the CI perf-smoke job runs at a reduced size.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py --lines 1000000
    PYTHONPATH=src python benchmarks/bench_ingest.py --lines 20000 --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro._util import DAY_S, epoch
from repro.faults.types import empty_errors
from repro.inject.corruptor import LogCorruptor
from repro.logs.bmc import ingest_bmc_log, write_bmc_log
from repro.logs.het import ingest_het_log, write_het_log
from repro.logs.inventory import (
    InventoryModel,
    ingest_inventory_snapshots,
    write_inventory_snapshots,
)
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.het import EVENT_TYPES, HET_DTYPE, NON_RECOVERABLE_EVENTS
from repro.synth.replacements import REPLACEMENT_DTYPE, Component
from repro.synth.sensors import SensorFieldModel

T0 = epoch("2019-03-04")

#: Corrupted-variant line cap: corruption itself is per-line Python, so
#: the dirty measurement uses a bounded prefix of the clean log.
CORRUPT_CAP = 200_000

#: Ops where ``--check`` requires the fast gear to strictly win (or at
#: least break even, under ``--tolerance``).  Clean ingest is strict for
#: *every* family: since the inventory merge fix (PR 6) the fast gear
#: never loses on a clean log, so a slower-than-slow fastpath is a
#: regression, not a tax.  Corrupted ingest outside the ce family only
#: has to stay within ``SLACK`` of the per-line gear: on heavily
#: corrupted files the two-gear reader pays vectorised triage plus
#: per-line fallback with little vectorised win to fund it (see
#: DESIGN.md section 9).  The slack is a backstop against accidental
#: quadratic behaviour, not a perf target.
STRICT_WIN = {
    "ce": ("emit", "ingest-clean", "ingest-corrupted"),
    "het": ("ingest-clean",),
    "bmc": ("ingest-clean",),
    "inventory": ("ingest-clean",),
}
SLACK = 2.0

#: Environment override for the ``--tolerance`` default, so CI lanes on
#: noisy shared runners can relax the strict-win bound without editing
#: every workflow invocation (see EXPERIMENTS.md).
TOLERANCE_ENV = "ASTRA_MEMREPRO_BENCH_TOLERANCE"


def default_tolerance() -> float:
    raw = os.environ.get(TOLERANCE_ENV, "").strip()
    return float(raw) if raw else 0.0


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _slow_env(on: bool):
    if on:
        os.environ["ASTRA_MEMREPRO_SLOW_INGEST"] = "1"
    else:
        os.environ.pop("ASTRA_MEMREPRO_SLOW_INGEST", None)


# ----------------------------------------------------------------------
# Per-family data generators and (write, ingest) drivers
# ----------------------------------------------------------------------
def _ce_records(n: int) -> np.ndarray:
    rng = np.random.default_rng(11)
    e = empty_errors(n)
    e["time"] = T0 + np.sort(rng.integers(0, 30 * DAY_S, n)).astype(float)
    e["node"] = rng.integers(0, 2592, n)
    e["socket"] = rng.integers(0, 2, n)
    e["slot"] = rng.integers(-1, 16, n)
    e["rank"] = rng.integers(0, 2, n)
    e["bank"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 8, n))
    e["row"] = np.where(rng.random(n) < 0.8, -1, rng.integers(0, 1 << 17, n))
    e["column"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 1024, n))
    e["bit_pos"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 72, n))
    e["address"] = rng.integers(0, 1 << 40, n).astype(np.uint64)
    e["syndrome"] = rng.integers(0, 256, n)
    return e


def _het_records(n: int) -> np.ndarray:
    rng = np.random.default_rng(12)
    h = np.zeros(n, dtype=HET_DTYPE)
    h["time"] = T0 + np.sort(rng.integers(0, 30 * DAY_S, n)).astype(float)
    h["node"] = rng.integers(0, 2592, n)
    h["event"] = rng.integers(0, len(EVENT_TYPES), n)
    h["non_recoverable"] = np.isin(h["event"], sorted(NON_RECOVERABLE_EVENTS))
    return h


def _family_specs(lines: int) -> dict:
    """{family: (write(path), ingest(path))} scaled to ``lines``."""
    ce = _ce_records(lines)
    het = _het_records(max(lines // 4, 100))

    sensors = SensorFieldModel(seed=2)
    bmc_nodes = list(range(16))
    # samples = minutes x nodes x 7 sensors
    bmc_minutes = max(lines // (len(bmc_nodes) * 7 * 4), 10)
    bmc_t1 = T0 + 60.0 * bmc_minutes

    topo = AstraTopology()
    events = np.zeros(1, dtype=REPLACEMENT_DTYPE)
    events[0] = (T0 + 0.5 * DAY_S, Component.DIMM, 2, -1, 9)
    inv_model = InventoryModel(events, topo, NodeConfig())
    rows_per_day = topo.n_nodes * (
        NodeConfig().n_sockets + 1 + NodeConfig().dimms_per_node
    )
    inv_days = [
        T0 + i * DAY_S for i in range(max(lines // (4 * rows_per_day), 1))
    ]

    return {
        "ce": (
            lambda p: write_ce_log(ce, p),
            lambda p: ingest_ce_log(p, policy="repair").stats,
        ),
        "het": (
            lambda p: write_het_log(het, p),
            lambda p: ingest_het_log(p, policy="repair")[1],
        ),
        "bmc": (
            lambda p: write_bmc_log(p, sensors, bmc_nodes, T0, bmc_t1),
            lambda p: ingest_bmc_log(p, policy="repair")[1],
        ),
        "inventory": (
            lambda p: write_inventory_snapshots(p, inv_model, inv_days),
            lambda p: ingest_inventory_snapshots(p, policy="repair")[1],
        ),
    }


def _count_lines(path: Path, has_header: bool) -> int:
    with open(path, "rb") as fh:
        n = sum(buf.count(b"\n") for buf in iter(lambda: fh.read(1 << 20), b""))
    return n - (1 if has_header else 0)


def _truncate_lines(src: Path, dst: Path, cap: int) -> None:
    with open(src, "rb") as fin, open(dst, "wb") as fout:
        for i, line in enumerate(fin):
            if i >= cap:
                break
            fout.write(line)


def bench_family(family: str, write, ingest, workdir: Path) -> dict:
    clean = workdir / f"{family}.log"
    out: dict = {}

    # --- emit ---
    _slow_env(False)
    _, fast_s = _timed(lambda: write(clean))
    slow_path = workdir / f"{family}-slow.log"
    _slow_env(True)
    _, slow_s = _timed(lambda: write(slow_path))
    _slow_env(False)
    if clean.read_bytes() != slow_path.read_bytes():
        raise AssertionError(f"{family}: fast/slow writers disagree")
    slow_path.unlink()
    has_header = family == "bmc"
    n_lines = _count_lines(clean, has_header)
    out["emit"] = {
        "lines": n_lines,
        "bytes": clean.stat().st_size,
        "fast_s": round(fast_s, 4),
        "slow_s": round(slow_s, 4),
        "speedup": round(slow_s / fast_s, 2),
    }

    # --- ingest, clean and corrupted ---
    dirty = workdir / f"{family}-dirty.log"
    _truncate_lines(clean, dirty, CORRUPT_CAP + (1 if has_header else 0))
    LogCorruptor("moderate", seed=5).corrupt_text_file(
        dirty, has_header=has_header
    )
    for variant, path in (("clean", clean), ("corrupted", dirty)):
        _slow_env(False)
        stats, fast_s = _timed(lambda: ingest(path))
        _slow_env(True)
        slow_stats, slow_s = _timed(lambda: ingest(path))
        _slow_env(False)
        out[f"ingest-{variant}"] = {
            "lines": stats.seen,
            "fast_s": round(fast_s, 4),
            "slow_s": round(slow_s, 4),
            "speedup": round(slow_s / fast_s, 2),
            "mlines_per_s": round(stats.seen / fast_s / 1e6, 3),
            "fastpath_lines": stats.fast_lines,
            "fastpath_fraction": round(stats.fast_lines / max(stats.seen, 1), 4),
            "slow_fastpath_lines": slow_stats.fast_lines,
        }
    return out


def run(lines: int, out_path: Path, check: bool, tolerance: float = 0.0) -> int:
    results: dict = {}
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as tmp:
        workdir = Path(tmp)
        for family, (write, ingest) in _family_specs(lines).items():
            results[family] = bench_family(family, write, ingest, workdir)
            ing = results[family]["ingest-clean"]
            print(
                f"{family:10s} emit {results[family]['emit']['speedup']:5.2f}x   "
                f"ingest-clean {ing['speedup']:5.2f}x "
                f"({ing['mlines_per_s']:.2f} Mlines/s, "
                f"fastpath {ing['fastpath_fraction']:.0%})   "
                f"ingest-corrupted "
                f"{results[family]['ingest-corrupted']['speedup']:5.2f}x",
                flush=True,
            )

    report = {
        "schema": 1,
        "lines": lines,
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "results": results,
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if check:
        failures = []
        for family, ops in results.items():
            clean = ops["ingest-clean"]
            if clean["fastpath_fraction"] < 1.0:
                failures.append(f"{family}: fast path did not cover clean log")
            if clean["slow_fastpath_lines"] != 0:
                failures.append(f"{family}: escape hatch failed to disable fast path")
            for op, r in ops.items():
                strict = op in STRICT_WIN.get(family, ())
                # ``tolerance`` relaxes the strict-win bound (timing noise
                # on shared CI runners); the SLACK backstop stays as-is.
                bound = r["slow_s"] * ((1.0 + tolerance) if strict else SLACK)
                if r["fast_s"] > bound:
                    failures.append(
                        f"{family}/{op}: fast {r['fast_s']}s vs slow "
                        f"{r['slow_s']}s (limit {round(bound, 4)}s)"
                    )
        if failures:
            print("PERF-SMOKE FAILURES:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("perf smoke OK: fast path engaged, no op outside its bound")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--lines", type=int, default=1_000_000,
                    help="CE log size; other families scale down from it")
    ap.add_argument("--out", type=Path, default=Path("BENCH_ingest.json"))
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless the fast path engaged and won")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="relative slack on the strict-win bound under "
                         f"--check (default 0.0, or ${TOLERANCE_ENV})")
    args = ap.parse_args(argv)
    tolerance = default_tolerance() if args.tolerance is None else args.tolerance
    if tolerance < 0:
        ap.error("--tolerance must be >= 0")
    return run(args.lines, args.out, args.check, tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
