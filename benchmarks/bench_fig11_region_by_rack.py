"""Regenerate Figure 11 of the paper on the full-scale campaign."""


def test_fig11(run_experiment):
    run_experiment("fig11")
