"""Regenerate Figure 14: node power vs CE rate, hot/cold split."""


def test_fig14(run_experiment):
    run_experiment("fig14")
