"""Regenerate Figure 5 of the paper on the full-scale campaign."""


def test_fig05(run_experiment):
    run_experiment("fig05")
