"""Benchmark: shard-parallel coalescing vs single-process.

Times the core coalescing analysis over the full 4.37 M-record campaign
serially and with a process pool over per-rack shards, verifying the
results agree.
"""

import time

import numpy as np

from repro.faults.coalesce import coalesce
from repro.parallel.executor import parallel_coalesce


def test_serial_coalesce(paper_campaign, benchmark):
    faults = benchmark.pedantic(
        lambda: coalesce(paper_campaign.errors), rounds=1, iterations=1
    )
    assert faults.size > 0


def test_sharded_coalesce(paper_campaign, benchmark, report_sink):
    topo = paper_campaign.topology

    t0 = time.perf_counter()
    serial = parallel_coalesce(paper_campaign.errors, topo, n_workers=0)
    t_serial = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: parallel_coalesce(paper_campaign.errors, topo, n_workers=4),
        rounds=1,
        iterations=1,
    )
    np.testing.assert_array_equal(serial, parallel)
    report_sink(
        "parallel_engine",
        "== parallel engine ==\n\n"
        f"records: {paper_campaign.errors.size}\n"
        f"faults: {serial.size}\n"
        f"serial sharded coalesce: {t_serial:.2f} s\n"
        "(process-pool timing in the benchmark table; identical results)",
    )
