"""Streaming-pipeline throughput benchmark vs one-shot batch ingest.

Measures, over a synthetic CE log (plus a proportional HET log):

- ``batch``: ``ingest_ce_log`` + ``coalesce`` in one shot -- the cost
  of the offline answer;
- ``stream``: :class:`repro.stream.StreamPipeline` driven to
  completion with no checkpointing -- the pure incremental-processing
  tax (tailer batching + online coalescing + alert rules);
- ``stream-ckpt``: the same with ``checkpoint_every=1`` against a real
  checkpoint directory -- isolating the durability overhead of the
  atomic write-rename snapshot per batch.

Writes a JSON report (default ``BENCH_stream.json``).  ``--check``
additionally asserts the correctness contract (streamed faults and
ingest accounting byte-identical to batch) and a generous backstop on
the streaming tax, which is what the CI perf-smoke job runs at a
reduced size.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py --lines 200000
    PYTHONPATH=src python benchmarks/bench_stream.py --lines 20000 --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.faults.coalesce import coalesce
from repro.logs.het import write_het_log
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.stream import StreamPipeline, faults_snapshot

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_ingest import _ce_records, _het_records  # noqa: E402

#: Distinct faults generating the benchmark's CE traffic.  bench_ingest's
#: fully random records barely coalesce (nearly one group per record),
#: which would make checkpoint size -- and thus the overhead number --
#: scale with telemetry volume instead of live faults, the opposite of
#: production behaviour.
N_FAULTS = 256


def _stream_ce_records(n: int) -> np.ndarray:
    """CE records drawn from a bounded fault population."""
    rng = np.random.default_rng(13)
    e = _ce_records(n)
    which = rng.integers(0, N_FAULTS, n)
    for field, values in (
        ("node", rng.integers(0, 2592, N_FAULTS)),
        ("socket", rng.integers(0, 2, N_FAULTS)),
        ("slot", rng.integers(0, 16, N_FAULTS)),
        ("rank", rng.integers(0, 2, N_FAULTS)),
        ("bank", rng.integers(0, 8, N_FAULTS)),
        ("row", rng.integers(0, 1 << 17, N_FAULTS)),
        ("column", rng.integers(0, 1024, N_FAULTS)),
        ("bit_pos", rng.integers(0, 72, N_FAULTS)),
        ("address", rng.integers(0, 1 << 40, N_FAULTS).astype(np.uint64)),
    ):
        e[field] = values[which]
    return e

#: Backstop on the incremental tax: streaming to completion may cost at
#: most this many times the one-shot batch answer.  The online
#: coalescer folds records one at a time by design (memory stays
#: proportional to live faults, not telemetry volume), so it cannot
#: match the vectorised batch kernel -- this bound only catches
#: accidental quadratic behaviour.
STREAM_TAX_LIMIT = 30.0


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _run_pipeline(files, batch_bytes, checkpoint_dir=None):
    pipe = StreamPipeline(
        files=files,
        policy="repair",
        checkpoint_dir=checkpoint_dir,
        batch_bytes=batch_bytes,
        checkpoint_every=1,
        resume=False,
    )
    pipe.run()
    return pipe


def run(lines: int, batch_bytes: int, out_path: Path, check: bool) -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp:
        workdir = Path(tmp)
        ce_path = workdir / "ce.log"
        het_path = workdir / "het.log"
        write_ce_log(_stream_ce_records(lines), ce_path)
        write_het_log(_het_records(max(lines // 4, 100)), het_path)
        files = [ce_path, het_path]

        # --- batch: one-shot ingest + coalesce ---
        def batch():
            res = ingest_ce_log(ce_path, policy="repair")
            return res.stats, coalesce(res.errors)

        (batch_stats, batch_faults), batch_s = _timed(batch)

        # --- stream: incremental, no durability ---
        pipe, stream_s = _timed(lambda: _run_pipeline(files, batch_bytes))
        stream_summary = pipe.finalize()
        stream_faults = faults_snapshot(pipe)

        # --- stream-ckpt: checkpoint after every batch ---
        ckpt_dir = workdir / "ckpt"
        ckpt_dir.mkdir()
        ckpt_pipe, ckpt_s = _timed(
            lambda: _run_pipeline(files, batch_bytes, checkpoint_dir=ckpt_dir)
        )
        ckpt_pipe.finalize()
        ckpt_bytes = (ckpt_dir / "checkpoint.json").stat().st_size

        if check:
            if stream_faults.tobytes() != batch_faults.tobytes():
                failures.append("streamed faults differ from batch coalesce")
            stream_stats = pipe.final_ingest()["errors"]
            if stream_stats.to_dict() != batch_stats.to_dict():
                failures.append(
                    f"streamed CE ingest stats {stream_stats.to_dict()} != "
                    f"batch {batch_stats.to_dict()}"
                )
            if stream_s > batch_s * STREAM_TAX_LIMIT:
                failures.append(
                    f"stream {stream_s:.3f}s vs batch {batch_s:.3f}s "
                    f"exceeds the {STREAM_TAX_LIMIT}x backstop"
                )

    n_lines = int(batch_stats.seen)
    report = {
        "schema": 1,
        "lines": lines,
        "batch_bytes": batch_bytes,
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "results": {
            "batch": {
                "lines": n_lines,
                "fast_s": round(batch_s, 4),
                "mlines_per_s": round(n_lines / batch_s / 1e6, 3),
            },
            "stream": {
                "lines": n_lines,
                "fast_s": round(stream_s, 4),
                "mlines_per_s": round(n_lines / stream_s / 1e6, 3),
                "batches": stream_summary["batches"],
                "faults": stream_summary["faults"],
                "tax_vs_batch": round(stream_s / batch_s, 2),
            },
            "stream-ckpt": {
                "lines": n_lines,
                "fast_s": round(ckpt_s, 4),
                "mlines_per_s": round(n_lines / ckpt_s / 1e6, 3),
                "checkpoint_bytes": ckpt_bytes,
                "overhead_vs_stream": round(ckpt_s / stream_s - 1.0, 3),
            },
        },
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    r = report["results"]
    print(
        f"batch {r['batch']['mlines_per_s']:.2f} Mlines/s   "
        f"stream {r['stream']['mlines_per_s']:.2f} Mlines/s "
        f"({r['stream']['tax_vs_batch']:.1f}x tax, "
        f"{r['stream']['batches']} batches)   "
        f"checkpointing {r['stream-ckpt']['overhead_vs_stream']:+.1%}"
    )
    print(f"wrote {out_path}")

    if check:
        if failures:
            print("STREAM-BENCH FAILURES:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("stream bench OK: batch parity holds, tax within backstop")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--lines", type=int, default=200_000,
                    help="CE log size; HET scales down from it")
    ap.add_argument("--batch-bytes", type=int, default=1 << 18,
                    help="bytes consumed per file per pipeline step")
    ap.add_argument("--out", type=Path, default=Path("BENCH_stream.json"))
    ap.add_argument("--check", action="store_true",
                    help="assert batch parity and the streaming-tax backstop")
    args = ap.parse_args(argv)
    return run(args.lines, args.batch_bytes, args.out, args.check)


if __name__ == "__main__":
    raise SystemExit(main())
