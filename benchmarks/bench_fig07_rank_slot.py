"""Regenerate Figure 7 of the paper on the full-scale campaign."""


def test_fig07(run_experiment):
    run_experiment("fig07")
