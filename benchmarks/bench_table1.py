"""Regenerate Table 1 of the paper on the full-scale campaign."""


def test_table1(run_experiment):
    run_experiment("table1")
