"""What-if engine benchmark: vectorised scenario replay vs brute force.

Two measurements over one synthesised campaign:

- **full replay** (the headline): the vectorised engine replays the
  whole campaign under the full default grid -- 4 codes x 4 scrub
  intervals x 2 retirement thresholds = 32 scenarios -- and must finish
  inside ``--max-seconds`` (default 10).
- **speedup** (the honesty check): on a deterministic downsample
  (``--check-events``, default 20000), both the engine and the
  brute-force per-event reference (:mod:`repro.mitigation.reference`)
  replay the same grid.  Their per-event outcome arrays must be
  element-identical on every scenario (asserted on every run, not just
  under ``--check``), and the engine must beat the reference by
  ``--min-speedup`` (default 5.0).  The reference is only ever timed on
  the downsample -- at full campaign volume it would run for hours,
  which is precisely why the engine exists.

Writes a JSON report (default ``BENCH_whatif.json``) whose
``results.<family>.<op>.fast_s`` shape is consumable by
``python -m repro.logs.bench_compare``.

Usage::

    PYTHONPATH=src python benchmarks/bench_whatif.py --scale 1.0
    PYTHONPATH=src python benchmarks/bench_whatif.py --scale 0.02 \
        --check-events 4000 --check --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.mitigation.reference import reference_replay_events
from repro.mitigation.whatif import (
    replay_campaign,
    replay_events,
    scenario_grid,
)
from repro.synth import CampaignGenerator

GRID_SCRUB_H = (0.0, 1.0, 24.0, 168.0)
GRID_RETIRE = (0, 2)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run(
    scale: float,
    seed: int,
    check_events: int,
    jobs: int,
    out_path: Path,
    check: bool,
    min_speedup: float,
    max_seconds: float,
) -> int:
    campaign = CampaignGenerator(seed=seed, scale=scale).generate()
    errors = campaign.errors
    grid = scenario_grid(
        scrub_hours=GRID_SCRUB_H, retire_thresholds=GRID_RETIRE
    )
    print(
        f"campaign: {errors.size} CEs (seed={seed}, scale={scale:g}); "
        f"grid: {len(grid)} scenarios",
        flush=True,
    )

    reports, full_s = _timed(
        lambda: replay_campaign(errors, grid, seed=seed, jobs=jobs)
    )
    worst = max(reports, key=lambda r: r.uncorrected)
    print(
        f"full replay (jobs={jobs}): {full_s:.3f}s "
        f"({errors.size * len(grid) / max(full_s, 1e-9):.0f} event-"
        f"scenarios/s; worst scenario: {worst.scenario.label})",
        flush=True,
    )

    take = min(max(int(check_events), 1), int(errors.size))
    sel = np.unique(np.linspace(0, errors.size - 1, take).astype(np.int64))
    sub = np.ascontiguousarray(errors[sel])

    fast_outs, fast_sub_s = _timed(
        lambda: [replay_events(sub, sc, seed=seed) for sc in grid]
    )
    slow_outs, slow_sub_s = _timed(
        lambda: [reference_replay_events(sub, sc, seed=seed) for sc in grid]
    )
    mismatches = sum(
        int((a != b).sum()) for a, b in zip(fast_outs, slow_outs)
    )
    identical = mismatches == 0
    speedup = slow_sub_s / max(fast_sub_s, 1e-9)
    print(
        f"downsample ({sub.size} events x {len(grid)} scenarios): "
        f"engine {fast_sub_s:.3f}s vs reference {slow_sub_s:.3f}s "
        f"({speedup:.1f}x, identical={identical})",
        flush=True,
    )

    results = {
        "whatif": {
            "replay-full": {
                "events": int(errors.size),
                "scenarios": len(grid),
                "jobs": jobs,
                "fast_s": round(full_s, 4),
                "slow_s": round(
                    slow_sub_s * (errors.size / max(sub.size, 1)), 2
                ),
                "speedup": round(
                    slow_sub_s * (errors.size / max(sub.size, 1)) / max(full_s, 1e-9),
                    1,
                ),
            },
            "replay-check": {
                "events": int(sub.size),
                "scenarios": len(grid),
                "jobs": 0,
                "fast_s": round(fast_sub_s, 4),
                "slow_s": round(slow_sub_s, 4),
                "speedup": round(speedup, 2),
            },
        }
    }
    report = {
        "schema": 1,
        "scale": scale,
        "seed": seed,
        "events": int(errors.size),
        "grid": {
            "codes": [sc.code for sc in grid[: len(set(s.code for s in grid))]],
            "scrub_h": list(GRID_SCRUB_H),
            "retire": list(GRID_RETIRE),
        },
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "identity": bool(identical),
        "mismatches": int(mismatches),
        "full_replay_s": round(full_s, 4),
        "results": results,
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    failures = []
    if not identical:
        failures.append(
            f"engine-vs-reference identity failed: {mismatches} per-event "
            "mismatches on the downsampled grid"
        )
    if check:
        if full_s > max_seconds:
            failures.append(
                f"full-grid replay took {full_s:.2f}s, over the "
                f"{max_seconds:g}s ceiling"
            )
        if speedup < min_speedup:
            failures.append(
                f"engine speedup is {speedup:.1f}x, below the "
                f"{min_speedup:g}x floor"
            )
    if failures:
        print("WHATIF-BENCH FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    if check:
        print(
            f"whatif bench OK: identical, full grid in {full_s:.2f}s, "
            f"{speedup:.1f}x over the reference"
        )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="campaign volume scale (default 1.0 = 4.37M CEs)")
    ap.add_argument("--seed", type=int, default=7, help="campaign seed")
    ap.add_argument("--check-events", type=int, default=20000,
                    help="downsample size for the reference comparison "
                         "(default 20000)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="worker processes for the full replay (default 0)")
    ap.add_argument("--out", type=Path, default=Path("BENCH_whatif.json"))
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless identical, under the time "
                         "ceiling, and over the speedup floor")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="engine-vs-reference speedup floor (default 5.0)")
    ap.add_argument("--max-seconds", type=float, default=10.0,
                    help="full-grid replay time ceiling (default 10.0)")
    args = ap.parse_args(argv)
    return run(
        args.scale, args.seed, args.check_events, args.jobs, args.out,
        args.check, args.min_speedup, args.max_seconds,
    )


if __name__ == "__main__":
    raise SystemExit(main())
