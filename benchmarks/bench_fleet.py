"""Fleet aggregation benchmark: sharded mmap engine vs rehydrating path.

Synthesises a fleet of Astra-sized clusters (text logs plus per-rack
binary shards, with the binary mirrors normalised to the archival form,
i.e. re-derived from each cluster's ``ce.log`` so both paths share one
ground truth), then measures end-to-end ingest+coalesce:

- **legacy** (the ``slow_s`` side): the pre-fleet single-process path --
  serially re-parse every cluster's ``ce.log`` with the two-gear text
  reader, materialise and concatenate the full fleet-wide error stream,
  and coalesce it whole;
- **fleet** (the ``fast_s`` side): ``repro.fleet.process_fleet`` over
  memory-mapped per-rack shards -- per-shard coalesce, exact
  cross-shard merge, nothing rehydrated -- swept over ``--jobs``.

The two answers must be byte-identical (asserted on every run; the
shard-vs-whole gate of ``--check``).  ``--check`` additionally requires
the fleet speedup at the highest jobs count to reach ``--min-speedup``
(default 4.0).  The report records ``cpu_count`` and the full jobs
sweep: on single-core runners the speedup comes from the engine's
no-rehydration design (mmap + per-shard reduction), not from process
parallelism, and the sweep makes that visible instead of hiding it.

Writes a JSON report (default ``BENCH_fleet.json``) whose
``results.<family>.<op>.fast_s`` shape is consumable by
``python -m repro.logs.bench_compare``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py --clusters 4 --scale 0.1
    PYTHONPATH=src python benchmarks/bench_fleet.py --clusters 2 \
        --scale 0.02 --check --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.faults.coalesce import coalesce
from repro.fleet import FleetSpec, process_fleet, synth_fleet
from repro.logs.store import save_records, shard_by_rack
from repro.logs.syslog import ingest_ce_log


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _normalise_to_archival(fleet) -> int:
    """Re-derive every cluster's binary mirrors from its text log.

    Synthetic campaigns carry sub-second timestamps the second-resolution
    text format cannot, so a freshly synthesised ``errors.npy`` is not
    byte-equal to re-parsing ``ce.log``.  Archives built from real logs
    are: regenerate the mirrors (and shards) from the text so the legacy
    and fleet paths answer for exactly the same records.  Returns the
    total line count.
    """
    total = 0
    for cdir in fleet.cluster_dirs:
        parsed = ingest_ce_log(cdir / "ce.log").errors
        total += int(parsed.size)
        save_records(cdir / "errors.npy", parsed)
        shutil.rmtree(cdir / "shards", ignore_errors=True)
        shard_by_rack(parsed, cdir / "shards", fleet.spec.base_topology)
    return total


def _legacy_aggregate(fleet) -> np.ndarray:
    """The single-process rehydrating path the fleet engine replaces."""
    parts = []
    for i, cdir in enumerate(fleet.cluster_dirs):
        errors = ingest_ce_log(cdir / "ce.log").errors.copy()
        errors["node"] += fleet.spec.node_offset(i)
        parts.append(errors)
    merged = np.concatenate(parts)
    return coalesce(merged[np.argsort(merged["time"], kind="stable")])


def run(
    clusters: int,
    scale: float,
    jobs_sweep: list[int],
    out_path: Path,
    check: bool,
    min_speedup: float,
) -> int:
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        spec = FleetSpec(n_clusters=clusters, seed=3, scale=scale)
        fleet = synth_fleet(spec, Path(tmp) / "fleet", text_logs=True,
                            shards=True)
        lines = _normalise_to_archival(fleet)
        print(f"fleet: {clusters} cluster(s) x scale {scale:g} = "
              f"{lines} CE lines", flush=True)

        reference, legacy_s = _timed(lambda: _legacy_aggregate(fleet))
        print(f"legacy single-process (text rehydrate + whole coalesce): "
              f"{legacy_s:.3f}s", flush=True)

        sweep = []
        identical = True
        for jobs in jobs_sweep:
            result, wall_s = _timed(
                lambda: process_fleet(fleet, jobs=jobs, source="shards")
            )
            same = (
                result.faults.dtype == reference.dtype
                and result.faults.tobytes() == reference.tobytes()
            )
            identical &= same
            sweep.append(
                {
                    "jobs": jobs,
                    "wall_s": round(wall_s, 4),
                    "speedup": round(legacy_s / wall_s, 2),
                    "n_shards": len(result.per_shard),
                    "identical": bool(same),
                }
            )
            print(
                f"fleet jobs={jobs}: {wall_s:.3f}s "
                f"({legacy_s / wall_s:.1f}x, {len(result.per_shard)} shards, "
                f"identical={same})",
                flush=True,
            )

    best = max(sweep, key=lambda row: row["speedup"])
    top_jobs = sweep[-1]
    results = {
        "fleet": {
            "aggregate": {
                "lines": lines,
                "jobs": top_jobs["jobs"],
                "fast_s": top_jobs["wall_s"],
                "slow_s": round(legacy_s, 4),
                "speedup": top_jobs["speedup"],
            },
            "aggregate-serial": {
                "lines": lines,
                "jobs": sweep[0]["jobs"],
                "fast_s": sweep[0]["wall_s"],
                "slow_s": round(legacy_s, 4),
                "speedup": sweep[0]["speedup"],
            },
        }
    }
    report = {
        "schema": 1,
        "n_clusters": clusters,
        "scale": scale,
        "lines": lines,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "identity": bool(identical),
        "jobs_sweep": sweep,
        "best": {"jobs": best["jobs"], "speedup": best["speedup"]},
        "results": results,
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if check:
        failures = []
        if not identical:
            failures.append(
                "shard-vs-whole identity failed: fleet faults differ from "
                "the single-process reference"
            )
        if top_jobs["speedup"] < min_speedup:
            failures.append(
                f"aggregate speedup at jobs={top_jobs['jobs']} is "
                f"{top_jobs['speedup']}x, below the {min_speedup}x floor"
            )
        if failures:
            print("FLEET-BENCH FAILURES:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(
            f"fleet bench OK: byte-identical, "
            f"{top_jobs['speedup']}x at jobs={top_jobs['jobs']}"
        )
    elif not identical:
        # Identity is the engine's contract; even without --check a
        # mismatch must not produce a quietly-wrong baseline.
        print("error: shard-vs-whole identity failed", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--clusters", type=int, default=4,
                    help="Astra-sized clusters to synthesise (default 4)")
    ap.add_argument("--scale", type=float, default=0.1,
                    help="per-cluster volume scale (default 0.1)")
    ap.add_argument("--jobs", default="1,4",
                    help="comma-separated jobs sweep (default 1,4; the "
                         "last value is the gated measurement)")
    ap.add_argument("--out", type=Path, default=Path("BENCH_fleet.json"))
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless byte-identical and the "
                         "speedup floor is met")
    ap.add_argument("--min-speedup", type=float, default=4.0,
                    help="speedup floor for --check (default 4.0)")
    args = ap.parse_args(argv)
    try:
        jobs_sweep = [int(j) for j in str(args.jobs).split(",") if j.strip()]
    except ValueError:
        ap.error("--jobs must be a comma-separated list of integers")
    if not jobs_sweep:
        ap.error("--jobs must name at least one jobs count")
    return run(
        args.clusters, args.scale, jobs_sweep, args.out, args.check,
        args.min_speedup,
    )


if __name__ == "__main__":
    raise SystemExit(main())
