"""Ablation: the finite CE logging buffer (section 2.3).

Astra's memory controller logs CEs into a small internal buffer drained
by a polling loop every few seconds; bursts overflow it and drop records.
This bench replays the campaign through the logging model at several
buffer sizes and polling cadences and reports what survives -- the
observed 4.37 M CE total is a *lower bound* on the errors that occurred.
"""

import numpy as np

from repro.faults.coalesce import coalesce
from repro.synth.errors import apply_ce_logging


def _analyse(errors):
    rows = []
    base_faults = coalesce(errors).size
    for slots, poll in ((8, 5.0), (16, 5.0), (64, 5.0), (16, 1.0), (16, 30.0)):
        kept = apply_ce_logging(errors, buffer_slots=slots, poll_period_s=poll)
        rows.append(
            (
                slots,
                poll,
                kept.size,
                kept.size / errors.size,
                coalesce(kept).size,
            )
        )
    return {"rows": rows, "base_faults": base_faults}


def test_ce_logging_ablation(paper_campaign, benchmark, report_sink):
    out = benchmark.pedantic(
        lambda: _analyse(paper_campaign.errors), rounds=1, iterations=1
    )
    lines = ["== ablation: CE logging buffer ==", ""]
    lines.append(
        f"{'slots':>6} {'poll(s)':>8} {'kept':>10} {'fraction':>9} {'faults':>7}"
    )
    for slots, poll, kept, frac, faults in out["rows"]:
        lines.append(
            f"{slots:>6} {poll:>8.0f} {kept:>10} {frac:>9.3f} {faults:>7}"
        )
    lines.append(f"\nfaults with lossless logging: {out['base_faults']}")
    report_sink("ablation_celog", "\n".join(lines))

    rows = {(s, p): (kept, frac, faults) for s, p, kept, frac, faults in out["rows"]}
    # Bigger buffers and faster polling keep more errors.
    assert rows[(8, 5.0)][0] <= rows[(16, 5.0)][0] <= rows[(64, 5.0)][0]
    assert rows[(16, 30.0)][0] <= rows[(16, 5.0)][0] <= rows[(16, 1.0)][0]
    # Dropping errors barely moves the *fault* count: storms lose volume,
    # not identity -- another reason fault-level analysis is robust.
    for kept, frac, faults in rows.values():
        assert faults >= 0.95 * out["base_faults"]
