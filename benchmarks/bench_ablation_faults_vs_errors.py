"""Ablation: how wrong are conclusions drawn from raw errors?

The paper's central methodological claim (section 3.2): analyses that
count errors instead of faults see structure that is not there.  This
bench quantifies the gap on the full campaign: the relative spread of
counts per structure, the rack spike, and the region ordering, computed
both ways.
"""

import numpy as np

from repro.analysis.counts import counts_by
from repro.analysis.positional import counts_by_rack, counts_by_region
from repro.analysis.uniformity import relative_spread


def _analyse(campaign):
    errors = campaign.errors
    faults = campaign.faults()
    topo = campaign.topology
    rows = []
    for field in ("socket", "rank", "bank"):
        e, _ = counts_by(errors, field)
        f, _ = counts_by(faults, field)
        rows.append((field, relative_spread(e), relative_spread(f)))
    e_rack = counts_by_rack(errors, topo)
    f_rack = counts_by_rack(faults, topo)
    e_region = counts_by_region(errors, topo)
    f_region = counts_by_region(faults, topo)
    return {
        "spreads": rows,
        "rack_spike_errors": float(e_rack.max() / np.delete(e_rack, e_rack.argmax()).max()),
        "rack_spike_faults": float(f_rack.max() / np.delete(f_rack, f_rack.argmax()).max()),
        "region_order_errors": np.argsort(e_region)[::-1].tolist(),
        "region_order_faults": np.argsort(f_region)[::-1].tolist(),
    }


def test_faults_vs_errors(paper_campaign, benchmark, report_sink):
    out = benchmark.pedantic(lambda: _analyse(paper_campaign), rounds=1, iterations=1)
    lines = ["== ablation: faults vs errors ==", ""]
    lines.append(f"{'structure':<10} {'error spread':>14} {'fault spread':>14}")
    for field, es, fs in out["spreads"]:
        lines.append(f"{field:<10} {es:>14.2f} {fs:>14.2f}")
    lines.append("")
    lines.append(
        f"rack spike (max/second): errors {out['rack_spike_errors']:.2f}x, "
        f"faults {out['rack_spike_faults']:.2f}x"
    )
    lines.append(
        f"region ordering: errors {out['region_order_errors']} vs faults "
        f"{out['region_order_faults']} (0=bottom, 1=middle, 2=top)"
    )
    report_sink("ablation_faults_vs_errors", "\n".join(lines))

    # For bank (uniform at the fault level, 16 categories), error-based
    # analysis must look dramatically less uniform.  Socket has only two
    # near-even categories and rank is genuinely non-uniform in faults
    # (Figure 7): both stay in the table but not in the assertion.
    for field, es, fs in out["spreads"]:
        if field == "bank":
            assert es > fs, f"{field}: error spread should exceed fault spread"
    assert out["rack_spike_errors"] > 2.0
    assert out["rack_spike_faults"] < 2.0
    # And it reverses the region conclusion.
    assert out["region_order_errors"] != out["region_order_faults"]
