"""Ablation: SEC-DED (Astra's choice) versus Chipkill.

Section 2.2 notes Astra uses SEC-DED to save cost and power; section 3.2
notes the consequence (multi-bit device faults become DUEs).  This bench
injects physically motivated error patterns through both real codecs and
prints the outcome mix.
"""

from repro.analysis.ecc_study import (
    PATTERNS,
    compare_schemes,
    render_comparison,
)


def test_ecc_tradeoff(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: compare_schemes(trials=2000, seed=7), rounds=1, iterations=1
    )
    report_sink(
        "ablation_ecc",
        "== ablation: SEC-DED vs Chipkill ==\n\n" + render_comparison(results),
    )

    for pattern in PATTERNS:
        secded = results[pattern]["secded"]
        chipkill = results[pattern]["chipkill"]
        # Chipkill never silently corrupts under these patterns.
        assert chipkill.silent_fraction == 0.0
    # Both correct every single-bit error (the 4.37M CEs of the study).
    assert results["single-bit"]["secded"].corrected == 2000
    assert results["single-bit"]["chipkill"].corrected == 2000
    # The trade-off: a failing chip defeats SEC-DED but not Chipkill.
    chip = results["single device failure"]
    assert chip["chipkill"].corrected == 2000
    assert chip["secded"].corrected < 100
    assert chip["secded"].miscorrected > 200  # silent corruption risk
