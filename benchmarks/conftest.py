"""Benchmark fixtures: the paper-volume campaign and report capture.

Every bench regenerates one paper table/figure on the full-scale
synthetic campaign (4.37 M CEs), times the analysis, prints the
regenerated rows/series, and writes them under ``benchmarks/output/``.
"""

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper_campaign():
    """The full-volume campaign with faults pre-coalesced.

    Served through the persistent campaign cache: the first benchmark
    session generates and stores it; subsequent sessions load the binary
    mirrors (faults included) and start timing immediately.
    """
    from repro.run import CampaignCache

    campaign, _ = CampaignCache().get_or_generate(seed=7, scale=1.0)
    campaign.faults()  # already warm on a cache hit; no-op then
    return campaign


@pytest.fixture(scope="session")
def report_sink():
    """Write a rendered experiment report to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return write


@pytest.fixture()
def run_experiment(paper_campaign, benchmark, report_sink):
    """Benchmark one experiment once and emit its report."""

    def runner(exp_id: str, **params):
        from repro.experiments import run

        result = benchmark.pedantic(
            lambda: run(exp_id, paper_campaign, **params),
            rounds=1,
            iterations=1,
        )
        report_sink(exp_id, result.render())
        failed = [k for k, ok in result.checks.items() if not ok]
        assert not failed, f"{exp_id} shape claims failed: {failed}"
        return result

    return runner
