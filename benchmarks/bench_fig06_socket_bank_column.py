"""Regenerate Figure 6 of the paper on the full-scale campaign."""


def test_fig06(run_experiment):
    run_experiment("fig06")
