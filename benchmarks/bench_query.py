"""Rollup-cube query latency benchmark vs full log rescan.

Measures, over a synthetic CE stream drawn from a bounded fault
population (the bench_stream generator):

- ``build``: one-shot :func:`repro.query.engine.build_store` over the
  whole error array -- the cost of materialising every cube;
- ``incremental``: the same cubes built by per-batch
  :meth:`RollupStore.update` calls, the path the streaming pipeline and
  the fleet shard workers take -- its tax over the one-shot build is
  the incremental-maintenance overhead;
- ``query``: a fixed panel of representative queries (group-bys,
  filters, top-k, every cube family) answered twice per repeat --
  once from cube slices (:func:`execute`), once by full rescan of the
  raw arrays (:func:`recompute`) -- reported as p50/p95 latency and
  the p95 rescan-over-cube speedup;
- ``stream``: the streaming pipeline run with and without in-memory
  rollup maintenance over a smaller text log, isolating the per-batch
  update tax against bench_stream's ``STREAM_TAX_LIMIT`` backstop.

Writes a JSON report (default ``BENCH_query.json``).  ``--check``
additionally asserts the correctness contract (incremental == one-shot
cubes; every cube answer element-identical to its rescan answer), the
``>= 25x`` p95 speedup floor, and the streaming-tax backstop -- which
is what the CI perf-smoke job runs at a reduced size.

Usage::

    PYTHONPATH=src python benchmarks/bench_query.py --events 1000000
    PYTHONPATH=src python benchmarks/bench_query.py --events 60000 \\
        --stream-lines 8000 --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.faults.coalesce import coalesce
from repro.logs.syslog import write_ce_log
from repro.query.engine import (
    Query,
    answers_equal,
    build_store,
    execute,
    recompute,
)
from repro.query.rollup import RollupConfig, RollupStore
from repro.stream import StreamPipeline

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_ingest import T0  # noqa: E402
from repro._util import DAY_S  # noqa: E402
from bench_stream import STREAM_TAX_LIMIT, _stream_ce_records  # noqa: E402

#: The committed report must show at least this p95 rescan/cube speedup.
SPEEDUP_FLOOR = 25.0

#: Records folded per incremental ``update`` call (the streaming
#: pipeline's effective batch granularity at its default batch_bytes).
BATCH_EVENTS = 65_536


def _query_panel(hot_nodes: list) -> list:
    """The fixed query panel: every cube family, filters, top-k."""
    mid = T0 + 15 * DAY_S
    return [
        ("errors/rack", Query("errors", ["rack"])),
        ("errors/rack,slot", Query("errors", ["rack", "slot"])),
        (
            "errors/rack+window",
            Query("errors", ["rack"], where={"since": T0, "until": mid}),
        ),
        ("errors/node-top10", Query("errors", ["node"], top_k=10)),
        ("errors/bitpos", Query("errors", ["bitpos"])),
        (
            "errors/bucket@rack",
            Query("errors", ["bucket"], where={"rack": [0, 1, 2, 3]}),
        ),
        ("faults/mode", Query("faults", ["mode"])),
        ("faults/rack,mode", Query("faults", ["rack", "mode"])),
        ("mode_errors", Query("mode_errors", ["mode"])),
        (
            "ce_windows/hot-top20",
            Query(
                "ce_windows",
                ["node", "window"],
                where={"node": hot_nodes},
                top_k=20,
            ),
        ),
    ]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _pctl(samples: list, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def run(
    events: int,
    stream_lines: int,
    repeats: int,
    out_path: Path,
    check: bool,
) -> int:
    failures: list[str] = []
    config = RollupConfig()
    errors = _stream_ce_records(events)
    faults = coalesce(errors)

    # --- build: one-shot cube materialisation ---
    store, build_s = _timed(
        lambda: build_store(errors, faults=faults, config=config)
    )

    # --- incremental: per-batch updates, the stream/fleet path ---
    def incremental():
        inc = RollupStore(config)
        for lo in range(0, errors.size, BATCH_EVENTS):
            inc.update(errors[lo : lo + BATCH_EVENTS])
        inc.set_faults(faults)
        return inc

    inc_store, inc_s = _timed(incremental)
    if check and not store.equal(inc_store):
        failures.append("incremental cubes differ from the one-shot build")

    # --- query: cube slices vs full rescan ---
    node_counts = np.bincount(errors["node"])
    hot_nodes = np.argsort(node_counts)[-16:].tolist()
    panel = _query_panel(hot_nodes)
    cube_lat: list[float] = []
    rescan_lat: list[float] = []
    per_query = {}
    for name, query in panel:
        c_samples, r_samples = [], []
        for _ in range(repeats):
            answer, dt = _timed(lambda: execute(store, query))
            c_samples.append(dt)
            ref, dt = _timed(
                lambda: recompute(query, config, errors=errors, faults=faults)
            )
            r_samples.append(dt)
        if check and not answers_equal(answer, ref):
            failures.append(f"{name}: cube answer differs from rescan")
        cube_lat.extend(c_samples)
        rescan_lat.extend(r_samples)
        per_query[name] = {
            "cube_ms": round(_pctl(c_samples, 50) * 1e3, 3),
            "rescan_ms": round(_pctl(r_samples, 50) * 1e3, 3),
            "groups": answer["n_groups"],
        }
    cube_p50, cube_p95 = _pctl(cube_lat, 50), _pctl(cube_lat, 95)
    rescan_p50, rescan_p95 = _pctl(rescan_lat, 50), _pctl(rescan_lat, 95)
    speedup_p95 = rescan_p95 / cube_p95
    if check and speedup_p95 < SPEEDUP_FLOOR:
        failures.append(
            f"p95 speedup {speedup_p95:.1f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )

    # --- stream: per-batch rollup maintenance tax ---
    with tempfile.TemporaryDirectory(prefix="bench-query-") as tmp:
        ce_path = Path(tmp) / "ce.log"
        write_ce_log(_stream_ce_records(stream_lines), ce_path)

        def pipeline(rollup_config=None):
            pipe = StreamPipeline(
                files=[ce_path],
                policy="repair",
                resume=False,
                rollup_config=rollup_config,
            )
            pipe.run()
            pipe.finalize()
            return pipe

        _, plain_s = _timed(pipeline)
        _, rollup_s = _timed(lambda: pipeline(config))
        from repro.logs.syslog import ingest_ce_log

        def batch():
            res = ingest_ce_log(ce_path, policy="repair")
            return coalesce(res.errors)

        _, batch_s = _timed(batch)
    if check and rollup_s > batch_s * STREAM_TAX_LIMIT:
        failures.append(
            f"stream+rollups {rollup_s:.3f}s vs batch {batch_s:.3f}s "
            f"exceeds the {STREAM_TAX_LIMIT}x backstop"
        )

    report = {
        "schema": 1,
        "events": events,
        "stream_lines": stream_lines,
        "repeats": repeats,
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "results": {
            "build": {
                "one_shot_s": round(build_s, 4),
                "incremental_s": round(inc_s, 4),
                "incremental_tax": round(inc_s / build_s, 2),
                "events_per_s": round(events / inc_s, 0),
            },
            "query": {
                "panel": per_query,
                "cube_p50_ms": round(cube_p50 * 1e3, 3),
                "cube_p95_ms": round(cube_p95 * 1e3, 3),
                "rescan_p50_ms": round(rescan_p50 * 1e3, 3),
                "rescan_p95_ms": round(rescan_p95 * 1e3, 3),
                "speedup_p95": round(speedup_p95, 1),
            },
            "stream": {
                "plain_s": round(plain_s, 4),
                "with_rollups_s": round(rollup_s, 4),
                "rollup_overhead": round(rollup_s / plain_s - 1.0, 3),
                "tax_vs_batch": round(rollup_s / batch_s, 2),
            },
        },
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    r = report["results"]
    print(
        f"query p95 {r['query']['cube_p95_ms']:.2f} ms from cubes vs "
        f"{r['query']['rescan_p95_ms']:.2f} ms rescan "
        f"({r['query']['speedup_p95']:.0f}x)   "
        f"incremental build {r['build']['incremental_tax']:.1f}x one-shot   "
        f"stream rollup overhead {r['stream']['rollup_overhead']:+.1%}"
    )
    print(f"wrote {out_path}")

    if check:
        if failures:
            print("QUERY-BENCH FAILURES:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(
            "query bench OK: cube answers identical to rescan, "
            f"p95 speedup {speedup_p95:.0f}x >= {SPEEDUP_FLOOR:.0f}x, "
            "stream tax within backstop"
        )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--events", type=int, default=1_000_000,
                    help="CE records in the query/build corpus")
    ap.add_argument("--stream-lines", type=int, default=50_000,
                    help="text-log size for the streaming-tax section")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timed repetitions per panel query")
    ap.add_argument("--out", type=Path, default=Path("BENCH_query.json"))
    ap.add_argument("--check", action="store_true",
                    help="assert identity, the speedup floor, and the "
                         "streaming-tax backstop")
    args = ap.parse_args(argv)
    return run(
        args.events, args.stream_lines, args.repeats, args.out, args.check
    )


if __name__ == "__main__":
    raise SystemExit(main())
