"""Regenerate Figure 12 of the paper on the full-scale campaign."""


def test_fig12(run_experiment):
    run_experiment("fig12")
