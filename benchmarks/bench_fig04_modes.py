"""Regenerate Figure 4 of the paper on the full-scale campaign."""


def test_fig04(run_experiment):
    run_experiment("fig04")
