"""Incremental error-to-fault coalescing with live per-DIMM state.

The batch coalescer (:mod:`repro.faults.coalesce`) sorts a complete
error array once and reduces each ``(node, slot, rank, bank)`` group in
one pass.  Operators cannot wait for "complete": this module maintains
the same per-group evidence -- error count, first/last timestamps, the
distinct-value sets that drive mode classification, and the
representative first record -- updated batch by batch as records
arrive.

The contract, enforced by the differential tests, is exact: feeding a
full campaign through :meth:`OnlineCoalescer.add` in any batching and
then calling :meth:`OnlineCoalescer.faults` produces a fault array
byte-identical to ``coalesce(all_errors)``.  That works because every
quantity the batch path derives is arrival-order-insensitive once ties
are broken the same way:

- ``first`` is the minimum-time record, earliest file position among
  equal times -- exactly what the batch path's stable
  ``lexsort((time, ...))`` picks, whether or not the repair policy
  re-sorted the stream first (a stable time sort preserves file order
  among ties);
- ``last_time`` is the maximum time;
- distinct counts (bit identities, words, columns, rows, banks) are
  set cardinalities;
- group ordering and ``fault_id`` assignment follow the ascending
  ``(node, slot, rank, bank)`` key, which the final sort re-derives.

Per-record work is a plain Python loop over pre-extracted column lists
(no numpy scalar boxing); the bit-identity key is computed vectorised
with ``int64`` arithmetic first so its wrap-around semantics match the
batch path bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.faults.classify import classify_group_modes
from repro.faults.coalesce import CoalesceOptions
from repro.faults.types import ERROR_DTYPE, FaultMode, empty_faults


class _Group:
    """Evidence accumulated for one coalescing group."""

    __slots__ = (
        "n", "first_time", "last_time", "first", "bits", "words",
        "cols", "rows", "banks", "mode",
    )

    def __init__(self):
        self.n = 0
        self.first_time = None
        self.last_time = None
        #: The representative record as a plain dict of Python scalars.
        self.first = None
        self.bits: set[int] = set()
        self.words: set[int] = set()
        self.cols: set[int] = set()
        self.rows: set[int] = set()
        self.banks: set[int] = set()
        #: Last classified mode (int), maintained by the alert engine's
        #: transition tracking; ``None`` until first classified.
        self.mode: int | None = None

    # -- checkpoint (de)serialisation ----------------------------------
    def to_state(self) -> list:
        return [
            self.n, self.first_time, self.last_time, self.first,
            sorted(self.bits), sorted(self.words), sorted(self.cols),
            sorted(self.rows), sorted(self.banks), self.mode,
        ]

    @classmethod
    def from_state(cls, state: list) -> "_Group":
        g = cls()
        (g.n, g.first_time, g.last_time, first, bits, words, cols,
         rows, banks, mode) = state
        # JSON round-trips dict keys as-is (they are strings already).
        g.first = dict(first)
        g.bits = set(bits)
        g.words = set(words)
        g.cols = set(cols)
        g.rows = set(rows)
        g.banks = set(banks)
        g.mode = mode
        return g


#: Fields captured for the representative first record.
_FIRST_FIELDS = (
    "time", "node", "socket", "slot", "rank", "bank", "row", "column",
    "bit_pos", "address",
)


class OnlineCoalescer:
    """Maintains live fault state from incrementally arriving CE records.

    Parameters mirror :class:`repro.faults.coalesce.CoalesceOptions`;
    the default is Astra's (per-bank groups, no row information).
    """

    def __init__(self, options: CoalesceOptions | None = None):
        self.options = options or CoalesceOptions()
        self._groups: dict[tuple, _Group] = {}
        self.errors_seen = 0

    @property
    def key_fields(self) -> tuple[str, ...]:
        if self.options.split_banks:
            return ("node", "slot", "rank", "bank")
        return ("node", "slot", "rank")

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    # ------------------------------------------------------------------
    def add(self, errors: np.ndarray) -> tuple[list[tuple], list[tuple]]:
        """Fold a batch of CE records (in file order) into the state.

        Returns ``(created, touched)``: the group keys first seen in
        this batch, in order of their creating record, and every key
        the batch touched (created included), in first-touch order.
        """
        if errors.dtype != ERROR_DTYPE:
            raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
        if errors.size == 0:
            return [], []
        self.errors_seen += int(errors.size)

        # Pre-extract columns as Python lists once; the per-record loop
        # then only does dict/set work.  The bit identity is combined in
        # int64 first so any overflow wraps exactly as the batch path's
        # ``addr.astype(int64) * 128 + bit + 1`` does.
        addr_i64 = errors["address"].astype(np.int64)
        with np.errstate(over="ignore"):
            bitkey = addr_i64 * 128 + (errors["bit_pos"].astype(np.int64) + 1)
        times = errors["time"].tolist()
        nodes = errors["node"].tolist()
        sockets = errors["socket"].tolist()
        slots = errors["slot"].tolist()
        ranks = errors["rank"].tolist()
        banks = errors["bank"].tolist()
        rows = errors["row"].tolist()
        cols = errors["column"].tolist()
        bits = errors["bit_pos"].tolist()
        addrs = errors["address"].tolist()
        words = addr_i64.tolist()
        bitkeys = bitkey.tolist()

        split = self.options.split_banks
        groups = self._groups
        created: list[tuple] = []
        touched: dict[tuple, None] = {}
        for i in range(len(times)):
            key = (
                (nodes[i], slots[i], ranks[i], banks[i]) if split
                else (nodes[i], slots[i], ranks[i])
            )
            g = groups.get(key)
            if g is None:
                g = groups[key] = _Group()
                created.append(key)
            touched.setdefault(key, None)
            t = times[i]
            g.n += 1
            # Strict "<" keeps the earliest-arriving record among equal
            # minimum times; ">=" keeps the latest-arriving maximum.
            if g.first_time is None or t < g.first_time:
                g.first_time = t
                g.first = {
                    "time": t, "node": nodes[i], "socket": sockets[i],
                    "slot": slots[i], "rank": ranks[i], "bank": banks[i],
                    "row": rows[i], "column": cols[i], "bit_pos": bits[i],
                    "address": addrs[i],
                }
            if g.last_time is None or t >= g.last_time:
                g.last_time = t
            g.bits.add(bitkeys[i])
            g.words.add(words[i])
            g.cols.add(cols[i])
            g.rows.add(rows[i])
            g.banks.add(banks[i])
        return created, list(touched)

    # ------------------------------------------------------------------
    def _classify(self, keys: list[tuple]) -> np.ndarray:
        """Mode per key (vectorised over the selected groups)."""
        n = len(keys)
        if n == 0:
            return np.zeros(0, dtype=np.int8)
        gs = [self._groups[k] for k in keys]
        return classify_group_modes(
            uniq_bits=np.array([len(g.bits) for g in gs], dtype=np.int64),
            uniq_words=np.array([len(g.words) for g in gs], dtype=np.int64),
            uniq_cols=np.array([len(g.cols) for g in gs], dtype=np.int64),
            uniq_rows=np.array([len(g.rows) for g in gs], dtype=np.int64),
            uniq_banks=np.array([len(g.banks) for g in gs], dtype=np.int64),
            bank_valid=np.array([g.first["bank"] >= 0 for g in gs], dtype=bool),
            column_valid=np.array(
                [g.first["column"] >= 0 for g in gs], dtype=bool
            ),
            bit_valid=np.array([g.first["bit_pos"] >= 0 for g in gs], dtype=bool),
            row_valid=np.array([g.first["row"] >= 0 for g in gs], dtype=bool),
            row_available=self.options.row_available,
        )

    def classify_keys(self, keys: list[tuple]) -> dict[tuple, int]:
        """Current fault mode for each of the given group keys."""
        modes = self._classify(keys)
        return {key: int(mode) for key, mode in zip(keys, modes)}

    def faults(self) -> np.ndarray:
        """Snapshot the live state as a batch-identical fault array."""
        keys = sorted(self._groups)
        n = len(keys)
        if n == 0:
            return empty_faults(0)
        gs = [self._groups[k] for k in keys]
        faults = empty_faults(n)
        faults["fault_id"] = np.arange(n)
        for field in ("node", "socket", "slot", "rank"):
            faults[field] = [g.first[field] for g in gs]
        faults["n_errors"] = [g.n for g in gs]
        faults["first_time"] = [g.first_time for g in gs]
        faults["last_time"] = [g.last_time for g in gs]
        # Representative positional fields: the first record's value
        # where the group is homogeneous, the sentinel otherwise
        # (already set by empty_faults).
        for field, attr in (
            ("bank", "banks"), ("column", "cols"), ("row", "rows"),
        ):
            values = [
                g.first[field] if len(getattr(g, attr)) == 1 else None
                for g in gs
            ]
            mask = np.array([v is not None for v in values], dtype=bool)
            if mask.any():
                faults[field][mask] = [v for v in values if v is not None]
        bit_homog = np.array([len(g.bits) == 1 for g in gs], dtype=bool)
        if bit_homog.any():
            faults["bit_pos"][bit_homog] = [
                g.first["bit_pos"] for g, h in zip(gs, bit_homog) if h
            ]
        faults["address"] = [g.first["address"] for g in gs]
        faults["mode"] = self._classify(keys)
        return faults

    def mode_counts(self) -> dict[str, int]:
        """Live fault count per mode label (for summaries and gauges)."""
        out: dict[str, int] = {}
        modes = self._classify(sorted(self._groups))
        counts = np.bincount(modes, minlength=len(FaultMode))
        for mode in FaultMode:
            if counts[mode]:
                out[mode.label] = int(counts[mode])
        return out

    # -- checkpoint (de)serialisation ----------------------------------
    def to_state(self) -> dict:
        return {
            "split_banks": self.options.split_banks,
            "row_available": self.options.row_available,
            "errors_seen": self.errors_seen,
            "groups": [
                [list(key), self._groups[key].to_state()]
                for key in sorted(self._groups)
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineCoalescer":
        self = cls(
            CoalesceOptions(
                split_banks=bool(state["split_banks"]),
                row_available=bool(state["row_available"]),
            )
        )
        self.errors_seen = int(state["errors_seen"])
        for key, group_state in state["groups"]:
            self._groups[tuple(key)] = _Group.from_state(group_state)
        return self
