"""Rule engine over live streaming state, emitting JSONL alert events.

Five rules, all evaluated per consumed batch and all deterministic in
the record stream (so an interrupted-and-resumed pipeline emits exactly
the alert stream an uninterrupted run would have):

``new_fault``
    A coalescing group -- one inferred fault -- was seen for the first
    time.  Carries the fault's initial mode classification.
``mode_transition``
    New evidence moved an existing fault to a different mode (e.g. a
    single-bit fault revealing itself as single-column).  Evaluated at
    batch granularity: several intermediate flips inside one batch
    collapse into one transition, deterministically.
``ce_rate``
    A node crossed the correctable-error-count threshold within an
    epoch-aligned time window.  Fires once per (node, window), stamped
    with the timestamp of the record that crossed the threshold.
``uncorrectable``
    A HET record with NON-RECOVERABLE severity arrived; one alert per
    record (these are the events the paper ties to job kills).
``sensor_dropout``
    The fleet-wide BMC sample timestamp stream jumped by more than
    ``dropout_min_gap`` cadences -- the streaming analogue of
    :func:`repro.logs.bmc.sensor_dropout_windows`, evaluated against a
    running high-water mark.

Alert events are JSON objects with a fixed envelope (``seq``, ``rule``,
``time``, ``batch``, ``node``, ``detail``) validated by
``schemas/alerts.schema.json``; :class:`AlertSink` appends them to a
JSONL file and its byte offset + sequence number are checkpointed, so
resume truncates any alerts a dying process wrote past its last
checkpoint instead of duplicating them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.faults.types import FaultMode
from repro.stream.online_coalesce import OnlineCoalescer
from repro.synth.het import EVENT_TYPES

#: Rule names, in the order they are documented.  ``predicted_failure``
#: is raised by the optional :class:`~repro.predict.score.OnlineScorer`
#: (``repro stream --predict``), not by the rule engine below; it rides
#: the same sink and envelope.
RULES = (
    "new_fault", "mode_transition", "ce_rate", "uncorrectable",
    "sensor_dropout", "predicted_failure",
)


@dataclass(frozen=True)
class AlertRules:
    """Thresholds for the alert rule catalog."""

    #: CE records per node per window that trip the ``ce_rate`` rule.
    ce_rate_threshold: int = 100
    #: Width of the epoch-aligned ``ce_rate`` window, seconds.
    ce_rate_window_s: float = 3600.0
    #: Expected BMC sample cadence, seconds.
    dropout_cadence_s: float = 60.0
    #: Gap (in cadences) beyond which silence is a dropout.
    dropout_min_gap: float = 3.0

    def to_dict(self) -> dict:
        return {
            "ce_rate_threshold": self.ce_rate_threshold,
            "ce_rate_window_s": self.ce_rate_window_s,
            "dropout_cadence_s": self.dropout_cadence_s,
            "dropout_min_gap": self.dropout_min_gap,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AlertRules":
        return cls(
            ce_rate_threshold=int(d["ce_rate_threshold"]),
            ce_rate_window_s=float(d["ce_rate_window_s"]),
            dropout_cadence_s=float(d["dropout_cadence_s"]),
            dropout_min_gap=float(d["dropout_min_gap"]),
        )


class AlertSink:
    """Append-only JSONL alert writer with checkpointable position.

    ``seq`` numbers are assigned here, monotonically; ``offset`` is the
    byte length of everything emitted so far.  On resume the file is
    truncated back to the checkpointed offset, discarding alerts
    written after the last checkpoint (they will be re-derived), which
    is what makes the stream exactly-once end to end.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.seq = 0
        self.offset = 0

    def emit(self, alerts: list[dict]) -> None:
        if not alerts:
            return
        with open(self.path, "ab") as fh:
            if fh.tell() != self.offset:
                raise RuntimeError(
                    f"{self.path}: alert file is {fh.tell()} bytes but the "
                    f"sink has emitted {self.offset}; refusing to interleave"
                )
            for alert in alerts:
                doc = {"seq": self.seq, **alert}
                payload = (
                    json.dumps(doc, separators=(",", ":")) + "\n"
                ).encode("utf-8")
                fh.write(payload)
                self.offset += len(payload)
                self.seq += 1

    def to_state(self) -> dict:
        return {"seq": self.seq, "offset": self.offset}

    def restore(self, state: dict) -> None:
        self.seq = int(state["seq"])
        self.offset = int(state["offset"])
        if self.offset == 0:
            # Nothing was durably emitted; start the file over.
            if self.path.exists():
                os.truncate(self.path, 0)
            return
        if not self.path.exists():
            raise FileNotFoundError(
                f"{self.path}: alerts file missing but checkpoint says "
                f"{self.offset} bytes were emitted"
            )
        size = self.path.stat().st_size
        if size < self.offset:
            raise RuntimeError(
                f"{self.path}: alerts file shorter ({size}) than the "
                f"checkpointed offset ({self.offset})"
            )
        if size > self.offset:
            os.truncate(self.path, self.offset)


class AlertEngine:
    """Evaluates the rule catalog against each consumed batch."""

    def __init__(
        self,
        coalescer: OnlineCoalescer,
        rules: AlertRules | None = None,
    ):
        self.coalescer = coalescer
        self.rules = rules or AlertRules()
        #: Live CE count per (node, window index).
        self._ce_counts: dict[tuple[int, int], int] = {}
        #: (node, window index) pairs whose ce_rate alert already fired.
        self._ce_fired: set[tuple[int, int]] = set()
        #: High-water mark of distinct BMC sample timestamps.
        self._sensor_watermark: float | None = None

    # ------------------------------------------------------------------
    def observe_errors(
        self,
        errors: np.ndarray,
        created: list[tuple],
        touched: list[tuple],
        batch: int,
    ) -> list[dict]:
        """new_fault + mode_transition + ce_rate for one CE batch.

        ``created``/``touched`` are the coalescer's return for this
        same batch, which must already have been folded in.
        """
        alerts: list[dict] = []
        if touched:
            created_set = set(created)
            modes = self.coalescer.classify_keys(touched)
            groups = self.coalescer._groups
            for key in touched:
                g = groups[key]
                mode = modes[key]
                if key in created_set:
                    g.mode = mode
                    alerts.append(
                        {
                            "rule": "new_fault",
                            "time": g.first_time,
                            "batch": batch,
                            "node": int(key[0]),
                            "detail": {
                                "slot": int(key[1]),
                                "rank": int(key[2]),
                                "bank": int(key[3]) if len(key) > 3 else None,
                                "mode": FaultMode(mode).label,
                            },
                        }
                    )
                elif mode != g.mode:
                    alerts.append(
                        {
                            "rule": "mode_transition",
                            "time": g.last_time,
                            "batch": batch,
                            "node": int(key[0]),
                            "detail": {
                                "slot": int(key[1]),
                                "rank": int(key[2]),
                                "bank": int(key[3]) if len(key) > 3 else None,
                                "from_mode": FaultMode(g.mode).label,
                                "to_mode": FaultMode(mode).label,
                            },
                        }
                    )
                    g.mode = mode
        alerts.extend(self._ce_rate_alerts(errors, batch))
        return alerts

    def _ce_rate_alerts(self, errors: np.ndarray, batch: int) -> list[dict]:
        if errors.size == 0:
            return []
        window = self.rules.ce_rate_window_s
        threshold = self.rules.ce_rate_threshold
        nodes = errors["node"].astype(np.int64)
        buckets = np.floor(errors["time"] / window).astype(np.int64)
        # Stable sort keeps file order within each (node, bucket)
        # segment, so "the record that crossed the threshold" is exact.
        order = np.lexsort((buckets, nodes))
        sn, sb = nodes[order], buckets[order]
        seg = np.ones(sn.size, dtype=bool)
        seg[1:] = (sn[1:] != sn[:-1]) | (sb[1:] != sb[:-1])
        starts = np.flatnonzero(seg)
        counts = np.diff(np.append(starts, sn.size))
        times = errors["time"][order]
        alerts = []
        for s, c in zip(starts.tolist(), counts.tolist()):
            key = (int(sn[s]), int(sb[s]))
            prev = self._ce_counts.get(key, 0)
            self._ce_counts[key] = prev + c
            if key in self._ce_fired or prev + c < threshold:
                continue
            # The (threshold - prev)-th record of this segment crossed.
            t_cross = float(times[s + (threshold - prev) - 1])
            self._ce_fired.add(key)
            alerts.append(
                {
                    "rule": "ce_rate",
                    "time": t_cross,
                    "batch": batch,
                    "node": key[0],
                    "detail": {
                        "window_start": key[1] * window,
                        "window_s": window,
                        "count": prev + c,
                        "threshold": threshold,
                    },
                }
            )
        return alerts

    def observe_het(self, events: np.ndarray, batch: int) -> list[dict]:
        """One ``uncorrectable`` alert per NON-RECOVERABLE HET record."""
        if events.size == 0:
            return []
        sel = np.flatnonzero(events["non_recoverable"])
        alerts = []
        for i in sel.tolist():
            rec = events[i]
            event = int(rec["event"])
            alerts.append(
                {
                    "rule": "uncorrectable",
                    "time": float(rec["time"]),
                    "batch": batch,
                    "node": int(rec["node"]),
                    "detail": {"event": event, "event_name": EVENT_TYPES[event]},
                }
            )
        return alerts

    def observe_sensors(self, samples: np.ndarray, batch: int) -> list[dict]:
        """``sensor_dropout`` alerts from the timestamp high-water mark."""
        if samples.size == 0:
            return []
        ts = np.unique(samples["time"])
        gap_limit = self.rules.dropout_min_gap * self.rules.dropout_cadence_s
        alerts = []
        prev = self._sensor_watermark
        for t in ts.tolist():
            if prev is not None and t > prev and (t - prev) > gap_limit:
                alerts.append(
                    {
                        "rule": "sensor_dropout",
                        "time": float(t),
                        "batch": batch,
                        "node": -1,
                        "detail": {
                            "gap_start": float(prev),
                            "gap_end": float(t),
                            "gap_s": float(t - prev),
                        },
                    }
                )
            prev = t if prev is None else max(prev, t)
        self._sensor_watermark = prev
        return alerts

    # -- checkpoint (de)serialisation ----------------------------------
    def to_state(self) -> dict:
        return {
            "rules": self.rules.to_dict(),
            "ce_counts": [
                [k[0], k[1], v] for k, v in sorted(self._ce_counts.items())
            ],
            "ce_fired": [list(k) for k in sorted(self._ce_fired)],
            "sensor_watermark": self._sensor_watermark,
        }

    def restore(self, state: dict) -> None:
        self.rules = AlertRules.from_dict(state["rules"])
        self._ce_counts = {
            (int(n), int(b)): int(c) for n, b, c in state["ce_counts"]
        }
        self._ce_fired = {(int(n), int(b)) for n, b in state["ce_fired"]}
        w = state["sensor_watermark"]
        self._sensor_watermark = None if w is None else float(w)


def read_alerts(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL alert stream back into a list of alert dicts."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
