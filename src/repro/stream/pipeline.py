"""The streaming loop: tail files, coalesce, alert, checkpoint.

A :class:`StreamPipeline` owns one :class:`~repro.stream.tailer.LogTailer`
per telemetry file, one :class:`~repro.stream.online_coalesce.OnlineCoalescer`
for the CE family, an :class:`~repro.stream.alerts.AlertEngine` with its
JSONL sink, and a :class:`~repro.stream.checkpoint.CheckpointStore`.
One :meth:`step` polls every tailer once, folds whatever arrived into
the live state, evaluates the alert rules, and periodically checkpoints
-- that is the unit ``--max-batches`` counts and the granularity at
which kill/resume is exact.

The pipeline retains no raw record arrays: CE batches fold into the
coalescer, HET and sensor batches exist only long enough for their
rules to see them, and inventory rows fold into the live snapshot
dict.  Memory therefore scales with distinct faults, nodes and
inventory positions, not telemetry volume.

Everything is instrumented with the :mod:`repro.obs` layer:
``stream.poll`` / ``stream.<family>`` spans, per-family line counters
and lag gauges, and per-rule alert counters.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.faults.coalesce import CoalesceOptions
from repro.logs.ingest import IngestPolicy
from repro.query.rollup import RollupConfig, RollupStore
from repro.stream.alerts import AlertEngine, AlertRules, AlertSink
from repro.stream.checkpoint import CheckpointError, CheckpointStore
from repro.stream.online_coalesce import OnlineCoalescer
from repro.stream.tailer import FAMILY_SPECS, LogTailer, spec_for_path

#: Family polling order (fixed so batch indices are deterministic).
_FAMILY_ORDER = ("errors", "het", "sensors", "inventory")


def discover_files(directory: str | Path) -> list[Path]:
    """Tailable telemetry files in a campaign directory, fixed order."""
    directory = Path(directory)
    out: list[Path] = []
    for name in ("ce.log", "het.log"):
        path = directory / name
        if path.exists():
            out.append(path)
    for pattern in ("bmc*", "inventory*"):
        for path in sorted(directory.glob(pattern)):
            if path.name.endswith(".quarantine") or not path.is_file():
                continue
            out.append(path)
    return out


class StreamPipeline:
    """Incremental telemetry pipeline over a set of growing log files.

    Parameters
    ----------
    directory:
        Campaign directory to discover telemetry files in (``ce.log``,
        ``het.log``, ``bmc*``, ``inventory*``).  Mutually additive with
        ``files``.
    files:
        Explicit file paths; each must map to a known family by name.
    policy:
        Ingest policy applied to every family.
    checkpoint_dir:
        Where ``checkpoint.json`` lives.  When it already holds a
        checkpoint, the pipeline resumes from it (``resume=False``
        starts over instead).
    alerts_out:
        JSONL file to append alert events to (None: alerts are still
        evaluated and counted, just not persisted).
    batch_bytes:
        Bytes consumed per file per step.  Resume replays identical
        batches only when this matches the interrupted run, so it is
        recorded in -- and validated against -- the checkpoint.
    checkpoint_every:
        Checkpoint after every N consuming steps.
    rollup_dir:
        Directory for versioned rollup-cube snapshots (DESIGN.md §14).
        Every CE batch folds into the cubes as it is consumed; each
        checkpoint first snapshots the cubes, then records the snapshot
        version, so a resumed pipeline continues from exactly the cube
        state its checkpoint describes.
    rollup_config:
        Cube geometry; also enables in-memory rollups without a
        ``rollup_dir`` (nothing is persisted).
    predict_model:
        A loaded :class:`~repro.predict.model.Model`; mounts an
        :class:`~repro.predict.score.OnlineScorer` that re-scores every
        CE batch's nodes and raises ``predicted_failure`` alerts
        through the same exactly-once sink as the rule engine.  Its
        full feature state rides in the checkpoint, so kill/resume
        reproduces scores byte-identically.
    predict_rearm_s:
        Per-node re-arm window for ``predicted_failure`` alerts
        (event-time seconds).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        files: list | None = None,
        policy: IngestPolicy | str = IngestPolicy.REPAIR,
        checkpoint_dir: str | Path | None = None,
        alerts_out: str | Path | None = None,
        batch_bytes: int = 1 << 20,
        checkpoint_every: int = 1,
        rules: AlertRules | None = None,
        coalesce_options: CoalesceOptions | None = None,
        quarantine: bool = True,
        fast: bool = True,
        resume: bool = True,
        rollup_dir: str | Path | None = None,
        rollup_config: RollupConfig | None = None,
        predict_model=None,
        predict_rearm_s: float | None = None,
    ):
        if directory is None and not files:
            raise ValueError("need a directory or an explicit file list")
        self.policy = IngestPolicy.coerce(policy)
        self.batch_bytes = int(batch_bytes)
        self.checkpoint_every = max(int(checkpoint_every), 1)

        paths: list[Path] = []
        if directory is not None:
            paths.extend(discover_files(directory))
        for f in files or []:
            p = Path(f)
            if p not in paths:
                paths.append(p)
        by_family: dict[str, list[Path]] = {f: [] for f in _FAMILY_ORDER}
        for p in paths:
            spec = spec_for_path(p)
            if spec is None:
                raise ValueError(
                    f"{p}: file name does not identify a telemetry family "
                    "(expected ce.log, het.log, bmc*, or inventory*)"
                )
            by_family[spec.family].append(p)
        self.tailers: list[LogTailer] = [
            LogTailer(
                p, FAMILY_SPECS[family], self.policy,
                quarantine=quarantine, batch_bytes=self.batch_bytes,
                fast=fast,
            )
            for family in _FAMILY_ORDER
            for p in by_family[family]
        ]
        if not self.tailers:
            raise ValueError(
                f"{directory}: no tailable telemetry files found"
            )

        self.coalescer = OnlineCoalescer(coalesce_options)
        self.engine = AlertEngine(self.coalescer, rules)
        self.sink = AlertSink(alerts_out) if alerts_out is not None else None
        self.store = (
            CheckpointStore(checkpoint_dir)
            if checkpoint_dir is not None else None
        )
        self.rollup_dir = None if rollup_dir is None else Path(rollup_dir)
        self.rollups: RollupStore | None = None
        if rollup_dir is not None or rollup_config is not None:
            self.rollups = RollupStore(rollup_config)
            self.rollups.source = "stream"
            self.rollups.policy = self.policy.value
        self._rollup_version: int | None = None
        self.scorer = None
        if predict_model is not None:
            from repro.predict.score import OnlineScorer

            kwargs = {}
            if predict_rearm_s is not None:
                kwargs["rearm_s"] = predict_rearm_s
            self.scorer = OnlineScorer(predict_model, **kwargs)
        #: Live inventory view: {date: {(component, node, pos): serial}}.
        self.snapshots: dict[str, dict] = {}
        self.batches = 0
        self.alerts_total = 0

        if self.store is not None and resume:
            state = self.store.load()
            if state is not None:
                self._restore(state)
        elif self.sink is not None and self.sink.path.exists():
            # Fresh start: do not append after a previous run's alerts.
            self.sink.restore({"seq": 0, "offset": 0})

    # ------------------------------------------------------------------
    def step(self, eof_flush: bool = False) -> dict:
        """Poll every tailer once; returns a progress summary.

        ``progressed`` is False when no tailer consumed anything, in
        which case nothing changed (no batch counted, no checkpoint).
        """
        from repro import obs

        # Test/CI knob: slow every batch down so an external kill -9
        # lands mid-stream deterministically (fleet has the same knob).
        try:
            delay = float(os.environ.get("ASTRA_MEMREPRO_STREAM_DELAY_S", 0))
        except ValueError:
            delay = 0.0
        if delay > 0:
            time.sleep(delay)

        alerts: list[dict] = []
        consumed: dict[str, int] = {}
        progressed = False
        batch_id = self.batches
        with obs.span("stream.poll", transient=True):
            for tailer in self.tailers:
                family = tailer.spec.family
                with obs.span(f"stream.{family}", transient=True):
                    records = tailer.poll(eof_flush)
                if records is None:
                    continue
                progressed = True
                n = self._dispatch(family, records, alerts, batch_id)
                consumed[family] = consumed.get(family, 0) + n
                obs.count(f"stream.{family}.lines", n)
                obs.gauge(f"stream.{family}.lag_bytes", tailer.lag_bytes())
        if not progressed:
            return {"progressed": False, "consumed": {}, "alerts": []}
        if self.sink is not None:
            self.sink.emit(alerts)
        self.alerts_total += len(alerts)
        obs.count("stream.batches", 1)
        for alert in alerts:
            obs.count(f"stream.alerts.{alert['rule']}", 1)
        self.batches += 1
        if self.store is not None and self.batches % self.checkpoint_every == 0:
            self.checkpoint()
        return {"progressed": True, "consumed": consumed, "alerts": alerts}

    def _dispatch(
        self, family: str, records, alerts: list[dict], batch_id: int
    ) -> int:
        if family == "errors":
            created, touched = self.coalescer.add(records)
            if self.rollups is not None:
                self.rollups.update(records)
            alerts.extend(
                self.engine.observe_errors(records, created, touched, batch_id)
            )
            if self.scorer is not None:
                alerts.extend(
                    self.scorer.observe_errors(records, self.coalescer, batch_id)
                )
            return int(records.size)
        if family == "het":
            alerts.extend(self.engine.observe_het(records, batch_id))
            if self.scorer is not None:
                self.scorer.observe_het(records)
            return int(records.size)
        if family == "sensors":
            if self.rollups is not None:
                self.rollups.observe_sensors(records)
            alerts.extend(self.engine.observe_sensors(records, batch_id))
            if self.scorer is not None:
                self.scorer.observe_sensors(records)
            return int(records.size)
        # inventory: batches are either _SnapshotBatch (bulk apply) or
        # plain row lists, exactly as batch ingest consumes them.
        n = 0
        for batch in records:
            n += len(batch)
            if hasattr(batch, "apply"):
                batch.apply(self.snapshots)
            else:
                for date, key, serial in batch:
                    self.snapshots.setdefault(date, {})[key] = serial
        return n

    def run(
        self,
        max_batches: int | None = None,
        follow: bool = False,
        poll_interval: float = 1.0,
        progress=None,
    ) -> dict:
        """Drive steps until drained (or ``max_batches`` / forever).

        Without ``follow``, stops once no tailer makes progress, then
        performs one final EOF-flush step to consume any unterminated
        final lines.  With ``follow``, idles ``poll_interval`` seconds
        between empty polls and runs until interrupted (or until
        ``max_batches`` consuming steps happened).
        """
        steps = 0
        flushed = False
        while True:
            if max_batches is not None and steps >= max_batches:
                break
            summary = self.step(eof_flush=False)
            if summary["progressed"]:
                steps += 1
                if progress is not None:
                    progress(self, summary)
                continue
            if follow:
                try:
                    time.sleep(poll_interval)
                except KeyboardInterrupt:  # pragma: no cover
                    break
                continue
            # Drained: flush the (possibly unterminated) tail once.
            if flushed:
                break
            summary = self.step(eof_flush=True)
            flushed = True
            if summary["progressed"]:
                steps += 1
                if progress is not None:
                    progress(self, summary)
        return {"steps": steps}

    # ------------------------------------------------------------------
    def final_ingest(self) -> dict:
        """{family: IngestStats} as batch ingest would report them."""
        out = {}
        for tailer in self.tailers:
            stats = tailer.final_stats()
            if tailer.spec.family in out:
                # Multiple files of one family: merge the accounting.
                agg = out[tailer.spec.family]
                agg.seen += stats.seen
                agg.parsed += stats.parsed
                agg.repaired += stats.repaired
                agg.quarantined += stats.quarantined
                agg.fast_lines += stats.fast_lines
            else:
                out[tailer.spec.family] = stats
        return out

    def finalize(self) -> dict:
        """Flush sidecars, publish final stats, checkpoint, summarise."""
        from repro import obs

        for tailer in self.tailers:
            tailer.flush_quarantine()
        ingest = self.final_ingest()
        for stats in ingest.values():
            obs.record_ingest(stats)
        if self.rollups is not None:
            self.rollups.set_faults(self.coalescer.faults())
        if self.store is not None:
            self.checkpoint()
        elif self.rollups is not None and self.rollup_dir is not None:
            self._rollup_version = self.rollups.snapshot(self.rollup_dir)
        return {
            "batches": self.batches,
            "alerts": self.alerts_total,
            "faults": int(self.coalescer.n_groups),
            "mode_counts": self.coalescer.mode_counts(),
            "ingest": {f: s.to_dict() for f, s in ingest.items()},
            "rollups": None if self.rollups is None else {
                "errors": int(self.rollups.errors_seen),
                "faults": int(self.rollups.n_faults),
                "version": self._rollup_version,
                "dir": (
                    None if self.rollup_dir is None else str(self.rollup_dir)
                ),
            },
            "predictor": None if self.scorer is None else {
                "model_id": self.scorer.model.model_id,
                "scored_batches": int(self.scorer.scored_batches),
            },
        }

    # -- checkpoint (de)serialisation ----------------------------------
    def checkpoint(self) -> None:
        """Snapshot the rollups first, then the checkpoint naming them.

        Ordering is the crash-consistency contract: the cube snapshot
        version N is durable *before* the checkpoint that references it
        is written, and snapshot N-1 is retained, so whatever checkpoint
        survives a crash always names an intact snapshot.
        """
        state = self._state()
        if self.rollups is not None and self.rollup_dir is not None:
            self.rollups.set_faults(self.coalescer.faults())
            version = self.rollups.snapshot(self.rollup_dir)
            self._rollup_version = version
            state["rollups"] = {
                "dir": str(self.rollup_dir),
                "version": version,
                "errors_seen": int(self.rollups.errors_seen),
            }
        self.store.save(state)

    def _state(self) -> dict:
        lines_seen = sum(t.stats.seen for t in self.tailers)
        return {
            "policy": self.policy.value,
            "batch_bytes": self.batch_bytes,
            "batches": self.batches,
            "alerts_total": self.alerts_total,
            "files": [t.to_state() for t in self.tailers],
            "coalescer": self.coalescer.to_state(),
            "alert_engine": self.engine.to_state(),
            "alert_sink": None if self.sink is None else self.sink.to_state(),
            "snapshots": [
                [date, [[c, n, p, s] for (c, n, p), s in sorted(snap.items())]]
                for date, snap in sorted(self.snapshots.items())
            ],
            "metrics": {
                "lines_seen": lines_seen,
                "alerts_emitted": self.alerts_total,
                "faults_live": int(self.coalescer.n_groups),
            },
            "rollups": None,
            "predictor": (
                None if self.scorer is None else self.scorer.to_state()
            ),
        }

    def _restore(self, state: dict) -> None:
        if state["policy"] != self.policy.value:
            raise CheckpointError(
                f"checkpoint policy mismatch: found {state['policy']!r}, "
                f"expected {self.policy.value!r}; hint: rerun with "
                f"--ingest-policy {state['policy']}, or start over with "
                "--no-resume"
            )
        if int(state["batch_bytes"]) != self.batch_bytes:
            raise CheckpointError(
                "checkpoint batch_bytes mismatch: found "
                f"{state['batch_bytes']}, expected {self.batch_bytes} "
                "(batch boundaries would diverge); hint: rerun with "
                f"--batch-bytes {state['batch_bytes']}, or start over "
                "with --no-resume"
            )
        by_path = {str(t.path): t for t in self.tailers}
        for file_state in state["files"]:
            tailer = by_path.get(file_state["path"])
            if tailer is None:
                raise CheckpointError(
                    f"checkpoint tracks {file_state['path']!r} which this "
                    "pipeline does not tail"
                )
            tailer.restore(file_state)
        self.coalescer = OnlineCoalescer.from_state(state["coalescer"])
        self.engine.coalescer = self.coalescer
        self.engine.restore(state["alert_engine"])
        if self.sink is not None and state["alert_sink"] is not None:
            self.sink.restore(state["alert_sink"])
        self.snapshots = {
            date: {(c, int(n), int(p)): s for c, n, p, s in rows}
            for date, rows in state["snapshots"]
        }
        self.batches = int(state["batches"])
        self.alerts_total = int(state["alerts_total"])
        self._restore_rollups(state.get("rollups"))
        self._restore_predictor(state.get("predictor"))

    def _restore_rollups(self, saved: dict | None) -> None:
        if self.rollups is None:
            if saved is not None:
                raise CheckpointError(
                    "checkpoint rollup mismatch: found rollup snapshot "
                    f"version {saved['version']} (dir {saved['dir']!r}), "
                    "expected none; hint: resume with --rollups-dir "
                    f"{saved['dir']} or start over with --no-resume"
                )
            return
        if saved is None:
            raise CheckpointError(
                "checkpoint rollup mismatch: found no rollup snapshot in "
                f"the checkpoint, expected one for {self.rollup_dir}; "
                "hint: resume without --rollups-dir, or start over with "
                "--no-resume"
            )
        directory = self.rollup_dir if self.rollup_dir is not None \
            else Path(saved["dir"])
        loaded = RollupStore.load(
            directory, version=int(saved["version"]),
            config=self.rollups.config,
        )
        if loaded.errors_seen != self.coalescer.errors_seen:
            raise CheckpointError(
                "checkpoint rollup mismatch: snapshot version "
                f"{saved['version']} holds {loaded.errors_seen} errors, "
                f"expected {self.coalescer.errors_seen} (the coalescer's); "
                "hint: the rollup directory belongs to a different run -- "
                "start over with --no-resume"
            )
        loaded.source = "stream"
        loaded.policy = self.policy.value
        self.rollups = loaded
        self._rollup_version = int(saved["version"])

    def _restore_predictor(self, saved: dict | None) -> None:
        if self.scorer is None:
            if saved is not None:
                raise CheckpointError(
                    "checkpoint predictor mismatch: found scorer state for "
                    f"model {saved['model_id']}, expected none; hint: "
                    "resume with --predict and the same --model, or start "
                    "over with --no-resume"
                )
            return
        if saved is None:
            raise CheckpointError(
                "checkpoint predictor mismatch: found no scorer state in "
                f"the checkpoint, expected model "
                f"{self.scorer.model.model_id}; hint: resume without "
                "--predict, or start over with --no-resume"
            )
        from repro.predict.errors import PredictError

        try:
            self.scorer.restore(saved)
        except PredictError as exc:
            # Same found/expected + hint text, surfaced through the
            # checkpoint error type every resume caller already handles.
            raise CheckpointError(str(exc)) from exc


def faults_snapshot(pipeline: StreamPipeline) -> np.ndarray:
    """The pipeline's live fault array (batch-identical on completion)."""
    return pipeline.coalescer.faults()
