"""Crash-safe snapshots of the streaming pipeline's state.

One checkpoint is one JSON document holding everything needed to resume
exactly where a killed pipeline stopped: per-file byte offsets and line
numbers, raw per-family :class:`~repro.logs.ingest.IngestStats` plus
the deferred re-sort accounting, the online coalescer's group state,
the alert engine's rule state and the alert sink's position, and the
pipeline's own counters.  Resuming from it replays nothing: bytes
before the stored offsets are never re-read, so no record is
double-counted and no alert fires twice.

Writes are atomic: the document lands in a ``.tmp`` sibling first and
is renamed over ``checkpoint.json`` with :func:`os.replace`, so a crash
mid-write leaves the previous checkpoint intact.  The schema is
versioned; loading a checkpoint from a different schema (or a corrupt
file) raises :class:`CheckpointError` rather than resuming from
garbage.  The document layout is validated in CI against
``schemas/checkpoint.schema.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro._util import fsync_dir

#: Bump on any change to the checkpoint document layout.
CHECKPOINT_SCHEMA_VERSION = 1

CHECKPOINT_NAME = "checkpoint.json"


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded (corrupt, or wrong schema)."""


class CheckpointStore:
    """Atomic, versioned checkpoint persistence in one directory."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, state: dict) -> Path:
        """Atomically persist ``state``; returns the checkpoint path.

        Crash-ordering invariant: (1) the temp file's *data* is fsynced
        before the rename, so the rename can never expose a
        half-written document; (2) the *directory* is fsynced after the
        rename, so a power cut cannot roll the rename itself back and
        resurface the previous checkpoint after the caller was told the
        new one is durable.  Either order alone leaves a window where
        resume-after-crash replays records the pipeline already
        acknowledged.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {"schema_version": CHECKPOINT_SCHEMA_VERSION, **state}
        tmp = self.path.with_suffix(".json.tmp")
        payload = json.dumps(doc, indent=1)
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fsync_dir(self.directory)
        return self.path

    def load(self) -> dict | None:
        """The current checkpoint document, or None when none exists."""
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path}: corrupt checkpoint ({exc})"
            ) from exc
        if not isinstance(doc, dict):
            raise CheckpointError(
                f"{self.path}: checkpoint must be a JSON object"
            )
        version = doc.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"{self.path}: checkpoint schema_version mismatch: found "
                f"{version!r}, expected {CHECKPOINT_SCHEMA_VERSION}; hint: "
                "start over with --no-resume (or delete the checkpoint "
                "directory) -- checkpoints do not migrate across schemas"
            )
        return doc
