"""Streaming telemetry: incremental ingest, online coalescing, alerting.

The batch pipeline answers "what happened over eight months"; this
package answers "what is happening now".  It tails append-only log
files as they grow, maintains live per-DIMM fault state that is
*differentially identical* to the batch coalescer when a campaign is
streamed to completion, snapshots everything to crash-safe checkpoints,
and evaluates a small alert-rule catalog over the live state.

Pieces (DESIGN.md section 10):

- :mod:`repro.stream.tailer` -- offset-tracked incremental readers over
  growing files, reusing the vectorised fast path for complete lines
  and holding back partial trailing lines;
- :mod:`repro.stream.online_coalesce` -- the incremental error-to-fault
  coalescer;
- :mod:`repro.stream.checkpoint` -- atomic, versioned snapshots of the
  whole pipeline state;
- :mod:`repro.stream.alerts` -- the rule engine and JSONL alert sink;
- :mod:`repro.stream.pipeline` -- the loop tying them together, driven
  by the ``astra-memrepro stream`` CLI verb.
"""

from repro.stream.alerts import AlertEngine, AlertRules, AlertSink
from repro.stream.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointStore,
)
from repro.stream.online_coalesce import OnlineCoalescer
from repro.stream.pipeline import StreamPipeline, discover_files, faults_snapshot
from repro.stream.tailer import FAMILY_SPECS, LogTailer, TailError

__all__ = [
    "AlertEngine",
    "AlertRules",
    "AlertSink",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "FAMILY_SPECS",
    "LogTailer",
    "OnlineCoalescer",
    "StreamPipeline",
    "TailError",
    "discover_files",
    "faults_snapshot",
]
