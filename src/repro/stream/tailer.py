"""Offset-tracked incremental readers over growing telemetry files.

A :class:`LogTailer` owns one append-only log file and one family's
parsing machinery.  Each :meth:`~LogTailer.poll` reads the bytes
appended since the last poll, cuts the read at the final line
terminator (a partial trailing line stays on disk, unconsumed, until
its newline arrives), and runs the complete region through exactly the
same two-gear machinery batch ingest uses: the vectorised fast path of
:func:`repro.logs.ingest.ingest_stream_fast` with per-line
``ingest_one`` fallback, or the pure per-line gear when
``ASTRA_MEMREPRO_SLOW_INGEST`` forces it.  Policies, line numbers,
quarantine entries and :class:`~repro.logs.ingest.IngestStats` are
byte-for-byte what a batch ingest of the same file would have produced
-- the differential suite holds the tailer to that.

The one batch behaviour that cannot run incrementally is the ``repair``
policy's out-of-order re-sort: it needs the whole stream.  The tailer
instead tracks, per record, the margin by which it arrived behind the
running time maximum, and :meth:`~LogTailer.final_stats` applies the
batch path's exact tolerance arithmetic at the end, so the final
accounting still matches (live consumers -- the online coalescer, the
alert rules -- are arrival-order-insensitive by design).

Family specifics (parser, repairer, fast-path chunk parser, container
type, header handling) come from the :data:`FAMILY_SPECS` registry.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.faults.types import empty_errors
from repro.logs import bmc, het, inventory, syslog
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    MalformedRecordError,
    Quarantine,
    fastpath_enabled,
    ingest_one,
    ingest_stream_fast,
)
from repro.machine.sensors import NodeSensorComplement
from repro.synth.het import HET_DTYPE


class TailError(RuntimeError):
    """A tailed file did something an append-only log must not.

    Raised when a file shrinks below the consumed offset (rotation or
    truncation), which would silently desynchronise line numbers and
    offsets; the operator must restart the tailer (or resume from a
    checkpoint taken before the rotation).
    """


def _concat_arrays(empty):
    def concat(batches: list) -> np.ndarray:
        batches = [b for b in batches if len(b)]
        if not batches:
            return empty(0)
        if len(batches) == 1:
            return batches[0]
        return np.concatenate(batches)
    return concat


def _bmc_parse_line():
    name_to_idx = {
        name: i for i, name in enumerate(NodeSensorComplement().names)
    }

    def parse(line: str) -> tuple:
        return bmc._parse_sample_line(line, name_to_idx)

    return parse


@dataclass(frozen=True)
class FamilySpec:
    """Everything the tailer needs to ingest one record family."""

    family: str
    #: Build the per-line parser (factories, because some parsers close
    #: over machine vocabulary built at ingest time).
    make_parse_line: callable
    #: Build the repair callable used under ``repair`` (None: the
    #: family has no salvageable partial form, repair behaves as skip).
    make_repair_line: callable | None
    #: Build the fast-path column parser for ``ingest_stream_fast``.
    make_fast_chunk: callable
    #: Lift fallback rows into the family's container type.
    rows_to_records: callable
    #: Merge per-block containers into one poll result.
    concat: callable
    #: The file opens with a ``timestamp,...`` header line (BMC CSV).
    has_header: bool = False
    #: Records carry a ``time`` field the repair policy re-sorts on.
    time_ordered: bool = True


def _sensors_empty(n: int) -> np.ndarray:
    return np.zeros(n, dtype=bmc.SENSOR_SAMPLE_DTYPE)


def _het_empty(n: int) -> np.ndarray:
    return np.zeros(n, dtype=HET_DTYPE)


#: Registry of tailable text families, keyed by family name.
FAMILY_SPECS: dict[str, FamilySpec] = {
    "errors": FamilySpec(
        family="errors",
        make_parse_line=lambda: syslog._parse_line,
        make_repair_line=lambda: syslog._repair_line,
        make_fast_chunk=lambda: syslog._fast_ce_chunk,
        rows_to_records=syslog._rows_to_array,
        concat=_concat_arrays(empty_errors),
    ),
    "het": FamilySpec(
        family="het",
        make_parse_line=lambda: het._parse_line,
        make_repair_line=lambda: het._repair_line,
        make_fast_chunk=lambda: het._fast_het_chunk,
        rows_to_records=het._rows_to_het,
        concat=_concat_arrays(_het_empty),
    ),
    "sensors": FamilySpec(
        family="sensors",
        make_parse_line=_bmc_parse_line,
        make_repair_line=None,
        make_fast_chunk=lambda: bmc._make_fast_bmc_chunk(
            NodeSensorComplement().names
        ),
        rows_to_records=bmc._rows_to_samples,
        concat=_concat_arrays(_sensors_empty),
        has_header=True,
    ),
    "inventory": FamilySpec(
        family="inventory",
        make_parse_line=lambda: inventory._parse_snapshot_line,
        make_repair_line=None,
        make_fast_chunk=lambda: inventory._fast_snapshot_chunk,
        rows_to_records=list,
        # Inventory batches stay as-is: _SnapshotBatch carries a bulk
        # dict-insertion path the consumer wants to keep using.
        concat=lambda batches: [b for b in batches if len(b)],
        time_ordered=False,
    ),
}


def spec_for_path(path: str | Path) -> FamilySpec | None:
    """Map a telemetry file name to its family spec (None: not ours)."""
    name = Path(path).name
    if name.endswith(".quarantine"):
        return None
    if name == "ce.log":
        return FAMILY_SPECS["errors"]
    if name == "het.log":
        return FAMILY_SPECS["het"]
    if name.startswith("bmc"):
        return FAMILY_SPECS["sensors"]
    if name.startswith("inventory"):
        return FAMILY_SPECS["inventory"]
    return None


class _NamedBytesIO(io.BytesIO):
    """BytesIO carrying the tailed file's name, so strict-mode errors
    and quarantine sources point at the real path, not ``<stream>``."""

    def __init__(self, data: bytes, name: str):
        super().__init__(data)
        self.name = name


class LogTailer:
    """Incrementally ingest one growing log file.

    Parameters
    ----------
    path:
        The file to tail; it may not exist yet (polls return None until
        it appears).
    spec:
        Family machinery, usually from :data:`FAMILY_SPECS`.
    policy:
        Ingest policy, exactly as batch ingest interprets it.
    quarantine:
        Collect unparseable lines for the ``<path>.quarantine`` sidecar
        (written by :meth:`flush_quarantine`, not on every poll).
    batch_bytes:
        Target bytes consumed per poll.  Reads extend past this only
        when no line terminator fits inside it.
    """

    def __init__(
        self,
        path: str | Path,
        spec: FamilySpec,
        policy: IngestPolicy | str = IngestPolicy.REPAIR,
        quarantine: bool = True,
        batch_bytes: int = 1 << 20,
        fast: bool = True,
    ):
        if batch_bytes < 1:
            raise ValueError("batch_bytes must be positive")
        self.path = Path(path)
        self.spec = spec
        self.policy = IngestPolicy.coerce(policy)
        self.batch_bytes = int(batch_bytes)
        self.fast = bool(fast)
        self.stats = IngestStats(family=spec.family, source="text")
        self.quarantine = Quarantine(self.path) if quarantine else None
        self._parse = spec.make_parse_line()
        self._repair = (
            spec.make_repair_line()
            if spec.make_repair_line is not None
            and self.policy is IngestPolicy.REPAIR
            else None
        )
        self._fast_chunk = spec.make_fast_chunk()
        #: Bytes of the file fully consumed (always a line boundary,
        #: except for the held-back partial tail which is simply not
        #: consumed yet).
        self.offset = 0
        #: Line number the next consumed line will carry.
        self.line_no = 1
        self.header_done = not spec.has_header
        # Deferred repair-policy re-sort accounting: the margin by
        # which each record arrived behind the running time maximum,
        # plus the running maxima the batch tolerance derives from.
        self._time_cummax: float | None = None
        self._time_max_abs = 0.0
        self._late_margins: list[float] = []

    # ------------------------------------------------------------------
    def lag_bytes(self) -> int:
        """Unconsumed bytes currently sitting in the file."""
        try:
            return max(self.path.stat().st_size - self.offset, 0)
        except FileNotFoundError:
            return 0

    def _read_region(self, eof_flush: bool) -> tuple[bytes, int] | None:
        """Read the next consumable region; None when nothing is ready.

        Returns ``(region, consumed)`` where ``region`` ends at a line
        terminator unless ``eof_flush`` forced out an unterminated
        final line.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            # Batch parity: a file that never appeared reports missing.
            if self.offset == 0 and self.stats.seen == 0:
                self.stats.missing = True
            return None
        if size < self.offset:
            raise TailError(
                f"{self.path}: file shrank below consumed offset "
                f"({size} < {self.offset}); rotated or truncated? "
                "To recover, restore the pre-rotation checkpoint (or "
                "delete the checkpoint directory to re-ingest from the "
                "start of the current file)."
            )
        self.stats.missing = False
        if size == self.offset:
            return None
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            data = fh.read(self.batch_bytes)
            # A line longer than batch_bytes must still be consumable:
            # keep doubling the read until a terminator shows up.
            want = self.batch_bytes
            while (
                b"\n" not in data and b"\r" not in data
                and self.offset + len(data) < size
            ):
                want *= 2
                more = fh.read(want)
                if not more:
                    break
                data += more
        at_eof = self.offset + len(data) >= size
        flush = eof_flush and at_eof
        # A trailing \r may be the first half of a split \r\n pair, so
        # it cannot terminate a line yet -- unless we are flushing at
        # EOF, where text mode would translate it to a newline.
        search = data[:-1] if data.endswith(b"\r") and not flush else data
        if flush:
            return (data, len(data)) if data else None
        cut = max(search.rfind(b"\n"), search.rfind(b"\r"))
        if cut < 0:
            return None
        return data[: cut + 1], cut + 1

    def _take_header(self, region: bytes) -> tuple[bytes, int]:
        """Consume (or judge) the leading header line of a BMC CSV."""
        nl = region.find(b"\n")
        cr = region.find(b"\r")
        end = min(x for x in (nl, cr, len(region)) if x >= 0)
        header = region[:end]
        if header.startswith(b"timestamp,"):
            tlen = 2 if region[end : end + 2] == b"\r\n" else 1
            skip = min(end + tlen, len(region))
            self.header_done = True
            return region[skip:], skip
        if self.policy is IngestPolicy.STRICT:
            raise MalformedRecordError(
                "sensors", self.path, 1,
                header.decode("utf-8").strip(), "missing header",
            )
        # Lenient: the first line is data (it will fail to parse and be
        # quarantined, keeping it in the accounting -- batch behaviour).
        self.header_done = True
        return region, 0

    def _track_order(self, records) -> None:
        """Accumulate deferred re-sort accounting for this poll."""
        if (
            self.policy is not IngestPolicy.REPAIR
            or not self.spec.time_ordered
            or not isinstance(records, np.ndarray)
            or records.size == 0
        ):
            return
        times = records["time"]
        prefix = np.maximum.accumulate(times)
        before = np.empty_like(prefix)
        before[0] = self._time_cummax if self._time_cummax is not None else -np.inf
        before[1:] = prefix[:-1]
        np.maximum(before, before[0], out=before)  # carry-in vs prefix
        margins = before - times
        late = margins > 0
        if late.any():
            self._late_margins.extend(margins[late].tolist())
        self._time_cummax = float(max(before[-1], times[-1]))
        self._time_max_abs = max(
            self._time_max_abs, float(np.max(np.abs(times)))
        )

    def poll(self, eof_flush: bool = False):
        """Consume newly appended complete lines; returns the records.

        Returns ``None`` when nothing new was consumable (file absent,
        unchanged, or holding only a partial line).  ``eof_flush``
        additionally consumes an unterminated final line -- batch
        parity for a file that will not grow any more.
        """
        got = self._read_region(eof_flush)
        if got is None:
            return None
        region, consumed = got
        if not self.header_done:
            region, _ = self._take_header(region)
        self.offset += consumed
        if not region:
            return self.spec.concat([])
        translated = region.replace(b"\r\n", b"\n").replace(b"\r", b"\n")
        n_lines = translated.count(b"\n")
        if not translated.endswith(b"\n"):
            n_lines += 1  # eof-flushed unterminated final line

        if fastpath_enabled(self.fast):
            fh = _NamedBytesIO(region, str(self.path))
            batches = list(
                ingest_stream_fast(
                    fh, self._parse, self.stats, self.policy,
                    self.quarantine, self._repair,
                    fast_chunk=self._fast_chunk,
                    rows_to_records=self.spec.rows_to_records,
                    first_line_no=self.line_no,
                )
            )
        else:
            # Mirror ingest_lines exactly, with our running line_no.
            lines = translated.decode("utf-8").split("\n")
            if lines and lines[-1] == "":
                lines.pop()
            rows = []
            source = str(self.path)
            for ln, raw in enumerate(lines, self.line_no):
                line = raw.strip()
                if not line:
                    continue
                row = ingest_one(
                    ln, line, self._parse, self.stats, self.policy,
                    self.quarantine, self._repair, source,
                )
                if row is not None:
                    rows.append(row)
            batches = [self.spec.rows_to_records(rows)]
        self.line_no += n_lines
        records = self.spec.concat(batches)
        self._track_order(records)
        return records

    # ------------------------------------------------------------------
    def final_stats(self) -> IngestStats:
        """Stats as batch ingest would report them at this point.

        Applies the deferred ``repair`` re-sort accounting with the
        batch path's exact tolerance (one ulp of the largest time
        magnitude seen); the live ``stats`` attribute is left raw so
        polling can continue.
        """
        out = replace(self.stats)
        if self.policy is IngestPolicy.REPAIR and self._late_margins:
            tol = np.finfo(np.float64).eps * max(self._time_max_abs, 1.0)
            out_of_order = sum(1 for m in self._late_margins if m > tol)
            moved = min(out_of_order, out.parsed)
            out.parsed -= moved
            out.repaired += moved
        out.check_invariant()
        return out

    def flush_quarantine(self) -> Path | None:
        """(Re)write the sidecar from all entries so far; idempotent."""
        if self.quarantine is None:
            return None
        return self.quarantine.flush()

    # -- checkpoint (de)serialisation ----------------------------------
    def to_state(self) -> dict:
        s = self.stats
        return {
            "path": str(self.path),
            "family": self.spec.family,
            "offset": self.offset,
            "line_no": self.line_no,
            "header_done": self.header_done,
            "stats": {
                "seen": s.seen, "parsed": s.parsed,
                "repaired": s.repaired, "quarantined": s.quarantined,
                "missing": s.missing, "source": s.source,
                "fast_lines": s.fast_lines,
            },
            "order": {
                "cummax": self._time_cummax,
                "max_abs": self._time_max_abs,
                "margins": self._late_margins,
            },
            "quarantine": (
                [list(e) for e in self.quarantine.entries]
                if self.quarantine is not None else None
            ),
        }

    def restore(self, state: dict) -> None:
        if state["family"] != self.spec.family:
            raise ValueError(
                f"checkpoint family {state['family']!r} does not match "
                f"tailer family {self.spec.family!r}"
            )
        self.offset = int(state["offset"])
        self.line_no = int(state["line_no"])
        self.header_done = bool(state["header_done"])
        st = state["stats"]
        self.stats = IngestStats(
            family=self.spec.family, seen=int(st["seen"]),
            parsed=int(st["parsed"]), repaired=int(st["repaired"]),
            quarantined=int(st["quarantined"]), missing=bool(st["missing"]),
            source=str(st["source"]), fast_lines=int(st["fast_lines"]),
        )
        order = state["order"]
        self._time_cummax = order["cummax"]
        self._time_max_abs = float(order["max_abs"])
        self._late_margins = [float(m) for m in order["margins"]]
        if self.quarantine is not None:
            self.quarantine.entries = [
                (int(ln), reason, line)
                for ln, reason, line in (state["quarantine"] or [])
            ]
