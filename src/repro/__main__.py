"""``python -m repro`` -- the same entry point as the installed CLI.

The serve tests and the bench harness spawn the server as a subprocess
with ``sys.executable -m repro serve ...`` so they never depend on the
console script being on PATH.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
