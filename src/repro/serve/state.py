"""Warm request-serving state behind ``repro serve``.

Everything a request can ask for is computed *once* -- at startup or on
the first append to a watched file -- and then served from memory:

- the model artifact is loaded through the CRC-guarded
  :meth:`repro.predict.model.Model.load` (a damaged file is refused
  before the server ever binds its port);
- the campaign's CE/HET records are folded into per-node risk scores a
  single time, producing a sorted score table that answers both
  point lookups (``/v1/risk``) and top-k (``/v1/risk/top``) without
  ever touching the logs again;
- the alerts JSONL is tailed incrementally -- a cached byte offset
  means each refresh parses only the bytes appended since the last
  request, never the whole file;
- rollup queries pass straight through to the read-optimized
  :func:`repro.query.execute` over an in-memory
  :class:`~repro.query.rollup.RollupStore`.

The state object itself is synchronous and cheap per-request; the
asyncio front door in :mod:`repro.serve.server` calls into it directly
on the event loop.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.predict.errors import PredictError
from repro.predict.model import Model
from repro.predict.score import score_records

#: Version of every serve response envelope
#: (``schemas/serve.schema.json``).
SERVE_SCHEMA_VERSION = 1


class ServeError(RuntimeError):
    """A request asked for something this server cannot answer."""


class NotFound(ServeError):
    """The requested entity does not exist."""


class _AlertTail:
    """Incremental JSONL alert reader with a cached byte offset.

    ``refresh`` reads only the bytes appended since the previous call
    and keeps any trailing partial line buffered for the next round, so
    a live ``repro stream --alerts-out`` file can be tailed while it is
    still being written.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self.offset = 0
        self._partial = b""
        self.alerts: list[dict] = []

    def refresh(self) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size < self.offset:
            # Truncated (exactly-once resume rewound it): start over.
            self.offset = 0
            self._partial = b""
            self.alerts = []
        if size == self.offset:
            return
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            chunk = fh.read(size - self.offset)
        self.offset = size
        buf = self._partial + chunk
        lines = buf.split(b"\n")
        self._partial = lines.pop()
        for line in lines:
            line = line.strip()
            if line:
                self.alerts.append(json.loads(line))


class ServeState:
    """All warm state behind the HTTP front door."""

    def __init__(
        self,
        model: Model,
        nodes: np.ndarray,
        scores: np.ndarray,
        *,
        rollups=None,
        alerts: _AlertTail | None = None,
        source: dict | None = None,
    ):
        self.model = model
        self.nodes = nodes
        self.scores = scores
        self.rollups = rollups
        self._alerts = alerts
        self.source = dict(source or {})
        self.requests = 0
        #: raw query params -> answer envelope.  The rollup store never
        #: mutates while serving, so repeated queries are pure lookups.
        self._query_cache: dict[tuple, dict] = {}
        #: node id -> row in the score table.
        self._row = {int(n): i for i, n in enumerate(nodes.tolist())}
        #: rows sorted by (-score, node): the top-k order, precomputed.
        self._top_order = np.lexsort((nodes, -scores))

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model_path,
        directory=None,
        *,
        rollups_dir=None,
        alerts_path=None,
        policy: str | None = None,
        jobs: int = 0,
    ) -> "ServeState":
        """Load the model, fold the campaign once, attach side feeds.

        ``directory`` is a campaign log directory; omitting it serves an
        empty risk table (health/alerts/query endpoints still work).
        """
        from repro import obs

        with obs.span("serve.load_model", transient=True):
            model = Model.load(model_path)

        nodes = np.zeros(0, dtype=np.int64)
        scores = np.zeros(0, dtype=np.float64)
        source: dict = {"model": str(model_path)}
        if directory is not None:
            from repro.logs.campaign_io import load_campaign_records

            with obs.span("serve.fold", transient=True):
                records = load_campaign_records(directory, policy=policy)
                nodes, scores = score_records(
                    records.errors, records.het, model, jobs=jobs
                )
            source.update(
                {
                    "directory": str(directory),
                    "seed": records.seed,
                    "scale": records.scale,
                    "n_errors": int(records.errors.size),
                    "n_het": int(records.het.size),
                }
            )
            obs.count("serve.nodes_scored", nodes.size)

        rollups = None
        if rollups_dir is None and directory is not None:
            candidate = Path(directory) / "rollups"
            if candidate.is_dir():
                rollups_dir = candidate
        if rollups_dir is not None:
            from repro.query import RollupStore

            with obs.span("serve.load_rollups", transient=True):
                rollups = RollupStore.load(rollups_dir)
            source["rollups"] = str(rollups_dir)

        tail = None
        if alerts_path is not None:
            tail = _AlertTail(Path(alerts_path))
            tail.refresh()
            source["alerts"] = str(alerts_path)

        return cls(
            model, nodes, scores, rollups=rollups, alerts=tail, source=source
        )

    # -- endpoints -----------------------------------------------------
    def envelope(self, **body) -> dict:
        return {"schema_version": SERVE_SCHEMA_VERSION, **body}

    def health(self) -> dict:
        return self.envelope(
            status="ok",
            model_id=self.model.model_id,
            nodes_scored=int(self.nodes.size),
            pid=os.getpid(),
        )

    def risk(self, node: int) -> dict:
        """Point lookup: the warm score of one node."""
        row = self._row.get(int(node))
        if row is None:
            # A node the campaign never saw errors from still has a
            # geometry-checked answer: no CE history means the model's
            # floor score, reported as not-at-risk.
            self.model.check_nodes([int(node)])
            return self.envelope(
                node=int(node), score=0.0, at_risk=False, observed=False,
                threshold=float(self.model.threshold),
                model_id=self.model.model_id,
            )
        score = float(self.scores[row])
        return self.envelope(
            node=int(node),
            score=score,
            at_risk=score >= self.model.threshold,
            observed=True,
            threshold=float(self.model.threshold),
            model_id=self.model.model_id,
        )

    def top(self, k: int) -> dict:
        """The k highest-risk nodes, ties broken by node id."""
        if k <= 0:
            raise ServeError("k must be positive")
        rows = self._top_order[:k]
        t = float(self.model.threshold)
        return self.envelope(
            k=int(k),
            threshold=t,
            model_id=self.model.model_id,
            nodes=[
                {
                    "node": int(self.nodes[r]),
                    "score": float(self.scores[r]),
                    "at_risk": bool(self.scores[r] >= t),
                }
                for r in rows.tolist()
            ],
        )

    def alerts_since(self, since: int = -1, limit: int = 100) -> dict:
        """Alerts with ``seq > since``, oldest first, capped at limit."""
        if self._alerts is None:
            raise NotFound(
                "no alert feed attached; hint: start the server with "
                "--alerts pointing at a stream --alerts-out file"
            )
        if limit <= 0:
            raise ServeError("limit must be positive")
        self._alerts.refresh()
        alerts = self._alerts.alerts
        # seq is dense and ascending, so the first match is at most
        # since+1 rows in; start from that guess and nudge, instead of
        # scanning the whole cache.
        lo = 0
        if since >= 0:
            lo = min(since + 1, len(alerts))
            while lo > 0 and alerts[lo - 1]["seq"] > since:
                lo -= 1
            while lo < len(alerts) and alerts[lo]["seq"] <= since:
                lo += 1
        window = alerts[lo : lo + limit]
        return self.envelope(
            since=int(since),
            limit=int(limit),
            total=len(alerts),
            alerts=window,
        )

    def query(self, params: dict) -> dict:
        """Rollup passthrough: cube-served, zero rescan."""
        from repro.query import Query, QueryError, execute

        if self.rollups is None:
            raise NotFound(
                "no rollups attached; hint: start the server with "
                "--rollups (or serve a campaign directory that has a "
                "rollups/ snapshot)"
            )
        cache_key = tuple(sorted(params.items()))
        cached = self._query_cache.get(cache_key)
        if cached is not None:
            return cached
        params = dict(params)
        select = params.pop("select", None)
        if select is None:
            raise ServeError("query needs select=; hint: one of errors, "
                             "faults, mode_errors, ce_windows, dropout")
        group_by = tuple(
            d for d in params.pop("group_by", "").split(",") if d
        )
        top_k = params.pop("top_k", None)
        where: dict = {}
        for key in ("rack", "slot", "node"):
            if key in params:
                where[key] = [int(v) for v in params.pop(key).split(",")]
        if "mode" in params:
            where["mode"] = params.pop("mode").split(",")
        for key in ("since", "until"):
            if key in params:
                where[key] = float(params.pop(key))
        if params:
            raise ServeError(
                f"unknown query params {sorted(params)}; hint: select, "
                f"group_by, top_k, rack, slot, node, mode, since, until"
            )
        try:
            q = Query(
                select,
                group_by=group_by,
                where=where,
                top_k=None if top_k is None else int(top_k),
            )
            answer = execute(self.rollups, q)
        except QueryError as exc:
            raise ServeError(str(exc)) from exc
        doc = self.envelope(answer=answer)
        if len(self._query_cache) < 4096:
            self._query_cache[cache_key] = doc
        return doc

    def stats(self) -> dict:
        return self.envelope(
            model_id=self.model.model_id,
            threshold=float(self.model.threshold),
            nodes_scored=int(self.nodes.size),
            nodes_at_risk=int((self.scores >= self.model.threshold).sum()),
            alerts_cached=(
                None if self._alerts is None else len(self._alerts.alerts)
            ),
            rollups=self.rollups is not None,
            requests=self.requests,
            source=self.source,
        )


__all__ = [
    "SERVE_SCHEMA_VERSION",
    "NotFound",
    "ServeError",
    "ServeState",
]
