"""The asyncio front door: a stdlib HTTP/1.1 server over ServeState.

``asyncio.start_server`` gives one coroutine per connection;
keep-alive is honoured so a load generator can push many requests down
each socket.  Request handling itself is synchronous against the warm
:class:`~repro.serve.state.ServeState` -- every endpoint is a dict
lookup or a cube slice, so there is nothing worth awaiting -- which
keeps responses strictly ordered per connection.

Routes (all ``GET``):

- ``/healthz`` -- liveness + model identity
- ``/v1/risk?node=N`` -- one node's warm score
- ``/v1/risk/top?k=K`` -- the K highest-risk nodes
- ``/v1/alerts?since=SEQ&limit=N`` -- incremental alert feed
- ``/v1/query?select=...`` -- rollup cube passthrough
- ``/v1/stats`` -- serving counters + provenance

Errors are always JSON: 400 for a bad request, 404 for an unknown
route/entity, 405 for a non-GET method, 500 (with the exception class,
not a traceback) if a handler blows up -- the chaos tests assert that a
client sees a clean status line, never a hung or half-written socket.

``port=0`` binds an ephemeral port; pass ``ready_file`` to have the
bound address written as JSON once the server is accepting, which is
how the bench harness and the tests discover the port race-free.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from pathlib import Path
from urllib.parse import parse_qsl, urlsplit

from repro.predict.errors import PredictError
from repro.serve.state import (
    SERVE_SCHEMA_VERSION,
    NotFound,
    ServeError,
    ServeState,
)

_MAX_REQUEST_BYTES = 16384


def _json_bytes(doc: dict) -> bytes:
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode()


def _response(status: int, reason: str, body: bytes, keep_alive: bool) -> bytes:
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode() + body


def _error_body(status: int, message: str) -> bytes:
    # Errors ride the same envelope as success bodies, so one schema
    # (schemas/serve.schema.json) validates anything the server says.
    return _json_bytes(
        {
            "schema_version": SERVE_SCHEMA_VERSION,
            "error": {"status": status, "message": message},
        }
    )


class Server:
    """Lifecycle wrapper: bind, serve, drain, close."""

    def __init__(
        self,
        state: ServeState,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_file=None,
    ):
        self.state = state
        self.host = host
        self.port = port
        self.ready_file = None if ready_file is None else Path(ready_file)
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    def _single_param(self, params: dict, name: str, default=None) -> str:
        value = params.get(name, default)
        if value is None:
            raise ServeError(f"missing required parameter {name!r}")
        return value

    def handle(self, method: str, target: str) -> tuple[int, str, bytes]:
        """Route one request; returns (status, reason, body bytes)."""
        self.state.requests += 1
        parts = urlsplit(target)
        path = parts.path
        params = dict(parse_qsl(parts.query))
        try:
            if method != "GET":
                return 405, "Method Not Allowed", _error_body(
                    405, f"{method} not supported; all endpoints are GET"
                )
            if path == "/healthz":
                doc = self.state.health()
            elif path == "/v1/risk":
                node = self._single_param(params, "node")
                doc = self.state.risk(int(node))
            elif path == "/v1/risk/top":
                doc = self.state.top(int(params.get("k", "10")))
            elif path == "/v1/alerts":
                doc = self.state.alerts_since(
                    since=int(params.get("since", "-1")),
                    limit=int(params.get("limit", "100")),
                )
            elif path == "/v1/query":
                doc = self.state.query(params)
            elif path == "/v1/stats":
                doc = self.state.stats()
            else:
                return 404, "Not Found", _error_body(
                    404,
                    f"unknown path {path!r}; hint: /healthz, /v1/risk, "
                    f"/v1/risk/top, /v1/alerts, /v1/query, /v1/stats",
                )
            return 200, "OK", _json_bytes(doc)
        except NotFound as exc:
            return 404, "Not Found", _error_body(404, str(exc))
        except (ServeError, PredictError, ValueError) as exc:
            return 400, "Bad Request", _error_body(400, str(exc))
        except Exception as exc:  # noqa: BLE001 -- clean 500, never a hang
            return 500, "Internal Server Error", _error_body(
                500, f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------
    async def _connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break  # client closed between requests
                except asyncio.LimitOverrunError:
                    writer.write(
                        _response(
                            431, "Request Header Fields Too Large",
                            _error_body(431, "request head too large"), False,
                        )
                    )
                    await writer.drain()
                    break
                if len(head) > _MAX_REQUEST_BYTES:
                    writer.write(
                        _response(
                            431, "Request Header Fields Too Large",
                            _error_body(431, "request head too large"), False,
                        )
                    )
                    await writer.drain()
                    break
                lines = head.decode("latin-1").split("\r\n")
                request_line = lines[0].split(" ")
                if len(request_line) != 3:
                    writer.write(
                        _response(
                            400, "Bad Request",
                            _error_body(400, "malformed request line"), False,
                        )
                    )
                    await writer.drain()
                    break
                method, target, _version = request_line
                headers = {}
                for line in lines[1:]:
                    if ":" in line:
                        k, v = line.split(":", 1)
                        headers[k.strip().lower()] = v.strip()
                # GET bodies are ignored but must be drained to keep the
                # framing honest on keep-alive connections.
                length = int(headers.get("content-length", "0") or 0)
                if length:
                    await reader.readexactly(length)
                keep = headers.get("connection", "keep-alive").lower() != "close"
                status, reason, body = self.handle(method, target)
                writer.write(_response(status, reason, body, keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._connection, self.host, self.port,
            limit=_MAX_REQUEST_BYTES,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        if self.ready_file is not None:
            tmp = self.ready_file.with_suffix(self.ready_file.suffix + ".tmp")
            tmp.write_text(
                json.dumps(
                    {"host": host, "port": port, "pid": os.getpid(),
                     "model_id": self.state.model.model_id}
                )
                + "\n"
            )
            tmp.replace(self.ready_file)
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def run(
    state: ServeState,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_file=None,
) -> None:
    """Blocking entry point: serve until SIGINT/SIGTERM."""
    server = Server(state, host=host, port=port, ready_file=ready_file)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover -- non-POSIX
                pass
        bound_host, bound_port = await server.start()
        print(
            f"serving on http://{bound_host}:{bound_port} "
            f"(model {state.model.model_id}, "
            f"{state.nodes.size} nodes scored)",
            flush=True,
        )
        assert server._server is not None
        async with server._server:
            await stop.wait()
        await server.close()

    asyncio.run(_main())


__all__ = ["Server", "run"]
