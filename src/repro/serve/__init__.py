"""The async serving front door (DESIGN.md section 15).

``state``
    :class:`ServeState` -- the warm, fold-once request cache: CRC-
    guarded model load, one-time campaign scoring, incremental alert
    tail, rollup query passthrough.
``server``
    :class:`Server` / :func:`run` -- the stdlib asyncio HTTP/1.1
    keep-alive server behind ``repro serve``.
"""

from repro.serve.server import Server, run
from repro.serve.state import (
    SERVE_SCHEMA_VERSION,
    NotFound,
    ServeError,
    ServeState,
)

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "NotFound",
    "Server",
    "ServeError",
    "ServeState",
    "run",
]
