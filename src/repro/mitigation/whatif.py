"""Counterfactual ECC what-if engine: replay the campaign under other codes.

The paper reports what Astra's SEC-DED actually did.  This engine
answers the question the fleet operator asks next: *what would the same
fault campaign have cost under a different protection stack?*  It
replays every CE of a campaign (batch, synthesised, or fleet-merged)
under a grid of protection scenarios -- code x scrub interval x
page-retirement threshold x exclude-list budget -- and tallies, per
scenario, how many events a mitigation policy avoided outright, how
many the code corrected, how many became detected uncorrectable errors,
how many became silent corruption, and how many DIMMs a
replace-on-uncorrectable policy would have consumed.

Scenario semantics (DESIGN.md section 13 is the normative spec shared
with the brute-force references):

1. *Effective bit*: each error's ``bit_pos`` if recorded, else a
   deterministic per-event draw from ``default_rng(seed)`` over the 72
   codeword bits.  The device symbol is ``bit // 8`` (x8 parts).
2. *Policies first*: page retirement and the exclude list each produce
   an avoided-mask over the raw stream (independently, then OR'd);
   avoided events never reach the decoder.
3. *Accumulation*: surviving events accumulate per memory word
   (node, slot, rank, bank, address).  Patrol scrub clears latent
   bits at aligned interval boundaries, so the footprint an event
   presents to the decoder is the set of distinct bits (and devices)
   its word has collected *within the event's scrub interval*, up to
   and including the event.  ``scrub_interval_h == 0`` means no
   scrubbing: faults accumulate forever.  Unattributable events
   (``bank < 0``) form singleton words.
4. *Outcome*: the code model maps the (n_bits, n_symbols) footprint to
   corrected / DUE / silent (:mod:`repro.mitigation.codes`).

Vectorisation layout: per policy subset the engine sorts once into
canonical (word, time) order plus two scrub-independent orders --
(word, bit, time) and (word, device, time).  Each scrub interval then
costs only elementwise interval assignment, first-occurrence flags on
the presorted orders, and a segmented cumulative sum; each code costs
one vectorised threshold pass.  A full 4.37M-event campaign across a
4-code x 4-scrub x 2-retirement grid replays in single-digit seconds
(``BENCH_whatif.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.faults.types import ERROR_DTYPE
from repro.machine.dram import CODEWORD_BITS
from repro.mitigation.codes import (
    CORRECTED,
    DUE,
    SILENT,
    SYMBOL_BITS,
    get_code,
)
from repro.mitigation.exclude_list import (
    ExcludeListPolicy,
    exclude_avoided_mask,
)
from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    retirement_avoided_mask,
)
from repro.parallel.executor import map_tasks

#: Outcome code for events a mitigation policy removed pre-decode.
AVOIDED = 0

#: Default grid axes for `scenario_grid` and the CLI.
DEFAULT_CODES = ("secded", "chipkill", "rs-36-32", "rs-72-64")
DEFAULT_SCRUB_HOURS = (0.0, 24.0)
DEFAULT_RETIRE = (0, 2)


@dataclass(frozen=True)
class Scenario:
    """One protection stack to replay the campaign under."""

    code: str = "secded"
    #: Patrol-scrub interval in hours; 0 disables scrubbing.
    scrub_interval_h: float = 0.0
    #: Page-retirement CE threshold; 0 disables retirement.
    retire_threshold: int = 0
    #: Exclude-list CE budget; 0 disables the exclude list.
    exclude_budget: int = 0
    exclude_window_s: float = 7 * 86400.0

    def __post_init__(self) -> None:
        get_code(self.code)
        if self.scrub_interval_h < 0:
            raise ValueError("scrub_interval_h must be >= 0 (0 = no scrub)")
        if self.retire_threshold < 0:
            raise ValueError("retire_threshold must be >= 0 (0 = off)")
        if self.exclude_budget < 0:
            raise ValueError("exclude_budget must be >= 0 (0 = off)")
        if self.exclude_window_s <= 0:
            raise ValueError("exclude_window_s must be positive")

    @property
    def policy_key(self) -> tuple:
        """Scenarios sharing this key share avoided-masks and sorts."""
        return (
            self.retire_threshold,
            self.exclude_budget,
            self.exclude_window_s,
        )

    @property
    def label(self) -> str:
        scrub = (
            f"{self.scrub_interval_h:g}h" if self.scrub_interval_h else "off"
        )
        return (
            f"{self.code} scrub={scrub} retire={self.retire_threshold or 'off'}"
            f" exclude={self.exclude_budget or 'off'}"
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "scrub_interval_h": float(self.scrub_interval_h),
            "retire_threshold": int(self.retire_threshold),
            "exclude_budget": int(self.exclude_budget),
            "exclude_window_s": float(self.exclude_window_s),
        }


@dataclass(frozen=True)
class ScenarioReport:
    """Per-scenario outcome tallies over one campaign replay."""

    scenario: Scenario
    injected: int
    avoided: int
    corrected: int
    due: int
    silent: int
    dimms_seen: int
    dimms_replaced: int
    pages_retired: int
    nodes_excluded: int

    @property
    def uncorrected(self) -> int:
        """Events the code failed on, detected or not."""
        return self.due + self.silent

    @property
    def due_rate(self) -> float:
        return self.due / self.injected if self.injected else 0.0

    @property
    def silent_rate(self) -> float:
        return self.silent / self.injected if self.injected else 0.0

    @property
    def replacement_rate(self) -> float:
        """Fraction of error-visible DIMMs a replace-on-UE policy consumes."""
        return self.dimms_replaced / self.dimms_seen if self.dimms_seen else 0.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "label": self.scenario.label,
            "injected": self.injected,
            "avoided": self.avoided,
            "corrected": self.corrected,
            "due": self.due,
            "silent": self.silent,
            "uncorrected": self.uncorrected,
            "due_rate": self.due_rate,
            "silent_rate": self.silent_rate,
            "dimms_seen": self.dimms_seen,
            "dimms_replaced": self.dimms_replaced,
            "replacement_rate": self.replacement_rate,
            "pages_retired": self.pages_retired,
            "nodes_excluded": self.nodes_excluded,
        }


def scenario_grid(
    codes: Sequence[str] = DEFAULT_CODES,
    scrub_hours: Sequence[float] = DEFAULT_SCRUB_HOURS,
    retire_thresholds: Sequence[int] = DEFAULT_RETIRE,
    exclude_budget: int = 0,
    exclude_window_s: float = 7 * 86400.0,
) -> list[Scenario]:
    """Cross the axes into a scenario list, policy-contiguous."""
    return [
        Scenario(
            code=code,
            scrub_interval_h=float(scrub),
            retire_threshold=int(retire),
            exclude_budget=int(exclude_budget),
            exclude_window_s=float(exclude_window_s),
        )
        for retire in retire_thresholds
        for scrub in scrub_hours
        for code in codes
    ]


def effective_bits(errors: np.ndarray, seed: int = 0) -> np.ndarray:
    """Codeword bit per event: recorded ``bit_pos`` or a seeded draw.

    The draw is one full-length vector from ``default_rng(seed)`` so
    every implementation (engine, references, any ``jobs`` split) sees
    identical bits for identical (errors, seed).
    """
    rng = np.random.default_rng(int(seed))
    rand = rng.integers(0, CODEWORD_BITS, errors.size)
    bit = errors["bit_pos"].astype(np.int64)
    return np.where(bit >= 0, bit, rand)


def _dimm_keys(node: np.ndarray, slot: np.ndarray) -> np.ndarray:
    return node.astype(np.int64) * 256 + slot.astype(np.int64)


class _PolicyPrep:
    """Everything about one policy subset that scrub/code cannot change.

    Built once per (retire, exclude) combination: the avoided mask, the
    surviving events in canonical (word, time, stream-order) order, and
    the two presorted orders first-occurrence flagging needs.
    """

    def __init__(
        self,
        errors: np.ndarray,
        eff_bit: np.ndarray,
        retire_threshold: int,
        exclude_budget: int,
        exclude_window_s: float,
    ) -> None:
        n = int(errors.size)
        mask = np.zeros(n, dtype=bool)
        self.pages_retired = 0
        self.nodes_excluded = 0
        if retire_threshold:
            m, pages, _nodes = retirement_avoided_mask(
                errors, PageRetirementPolicy(threshold=retire_threshold)
            )
            mask |= m
            self.pages_retired = pages
        if exclude_budget:
            m, n_excl, _lost = exclude_avoided_mask(
                errors,
                ExcludeListPolicy(
                    ce_budget=exclude_budget, window_s=exclude_window_s
                ),
            )
            mask |= m
            self.nodes_excluded = n_excl
        idx = np.flatnonzero(~mask)
        self.injected = n
        self.avoided = n - int(idx.size)

        sub = errors[idx]
        bit = eff_bit[idx]

        # Word group ids: (node, slot, rank, bank, address) for
        # addressable events; singleton groups for storm records.
        gid = np.empty(sub.size, dtype=np.int64)
        addr_ok = sub["bank"] >= 0
        ai = np.flatnonzero(addr_ok)
        n_groups = 0
        if ai.size:
            asub = sub[ai]
            o = np.lexsort(
                (
                    asub["address"],
                    asub["bank"],
                    asub["rank"],
                    asub["slot"],
                    asub["node"],
                )
            )
            srt = asub[o]
            boundary = np.ones(ai.size, dtype=bool)
            boundary[1:] = False
            for f in ("node", "slot", "rank", "bank", "address"):
                boundary[1:] |= srt[f][1:] != srt[f][:-1]
            g_sorted = np.cumsum(boundary) - 1
            gid[ai[o]] = g_sorted
            n_groups = int(g_sorted[-1]) + 1
        ui = np.flatnonzero(~addr_ok)
        gid[ui] = n_groups + np.arange(ui.size)

        # Canonical in-group order: time, ties by stream position.
        s = np.lexsort((sub["time"], gid))
        self.idx_s = idx[s]
        self.g = gid[s]
        self.t = sub["time"][s]
        self.bit = bit[s]
        self.dev = self.bit // SYMBOL_BITS
        self.node_s = sub["node"][s]
        self.slot_s = sub["slot"][s]
        # Scrub-independent orders for first-occurrence flagging.
        self.o_bit = np.lexsort((self.t, self.bit, self.g))
        self.o_dev = np.lexsort((self.t, self.dev, self.g))
        self.word_bnd = np.ones(self.g.size, dtype=bool)
        self.word_bnd[1:] = self.g[1:] != self.g[:-1]

    def footprints(self, scrub_interval_h: float) -> tuple[np.ndarray, np.ndarray]:
        """(n_bits, n_symbols) per surviving event, canonical order."""
        m = self.g.size
        if m == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z
        if scrub_interval_h > 0:
            iv = np.floor_divide(self.t, scrub_interval_h * 3600.0).astype(
                np.int64
            )
        else:
            iv = np.zeros(m, dtype=np.int64)
        nb = self._cum_distinct(self.o_bit, self.bit, iv)
        ns = self._cum_distinct(self.o_dev, self.dev, iv)
        return nb, ns

    def _cum_distinct(
        self, o: np.ndarray, key: np.ndarray, iv: np.ndarray
    ) -> np.ndarray:
        """Cumulative count of distinct ``key`` per (word, interval).

        ``o`` orders events by (word, key, time); within a (word, key)
        run the interval is nondecreasing, so an interval step marks the
        key's first occurrence in that interval.  The flags are then
        scattered back to canonical order and summed per
        (word, interval) segment -- which is contiguous there, because
        the canonical order is time-sorted within each word.
        """
        g_o = self.g[o]
        k_o = key[o]
        iv_o = iv[o]
        new_o = np.ones(o.size, dtype=bool)
        new_o[1:] = (
            (g_o[1:] != g_o[:-1])
            | (k_o[1:] != k_o[:-1])
            | (iv_o[1:] != iv_o[:-1])
        )
        new_s = np.empty(o.size, dtype=bool)
        new_s[o] = new_o
        seg = self.word_bnd.copy()
        seg[1:] |= iv[1:] != iv[:-1]
        cs = np.cumsum(new_s)
        starts = np.flatnonzero(seg)
        counts = np.diff(np.append(starts, o.size))
        base = cs[starts] - new_s[starts]
        return cs - np.repeat(base, counts)

    def tally(self, out_s: np.ndarray) -> dict:
        """Outcome counts + replacement tally for one classified replay."""
        bad = out_s >= DUE
        replaced = int(
            np.unique(_dimm_keys(self.node_s[bad], self.slot_s[bad])).size
        )
        return {
            "injected": self.injected,
            "avoided": self.avoided,
            "corrected": int((out_s == CORRECTED).sum()),
            "due": int((out_s == DUE).sum()),
            "silent": int((out_s == SILENT).sum()),
            "dimms_replaced": replaced,
            "pages_retired": self.pages_retired,
            "nodes_excluded": self.nodes_excluded,
        }


def replay_events(
    errors: np.ndarray, scenario: Scenario, seed: int = 0
) -> np.ndarray:
    """Per-event outcomes in stream order for one scenario.

    Returns an ``int8`` array aligned with ``errors``: 0 avoided,
    1 corrected, 2 DUE, 3 silent.  This is the array the differential
    tests compare element-for-element against the brute-force
    references.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    prep = _PolicyPrep(
        errors,
        effective_bits(errors, seed),
        scenario.retire_threshold,
        scenario.exclude_budget,
        scenario.exclude_window_s,
    )
    nb, ns = prep.footprints(scenario.scrub_interval_h)
    out = np.full(errors.size, AVOIDED, dtype=np.int8)
    out[prep.idx_s] = get_code(scenario.code).classify(nb, ns)
    return out


def _replay_policy_group(task) -> list[dict]:
    """Worker: replay one policy group's scenarios (module-level for
    pickling into :func:`repro.parallel.executor.map_tasks`)."""
    errors, seed, scenarios = task
    first = scenarios[0]
    prep = _PolicyPrep(
        errors,
        effective_bits(errors, seed),
        first.retire_threshold,
        first.exclude_budget,
        first.exclude_window_s,
    )
    footprints: dict[float, tuple[np.ndarray, np.ndarray]] = {}
    rows = []
    for sc in scenarios:
        if sc.scrub_interval_h not in footprints:
            footprints[sc.scrub_interval_h] = prep.footprints(
                sc.scrub_interval_h
            )
        nb, ns = footprints[sc.scrub_interval_h]
        rows.append(prep.tally(get_code(sc.code).classify(nb, ns)))
    return rows


def replay_campaign(
    errors: np.ndarray,
    scenarios: Sequence[Scenario],
    seed: int = 0,
    jobs: int = 0,
) -> list[ScenarioReport]:
    """Replay the campaign under every scenario.

    Scenarios sharing a policy key are batched so avoided-masks and the
    canonical sorts are computed once; scrub footprints are shared
    across codes.  ``jobs > 1`` fans policy groups out over
    :func:`repro.parallel.executor.map_tasks` -- results are
    byte-identical to the serial path because every group is an
    independent pure function of (errors, seed).
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    scenarios = list(scenarios)
    if not scenarios:
        return []
    dimms_seen = (
        int(np.unique(_dimm_keys(errors["node"], errors["slot"])).size)
        if errors.size
        else 0
    )
    # Group scenario positions by policy key, preserving input order.
    groups: dict[tuple, list[int]] = {}
    for i, sc in enumerate(scenarios):
        groups.setdefault(sc.policy_key, []).append(i)
    with obs.span("whatif.replay", transient=True) as sp:
        tasks = [
            (errors, seed, [scenarios[i] for i in members])
            for members in groups.values()
        ]
        rows_per_group = map_tasks(_replay_policy_group, tasks, jobs)
        sp.add(
            events=int(errors.size),
            scenarios=len(scenarios),
            policy_groups=len(groups),
        )
    obs.count("whatif.scenarios", len(scenarios))
    obs.count("whatif.events_replayed", int(errors.size) * len(scenarios))
    obs.gauge("whatif.policy_groups", len(groups))

    reports: list[ScenarioReport | None] = [None] * len(scenarios)
    for members, rows in zip(groups.values(), rows_per_group):
        for i, row in zip(members, rows):
            reports[i] = ScenarioReport(
                scenario=scenarios[i], dimms_seen=dimms_seen, **row
            )
    return reports  # type: ignore[return-value]


def render_table(reports: Sequence[ScenarioReport]) -> str:
    """Text table of a scenario sweep, one row per scenario."""
    lines = [
        "scenario                                     avoided  corrected"
        "        due     silent  dimms",
        "-" * 96,
    ]
    for r in reports:
        lines.append(
            f"{r.scenario.label:<44}{r.avoided:>9}{r.corrected:>11}"
            f"{r.due:>11}{r.silent:>11}{r.dimms_replaced:>7}"
        )
    return "\n".join(lines)
