"""Page-retirement simulation.

The OS can retire (map out) a physical page once it accumulates enough
correctable errors.  The paper's point: single-bit and single-word faults
fit inside one page, so retirement removes them at negligible capacity
cost, while single-bank faults would require mapping out large address
ranges.  This simulator replays a CE stream through a per-(node, page)
threshold policy and reports the errors avoided and capacity retired.

Implementation note: the replay is vectorised -- errors are grouped by
(node, page), ranked within group by time, and every error whose
within-group rank is at or beyond the threshold counts as avoided (the
page is retired once the threshold-th CE lands).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE


@dataclass(frozen=True)
class PageRetirementPolicy:
    """Threshold policy: retire a page at its ``threshold``-th CE."""

    threshold: int = 2
    page_bytes: int = 4096
    #: Retirement budget per node (pages); the policy stops retiring on a
    #: node once exhausted.  ``None`` = unlimited.
    max_pages_per_node: int | None = None

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.page_bytes < 64 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page_bytes must be a power of two >= 64")


@dataclass(frozen=True)
class PageRetirementReport:
    """Outcome of replaying a CE stream through page retirement."""

    policy: PageRetirementPolicy
    total_errors: int
    errors_avoided: int
    pages_retired: int
    nodes_with_retirements: int
    retired_bytes: int

    @property
    def avoided_fraction(self) -> float:
        """Fraction of the error volume the policy would have absorbed."""
        return self.errors_avoided / self.total_errors if self.total_errors else 0.0


def retirement_avoided_mask(
    errors: np.ndarray, policy: PageRetirementPolicy | None = None
) -> tuple[np.ndarray, int, int]:
    """Per-error avoided mask, aligned with ``errors`` in original order.

    Returns ``(mask, pages_retired, nodes_with_retirements)``.  Errors
    without a usable address (storm records) cannot be attributed to a
    page and are never avoided -- exactly the operational reality the
    paper's unattributed records imply.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    policy = policy or PageRetirementPolicy()
    total = int(errors.size)
    mask = np.zeros(total, dtype=bool)
    if total == 0:
        return mask, 0, 0

    addressable = errors["bank"] >= 0
    sub = errors[addressable]
    page = sub["address"] >> np.uint64(policy.page_bytes.bit_length() - 1)
    node = sub["node"].astype(np.int64)

    # Group by (node, page); rank each error by time within its group.
    order = np.lexsort((sub["time"], page, node))
    n_sorted = node[order]
    p_sorted = page[order]
    new_group = np.ones(sub.size, dtype=bool)
    new_group[1:] = (n_sorted[1:] != n_sorted[:-1]) | (
        p_sorted[1:] != p_sorted[:-1]
    )
    starts = np.flatnonzero(new_group)
    group_start = np.repeat(starts, np.diff(np.append(starts, sub.size)))
    rank = np.arange(sub.size) - group_start

    avoided_sorted = rank >= policy.threshold
    gid = np.cumsum(new_group) - 1
    group_node = n_sorted[starts]
    group_sizes = np.bincount(gid, minlength=starts.size)
    # A page is retired once its threshold-th CE lands.
    group_retires = group_sizes >= policy.threshold
    if policy.max_pages_per_node is not None:
        # Order groups by first-retirement time (== group order is fine:
        # groups sorted by node then page; budget applies per node).
        budget_ok = np.zeros(starts.size, dtype=bool)
        used: dict[int, int] = {}
        for g in np.flatnonzero(group_retires):
            nd = int(group_node[g])
            if used.get(nd, 0) < policy.max_pages_per_node:
                used[nd] = used.get(nd, 0) + 1
                budget_ok[g] = True
        group_retires = budget_ok
        avoided_sorted = avoided_sorted & group_retires[gid]

    mask[np.flatnonzero(addressable)[order[avoided_sorted]]] = True
    pages_retired = int(group_retires.sum())
    nodes = np.unique(group_node[group_retires])
    return mask, pages_retired, int(nodes.size)


def simulate_page_retirement(
    errors: np.ndarray, policy: PageRetirementPolicy | None = None
) -> PageRetirementReport:
    """Replay CE records through a page-retirement policy."""
    policy = policy or PageRetirementPolicy()
    mask, pages_retired, n_nodes = retirement_avoided_mask(errors, policy)
    return PageRetirementReport(
        policy=policy,
        total_errors=int(errors.size),
        errors_avoided=int(mask.sum()),
        pages_retired=pages_retired,
        nodes_with_retirements=n_nodes,
        retired_bytes=pages_retired * policy.page_bytes,
    )
