"""Brute-force reference replay for the what-if engine.

A deliberately slow, obviously-correct implementation of the scenario
semantics in DESIGN.md section 13: plain Python loops over one event at
a time, dicts and sets for word state, the scalar
:func:`repro.mitigation.codes.classify_event` for outcomes.  No shared
code with the vectorised engine beyond the policy mask helpers and the
scalar code tables -- this is the oracle ``repro whatif --check`` and
``benchmarks/bench_whatif.py`` hold the engine to, element for element.

(The test suite carries a *second*, fully independent reference in
``tests/mitigation/_reference.py`` that restates even the outcome
tables literally; this module is the in-package oracle the CLI can run
without the test tree.)
"""

from __future__ import annotations

import numpy as np

from repro.faults.types import ERROR_DTYPE
from repro.mitigation.codes import SYMBOL_BITS, classify_event
from repro.mitigation.exclude_list import (
    ExcludeListPolicy,
    exclude_avoided_mask,
)
from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    retirement_avoided_mask,
)
from repro.mitigation.whatif import AVOIDED, Scenario, effective_bits


def reference_replay_events(
    errors: np.ndarray, scenario: Scenario, seed: int = 0
) -> np.ndarray:
    """Per-event outcomes in stream order, one event at a time."""
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    n = int(errors.size)
    out = np.full(n, AVOIDED, dtype=np.int8)
    if n == 0:
        return out

    bits = effective_bits(errors, seed)
    avoided = np.zeros(n, dtype=bool)
    if scenario.retire_threshold:
        m, _pages, _nodes = retirement_avoided_mask(
            errors, PageRetirementPolicy(threshold=scenario.retire_threshold)
        )
        avoided |= m
    if scenario.exclude_budget:
        m, _excl, _lost = exclude_avoided_mask(
            errors,
            ExcludeListPolicy(
                ce_budget=scenario.exclude_budget,
                window_s=scenario.exclude_window_s,
            ),
        )
        avoided |= m

    scrub_s = scenario.scrub_interval_h * 3600.0
    order = sorted(range(n), key=lambda i: (errors["time"][i], i))
    word_bits: dict[tuple, set] = {}
    word_devs: dict[tuple, set] = {}
    for i in order:
        if avoided[i]:
            continue
        e = errors[i]
        if e["bank"] >= 0:
            word = (
                int(e["node"]),
                int(e["slot"]),
                int(e["rank"]),
                int(e["bank"]),
                int(e["address"]),
            )
        else:
            word = ("storm", i)
        interval = int(float(e["time"]) // scrub_s) if scrub_s else 0
        key = (word, interval)
        bset = word_bits.setdefault(key, set())
        dset = word_devs.setdefault(key, set())
        bset.add(int(bits[i]))
        dset.add(int(bits[i]) // SYMBOL_BITS)
        out[i] = classify_event(scenario.code, len(bset), len(dset))
    return out
