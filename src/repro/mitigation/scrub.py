"""Patrol scrubbing and single-bit error accumulation into DUEs.

Under SEC-DED, a word holding one latent single-bit error is one more
upset away from a detected uncorrectable error; patrol scrubbing walks
memory correcting latent single-bit errors so that two upsets must land
in the *same scrub interval* to align.  This module quantifies that
design lever, which sits underneath the paper's CE/DUE split:

- :func:`expected_alignment_dues` -- the analytic expectation under
  Poisson upsets: per word, ``P(>= 2 upsets in an interval)``
  accumulated over all intervals and words;
- :func:`simulate_accumulation` -- a Monte-Carlo check of the same
  quantity (used by the tests to validate the closed form);
- :func:`scrub_sensitivity` -- the DUE-vs-interval curve for a
  machine-sized memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def expected_alignment_dues(
    upset_rate_per_word_hour: float,
    n_words: int,
    scrub_interval_h: float,
    duration_h: float,
) -> float:
    """Expected DUEs from two upsets aligning within a scrub interval.

    Upsets arrive per word as a Poisson process with the given rate; a
    scrub pass at the end of each interval clears single upsets.  Any
    interval with >= 2 upsets in one word is counted as one DUE (the
    second upset is read or scrubbed into detection).
    """
    if upset_rate_per_word_hour < 0:
        raise ValueError("rate must be non-negative")
    if n_words < 1 or scrub_interval_h <= 0 or duration_h <= 0:
        raise ValueError("sizes and durations must be positive")
    lam = upset_rate_per_word_hour * scrub_interval_h
    if lam < 1e-4:
        # 1 - e^-lam (1 + lam) = lam^2/2 - lam^3/3 + O(lam^4); the direct
        # form cancels catastrophically for the tiny per-word rates real
        # memories have (lam ~ 1e-17), so use the series.
        p_two_plus = lam * lam * (0.5 - lam / 3.0)
    else:
        p_two_plus = 1.0 - np.exp(-lam) * (1.0 + lam)
    n_intervals = duration_h / scrub_interval_h
    return float(n_words * n_intervals * p_two_plus)


def simulate_accumulation(
    upset_rate_per_word_hour: float,
    n_words: int,
    scrub_interval_h: float,
    duration_h: float,
    seed: int = 0,
) -> int:
    """Monte-Carlo count of alignment DUEs (validates the closed form).

    Draws per-(word, interval) Poisson upset counts and counts cells
    with two or more.  Vectorised; memory is ``n_words * n_intervals``
    bytes, so keep the product modest.
    """
    if scrub_interval_h <= 0 or duration_h <= 0:
        raise ValueError("durations must be positive")
    rng = np.random.default_rng(seed)
    n_intervals = int(np.ceil(duration_h / scrub_interval_h))
    lam = upset_rate_per_word_hour * scrub_interval_h
    counts = rng.poisson(lam, size=(n_words, n_intervals))
    return int((counts >= 2).sum())


@dataclass(frozen=True)
class ScrubPoint:
    """One point of the DUE-vs-scrub-interval curve."""

    scrub_interval_h: float
    expected_dues: float


def scrub_sensitivity(
    upset_rate_per_word_hour: float,
    n_words: int,
    duration_h: float,
    intervals_h=(1.0, 6.0, 24.0, 24.0 * 7, 24.0 * 30),
) -> list[ScrubPoint]:
    """Expected alignment DUEs across candidate scrub intervals.

    In the small-``lam`` regime the expectation grows linearly with the
    interval (halving the scrub period halves alignment DUEs) -- the
    operational knob a SEC-DED machine like Astra leans on.
    """
    return [
        ScrubPoint(
            scrub_interval_h=h,
            expected_dues=expected_alignment_dues(
                upset_rate_per_word_hour, n_words, h, duration_h
            ),
        )
        for h in intervals_h
    ]


def upset_rate_from_campaign(
    faults: np.ndarray, window: tuple[float, float], n_words: int
) -> float:
    """Estimate the per-word transient upset rate from coalesced faults.

    Single-error (transient) faults approximate independent upsets; the
    estimate is their count spread over words and hours.  Storm faults
    are excluded -- they are repeated reads of one defect, not new
    upsets.
    """
    if n_words < 1:
        raise ValueError("n_words must be positive")
    t0, t1 = window
    if t1 <= t0:
        raise ValueError("empty window")
    transients = int((faults["n_errors"] == 1).sum())
    hours = (t1 - t0) / 3600.0
    return transients / (n_words * hours)
