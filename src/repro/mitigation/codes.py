"""Protection-code models for the counterfactual ECC what-if engine.

Astra runs SEC-DED to save cost and power (section 2.2); section 3.2
notes the consequence: multi-bit device faults surface as detected
uncorrectable errors that Chipkill-class codes would have corrected.
This module is the code-model layer under
:mod:`repro.mitigation.whatif`: every protection scenario the engine
replays maps a per-read-event error footprint -- ``n_bits`` distinct
corrupted bits in the 72-bit word, ``n_symbols`` distinct x8 devices
those bits span -- to one of three outcomes.

Two model families cover the codes the literature argues about:

- :class:`SecDedModel` -- Hsiao (72,64) at pattern level: one bit is
  corrected, every even-weight pattern is detected (the H-matrix has
  odd-weight columns, so even-weight errors can never alias a single
  column), and odd-weight patterns of three or more bits carry odd
  overall parity, alias a single-bit syndrome and *miscorrect into
  silent corruption*.  This is the only model with a silent channel,
  and it is why the what-if tables account silent corruption for
  SEC-DED but not for the erasure codes (DESIGN.md section 13).
- :class:`SymbolCodeModel` -- symbol codes over GF(256) at device
  granularity: the SSC-DSD chipkill code corrects any one symbol, and
  the RS-{36,32} / RS-{72,64} *erasure* models correct up to ``n - k``
  symbols whose locations are known from the fault context (a chip
  that is erroring identifies itself).  Erasure decoding with known
  locations either solves the Vandermonde system or reports failure --
  there is no miscorrection channel, hence ``silent == 0`` for every
  symbol code by construction.

The erasure-capacity claim is not taken on faith: :func:`rs_encode`,
:func:`rs_syndromes` and :func:`rs_erasure_decode` implement the
actual Reed-Solomon algebra over :mod:`repro.machine.gf256` (the same
``alpha^(r*j)`` parity-check rows as :class:`repro.machine.chipkill.
ChipkillSsc`), and the machine tests exercise them against
hand-computed syndrome vectors.

The pattern-level Monte-Carlo study (inject physically motivated error
patterns through the *real* SEC-DED and chipkill codecs) also lives
here; :mod:`repro.analysis.ecc_study` delegates to it so the existing
ablation bench stays byte-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.gf256 import alpha, gf_mul

#: Replay outcomes (0 is reserved for "avoided by a mitigation policy").
CORRECTED = 1
DUE = 2
SILENT = 3

#: Outcome labels used in reports and schemas.
OUTCOME_LABELS = {CORRECTED: "corrected", DUE: "due", SILENT: "silent"}

#: Bits per DRAM device symbol (x8 parts, one symbol per device).
SYMBOL_BITS = 8


@dataclass(frozen=True)
class CodeModel:
    """One protection code, as seen by the what-if replay.

    ``strength`` is a total order for the monotonicity properties: a
    higher-strength code never corrects fewer events and never leaves
    more events uncorrected on the same replay.
    """

    name: str
    description: str
    strength: int
    #: True when decode failure is always detected (no silent channel).
    silent_free: bool

    def classify(self, n_bits: np.ndarray, n_symbols: np.ndarray) -> np.ndarray:
        """Vectorised outcome for each event footprint (int8 array)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SecDedModel(CodeModel):
    """Hsiao SEC-DED at pattern level: the bit-parity model."""

    def classify(self, n_bits: np.ndarray, n_symbols: np.ndarray) -> np.ndarray:
        nb = np.asarray(n_bits, dtype=np.int64)
        out = np.full(nb.shape, SILENT, dtype=np.int8)
        out[nb % 2 == 0] = DUE
        out[nb <= 1] = CORRECTED
        return out


@dataclass(frozen=True)
class SymbolCodeModel(CodeModel):
    """Symbol code at device granularity: corrects ``<= t`` symbols."""

    #: Correctable symbol count (1 for SSC-DSD, ``n - k`` for erasure).
    symbol_capacity: int = 1

    def classify(self, n_bits: np.ndarray, n_symbols: np.ndarray) -> np.ndarray:
        ns = np.asarray(n_symbols, dtype=np.int64)
        return np.where(ns <= self.symbol_capacity, CORRECTED, DUE).astype(
            np.int8
        )


#: The code vocabulary of the what-if engine, weakest to strongest.
CODES: dict[str, CodeModel] = {
    "secded": SecDedModel(
        name="secded",
        description="Hsiao SEC-DED (72,64) -- what Astra runs",
        strength=0,
        silent_free=False,
    ),
    "chipkill": SymbolCodeModel(
        name="chipkill",
        description="SSC-DSD single-symbol-correct chipkill over GF(256)",
        strength=1,
        silent_free=True,
        symbol_capacity=1,
    ),
    "rs-36-32": SymbolCodeModel(
        name="rs-36-32",
        description="RS(36,32) symbol-erasure model (4 check symbols)",
        strength=2,
        silent_free=True,
        symbol_capacity=4,
    ),
    "rs-72-64": SymbolCodeModel(
        name="rs-72-64",
        description="RS(72,64) symbol-erasure model (8 check symbols)",
        strength=3,
        silent_free=True,
        symbol_capacity=8,
    ),
}

#: Code names ordered weakest to strongest (the monotonicity chain).
STRENGTH_ORDER = tuple(
    sorted(CODES, key=lambda name: CODES[name].strength)
)


def get_code(name: str) -> CodeModel:
    """Look up a code model; raises ``ValueError`` with the vocabulary."""
    try:
        return CODES[name]
    except KeyError:
        raise ValueError(
            f"unknown code {name!r}; known codes: {', '.join(CODES)}"
        ) from None


def classify_event(code: str, n_bits: int, n_symbols: int) -> int:
    """Scalar outcome for one event -- the reference-path entry point."""
    return int(get_code(code).classify(np.int64(n_bits), np.int64(n_symbols)))


# ----------------------------------------------------------------------
# Reed-Solomon erasure algebra over GF(256) -- the proof obligation
# behind the RS-{36,32}/{72,64} capacity numbers above.  Same
# construction as repro.machine.chipkill: parity-check rows
# H[r, j] = alpha^(r*j), r = 0 .. n-k-1.
# ----------------------------------------------------------------------
def rs_parity_matrix(n: int, k: int) -> np.ndarray:
    """The (n-k, n) Vandermonde parity-check matrix alpha^(r*j)."""
    if not 0 < k < n <= 255:
        raise ValueError("need 0 < k < n <= 255")
    r = np.arange(n - k, dtype=np.int64)[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    return alpha(r * j)


def rs_syndromes(codeword: np.ndarray, n: int, k: int) -> np.ndarray:
    """Syndromes S_r = XOR_j c_j * alpha^(r*j) of a received word."""
    cw = np.asarray(codeword, dtype=np.uint8)
    if cw.shape[-1] != n:
        raise ValueError(f"codeword must have {n} symbols")
    h = rs_parity_matrix(n, k)
    out = np.zeros(cw.shape[:-1] + (n - k,), dtype=np.uint8)
    for r in range(n - k):
        out[..., r] = np.bitwise_xor.reduce(gf_mul(cw, h[r]), axis=-1)
    return out


def rs_encode(data: np.ndarray, n: int, k: int) -> np.ndarray:
    """Append ``n - k`` check symbols so every syndrome is zero."""
    from repro.machine.chipkill import _gf_mat_inv

    data = np.asarray(data, dtype=np.uint8)
    if data.shape[-1] != k:
        raise ValueError(f"data must have {k} symbols")
    h = rs_parity_matrix(n, k)
    n_checks = n - k
    # Partial syndromes over the data positions.
    partial = np.zeros(data.shape[:-1] + (n_checks,), dtype=np.uint8)
    for r in range(n_checks):
        partial[..., r] = np.bitwise_xor.reduce(
            gf_mul(data, h[r, :k]), axis=-1
        )
    inv = _gf_mat_inv(h[:, k:])
    checks = np.zeros(data.shape[:-1] + (n_checks,), dtype=np.uint8)
    for i in range(n_checks):
        acc = np.zeros(data.shape[:-1], dtype=np.uint8)
        for c in range(n_checks):
            acc ^= gf_mul(inv[i, c], partial[..., c])
        checks[..., i] = acc
    return np.concatenate([data, checks], axis=-1)


def rs_erasure_decode(
    codeword: np.ndarray, erasures, n: int, k: int
) -> np.ndarray:
    """Recover a codeword whose symbols at ``erasures`` are corrupt.

    With the erased *locations* known, the error magnitudes solve the
    ``|E| x |E|`` Vandermonde system ``H[:, E] @ e = S`` -- always
    nonsingular for distinct positions, which is exactly the
    ``n - k``-erasure capacity claim of the what-if models.  More
    erasures than check symbols raise ``ValueError`` (a detected,
    never silent, failure).
    """
    from repro.machine.chipkill import _gf_mat_inv

    cw = np.asarray(codeword, dtype=np.uint8).copy()
    if cw.ndim != 1 or cw.shape[0] != n:
        raise ValueError(f"codeword must be a flat array of {n} symbols")
    pos = sorted({int(p) for p in np.asarray(erasures, dtype=np.int64)})
    if any(p < 0 or p >= n for p in pos):
        raise ValueError("erasure position out of range")
    if len(pos) > n - k:
        raise ValueError(
            f"{len(pos)} erasures exceed the {n - k}-symbol capacity of "
            f"RS({n},{k})"
        )
    if not pos:
        return cw
    syn = rs_syndromes(cw, n, k)
    h = rs_parity_matrix(n, k)
    m = h[: len(pos)][:, pos]
    inv = _gf_mat_inv(m)
    for i, p in enumerate(pos):
        e = np.uint8(0)
        for c in range(len(pos)):
            e ^= gf_mul(inv[i, c], syn[c])
        cw[p] ^= e
    # The remaining syndromes must agree -- if they do not, the word
    # held errors outside the declared erasures.
    if np.any(rs_syndromes(cw, n, k) != 0):
        raise ValueError("residual syndrome: errors outside the erasures")
    return cw


# ----------------------------------------------------------------------
# Pattern-level Monte-Carlo study through the *real* codecs.  Moved
# verbatim from repro.analysis.ecc_study (which now delegates here) so
# the scenario engine and the ablation bench share one code layer;
# RNG draw order is unchanged, keeping every published number
# byte-identical.
# ----------------------------------------------------------------------

#: The error patterns studied, in escalating severity.
PATTERNS = (
    "single-bit",
    "double-bit same device",
    "double-bit cross device",
    "single device failure",
    "double device failure",
)


@dataclass(frozen=True)
class EccOutcomes:
    """Monte-Carlo outcome tallies for one (scheme, pattern) pair."""

    corrected: int
    detected: int
    miscorrected: int
    undetected: int

    @property
    def trials(self) -> int:
        return self.corrected + self.detected + self.miscorrected + self.undetected

    @property
    def silent_fraction(self) -> float:
        """Fraction of trials ending in silent corruption (the worst)."""
        bad = self.miscorrected + self.undetected
        return bad / self.trials if self.trials else 0.0

    def summary(self) -> str:
        n = max(self.trials, 1)
        return (
            f"corrected {self.corrected / n:6.1%}  "
            f"detected {self.detected / n:6.1%}  "
            f"miscorrected {self.miscorrected / n:6.1%}  "
            f"undetected {self.undetected / n:6.1%}"
        )


def _secded_pattern_bits(pattern: str, n: int, rng) -> list[np.ndarray]:
    """Per-trial lists of codeword bit positions to flip."""
    from repro.machine.dram import CODEWORD_BITS

    n_devices = CODEWORD_BITS // 8  # 9
    if pattern == "single-bit":
        return [rng.integers(0, CODEWORD_BITS, 1) for _ in range(n)]
    if pattern == "double-bit same device":
        out = []
        for _ in range(n):
            dev = rng.integers(0, n_devices)
            bits = dev * 8 + rng.choice(8, 2, replace=False)
            out.append(bits)
        return out
    if pattern == "double-bit cross device":
        out = []
        for _ in range(n):
            devs = rng.choice(n_devices, 2, replace=False)
            out.append(devs * 8 + rng.integers(0, 8, 2))
        return out
    if pattern == "single device failure":
        out = []
        for _ in range(n):
            dev = int(rng.integers(0, n_devices))
            byte = int(rng.integers(1, 256))  # nonzero corruption
            bits = np.flatnonzero([(byte >> b) & 1 for b in range(8)]) + dev * 8
            out.append(bits)
        return out
    if pattern == "double device failure":
        out = []
        for _ in range(n):
            devs = rng.choice(n_devices, 2, replace=False)
            bits = []
            for dev in devs:
                byte = int(rng.integers(1, 256))
                bits.extend(
                    int(dev) * 8 + b for b in range(8) if (byte >> b) & 1
                )
            out.append(np.array(bits))
        return out
    raise ValueError(f"unknown pattern: {pattern!r}")


def evaluate_secded(pattern: str, trials: int = 2000, seed: int = 0) -> EccOutcomes:
    """Inject a pattern through the Hsiao SEC-DED codec."""
    from repro.machine.dram import DATA_BITS, SecDed72

    rng = np.random.default_rng(seed)
    code = SecDed72()
    corrected = detected = miscorrected = undetected = 0
    flips = _secded_pattern_bits(pattern, trials, rng)
    data = rng.integers(0, 2**63, trials, dtype=np.uint64)
    checks = code.encode(data)
    for i in range(trials):
        bad_d, bad_c = data[i], int(checks[i])
        for pos in np.asarray(flips[i], dtype=np.int64):
            if pos < DATA_BITS:
                bad_d = bad_d ^ (np.uint64(1) << np.uint64(pos))
            else:
                bad_c ^= 1 << int(pos - DATA_BITS)
        fixed, status = code.correct(bad_d, np.uint8(bad_c))
        if status == 0:
            # Zero syndrome with flips applied: undetected corruption.
            undetected += 1
        elif status == 2:
            detected += 1
        elif fixed == data[i]:
            corrected += 1
        else:
            miscorrected += 1
    return EccOutcomes(corrected, detected, miscorrected, undetected)


def _chipkill_pattern_symbols(pattern: str, n: int, rng):
    """Per-trial (positions, error_bytes) to XOR into codewords."""
    from repro.machine.chipkill import CODEWORD_SYMBOLS

    if pattern == "single-bit":
        pos = rng.integers(0, CODEWORD_SYMBOLS, (n, 1))
        err = (1 << rng.integers(0, 8, (n, 1))).astype(np.uint8)
        return pos, err
    if pattern == "double-bit same device":
        pos = rng.integers(0, CODEWORD_SYMBOLS, (n, 1))
        err = np.zeros((n, 1), dtype=np.uint8)
        for i in range(n):
            bits = rng.choice(8, 2, replace=False)
            err[i, 0] = (1 << bits[0]) | (1 << bits[1])
        return pos, err
    if pattern == "double-bit cross device":
        pos = np.stack(
            [rng.choice(CODEWORD_SYMBOLS, 2, replace=False) for _ in range(n)]
        )
        err = (1 << rng.integers(0, 8, (n, 2))).astype(np.uint8)
        return pos, err
    if pattern == "single device failure":
        pos = rng.integers(0, CODEWORD_SYMBOLS, (n, 1))
        err = rng.integers(1, 256, (n, 1)).astype(np.uint8)
        return pos, err
    if pattern == "double device failure":
        pos = np.stack(
            [rng.choice(CODEWORD_SYMBOLS, 2, replace=False) for _ in range(n)]
        )
        err = rng.integers(1, 256, (n, 2)).astype(np.uint8)
        return pos, err
    raise ValueError(f"unknown pattern: {pattern!r}")


def evaluate_chipkill(pattern: str, trials: int = 2000, seed: int = 0) -> EccOutcomes:
    """Inject a pattern through the SSC-DSD chipkill codec."""
    from repro.machine.chipkill import DATA_SYMBOLS, ChipkillSsc

    rng = np.random.default_rng(seed)
    code = ChipkillSsc()
    data = rng.integers(0, 256, (trials, DATA_SYMBOLS)).astype(np.uint8)
    clean = code.encode(data)
    bad = clean.copy()
    pos, err = _chipkill_pattern_symbols(pattern, trials, rng)
    rows = np.arange(trials)[:, None]
    bad[rows, pos] ^= err
    fixed, status = code.decode(bad)

    corrected = detected = miscorrected = undetected = 0
    for i in range(trials):
        if status[i] == 0:
            undetected += 1
        elif status[i] == 2:
            detected += 1
        elif np.array_equal(fixed[i], clean[i]):
            corrected += 1
        else:
            miscorrected += 1
    return EccOutcomes(corrected, detected, miscorrected, undetected)


def compare_schemes(trials: int = 2000, seed: int = 0) -> dict:
    """Run every pattern through both codecs.

    Returns ``{pattern: {"secded": EccOutcomes, "chipkill": EccOutcomes}}``.
    """
    out = {}
    for pattern in PATTERNS:
        out[pattern] = {
            "secded": evaluate_secded(pattern, trials, seed),
            "chipkill": evaluate_chipkill(pattern, trials, seed),
        }
    return out
