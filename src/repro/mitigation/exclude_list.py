"""Scheduler exclude-list simulation.

Figure 5b shows that a handful of nodes carry most of the CE volume; the
paper suggests an exclude list for them as a lightweight mitigation.
This simulator replays the CE stream through a policy that removes a node
from scheduling once it exceeds a CE budget within a sliding window, and
reports the error volume avoided against the node-hours lost.

The stream does not have to be time-sorted: ingest's repair policy
(``resort_by_time``) re-sorts by time only, so records may arrive
node-interleaved and may carry duplicate timestamps (batch-reported
CEs).  The replay lexsorts internally and counts as avoided only the
errors *strictly after* the trigger instant -- errors logged at the
exact moment the exclusion triggers cannot be prevented by it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE


@dataclass(frozen=True)
class ExcludeListPolicy:
    """Exclude a node after ``ce_budget`` CEs within ``window_s``."""

    ce_budget: int = 1000
    window_s: float = 7 * 86400.0

    def __post_init__(self) -> None:
        if self.ce_budget < 1:
            raise ValueError("ce_budget must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


@dataclass(frozen=True)
class ExcludeListReport:
    """Outcome of replaying a CE stream through an exclude list."""

    policy: ExcludeListPolicy
    total_errors: int
    errors_avoided: int
    nodes_excluded: int
    node_seconds_lost: float

    @property
    def avoided_fraction(self) -> float:
        return self.errors_avoided / self.total_errors if self.total_errors else 0.0


def exclude_avoided_mask(
    errors: np.ndarray,
    policy: ExcludeListPolicy | None = None,
    horizon: float | None = None,
) -> tuple[np.ndarray, int, float]:
    """Per-error avoided mask, aligned with ``errors`` in original order.

    Returns ``(mask, nodes_excluded, node_seconds_lost)``.  A node is
    excluded permanently at the moment its trailing-window CE count
    first reaches the budget; every error of that node with a timestamp
    strictly greater than the trigger's counts as avoided.  Errors that
    share the trigger timestamp are *not* avoided: they occur at the
    same instant the exclusion takes effect, so the scheduler cannot
    have drained the node yet.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    policy = policy or ExcludeListPolicy()
    total = int(errors.size)
    mask = np.zeros(total, dtype=bool)
    if total == 0:
        return mask, 0, 0.0
    horizon = float(errors["time"].max()) if horizon is None else float(horizon)

    order = np.lexsort((errors["time"], errors["node"]))
    t = errors["time"][order]
    node = errors["node"][order].astype(np.int64)
    new_node = np.ones(total, dtype=bool)
    new_node[1:] = node[1:] != node[:-1]
    starts = np.flatnonzero(new_node)
    bounds = np.append(starts, total)

    excluded_nodes = 0
    seconds_lost = 0.0
    for a, b in zip(bounds[:-1], bounds[1:]):
        times = t[a:b]
        k = policy.ce_budget
        if b - a < k:
            continue
        # Trailing-window count reaches the budget at index i when
        # times[i] - times[i - k + 1] <= window.
        span = times[k - 1 :] - times[: times.size - k + 1]
        hits = np.flatnonzero(span <= policy.window_s)
        if hits.size == 0:
            continue
        trigger = int(hits[0]) + k - 1
        excluded_nodes += 1
        mask[order[a:b][times > times[trigger]]] = True
        seconds_lost += max(0.0, horizon - float(times[trigger]))
    return mask, excluded_nodes, seconds_lost


def simulate_exclude_list(
    errors: np.ndarray,
    policy: ExcludeListPolicy | None = None,
    horizon: float | None = None,
) -> ExcludeListReport:
    """Replay CE records through the exclude-list policy.

    A node is excluded permanently at the moment its trailing-window CE
    count first reaches the budget; all its errors strictly after that
    instant count as avoided, and its remaining time to ``horizon``
    (default: last error time) as capacity lost.
    """
    policy = policy or ExcludeListPolicy()
    mask, excluded_nodes, seconds_lost = exclude_avoided_mask(
        errors, policy, horizon
    )
    return ExcludeListReport(
        policy=policy,
        total_errors=int(errors.size),
        errors_avoided=int(mask.sum()),
        nodes_excluded=excluded_nodes,
        node_seconds_lost=seconds_lost,
    )
