"""Mitigation simulators for the implications the paper argues.

Section 3.2 argues that because most faults have a tiny memory footprint,
lightweight mitigations work well on Astra-class systems:

- :mod:`repro.mitigation.page_retirement` -- OS page retirement (the
  paper cites Tang et al. [36]): retire the 4 KiB page behind a faulting
  address after a CE threshold, trading a little capacity for most of
  the subsequent error volume.
- :mod:`repro.mitigation.exclude_list` -- a scheduler exclude list for
  the handful of storm nodes that carry the bulk of all CEs.
- :mod:`repro.mitigation.scrub` -- patrol scrubbing and the single-bit
  accumulation path from CEs to DUEs on SEC-DED memory.
"""

from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    PageRetirementReport,
    simulate_page_retirement,
)
from repro.mitigation.exclude_list import (
    ExcludeListPolicy,
    ExcludeListReport,
    simulate_exclude_list,
)
from repro.mitigation.scrub import (
    expected_alignment_dues,
    scrub_sensitivity,
    simulate_accumulation,
    upset_rate_from_campaign,
)

__all__ = [
    "PageRetirementPolicy",
    "PageRetirementReport",
    "simulate_page_retirement",
    "ExcludeListPolicy",
    "ExcludeListReport",
    "simulate_exclude_list",
    "expected_alignment_dues",
    "scrub_sensitivity",
    "simulate_accumulation",
    "upset_rate_from_campaign",
]
