"""Mitigation simulators for the implications the paper argues.

Section 3.2 argues that because most faults have a tiny memory footprint,
lightweight mitigations work well on Astra-class systems:

- :mod:`repro.mitigation.page_retirement` -- OS page retirement (the
  paper cites Tang et al. [36]): retire the 4 KiB page behind a faulting
  address after a CE threshold, trading a little capacity for most of
  the subsequent error volume.
- :mod:`repro.mitigation.exclude_list` -- a scheduler exclude list for
  the handful of storm nodes that carry the bulk of all CEs.
- :mod:`repro.mitigation.scrub` -- patrol scrubbing and the single-bit
  accumulation path from CEs to DUEs on SEC-DED memory.
- :mod:`repro.mitigation.codes` -- protection-code models (SEC-DED,
  SSC-DSD chipkill, RS symbol-erasure) plus real RS erasure algebra
  over GF(256) and the pattern-level Monte-Carlo codec study.
- :mod:`repro.mitigation.whatif` -- the counterfactual what-if engine:
  vectorised replay of a whole campaign under code x scrub x
  retirement x exclude-list scenario grids.
- :mod:`repro.mitigation.reference` -- the brute-force per-event oracle
  the engine is checked against (``repro whatif --check``).
"""

from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    PageRetirementReport,
    retirement_avoided_mask,
    simulate_page_retirement,
)
from repro.mitigation.exclude_list import (
    ExcludeListPolicy,
    ExcludeListReport,
    exclude_avoided_mask,
    simulate_exclude_list,
)
from repro.mitigation.scrub import (
    expected_alignment_dues,
    scrub_sensitivity,
    simulate_accumulation,
    upset_rate_from_campaign,
)
from repro.mitigation.codes import (
    CODES,
    STRENGTH_ORDER,
    CodeModel,
    classify_event,
    get_code,
)
from repro.mitigation.whatif import (
    Scenario,
    ScenarioReport,
    effective_bits,
    render_table,
    replay_campaign,
    replay_events,
    scenario_grid,
)
from repro.mitigation.reference import reference_replay_events

__all__ = [
    "PageRetirementPolicy",
    "PageRetirementReport",
    "retirement_avoided_mask",
    "simulate_page_retirement",
    "ExcludeListPolicy",
    "ExcludeListReport",
    "exclude_avoided_mask",
    "simulate_exclude_list",
    "expected_alignment_dues",
    "scrub_sensitivity",
    "simulate_accumulation",
    "upset_rate_from_campaign",
    "CODES",
    "STRENGTH_ORDER",
    "CodeModel",
    "classify_event",
    "get_code",
    "Scenario",
    "ScenarioReport",
    "effective_bits",
    "render_table",
    "replay_campaign",
    "replay_events",
    "scenario_grid",
    "reference_replay_events",
]
