"""Injection manifests: an exact record of what was corrupted.

Fault injection is only useful when it is reproducible and auditable,
so every :class:`~repro.inject.corruptor.LogCorruptor` pass emits an
:class:`InjectionManifest`: the profile and seed (replaying both yields
byte-identical corruption) plus one :class:`InjectionEvent` per applied
fault with enough detail (line numbers, spans, byte offsets) to verify
downstream accounting -- e.g. that every dropped line shows up as
missing coverage and every garbled one in a quarantine sidecar.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: File name the corruptor writes inside a corrupted campaign directory.
MANIFEST_NAME = "injection-manifest.json"


@dataclass
class InjectionEvent:
    """One applied fault: what, where, and how much."""

    file: str
    fault: str
    count: int
    detail: dict = field(default_factory=dict)


@dataclass
class InjectionManifest:
    """Everything one corruption pass did to a directory."""

    profile: str
    seed: int
    events: list = field(default_factory=list)

    def record(self, file: str, fault: str, count: int, **detail) -> None:
        """Append one fault application (zero-count events are elided)."""
        if count:
            self.events.append(
                InjectionEvent(file=file, fault=fault, count=count, detail=detail)
            )

    def faults_applied(self) -> set:
        """The distinct fault kinds that actually fired."""
        return {event.fault for event in self.events}

    def total(self, fault: str | None = None) -> int:
        """Total affected records, optionally for one fault kind."""
        return sum(
            event.count
            for event in self.events
            if fault is None or event.fault == fault
        )

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "n_events": len(self.events),
            "events": [asdict(event) for event in self.events],
        }

    def write(self, directory: str | os.PathLike) -> Path:
        """Write the manifest JSON into ``directory``; returns its path."""
        path = Path(directory) / MANIFEST_NAME
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "InjectionManifest":
        """Read a manifest back from a corrupted directory."""
        path = Path(directory) / MANIFEST_NAME
        data = json.loads(path.read_text())
        manifest = cls(profile=data["profile"], seed=data["seed"])
        for event in data["events"]:
            manifest.events.append(
                InjectionEvent(
                    file=event["file"],
                    fault=event["fault"],
                    count=event["count"],
                    detail=event.get("detail", {}),
                )
            )
        return manifest
