"""Injection profiles: how dirty should the telemetry get?

A profile fixes the per-fault intensities the
:class:`~repro.inject.corruptor.LogCorruptor` applies.  Three presets
ladder from the annoyances every production scraper sees to an actively
hostile corpus:

- ``light``    -- a sprinkle of truncated/garbled lines; mirrors intact.
- ``moderate`` -- the paper's reality: percent-level line damage,
  duplicated and reordered records, a dropped line range, a clock-skew
  window, and checksum-corrupt binary mirrors (forcing the text-log
  fallback path).
- ``hostile``  -- everything above, harder, plus a deleted
  ``replacements.npy`` (a family with *no* text fallback) and BMC
  sensor dropout windows.

Rates are fractions of lines; counts are whole occurrences per file.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class InjectionProfile:
    """Fault intensities for one corruption pass."""

    name: str
    #: Fraction of lines whose tail is chopped mid-field.
    truncate_rate: float = 0.0
    #: Fraction of lines with random characters overwritten.
    garble_rate: float = 0.0
    #: Fraction of lines emitted twice (log daemon retry storms).
    duplicate_rate: float = 0.0
    #: Number of line windows shuffled out of order.
    reorder_windows: int = 0
    #: Lines per reordered window.
    reorder_span: int = 32
    #: Number of contiguous line ranges dropped outright.
    drop_ranges: int = 0
    #: Maximum lines per dropped range.
    drop_span: int = 200
    #: Number of windows whose timestamps are skewed backwards.
    clock_skew_windows: int = 0
    #: Seconds of backwards skew applied to a skewed window.
    clock_skew_s: float = 3600.0
    #: Lines per clock-skew window.
    clock_skew_span: int = 64
    #: Binary mirrors to overwrite with garbage bytes (checksum corrupt).
    corrupt_mirrors: tuple = field(default=())
    #: Binary mirrors to delete outright.
    drop_mirrors: tuple = field(default=())
    #: Number of BMC sensor dropout windows (applies to sensor CSVs).
    bmc_dropout_windows: int = 0
    #: Fraction of the sensor time span each dropout window covers.
    bmc_dropout_fraction: float = 0.02

    def line_faults_active(self) -> bool:
        return any(
            (
                self.truncate_rate,
                self.garble_rate,
                self.duplicate_rate,
                self.reorder_windows,
                self.drop_ranges,
                self.clock_skew_windows,
            )
        )


PROFILES: dict[str, InjectionProfile] = {
    "light": InjectionProfile(
        name="light",
        truncate_rate=0.001,
        garble_rate=0.001,
        duplicate_rate=0.0005,
    ),
    "moderate": InjectionProfile(
        name="moderate",
        truncate_rate=0.005,
        garble_rate=0.005,
        duplicate_rate=0.002,
        reorder_windows=2,
        drop_ranges=1,
        clock_skew_windows=1,
        corrupt_mirrors=("errors.npy", "het.npy"),
        bmc_dropout_windows=1,
    ),
    "hostile": InjectionProfile(
        name="hostile",
        truncate_rate=0.02,
        garble_rate=0.03,
        duplicate_rate=0.01,
        reorder_windows=5,
        drop_ranges=3,
        drop_span=500,
        clock_skew_windows=3,
        corrupt_mirrors=("errors.npy", "het.npy"),
        drop_mirrors=("replacements.npy",),
        bmc_dropout_windows=3,
        bmc_dropout_fraction=0.05,
    ),
}


def get_profile(profile: "str | InjectionProfile") -> InjectionProfile:
    """Resolve a profile by name (or pass a custom one through)."""
    if isinstance(profile, InjectionProfile):
        return profile
    try:
        return PROFILES[str(profile).lower()]
    except KeyError:
        names = ", ".join(sorted(PROFILES))
        raise ValueError(
            f"unknown injection profile {profile!r}; known: {names}"
        ) from None
