"""Deterministic, seeded corruption of campaign telemetry artifacts.

:class:`LogCorruptor` mutates a stored campaign directory the way eight
months of production operation mutate real logs: truncated and garbled
syslog lines, duplicated records (log-daemon retries), reordered and
clock-skewed windows (interleaved writers, NTP steps), dropped line
ranges (rotation races), BMC sensor dropout windows, and binary mirrors
that are missing or unreadable (forcing the text-log fallback).

Everything is driven by one seed and an
:class:`~repro.inject.profiles.InjectionProfile`; the same (seed,
profile, input bytes) always produces the same corruption, and every
applied fault is recorded in an
:class:`~repro.inject.manifest.InjectionManifest` so tests can assert
the ingest layer accounts for each injected record.
"""

from __future__ import annotations

import os
import string
from pathlib import Path

import numpy as np

from repro.inject.manifest import InjectionManifest
from repro.inject.profiles import InjectionProfile, get_profile

#: Characters used when garbling lines -- printable noise, no newlines.
_NOISE = string.ascii_letters + string.digits + "#?*~^|"


class LogCorruptor:
    """Applies one profile's faults to telemetry files, deterministically."""

    def __init__(self, profile: str | InjectionProfile = "moderate", seed: int = 0):
        self.profile = get_profile(profile)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def _rng(self, name: str) -> np.random.Generator:
        """Per-file generator: stable under file-visit order changes."""
        return np.random.default_rng([self.seed, *name.encode()])

    # ------------------------------------------------------------------
    def corrupt_campaign(self, directory: str | os.PathLike) -> InjectionManifest:
        """Corrupt a campaign directory in place; returns the manifest.

        Touches the text logs (``ce.log``, ``het.log``, any
        ``inventory*`` and ``bmc*`` files present) and the binary
        mirrors named by the profile, then writes
        ``injection-manifest.json`` into the directory.
        """
        directory = Path(directory)
        manifest = InjectionManifest(profile=self.profile.name, seed=self.seed)

        for name in ("ce.log", "het.log"):
            path = directory / name
            if path.exists():
                self.corrupt_text_file(path, manifest)
        for pattern in ("inventory*", "bmc*"):
            for path in sorted(directory.glob(pattern)):
                if path.name.endswith(".quarantine"):
                    continue
                dropout = self.profile.bmc_dropout_windows if "bmc" in path.name else 0
                self.corrupt_text_file(
                    path, manifest,
                    has_header=path.suffix == ".csv",
                    dropout_windows=dropout,
                )

        for name in self.profile.corrupt_mirrors:
            path = directory / name
            if path.exists():
                self.corrupt_binary(path, manifest)
        for name in self.profile.drop_mirrors:
            path = directory / name
            if path.exists():
                path.unlink()
                manifest.record(name, "mirror-dropped", 1)

        manifest.write(directory)
        return manifest

    # ------------------------------------------------------------------
    def corrupt_text_file(
        self,
        path: str | os.PathLike,
        manifest: InjectionManifest | None = None,
        has_header: bool = False,
        dropout_windows: int = 0,
    ) -> InjectionManifest:
        """Apply the profile's line faults to one text log, in place."""
        path = Path(path)
        if manifest is None:
            manifest = InjectionManifest(profile=self.profile.name, seed=self.seed)
        rng = self._rng(path.name)
        with open(path) as fh:
            lines = fh.read().splitlines()
        header = lines[:1] if has_header else []
        body = lines[len(header):]
        name = path.name

        body = self._clock_skew(body, rng, manifest, name)
        body = self._reorder(body, rng, manifest, name)
        body = self._duplicate(body, rng, manifest, name)
        body = self._truncate(body, rng, manifest, name)
        body = self._garble(body, rng, manifest, name)
        body = self._drop_ranges(body, rng, manifest, name)
        body = self._dropout(body, rng, manifest, name, dropout_windows)

        with open(path, "w") as fh:
            for line in header + body:
                fh.write(line + "\n")
        return manifest

    # -- line faults ---------------------------------------------------
    def _pick_lines(self, n: int, rate: float, rng) -> np.ndarray:
        k = int(round(n * rate))
        if k == 0 or n == 0:
            return np.zeros(0, dtype=np.int64)
        return rng.choice(n, size=min(k, n), replace=False)

    def _clock_skew(self, lines, rng, manifest, name):
        p = self.profile
        n = len(lines)
        skewed = 0
        windows = []
        for _ in range(p.clock_skew_windows):
            if n < 2:
                break
            span = min(p.clock_skew_span, n)
            start = int(rng.integers(0, n - span + 1))
            for i in range(start, start + span):
                shifted = _shift_timestamp(lines[i], -p.clock_skew_s)
                if shifted is not None:
                    lines[i] = shifted
                    skewed += 1
            windows.append([start, start + span])
        manifest.record(
            name, "clock-skew", skewed,
            windows=windows, skew_s=-p.clock_skew_s,
        )
        return lines

    def _reorder(self, lines, rng, manifest, name):
        p = self.profile
        n = len(lines)
        moved = 0
        windows = []
        for _ in range(p.reorder_windows):
            if n < 2:
                break
            span = min(p.reorder_span, n)
            start = int(rng.integers(0, n - span + 1))
            window = lines[start : start + span]
            perm = rng.permutation(span)
            lines[start : start + span] = [window[j] for j in perm]
            moved += int(np.sum(perm != np.arange(span)))
            windows.append([start, start + span])
        manifest.record(name, "reordered", moved, windows=windows)
        return lines

    def _duplicate(self, lines, rng, manifest, name):
        idx = set(self._pick_lines(len(lines), self.profile.duplicate_rate, rng).tolist())
        if not idx:
            manifest.record(name, "duplicated", 0)
            return lines
        out = []
        for i, line in enumerate(lines):
            out.append(line)
            if i in idx:
                out.append(line)
        manifest.record(name, "duplicated", len(idx), lines=sorted(idx))
        return out

    def _truncate(self, lines, rng, manifest, name):
        idx = self._pick_lines(len(lines), self.profile.truncate_rate, rng)
        for i in idx:
            line = lines[i]
            if len(line) < 8:
                continue
            cut = int(rng.integers(len(line) // 3, max(len(line) - 1, len(line) // 3 + 1)))
            lines[i] = line[:cut]
        manifest.record(name, "truncated", len(idx), lines=sorted(idx.tolist()))
        return lines

    def _garble(self, lines, rng, manifest, name):
        idx = self._pick_lines(len(lines), self.profile.garble_rate, rng)
        for i in idx:
            line = list(lines[i])
            if not line:
                continue
            k = max(1, len(line) // 10)
            positions = rng.integers(0, len(line), size=k)
            for pos in positions:
                line[int(pos)] = _NOISE[int(rng.integers(0, len(_NOISE)))]
            lines[i] = "".join(line)
        manifest.record(name, "garbled", len(idx), lines=sorted(idx.tolist()))
        return lines

    def _drop_ranges(self, lines, rng, manifest, name):
        p = self.profile
        dropped: set[int] = set()
        ranges = []
        for _ in range(p.drop_ranges):
            n = len(lines)
            if n < 2:
                break
            span = int(rng.integers(1, min(p.drop_span, n) + 1))
            start = int(rng.integers(0, n - span + 1))
            ranges.append([start, start + span])
            dropped.update(range(start, start + span))
        if dropped:
            lines = [line for i, line in enumerate(lines) if i not in dropped]
        manifest.record(name, "dropped-range", len(dropped), ranges=ranges)
        return lines

    def _dropout(self, lines, rng, manifest, name, windows: int):
        """BMC-style sensor dropout: contiguous silence windows."""
        if not windows:
            return lines
        p = self.profile
        dropped: set[int] = set()
        spans = []
        for _ in range(windows):
            n = len(lines)
            if n < 4:
                break
            span = max(1, int(n * p.bmc_dropout_fraction))
            start = int(rng.integers(0, n - span + 1))
            spans.append([start, start + span])
            dropped.update(range(start, start + span))
        if dropped:
            lines = [line for i, line in enumerate(lines) if i not in dropped]
        manifest.record(name, "sensor-dropout", len(dropped), windows=spans)
        return lines

    # -- binary faults -------------------------------------------------
    def corrupt_binary(
        self, path: str | os.PathLike, manifest: InjectionManifest | None = None
    ) -> InjectionManifest:
        """Make a binary mirror unreadable: garble its header, truncate it.

        ``.npy`` files carry no checksum, so damage must hit the header
        to be *detectable*; this stands in for the checksum-mismatch
        case a production object store would report.
        """
        path = Path(path)
        if manifest is None:
            manifest = InjectionManifest(profile=self.profile.name, seed=self.seed)
        rng = self._rng(path.name)
        data = bytearray(path.read_bytes())
        garble_span = min(64, len(data))
        data[:garble_span] = rng.integers(0, 256, size=garble_span, dtype=np.uint8).tobytes()
        keep = max(garble_span, int(len(data) * 3 // 4))
        path.write_bytes(bytes(data[:keep]))
        manifest.record(
            path.name, "mirror-corrupted", 1,
            garbled_bytes=garble_span, truncated_to=keep,
        )
        return manifest


def _shift_timestamp(line: str, delta_s: float) -> str | None:
    """Shift a line's leading ISO timestamp by ``delta_s`` seconds.

    Handles both space-separated syslog lines and comma-separated CSV
    rows; returns None when the line has no parseable leading timestamp.
    """
    for sep in (" ", ","):
        head, mid, rest = line.partition(sep)
        if not mid:
            continue
        try:
            t = np.datetime64(head, "s")
        except ValueError:
            continue
        shifted = t + np.timedelta64(int(delta_s), "s")
        return f"{shifted}{sep}{rest}"
    return None
