"""Telemetry fault injection: seeded corruption of campaign artifacts.

The study's input was eight months of *production* telemetry --
truncated syslog lines, BMC dropouts, inventory gaps -- so the ingest
layer must be tested against dirty data, not just clean round-trips.
This package provides the dirt:

- :mod:`repro.inject.profiles` -- ``light`` / ``moderate`` / ``hostile``
  intensity presets (:class:`InjectionProfile`);
- :mod:`repro.inject.corruptor` -- the deterministic, seeded
  :class:`LogCorruptor` that applies line faults (truncate, garble,
  duplicate, reorder, drop, clock skew, sensor dropout) and binary
  mirror faults (corrupt, delete) to a campaign directory;
- :mod:`repro.inject.manifest` -- the :class:`InjectionManifest`
  recording exactly what was injected, written alongside the corrupted
  data for auditability;
- :mod:`repro.inject.chaos` -- process-level chaos for the fleet
  supervisor (:class:`ChaosPlan`): killed and wedged workers, torn and
  bit-flipped shard files, ``ENOSPC`` on the ledger, torn cache writes.

The CLI exposes it as ``--inject PROFILE --inject-seed N`` (data
faults) and ``repro fleet --chaos PROFILE --chaos-seed N`` (process
faults) for harness self-tests: generate, corrupt, re-ingest under a
policy, and check the experiments degrade instead of crash.
"""

from repro.inject.chaos import (
    CHAOS_PROFILES,
    ChaosPlan,
    ChaosProfile,
)
from repro.inject.corruptor import LogCorruptor
from repro.inject.manifest import MANIFEST_NAME, InjectionEvent, InjectionManifest
from repro.inject.profiles import PROFILES, InjectionProfile, get_profile

__all__ = [
    "LogCorruptor",
    "InjectionEvent",
    "InjectionManifest",
    "MANIFEST_NAME",
    "InjectionProfile",
    "PROFILES",
    "get_profile",
    "ChaosPlan",
    "ChaosProfile",
    "CHAOS_PROFILES",
]
