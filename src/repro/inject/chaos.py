"""Process-level chaos for the fleet engine: planned, seeded, recorded.

:mod:`repro.inject.corruptor` attacks the *data* (log lines, record
bytes); this module attacks the *run*: workers that die mid-task,
workers that wedge, shard files torn or bit-flipped on disk, the ledger
append that hits a full disk, the cache write that tears.  Every fault
the supervisor must survive in production is injectable here, under a
named profile and a seed, so a chaos run is exactly reproducible and
the applied faults are written to ``chaos-manifest.json`` beside the
fleet ledger.

The faults fall into two families:

- **process faults** (``kill``, ``wedge``) are attached to specific
  shard tasks and fire only on attempt 1 -- a retry of the same shard
  runs clean, so a healthy supervisor absorbs every process fault and
  still produces the byte-identical clean answer.  In parallel mode a
  kill is a real ``SIGKILL`` of the worker (surfacing as
  ``BrokenProcessPool`` in the parent, exactly like an OOM-killed
  worker) and a wedge is a sleep past the task timeout; in serial mode
  both degrade to typed exceptions the supervisor treats identically.

- **file / IO faults** (``torn-shard``, ``bitflip-shard``, ``enospc``,
  ``checkpoint-tear``) damage state: a torn or bit-flipped shard fails
  its CRC-32C sidecar on every attempt and ends in quarantine (the run
  degrades, it does not lie), an ``ENOSPC`` on a ledger append is
  retried like any transient ``OSError``, and a torn cache write is
  caught by the resume digest check and simply re-runs that shard.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Manifest filename written into the fleet directory by a chaos run.
CHAOS_MANIFEST_NAME = "chaos-manifest.json"

#: npy payloads start after a 128-byte header on this dtype family;
#: bit flips land past it so the damage is CRC-detectable data damage,
#: not a header parse error (both are handled, but payload damage is
#: the harder case -- only the sidecar can see it).
_NPY_HEADER_GUESS = 128


class ChaosKill(RuntimeError):
    """Serial-mode stand-in for a worker killed mid-task."""


class ChaosWedge(RuntimeError):
    """Serial-mode stand-in for a worker that stopped making progress."""


@dataclass(frozen=True)
class ChaosProfile:
    """How much of each fault family a chaos run injects."""

    name: str
    #: Workers SIGKILLed (or :class:`ChaosKill` in serial) on attempt 1.
    kills: int = 0
    #: Workers wedged past the task timeout on attempt 1.
    wedges: int = 0
    #: Binary shards truncated on disk (fails CRC on every attempt).
    torn_shards: int = 0
    #: Binary shards with one payload bit flipped (fails CRC likewise).
    bitflips: int = 0
    #: Ledger appends that raise ``ENOSPC`` once.
    enospc: int = 0
    #: Shard-cache writes torn to a prefix (caught by the resume digest).
    tears: int = 0


#: ``light`` is process-only (retries absorb everything; the result
#: stays byte-identical to a clean run).  ``moderate`` adds recoverable
#: IO faults plus one torn shard; ``hostile`` adds bit rot and a second
#: kill.  Data-damage faults quarantine shards, so moderate/hostile runs
#: are expected to end ``pass-degraded``.
CHAOS_PROFILES = {
    "light": ChaosProfile("light", kills=1, wedges=1),
    "moderate": ChaosProfile(
        "moderate", kills=1, wedges=1, torn_shards=1, enospc=1, tears=1
    ),
    "hostile": ChaosProfile(
        "hostile", kills=2, wedges=1, torn_shards=1, bitflips=1,
        enospc=1, tears=1,
    ),
}


class ChaosPlan:
    """A seeded assignment of faults to one fleet run's task list.

    Built once by the supervisor from ``(profile, seed, tasks)``: the
    same inputs always plan the same faults against the same shards, so
    a chaos failure reproduces from its manifest.
    """

    def __init__(self, profile: ChaosProfile, seed: int, tasks: list):
        from repro.fleet.ledger import task_key

        self.profile = profile
        self.seed = int(seed)
        keys = [task_key(t) for t in tasks]
        rng = np.random.default_rng([self.seed, *profile.name.encode()])

        # Process faults: distinct victim tasks, kills before wedges.
        n_proc = min(profile.kills + profile.wedges, len(keys))
        victims = (
            rng.choice(len(keys), size=n_proc, replace=False) if n_proc else []
        )
        self.kill_keys = {keys[i] for i in victims[: profile.kills]}
        self.wedge_keys = {keys[i] for i in victims[profile.kills :]}

        # File faults: distinct binary shard files (text logs have their
        # own corruptor; chaos targets the CRC-guarded payloads).
        binary = [
            (task_key(t), t["path"]) for t in tasks if t["kind"] == "binary"
        ]
        n_file = min(profile.torn_shards + profile.bitflips, len(binary))
        picks = (
            rng.choice(len(binary), size=n_file, replace=False) if n_file else []
        )
        #: ``[(task key, path, fault)]`` -- applied on disk before the run.
        self.file_faults = [
            (*binary[i], "torn-shard")
            for i in picks[: min(profile.torn_shards, n_file)]
        ] + [
            (*binary[i], "bitflip-shard")
            for i in picks[min(profile.torn_shards, n_file) :]
        ]

        # IO faults: fire once at a planned call index.  Append 0 is the
        # plan line; ENOSPC lands on some later append so the run is
        # already underway when the disk "fills".
        self._enospc_at = (
            int(rng.integers(1, max(2, len(keys) + 1)))
            if profile.enospc else None
        )
        self._enospc_left = profile.enospc
        self._tear_at = (
            int(rng.integers(0, max(1, len(keys)))) if profile.tears else None
        )
        self._tear_left = profile.tears

    # -- worker-side process faults ------------------------------------
    def task_fault(self, key: str) -> str | None:
        """The process fault planned for task ``key``, if any."""
        if key in self.kill_keys:
            return "kill"
        if key in self.wedge_keys:
            return "wedge"
        return None

    # -- IO fault hooks ------------------------------------------------
    def on_ledger_append(self, n: int) -> None:
        """Raise the planned ``ENOSPC`` on append number ``n`` (once)."""
        if self._enospc_left and self._enospc_at is not None and n >= self._enospc_at:
            self._enospc_left -= 1
            raise OSError(
                errno.ENOSPC, "chaos: no space left on device (injected)"
            )

    def on_cache_save(self, n: int) -> bool:
        """True when cache save number ``n`` should tear (fires once)."""
        if self._tear_left and self._tear_at is not None and n >= self._tear_at:
            self._tear_left -= 1
            return True
        return False

    # -- bookkeeping ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "profile": self.profile.name,
            "seed": self.seed,
            "kills": sorted(self.kill_keys),
            "wedges": sorted(self.wedge_keys),
            "file_faults": [
                {"task": key, "path": path, "fault": fault}
                for key, path, fault in self.file_faults
            ],
            "enospc_at_append": self._enospc_at,
            "tear_at_save": self._tear_at,
        }


def coerce_profile(profile) -> ChaosProfile:
    """Accept a profile name or a :class:`ChaosProfile` instance."""
    if isinstance(profile, ChaosProfile):
        return profile
    try:
        return CHAOS_PROFILES[str(profile)]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {profile!r} "
            f"(choose from {sorted(CHAOS_PROFILES)})"
        ) from None


def apply_file_faults(plan: ChaosPlan, fleet_dir: str | os.PathLike) -> Path:
    """Damage the planned shard files on disk; write the chaos manifest.

    ``torn-shard`` truncates the file to ~60% (a crash mid-copy);
    ``bitflip-shard`` flips one payload bit in place (bit rot the npy
    header cannot reveal).  The CRC-32C sidecars are left untouched --
    they now *disagree* with the file, which is the whole point.
    Damage is deterministic per (plan seed, file name).
    """
    events = []
    for key, path, fault in plan.file_faults:
        path = Path(path)
        size = path.stat().st_size
        rng = np.random.default_rng([plan.seed, *path.name.encode()])
        if fault == "torn-shard":
            keep = max(1, int(size * 0.6))
            with open(path, "r+b") as fh:
                fh.truncate(keep)
            events.append(
                {"task": key, "file": path.name, "fault": fault,
                 "detail": {"size": size, "kept": keep}}
            )
        else:  # bitflip-shard
            lo = _NPY_HEADER_GUESS if size > _NPY_HEADER_GUESS + 1 else 0
            offset = int(rng.integers(lo, size))
            bit = int(rng.integers(0, 8))
            with open(path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)[0]
                fh.seek(offset)
                fh.write(bytes([byte ^ (1 << bit)]))
            events.append(
                {"task": key, "file": path.name, "fault": fault,
                 "detail": {"offset": offset, "bit": bit}}
            )
    manifest = {
        "profile": plan.profile.name,
        "seed": plan.seed,
        "plan": plan.to_dict(),
        "events": events,
    }
    out = Path(fleet_dir) / CHAOS_MANIFEST_NAME
    with open(out, "w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return out


def worker_fault(task: dict) -> None:
    """Execute the process fault embedded in ``task``, if any.

    Called at the top of the shard worker.  The supervisor embeds
    ``chaos_fault`` only on attempt 1, so retries of the victim task run
    clean.  ``chaos_parallel`` distinguishes a real worker process
    (SIGKILL / sleep) from serial in-process execution (typed
    exceptions the supervisor maps to the same retry path).
    """
    fault = task.get("chaos_fault")
    if not fault:
        return
    where = f"{task['cluster']}/{task['shard']}"
    if fault == "kill":
        if task.get("chaos_parallel"):
            # Die the way the OOM killer kills: no cleanup, no exception
            # -- the parent sees BrokenProcessPool.
            os.kill(os.getpid(), signal.SIGKILL)
        raise ChaosKill(f"chaos: worker killed on {where}")
    if fault == "wedge":
        if task.get("chaos_parallel"):
            # Outlive the task timeout so the supervisor abandons us;
            # clamped so an unsupervised run cannot hang forever.
            time.sleep(min(float(task.get("chaos_wedge_s", 5.0)), 30.0))
        raise ChaosWedge(f"chaos: worker wedged on {where}")
    raise ValueError(f"unknown chaos fault {fault!r}")
