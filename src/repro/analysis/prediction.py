"""Node-health prediction from CE history.

The paper notes its distributions matter for "modeling failures" and
motivates an exclude list for high-CE nodes; both presuppose that a
node's error past predicts its error future.  This module tests that
presupposition with two transparent predictors evaluated month-over-month:

- the **persistence** predictor: flag the nodes that erred in the
  history window;
- the **top-k** predictor: flag the k nodes with the most historical
  errors (the operator's exclude-list shortlist).

Because faults persist for days-to-weeks and storm nodes stay stormy,
persistence should comfortably beat the base rate -- and it does, which
is the statistical justification behind the paper's exclude-list
suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE


@dataclass(frozen=True)
class PredictionScore:
    """Confusion-matrix summary of one node-health prediction."""

    n_nodes: int
    n_flagged: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 0.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 0.0


def _counts_in(errors: np.ndarray, t0: float, t1: float, n_nodes: int) -> np.ndarray:
    sel = errors[(errors["time"] >= t0) & (errors["time"] < t1)]
    return np.bincount(sel["node"].astype(np.int64), minlength=n_nodes)


def evaluate_predictor(
    errors: np.ndarray,
    n_nodes: int,
    split_time: float,
    horizon_s: float,
    top_k: int | None = None,
) -> tuple[PredictionScore, float]:
    """Score a node-health predictor at a time split.

    History is everything before ``split_time``; the target is "node has
    >= 1 CE within ``horizon_s`` after the split".  With ``top_k`` the
    predictor flags the k highest-CE history nodes; otherwise it flags
    every node with history errors (persistence).

    Returns ``(score, error_capture)`` where ``error_capture`` is the
    fraction of future error *volume* on flagged nodes.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    history = _counts_in(errors, -np.inf, split_time, n_nodes)
    future = _counts_in(errors, split_time, split_time + horizon_s, n_nodes)

    if top_k is None:
        flagged = history > 0
    else:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        order = np.argsort(history)[::-1][:top_k]
        flagged = np.zeros(n_nodes, dtype=bool)
        flagged[order[history[order] > 0]] = True

    actual = future > 0
    tp = int((flagged & actual).sum())
    fp = int((flagged & ~actual).sum())
    fn = int((~flagged & actual).sum())
    score = PredictionScore(
        n_nodes=n_nodes,
        n_flagged=int(flagged.sum()),
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )
    total_future = future.sum()
    capture = float(future[flagged].sum() / total_future) if total_future else 0.0
    return score, capture


def base_rate(errors: np.ndarray, n_nodes: int, split_time: float, horizon_s: float) -> float:
    """Fraction of all nodes erring in the horizon: the naive precision."""
    future = _counts_in(errors, split_time, split_time + horizon_s, n_nodes)
    return float((future > 0).mean())
