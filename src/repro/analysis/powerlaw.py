"""Discrete power-law fitting (Clauset, Shalizi & Newman style).

The paper observes that per-node fault counts, per-bit-position counts
and per-address counts "appear to obey a power law", citing Clauset et
al. [3].  This module implements the standard discrete machinery:

- MLE of the exponent ``alpha`` for a discrete power law with lower
  cutoff ``xmin`` (the common ``1 + n / sum(ln(x / (xmin - 1/2)))``
  approximation, accurate for xmin >= 1);
- the Kolmogorov-Smirnov distance between data and fit;
- ``xmin`` selection by KS minimisation over candidate cutoffs.

It is a working implementation, not a toy: exponents recovered from
synthetic Zipf samples are accurate to a few percent (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import zeta


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting a discrete power law."""

    alpha: float
    xmin: int
    ks: float
    n_tail: int

    def plausible(self, ks_threshold: float = 0.12) -> bool:
        """Loose plausibility check: decent tail size and KS distance.

        This is *not* the full CSN bootstrap significance test; it is the
        level of evidence the paper itself offers ("appears to obey a
        power law").
        """
        return self.n_tail >= 10 and self.ks <= ks_threshold and self.alpha > 1.0


def _alpha_mle(data: np.ndarray, xmin: int) -> float:
    """Exact discrete MLE: maximise the Hurwitz-zeta log-likelihood.

    The popular ``1 + n / sum(ln(x/(xmin-1/2)))`` shortcut is a
    continuous approximation that biases alpha low for small xmin (at
    xmin=1 the bias reaches ~30% for alpha ~3), so we maximise the true
    discrete likelihood numerically.
    """
    tail = data[data >= xmin]
    n = tail.size
    log_sum = np.log(tail).sum()

    def nll(alpha: float) -> float:
        return n * np.log(zeta(alpha, xmin)) + alpha * log_sum

    result = minimize_scalar(nll, bounds=(1.0001, 12.0), method="bounded")
    return float(result.x)


def _ks_distance(data: np.ndarray, alpha: float, xmin: int) -> float:
    tail = np.sort(data[data >= xmin])
    n = tail.size
    if n == 0:
        return np.inf
    xmax = int(tail[-1])
    xs = np.arange(xmin, xmax + 1, dtype=np.float64)
    # Discrete power-law CDF on [xmin, xmax].
    z = zeta(alpha, xmin)
    pmf = xs**-alpha / z
    cdf = np.cumsum(pmf)
    # Empirical CDF at each integer value.
    emp = np.searchsorted(tail, xs, side="right") / n
    return float(np.max(np.abs(emp - cdf)))


def fit_discrete_powerlaw(
    data, xmin: int | None = None, max_xmin_candidates: int = 50
) -> PowerLawFit:
    """Fit a discrete power law; select ``xmin`` by KS minimisation.

    Parameters
    ----------
    data:
        Positive integer observations (e.g. faults per node, counts per
        bit position).  Zeros are dropped.
    xmin:
        Fix the lower cutoff instead of scanning.
    max_xmin_candidates:
        Cap on candidate cutoffs scanned (smallest distinct values).
    """
    data = np.asarray(data, dtype=np.float64)
    data = data[data >= 1]
    if data.size < 3:
        raise ValueError("need at least 3 positive observations")

    if xmin is not None:
        alpha = _alpha_mle(data, xmin)
        return PowerLawFit(
            alpha=float(alpha),
            xmin=int(xmin),
            ks=_ks_distance(data, alpha, xmin),
            n_tail=int((data >= xmin).sum()),
        )

    candidates = np.unique(data.astype(np.int64))[:max_xmin_candidates]
    best: PowerLawFit | None = None
    for cand in candidates:
        tail_n = int((data >= cand).sum())
        if tail_n < 5:
            break
        alpha = _alpha_mle(data, int(cand))
        ks = _ks_distance(data, alpha, int(cand))
        fit = PowerLawFit(alpha=float(alpha), xmin=int(cand), ks=ks, n_tail=tail_n)
        if best is None or fit.ks < best.ks:
            best = fit
    assert best is not None
    return best


def sample_discrete_powerlaw(
    rng: np.random.Generator, alpha: float, n: int, xmin: int = 1, xmax: int = 10**6
) -> np.ndarray:
    """Draw discrete power-law samples (for tests and ablations)."""
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a normalisable tail")
    xs = np.arange(xmin, xmax + 1, dtype=np.float64)
    p = xs**-alpha
    p /= p.sum()
    return rng.choice(np.arange(xmin, xmax + 1), size=n, p=p)
