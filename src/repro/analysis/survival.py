"""Survival analysis of hardware replacements (section 3.1, extended).

The paper reports replacement *counts* and eyeballs the infant-mortality
burst; related work (Ostrouchov et al.'s GPU study) applies survival
analysis to the same kind of data.  This module provides the standard
instruments so the burst can be quantified:

- :func:`weibull_mle` -- maximum-likelihood Weibull fit, optionally with
  right-censored units.  A shape parameter k < 1 is the statistical
  definition of infant mortality (decreasing hazard).
- :class:`KaplanMeier` -- the nonparametric survival curve.
- :func:`hazard_by_period` -- piecewise-constant hazard over calendar
  periods, exposing the bathtub shape directly.
- :func:`replacement_survival` -- glue from a replacement event stream
  to all of the above for one component kind.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro._util import DAY_S
from repro.analysis.replacements import component_population
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.replacements import REPLACEMENT_DTYPE, Component


@dataclass(frozen=True)
class WeibullFit:
    """MLE Weibull parameters."""

    shape: float  # k: < 1 infant mortality, ~1 constant, > 1 wear-out
    scale: float  # lambda, in the time unit of the data
    n_events: int
    n_censored: int

    @property
    def decreasing_hazard(self) -> bool:
        """True when the fitted hazard decreases over time (k < 1)."""
        return self.shape < 1.0


def weibull_mle(event_times, censored_times=()) -> WeibullFit:
    """Fit a Weibull distribution by maximum likelihood.

    ``event_times`` are observed failure ages; ``censored_times`` are
    ages of units still alive at the end of observation (right
    censoring).  The shape equation is solved by bracketing + Brent.
    """
    t = np.asarray(event_times, dtype=np.float64)
    c = np.asarray(censored_times, dtype=np.float64)
    if t.size < 2:
        raise ValueError("need at least two failure events")
    if np.any(t <= 0) or np.any(c < 0):
        raise ValueError("times must be positive")
    all_t = np.concatenate([t, c]) if c.size else t
    log_t = np.log(t)

    def equation(k: float) -> float:
        tk = all_t**k
        return float(
            (tk * np.log(all_t)).sum() / tk.sum() - 1.0 / k - log_t.mean()
        )

    lo, hi = 1e-3, 1.0
    # Expand the bracket until the equation changes sign.
    while equation(hi) < 0 and hi < 512:
        hi *= 2.0
    if equation(lo) > 0 or equation(hi) < 0:
        raise RuntimeError("Weibull shape equation could not be bracketed")
    k = float(brentq(equation, lo, hi, xtol=1e-10))
    scale = float(((all_t**k).sum() / t.size) ** (1.0 / k))
    return WeibullFit(shape=k, scale=scale, n_events=t.size, n_censored=c.size)


class KaplanMeier:
    """Nonparametric survival curve with right censoring."""

    def __init__(self, event_times, censored_times=()) -> None:
        t = np.asarray(event_times, dtype=np.float64)
        c = np.asarray(censored_times, dtype=np.float64)
        if t.size == 0:
            raise ValueError("need at least one event")
        times = np.unique(t)
        all_times = np.concatenate([t, c]) if c.size else t
        survival = []
        s = 1.0
        for ti in times:
            at_risk = int((all_times >= ti).sum())
            deaths = int((t == ti).sum())
            if at_risk > 0:
                s *= 1.0 - deaths / at_risk
            survival.append(s)
        #: Event times (ascending) and the survival value just after each.
        self.times = times
        self.survival = np.asarray(survival)

    def survival_at(self, t) -> np.ndarray:
        """S(t): probability of surviving past time ``t``."""
        t = np.asarray(t, dtype=np.float64)
        idx = np.searchsorted(self.times, t, side="right") - 1
        out = np.where(idx < 0, 1.0, self.survival[np.maximum(idx, 0)])
        return out if out.ndim else float(out)

    def median_survival(self) -> float | None:
        """Smallest event time with S(t) <= 0.5, or None if not reached."""
        below = np.flatnonzero(self.survival <= 0.5)
        return float(self.times[below[0]]) if below.size else None


def hazard_by_period(
    daily_counts: np.ndarray, population: int, period_days: int = 30
) -> np.ndarray:
    """Piecewise-constant hazard per ``period_days`` window.

    Hazard = failures per unit per day within each period, using the
    (slowly shrinking) surviving population as the denominator.  The
    bathtub's infant-mortality wall shows as a high first entry.
    """
    if population < 1:
        raise ValueError("population must be positive")
    daily = np.asarray(daily_counts, dtype=np.float64)
    n_periods = int(np.ceil(daily.size / period_days))
    out = np.empty(n_periods)
    alive = float(population)
    for p in range(n_periods):
        chunk = daily[p * period_days : (p + 1) * period_days]
        exposure = alive * chunk.size
        out[p] = chunk.sum() / exposure if exposure else 0.0
        alive -= chunk.sum()
    return out


@dataclass(frozen=True)
class SurvivalReport:
    """Survival summary for one component kind."""

    component: Component
    weibull: WeibullFit
    infant_hazard_ratio: float  # first period hazard / steady hazard
    km_survival_end: float  # fraction surviving the whole window


def replacement_survival(
    events: np.ndarray,
    component: Component,
    window: tuple[float, float],
    topology: AstraTopology | None = None,
    config: NodeConfig | None = None,
) -> SurvivalReport:
    """Full survival workup for one component kind.

    Each replacement is treated as the death of one distinct unit at its
    age since the window start, with the rest of the installed population
    right-censored at the window end -- the standard treatment when unit
    identities are not tracked across swaps.
    """
    if events.dtype != REPLACEMENT_DTYPE:
        raise ValueError("expected REPLACEMENT_DTYPE")
    topology = topology or AstraTopology()
    config = config or NodeConfig()
    t0, t1 = window
    sel = events[events["component"] == component]
    ages_days = (sel["time"] - t0) / DAY_S
    ages_days = ages_days[(ages_days > 0) & (ages_days <= (t1 - t0) / DAY_S)]
    population = component_population(component, topology, config)
    n_censored = max(population - ages_days.size, 0)
    horizon = (t1 - t0) / DAY_S
    censored = np.full(n_censored, horizon)

    weibull = weibull_mle(ages_days, censored)
    km = KaplanMeier(ages_days, censored)

    daily = np.bincount(
        ages_days.astype(np.int64), minlength=int(np.ceil(horizon))
    )
    hazard = hazard_by_period(daily, population)
    steady = hazard[1:-1].mean() if hazard.size > 2 else hazard.mean()
    ratio = float(hazard[0] / steady) if steady > 0 else np.inf

    return SurvivalReport(
        component=component,
        weibull=weibull,
        infant_hazard_ratio=ratio,
        km_survival_end=float(km.survival_at(horizon)),
    )
