"""Distributional analyses: per-node counts, ECDFs, concentration.

Backs Figure 4b (errors per fault), Figure 5 (per-node fault counts and
the CE concentration curve) and Figure 8 (per-bit-position and
per-address fault counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def per_node_counts(records: np.ndarray, n_nodes: int) -> np.ndarray:
    """Records per node over the whole system (zeros included)."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be positive")
    if records.size and records["node"].max() >= n_nodes:
        raise ValueError("record node id exceeds n_nodes")
    return np.bincount(records["node"].astype(np.int64), minlength=n_nodes)


def count_histogram(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Frequency-of-counts histogram (Figure 5a / Figure 8 shape).

    Returns ``(values, frequency)`` over the distinct positive counts:
    ``frequency[i]`` units had exactly ``values[i]`` records.  Zeros are
    excluded -- the paper plots only locations that appear in the data.
    """
    positive = counts[counts > 0]
    if positive.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    values, freq = np.unique(positive, return_counts=True)
    return values.astype(np.int64), freq.astype(np.int64)


@dataclass(frozen=True)
class ConcentrationCurve:
    """The Figure 5b ECDF: top-x nodes carry y fraction of all CEs."""

    #: Number of top nodes, 1..n (x-axis).
    n_top: np.ndarray
    #: Fraction of total CEs carried by the top x nodes (y-axis).
    share: np.ndarray

    def share_of_top(self, k: int) -> float:
        """Fraction of CEs on the k highest-CE nodes."""
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, self.n_top.size)
        return float(self.share[k - 1])

    def share_of_top_fraction(self, frac: float) -> float:
        """Fraction of CEs on the top ``frac`` of all nodes."""
        if not 0 < frac <= 1:
            raise ValueError("frac must be in (0, 1]")
        k = max(1, int(round(frac * self.n_top.size)))
        return self.share_of_top(k)

    def nodes_with_zero(self) -> int:
        """Number of nodes contributing nothing to the total."""
        # share stops growing once all contributing nodes are included.
        eps = 1e-12
        growing = np.flatnonzero(np.diff(self.share) > eps)
        contributors = (int(growing[-1]) + 2) if growing.size else 1
        if self.share[0] <= eps:
            return self.n_top.size  # nothing anywhere
        return self.n_top.size - contributors


def concentration_curve(per_node: np.ndarray) -> ConcentrationCurve:
    """Build the CE concentration ECDF from per-node counts."""
    total = per_node.sum()
    if total == 0:
        raise ValueError("no records to build a concentration curve from")
    ordered = np.sort(per_node)[::-1]
    share = np.cumsum(ordered) / total
    return ConcentrationCurve(
        n_top=np.arange(1, per_node.size + 1), share=share
    )


@dataclass(frozen=True)
class ErrorsPerFaultStats:
    """Summary statistics of the errors-per-fault distribution (Fig 4b)."""

    n_faults: int
    median: float
    mean: float
    p90: float
    p99: float
    maximum: int
    fraction_single_error: float


def errors_per_fault_stats(faults: np.ndarray) -> ErrorsPerFaultStats:
    """Summarise the per-fault error counts of a fault record array."""
    if faults.size == 0:
        raise ValueError("no faults")
    counts = faults["n_errors"].astype(np.float64)
    return ErrorsPerFaultStats(
        n_faults=int(faults.size),
        median=float(np.median(counts)),
        mean=float(counts.mean()),
        p90=float(np.percentile(counts, 90)),
        p99=float(np.percentile(counts, 99)),
        maximum=int(counts.max()),
        fraction_single_error=float((counts == 1).mean()),
    )


def per_bit_position_counts(faults: np.ndarray) -> np.ndarray:
    """Fault counts per codeword bit position (Figure 8a input).

    Only faults with a homogeneous, known bit position contribute (mixed
    or missing bit positions carry the sentinel).
    """
    bits = faults["bit_pos"]
    valid = bits >= 0
    return np.bincount(bits[valid].astype(np.int64), minlength=72)


def per_address_counts(faults: np.ndarray) -> np.ndarray:
    """Fault counts per distinct physical address (Figure 8b input).

    Returns the count for each distinct address observed (ascending
    address order); addresses of unattributed faults (0) are excluded.
    """
    addr = faults["address"][faults["address"] > 0]
    if addr.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, counts = np.unique(addr, return_counts=True)
    return counts.astype(np.int64)
