"""Positional analyses: rack regions and racks (Figures 10, 11, 12).

Section 3.4 compares Astra against the Cielo/Jaguar positional study:
each rack divides into bottom / middle / top regions of six chassis, and
error versus fault counts are examined per region and per rack.  The
temperature-uniformity checks (mean region temperature within 1 degC,
rack-to-rack spread under ~4.2 degC) are included because they carry the
paper's argument that temperature cannot explain the positional pattern.
"""

from __future__ import annotations

import numpy as np

from repro._util import DAY_S
from repro.machine.topology import N_REGIONS, AstraTopology


def counts_by_region(records: np.ndarray, topology: AstraTopology) -> np.ndarray:
    """Record counts per rack region (bottom, middle, top) -- Figure 10."""
    regions = topology.region_of(records["node"].astype(np.int64))
    return np.bincount(np.atleast_1d(regions), minlength=N_REGIONS)


def counts_by_rack(records: np.ndarray, topology: AstraTopology) -> np.ndarray:
    """Record counts per rack -- Figure 12."""
    racks = topology.rack_of(records["node"].astype(np.int64))
    return np.bincount(np.atleast_1d(racks), minlength=topology.n_racks)


def region_fraction_by_rack(
    records: np.ndarray, topology: AstraTopology
) -> np.ndarray:
    """Per-rack fraction of records in each region -- Figure 11.

    Returns shape (n_racks, 3); rows of racks with no records are zero.
    """
    nodes = records["node"].astype(np.int64)
    racks = topology.rack_of(nodes)
    regions = topology.region_of(nodes)
    flat = np.bincount(
        np.atleast_1d(racks) * N_REGIONS + np.atleast_1d(regions),
        minlength=topology.n_racks * N_REGIONS,
    ).reshape(topology.n_racks, N_REGIONS)
    totals = flat.sum(axis=1, keepdims=True)
    out = np.zeros_like(flat, dtype=np.float64)
    np.divide(flat, totals, out=out, where=totals > 0)
    return out


def top_region_dominance(fractions: np.ndarray) -> float:
    """Fraction of racks whose top region holds the plurality of faults.

    Sridharan et al. saw a systematic top-of-rack excess; on Astra no
    region dominates across racks, so this hovers near 1/3.
    """
    racks_with_data = fractions.sum(axis=1) > 0
    if not racks_with_data.any():
        raise ValueError("no racks with records")
    winners = fractions[racks_with_data].argmax(axis=1)
    return float((winners == 2).mean())


def mean_temperature_by_region(
    sensor_model,
    topology: AstraTopology,
    sensor_index: int,
    window: tuple[float, float],
    grid_s: float = 12 * 3600.0,
) -> np.ndarray:
    """System-wide mean sensor temperature per rack region.

    Supports the claim that region mean temperatures differ by well
    under 1 degC on Astra.
    """
    nodes = topology.all_node_ids()
    times = np.arange(window[0], window[1], grid_s)
    vals = sensor_model.value(
        nodes[:, None], np.full((1, times.size), sensor_index), times[None, :]
    ).mean(axis=1)
    regions = topology.region_of(nodes)
    out = np.array([vals[regions == r].mean() for r in range(N_REGIONS)])
    return out


def mean_temperature_by_rack(
    sensor_model,
    topology: AstraTopology,
    sensor_index: int,
    window: tuple[float, float],
    grid_s: float = 12 * 3600.0,
) -> np.ndarray:
    """System-wide mean sensor temperature per rack (spread < ~4.2 degC)."""
    nodes = topology.all_node_ids()
    times = np.arange(window[0], window[1], grid_s)
    vals = sensor_model.value(
        nodes[:, None], np.full((1, times.size), sensor_index), times[None, :]
    ).mean(axis=1)
    racks = topology.rack_of(nodes)
    return np.array(
        [vals[racks == r].mean() for r in range(topology.n_racks)]
    )
