"""Temporal burst structure of the CE stream.

Correctable errors do not arrive smoothly: a stuck cell under a hot access
pattern emits packets of CEs seconds apart, separated by quiet hours.
Burstiness is what makes the finite logging buffer of section 2.3 lossy
and what the errors-per-fault violin (Figure 4b) integrates over; this
module measures it directly:

- :func:`interarrival_times` -- per-node gaps between consecutive CEs;
- :func:`burst_stats` -- a summary: burst fraction, peak window load,
  and the coefficient of variation (CV > 1 means burstier than Poisson);
- :func:`peak_window_counts` -- the max CEs any node pushes through one
  polling window, i.e. the buffer size a lossless logger would need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE


def interarrival_times(errors: np.ndarray) -> np.ndarray:
    """Gaps (seconds) between consecutive CEs on the same node.

    The stream is grouped per node (the logging path is per node) and
    sorted in time; gaps across node boundaries are excluded.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    if errors.size < 2:
        return np.zeros(0, dtype=np.float64)
    order = np.lexsort((errors["time"], errors["node"]))
    t = errors["time"][order]
    node = errors["node"][order]
    gaps = np.diff(t)
    same = node[1:] == node[:-1]
    return gaps[same]


def peak_window_counts(
    errors: np.ndarray, window_s: float = 5.0
) -> np.ndarray:
    """Max CEs per ``window_s`` polling window, per affected node.

    This is the internal CE-buffer size a node would need to log its
    stream losslessly -- the quantity the bench_ablation_celog study
    sweeps against.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if errors.size == 0:
        return np.zeros(0, dtype=np.int64)
    win = np.floor(errors["time"] / window_s).astype(np.int64)
    node = errors["node"].astype(np.int64)
    key = np.stack([node, win], axis=1)
    uniq, counts = np.unique(key, axis=0, return_counts=True)
    nodes = uniq[:, 0]
    out = np.zeros(int(nodes.max()) + 1, dtype=np.int64)
    np.maximum.at(out, nodes, counts)
    return out[out > 0]


@dataclass(frozen=True)
class BurstSummary:
    """Summary of the CE stream's burst structure."""

    n_gaps: int
    median_gap_s: float
    p95_gap_s: float
    burst_fraction: float  # gaps under the burst threshold
    cv: float  # coefficient of variation of the gaps
    peak_window_max: int  # worst per-node CEs in one polling window

    @property
    def burstier_than_poisson(self) -> bool:
        """A Poisson process has CV 1; real CE streams exceed it."""
        return self.cv > 1.0


def burst_stats(
    errors: np.ndarray,
    burst_threshold_s: float = 60.0,
    poll_window_s: float = 5.0,
) -> BurstSummary:
    """Compute the burst summary of a CE stream."""
    gaps = interarrival_times(errors)
    if gaps.size == 0:
        raise ValueError("need at least two errors on one node")
    peaks = peak_window_counts(errors, poll_window_s)
    mean = gaps.mean()
    return BurstSummary(
        n_gaps=int(gaps.size),
        median_gap_s=float(np.median(gaps)),
        p95_gap_s=float(np.percentile(gaps, 95)),
        burst_fraction=float((gaps < burst_threshold_s).mean()),
        cv=float(gaps.std() / mean) if mean > 0 else np.inf,
        peak_window_max=int(peaks.max()),
    )
