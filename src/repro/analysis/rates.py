"""Fault rates, persistence classes, and per-mode FIT tables.

The paper reports a FIT only for DUEs (section 3.5); the companion
studies it builds on (Sridharan & Liberty; Siddiqua et al.) report
per-mode *fault* FIT rates and split faults into persistence classes.
This module adds those instruments so the campaign can be compared
against that literature:

- :func:`classify_persistence` -- transient (one error, never again),
  intermittent (recurring over a bounded span), or sustained (active
  across a long span) -- an observational proxy for the
  transient/intermittent/hard taxonomy;
- :func:`fault_fit_per_device` -- faults per 10^9 device-hours, overall
  and per mode;
- :func:`per_mode_fit_table` -- the rendered table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro._util import DAY_S
from repro.faults.types import FAULT_DTYPE, FaultMode


class Persistence(IntEnum):
    """Observational persistence class of a fault."""

    TRANSIENT = 0  # a single error, never repeated
    INTERMITTENT = 1  # repeats within a bounded window (< 1 day)
    SUSTAINED = 2  # active across days or more

    @property
    def label(self) -> str:
        return self.name.lower()


def classify_persistence(
    faults: np.ndarray, intermittent_span_s: float = DAY_S
) -> np.ndarray:
    """Assign a :class:`Persistence` class to every fault.

    Single-error faults are transient; multi-error faults whose first and
    last errors fall within ``intermittent_span_s`` are intermittent;
    longer-lived faults are sustained.  This mirrors how field studies
    bin faults when the underlying physics is unobservable.
    """
    if faults.dtype != FAULT_DTYPE:
        raise ValueError("expected FAULT_DTYPE")
    span = faults["last_time"] - faults["first_time"]
    out = np.full(faults.size, Persistence.SUSTAINED, dtype=np.int8)
    out[span < intermittent_span_s] = Persistence.INTERMITTENT
    out[faults["n_errors"] == 1] = Persistence.TRANSIENT
    return out


@dataclass(frozen=True)
class FitRate:
    """A FIT rate (failures per 10^9 device-hours) with its inputs."""

    n_events: int
    n_devices: int
    window_hours: float

    @property
    def fit(self) -> float:
        exposure = self.n_devices * self.window_hours
        return self.n_events / exposure * 1e9 if exposure else 0.0


def fault_fit_per_device(
    faults: np.ndarray,
    window: tuple[float, float],
    n_devices: int,
) -> FitRate:
    """Overall fault FIT per device (DIMM) over an observation window."""
    if n_devices < 1:
        raise ValueError("n_devices must be positive")
    t0, t1 = window
    if t1 <= t0:
        raise ValueError("empty window")
    inside = (faults["first_time"] >= t0) & (faults["first_time"] < t1)
    return FitRate(
        n_events=int(inside.sum()),
        n_devices=n_devices,
        window_hours=(t1 - t0) / 3600.0,
    )


def per_mode_fit_table(
    faults: np.ndarray,
    window: tuple[float, float],
    n_devices: int,
) -> list[tuple[str, int, float]]:
    """(mode label, fault count, FIT) rows for every observed mode."""
    rows = []
    for mode in FaultMode:
        sub = faults[faults["mode"] == mode]
        if sub.size == 0:
            continue
        rate = fault_fit_per_device(sub, window, n_devices)
        rows.append((mode.label, int(sub.size), rate.fit))
    return rows


def persistence_summary(faults: np.ndarray) -> dict[Persistence, int]:
    """Fault counts per persistence class."""
    classes = classify_persistence(faults)
    counts = np.bincount(classes, minlength=len(Persistence))
    return {p: int(counts[p]) for p in Persistence}


def render_fit_table(rows: list[tuple[str, int, float]]) -> str:
    """Text rendering of a per-mode FIT table."""
    lines = [f"{'mode':<14} {'faults':>8} {'FIT/DIMM':>10}"]
    for label, count, fit in rows:
        lines.append(f"{label:<14} {count:>8} {fit:>10.1f}")
    return "\n".join(lines)
