"""Temperature-versus-CE analyses (Figures 9 and 13).

Two instruments, matching section 3.3:

- **Windowed pre-error means** (Figure 9): for every CE, the mean
  temperature of the *errored DIMM's own sensor* over the 1 hour / 1 day
  / 1 week / 1 month preceding the error, histogrammed and fitted with a
  line.  Requests are deduplicated on (node, sensor, quantised end time)
  and evaluated in chunks, so the full 4.37 M-error campaign is
  tractable.

- **Schroeder-style decile curves** (Figure 13): monthly average
  temperature per (node, month) in deciles, against the average monthly
  CE rate within each decile; x is the decile's maximum sample value, as
  in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import MONTH_S
from repro.analysis.trends import LinearFit, linear_fit, n_months_in
from repro.machine.sensors import NodeSensorComplement


def errored_dimm_sensor(errors: np.ndarray) -> np.ndarray:
    """Sensor index covering each error's DIMM slot.

    This is the join the paper describes: a CE on slot J reads its
    temperature from the ``dimm_jlnp`` sensor.
    """
    complement = NodeSensorComplement()
    return complement.sensor_index_for_slot(errors["slot"].astype(np.int64))


def window_mean_temperature(
    errors: np.ndarray,
    sensor_model,
    window_s: float,
    quantize_s: float = 3600.0,
    chunk: int = 20000,
) -> np.ndarray:
    """Mean errored-DIMM temperature over the window preceding each error.

    Window end times are quantised to ``quantize_s`` before evaluation;
    errors sharing (node, sensor, quantised end) share one window-mean
    computation.  Returns one value per error.
    """
    if errors.size == 0:
        return np.zeros(0, dtype=np.float64)
    sensors = errored_dimm_sensor(errors)
    t_q = np.ceil(errors["time"] / quantize_s).astype(np.int64)
    key = np.stack(
        [errors["node"].astype(np.int64), sensors.astype(np.int64), t_q], axis=1
    )
    uniq, inverse = np.unique(key, axis=0, return_inverse=True)

    means = np.empty(uniq.shape[0], dtype=np.float64)
    ends = uniq[:, 2].astype(np.float64) * quantize_s
    for start in range(0, uniq.shape[0], chunk):
        sl = slice(start, start + chunk)
        means[sl] = sensor_model.window_mean(
            uniq[sl, 0], uniq[sl, 1], ends[sl], window_s
        )
    return means[inverse]


@dataclass(frozen=True)
class TemperatureCorrelation:
    """Figure 9 content for one window length."""

    window_s: float
    bin_centers: np.ndarray
    counts: np.ndarray
    fit: LinearFit

    def strongly_positive(self) -> bool:
        """Would this plot support "hotter means more errors"?

        Strong support needs both a positive slope and a solid positive
        correlation -- the bar the paper's data does not clear.
        """
        return self.fit.slope > 0 and self.fit.rvalue > 0.5


def ce_count_vs_temperature(
    errors: np.ndarray,
    sensor_model,
    window_s: float,
    n_bins: int = 25,
    quantize_s: float = 3600.0,
) -> TemperatureCorrelation:
    """Histogram CE counts by mean pre-error DIMM temperature, fit a line."""
    temps = window_mean_temperature(errors, sensor_model, window_s, quantize_s)
    if temps.size < 2:
        raise ValueError("need at least two errors")
    lo, hi = float(temps.min()), float(temps.max())
    if hi - lo < 1e-9:
        raise ValueError("degenerate temperature range")
    edges = np.linspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(temps, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    # Fit over populated bins only, as fitting count~temperature implies.
    populated = counts > 0
    fit = linear_fit(centers[populated], counts[populated])
    return TemperatureCorrelation(
        window_s=window_s, bin_centers=centers, counts=counts, fit=fit
    )


# ----------------------------------------------------------------------
# Monthly node statistics and decile curves (Figure 13)
# ----------------------------------------------------------------------
def monthly_node_sensor_means(
    sensor_model,
    sensor_index: int,
    window: tuple[float, float],
    n_nodes: int,
    grid_s: float = 4 * 3600.0,
) -> np.ndarray:
    """Mean sensor value per (node, month): shape (n_nodes, n_months).

    Sampled on a ``grid_s`` grid -- the monthly mean of the sensor field
    converges quickly because the components are periodic or block-wise.
    """
    t0, t1 = window
    n_months = n_months_in(window)
    out = np.empty((n_nodes, n_months), dtype=np.float64)
    nodes = np.arange(n_nodes, dtype=np.int64)
    for m in range(n_months):
        a = t0 + m * MONTH_S
        b = min(t0 + (m + 1) * MONTH_S, t1)
        times = np.arange(a, b, grid_s)
        vals = sensor_model.value(
            nodes[:, None],
            np.full((1, times.size), sensor_index),
            times[None, :],
        )
        out[:, m] = vals.mean(axis=1)
    return out


def monthly_ce_counts(
    errors: np.ndarray,
    window: tuple[float, float],
    n_nodes: int,
    slots: tuple[int, ...] | None = None,
) -> np.ndarray:
    """CE counts per (node, month), optionally restricted to DIMM slots.

    ``slots`` restricts to errors on specific slot indices, used to pair
    each DIMM sensor with the errors on the slots it covers.
    """
    t0, _ = window
    n_months = n_months_in(window)
    sel = errors
    if slots is not None:
        sel = sel[np.isin(sel["slot"], np.asarray(slots, dtype=sel["slot"].dtype))]
    month = np.floor((sel["time"] - t0) / MONTH_S).astype(np.int64)
    valid = (month >= 0) & (month < n_months)
    flat = sel["node"][valid].astype(np.int64) * n_months + month[valid]
    counts = np.bincount(flat, minlength=n_nodes * n_months)
    return counts.reshape(n_nodes, n_months)


@dataclass(frozen=True)
class DecileCurve:
    """One Figure 13 series: decile max temperature vs mean CE rate."""

    decile_max: np.ndarray  # x values (max sample in each decile)
    mean_rate: np.ndarray  # y values (mean monthly CE count per decile)

    def temperature_span(self) -> float:
        """First-to-ninth decile span, the paper's tightness measure."""
        return float(self.decile_max[-2] - self.decile_max[0])

    def increasing_trend(self) -> bool:
        """Whether rate rises with temperature across deciles.

        Uses Spearman rank correlation: a real temperature effect orders
        the deciles, while a single storm-heavy decile (common in CE
        data -- the paper's own Figure 13 has spiky deciles) merely adds
        an outlier that rank correlation shrugs off.
        """
        from scipy import stats

        if np.allclose(self.mean_rate, self.mean_rate[0]):
            return False  # perfectly flat: no trend by definition
        rho, pvalue = stats.spearmanr(
            np.arange(self.decile_max.size), self.mean_rate
        )
        # A real effect of the size prior work reports (CE rate doubling
        # per 10-20 degC) orders the deciles almost perfectly; rho 0.7
        # rejects chance orderings of spiky-but-trendless data.
        return bool(rho > 0.7 and pvalue < 0.05)


def decile_curve(
    samples: np.ndarray,
    rates: np.ndarray,
    n_deciles: int = 10,
    trim_top_fraction: float = 0.0,
) -> DecileCurve:
    """Decile analysis a la Schroeder et al.

    ``samples`` (e.g. monthly average temperatures) are split into
    ``n_deciles`` equal-population bins; each bin reports its maximum
    sample value (x) and the mean of ``rates`` over its members (y).

    ``trim_top_fraction`` drops that fraction of the highest rates within
    each decile before averaging.  CE rates are storm-dominated -- one
    node-month can carry tens of thousands of errors -- and a storm
    landing in an arbitrary decile manufactures spurious structure; a
    small trim removes the storms while a genuine bulk effect (the
    doubling-per-20-degC kind prior work reports) survives intact.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    rates = np.asarray(rates, dtype=np.float64).ravel()
    if samples.size != rates.size or samples.size < n_deciles:
        raise ValueError("need same-length arrays with >= one point per decile")
    if not 0 <= trim_top_fraction < 0.5:
        raise ValueError("trim_top_fraction must be in [0, 0.5)")
    order = np.argsort(samples, kind="stable")
    s, r = samples[order], rates[order]
    edges = np.linspace(0, s.size, n_deciles + 1).astype(np.int64)
    decile_max = np.array([s[a:b].max() for a, b in zip(edges[:-1], edges[1:])])
    means = []
    for a, b in zip(edges[:-1], edges[1:]):
        chunk = np.sort(r[a:b])
        keep = chunk.size - int(np.ceil(trim_top_fraction * chunk.size))
        means.append(chunk[: max(keep, 1)].mean())
    return DecileCurve(decile_max=decile_max, mean_rate=np.array(means))
