"""Utilisation (node power) versus CE rate, hot/cold split (Figure 14).

Astra has no direct CPU-utilisation telemetry, so the paper uses node DC
power as the proxy.  Each Figure 14 panel takes one temperature sensor,
splits the (node, month) samples at that sensor's median temperature into
a *hot* and a *cold* population, and plots mean monthly CE rate against
monthly average node power for each -- the Schroeder et al. method for
separating temperature effects from utilisation effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.temperature import monthly_node_sensor_means
from repro.analysis.trends import linear_fit
from repro.machine.sensors import NodeSensorComplement


@dataclass(frozen=True)
class HotColdCurves:
    """One Figure 14 panel: CE rate vs power, hot and cold halves."""

    sensor_name: str
    power_bin_centers_hot: np.ndarray
    rate_hot: np.ndarray
    power_bin_centers_cold: np.ndarray
    rate_cold: np.ndarray

    def hot_shifted_right(self) -> bool:
        """Hot samples sit at higher power (utilisation couples to heat)."""
        return float(
            np.average(self.power_bin_centers_hot, weights=np.maximum(self.rate_hot, 1e-9))
        ) >= float(
            np.average(
                self.power_bin_centers_cold, weights=np.maximum(self.rate_cold, 1e-9)
            )
        ) or float(self.power_bin_centers_hot.mean()) >= float(
            self.power_bin_centers_cold.mean()
        )

    def strong_power_trend(self) -> bool:
        """Would this panel support "higher utilisation, more errors"?"""
        for x, y in (
            (self.power_bin_centers_hot, self.rate_hot),
            (self.power_bin_centers_cold, self.rate_cold),
        ):
            if x.size >= 3 and not np.allclose(x, x[0]):
                fit = linear_fit(x, y)
                if fit.slope > 0 and fit.rvalue > 0.6:
                    return True
        return False


def _binned_mean_rate(
    power: np.ndarray, ce: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    lo, hi = float(power.min()), float(power.max())
    if hi - lo < 1e-9:
        return np.array([lo]), np.array([float(ce.mean())])
    edges = np.linspace(lo, hi, n_bins + 1)
    idx = np.clip(np.digitize(power, edges) - 1, 0, n_bins - 1)
    sums = np.bincount(idx, weights=ce, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    populated = counts > 0
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers[populated], sums[populated] / counts[populated]


def hot_cold_curves(
    sensor_name: str,
    temps: np.ndarray,
    power: np.ndarray,
    ce_counts: np.ndarray,
    n_bins: int = 10,
) -> HotColdCurves:
    """Split (node, month) samples at the sensor's median temperature.

    ``temps``, ``power``, ``ce_counts`` are aligned arrays (flattened
    (node, month) grids) of monthly means / counts.
    """
    temps = np.asarray(temps, dtype=np.float64).ravel()
    power = np.asarray(power, dtype=np.float64).ravel()
    ce = np.asarray(ce_counts, dtype=np.float64).ravel()
    if not (temps.size == power.size == ce.size) or temps.size < 4:
        raise ValueError("need aligned arrays of at least 4 samples")
    median = np.median(temps)
    hot = temps >= median
    xh, yh = _binned_mean_rate(power[hot], ce[hot], n_bins)
    xc, yc = _binned_mean_rate(power[~hot], ce[~hot], n_bins)
    return HotColdCurves(
        sensor_name=sensor_name,
        power_bin_centers_hot=xh,
        rate_hot=yh,
        power_bin_centers_cold=xc,
        rate_cold=yc,
    )


def monthly_node_power(
    sensor_model,
    window: tuple[float, float],
    n_nodes: int,
    grid_s: float = 4 * 3600.0,
) -> np.ndarray:
    """Monthly average node DC power: shape (n_nodes, n_months)."""
    power_sensor = NodeSensorComplement().power_sensor.index
    return monthly_node_sensor_means(
        sensor_model, power_sensor, window, n_nodes, grid_s
    )
