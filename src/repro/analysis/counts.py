"""Per-structure error and fault counting (Figures 6 and 7).

All functions take either CE record arrays or fault record arrays -- the
whole point of section 3.2 is that the two give different pictures, so
every aggregation works identically on both.  Records whose field carries
a sentinel (missing payload) are excluded from that field's aggregation
and reported separately.
"""

from __future__ import annotations

import numpy as np

#: Field -> number of values, for Astra-shaped records.
FIELD_SIZES = {
    "socket": 2,
    "slot": 16,
    "rank": 2,
    "bank": 16,
    "column": 1024,
}


def counts_by(records: np.ndarray, field: str, minlength: int | None = None):
    """Count records per value of ``field``, excluding sentinel values.

    Returns ``(counts, n_excluded)``.  ``counts[i]`` is the number of
    records with ``field == i``; records with negative (sentinel) values
    are excluded and counted in ``n_excluded``.

    Works on CE records (giving *error* counts) and on fault records
    (giving *fault* counts) alike.
    """
    if field not in records.dtype.names:
        raise ValueError(f"records have no field {field!r}")
    if minlength is None:
        minlength = FIELD_SIZES.get(field, 0)
    values = records[field]
    valid = values >= 0
    counts = np.bincount(values[valid].astype(np.int64), minlength=minlength)
    return counts, int((~valid).sum())


def weighted_counts_by(
    records: np.ndarray,
    field: str,
    weights: np.ndarray,
    minlength: int | None = None,
):
    """Sum ``weights`` per value of ``field`` (e.g. errors per fault row).

    With fault records and ``weights=faults["n_errors"]`` this gives the
    *errors attributed to faults at each location* -- a different (and
    often more useful) quantity than raw error counts when storm records
    lack payload.
    """
    if field not in records.dtype.names:
        raise ValueError(f"records have no field {field!r}")
    if len(weights) != records.size:
        raise ValueError("weights must align with records")
    if minlength is None:
        minlength = FIELD_SIZES.get(field, 0)
    values = records[field]
    valid = values >= 0
    counts = np.bincount(
        values[valid].astype(np.int64),
        weights=np.asarray(weights)[valid],
        minlength=minlength,
    )
    return counts, float(np.asarray(weights)[~valid].sum())


def errors_and_faults_by(
    errors: np.ndarray, faults: np.ndarray, field: str
) -> dict:
    """The paired view the paper's figures show: errors vs faults per value.

    Returns ``{"errors": ..., "faults": ..., "errors_excluded": ...,
    "faults_excluded": ...}``.
    """
    e_counts, e_excl = counts_by(errors, field)
    f_counts, f_excl = counts_by(faults, field)
    n = max(len(e_counts), len(f_counts))
    return {
        "errors": np.pad(e_counts, (0, n - len(e_counts))),
        "faults": np.pad(f_counts, (0, n - len(f_counts))),
        "errors_excluded": e_excl,
        "faults_excluded": f_excl,
    }


def observed_column_axis(errors: np.ndarray, faults: np.ndarray) -> np.ndarray:
    """Columns that appear in either stream, in ascending order.

    Figure 6c/f plot only the columns observed in the data -- with ~7 k
    faults over 1,024 columns most columns hold a handful of faults, and
    the figure's x-axis is the observed set.
    """
    cols = np.concatenate(
        [
            errors["column"][errors["column"] >= 0],
            faults["column"][faults["column"] >= 0],
        ]
    )
    return np.unique(cols).astype(np.int64)
