"""Replacement tallies (Table 1) and daily series (Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY_S
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.replacements import REPLACEMENT_DTYPE, Component


@dataclass(frozen=True)
class ReplacementRow:
    """One Table 1 row."""

    component: Component
    n_replaced: int
    population: int

    @property
    def percent(self) -> float:
        """Percent of the installed population replaced."""
        return 100.0 * self.n_replaced / self.population if self.population else 0.0

    def render(self) -> str:
        return (
            f"{self.component.label:<14} {self.n_replaced:>6} "
            f"{self.percent:>6.1f}% of {self.population}"
        )


def component_population(
    component: Component, topology: AstraTopology, config: NodeConfig
) -> int:
    """Installed population of a component kind (Table 1 denominators)."""
    if component is Component.PROCESSOR:
        return config.system_processor_count(topology.n_nodes)
    if component is Component.MOTHERBOARD:
        return topology.n_nodes
    return config.system_dimm_count(topology.n_nodes)


def replacement_table(
    events: np.ndarray,
    topology: AstraTopology | None = None,
    config: NodeConfig | None = None,
) -> list[ReplacementRow]:
    """Regenerate Table 1 from a replacement event stream."""
    if events.dtype != REPLACEMENT_DTYPE:
        raise ValueError("expected REPLACEMENT_DTYPE")
    topology = topology or AstraTopology()
    config = config or NodeConfig()
    counts = np.bincount(events["component"], minlength=len(Component))
    return [
        ReplacementRow(
            component=kind,
            n_replaced=int(counts[kind]),
            population=component_population(kind, topology, config),
        )
        for kind in Component
    ]


def daily_replacement_series(
    events: np.ndarray,
    component: Component,
    window: tuple[float, float],
) -> np.ndarray:
    """Daily replacement counts for one component kind (Figure 3)."""
    if events.dtype != REPLACEMENT_DTYPE:
        raise ValueError("expected REPLACEMENT_DTYPE")
    t0, t1 = window
    n_days = max(1, int(np.ceil((t1 - t0) / DAY_S)))
    sel = events[events["component"] == component]
    days = np.floor((sel["time"] - t0) / DAY_S).astype(np.int64)
    valid = (days >= 0) & (days < n_days)
    return np.bincount(days[valid], minlength=n_days)


def infant_mortality_ratio(daily: np.ndarray, burn_in_days: int = 30) -> float:
    """First-``burn_in_days`` daily replacement rate over the later rate.

    Values above 1 indicate elevated early (infant mortality)
    replacement, the section 3.1 observation.
    """
    if daily.size <= burn_in_days:
        raise ValueError("series shorter than the burn-in period")
    early = daily[:burn_in_days].mean()
    late = daily[burn_in_days:].mean()
    if late == 0:
        return np.inf if early > 0 else 1.0
    return float(early / late)
