"""Monthly series and linear trend fits (Figures 4a and 9).

Monthly buckets use fixed-width average months anchored at the start of
the error window, matching the paper's month-numbered x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro._util import MONTH_S, month_index
from repro.faults.coalesce import CoalesceOptions, errors_with_fault_ids
from repro.faults.types import REPORTED_MODES, FaultMode


def monthly_counts(times, t0: float, n_months: int) -> np.ndarray:
    """Event counts per month bucket; out-of-range events are dropped."""
    if n_months < 1:
        raise ValueError("n_months must be positive")
    idx = month_index(times, t0)
    idx = np.atleast_1d(idx)
    valid = (idx >= 0) & (idx < n_months)
    return np.bincount(idx[valid], minlength=n_months)


def n_months_in(window: tuple[float, float]) -> int:
    """Number of (possibly partial) month buckets covering a window."""
    return int(np.ceil((window[1] - window[0]) / MONTH_S))


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line fit with its correlation."""

    slope: float
    intercept: float
    rvalue: float
    pvalue: float

    def predict(self, x) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_fit(x, y) -> LinearFit:
    """Least-squares fit of y on x (Figure 9's trend lines)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two same-length arrays with >= 2 points")
    if np.allclose(x, x[0]):
        raise ValueError("x values are all identical")
    result = stats.linregress(x, y)
    return LinearFit(
        slope=float(result.slope),
        intercept=float(result.intercept),
        rvalue=float(result.rvalue),
        pvalue=float(result.pvalue),
    )


@dataclass(frozen=True)
class ModeMonthlySeries:
    """Figure 4a: total errors and per-mode errors by month."""

    t0: float
    all_errors: np.ndarray
    by_mode: dict  # FaultMode -> monthly error counts

    @property
    def n_months(self) -> int:
        return int(self.all_errors.size)

    def declining(self) -> bool:
        """The paper's "slightly downward trend" claim, as a slope test.

        Fit a line to log-counts over the full months (the first and the
        last bucket can be partial); declining means negative slope.
        """
        months = np.arange(self.n_months)
        counts = self.all_errors
        inner = slice(0, max(2, self.n_months - 1))
        y = np.log10(np.maximum(counts[inner], 1))
        return linear_fit(months[inner], y).slope < 0


def mode_monthly_series(
    errors: np.ndarray,
    window: tuple[float, float],
    options: CoalesceOptions | None = None,
) -> ModeMonthlySeries:
    """Build the Figure 4a series: per-month errors, total and by mode.

    Each error is attributed the mode of the fault it coalesces into;
    months follow the error window.
    """
    t0 = window[0]
    n_months = n_months_in(window)
    faults, fault_ids = errors_with_fault_ids(errors, options)
    all_series = monthly_counts(errors["time"], t0, n_months)
    mode_per_error = faults["mode"][fault_ids]
    by_mode = {}
    for mode in FaultMode:
        sel = mode_per_error == mode
        by_mode[mode] = monthly_counts(errors["time"][sel], t0, n_months)
    return ModeMonthlySeries(t0=t0, all_errors=all_series, by_mode=by_mode)


def reported_mode_totals(series: ModeMonthlySeries) -> dict:
    """Totals for the four modes the paper reports, plus the rest."""
    out = {mode: int(series.by_mode[mode].sum()) for mode in REPORTED_MODES}
    out["total"] = int(series.all_errors.sum())
    return out
