"""The statistical analyses the paper applies to its telemetry.

- :mod:`repro.analysis.counts` -- per-structure (socket / bank / column /
  rank / slot / node) error and fault aggregation (Figures 6, 7).
- :mod:`repro.analysis.distributions` -- per-node histograms, empirical
  CDFs, concentration shares, errors-per-fault statistics (Figures 4b,
  5, 8).
- :mod:`repro.analysis.powerlaw` -- discrete power-law fitting in the
  style of Clauset, Shalizi & Newman (the paper cites [3] for its
  power-law observations).
- :mod:`repro.analysis.uniformity` -- chi-square uniformity tests and
  spread measures backing the "fairly uniform" claims of section 3.2.
- :mod:`repro.analysis.trends` -- monthly series and linear fits
  (Figures 4a, 9).
- :mod:`repro.analysis.temperature` -- windowed pre-error temperature
  means and Schroeder-style decile analysis (Figures 9, 13).
- :mod:`repro.analysis.utilization` -- hot/cold splits of CE rate versus
  node power (Figure 14).
- :mod:`repro.analysis.positional` -- rack-region and per-rack analysis
  (Figures 10, 11, 12).
- :mod:`repro.analysis.replacements` -- Table 1 and Figure 3.
- :mod:`repro.analysis.ue` -- DUE rates and FIT (section 3.5, Figure 15).

Extensions beyond the paper's own figures:

- :mod:`repro.analysis.ecc_study` -- SEC-DED vs Chipkill error-pattern
  outcomes (quantifying the section 2.2 design trade-off).
- :mod:`repro.analysis.survival` -- Weibull/Kaplan-Meier treatment of
  the replacement data (quantifying section 3.1's infant mortality).
"""

from repro.analysis import (
    bursts,
    comparison,
    counts,
    distributions,
    ecc_study,
    positional,
    powerlaw,
    prediction,
    rates,
    replacements,
    survival,
    temperature,
    trends,
    ue,
    uniformity,
    utilization,
)

__all__ = [
    "bursts",
    "comparison",
    "counts",
    "distributions",
    "ecc_study",
    "positional",
    "powerlaw",
    "prediction",
    "rates",
    "replacements",
    "survival",
    "temperature",
    "trends",
    "ue",
    "uniformity",
    "utilization",
]
