"""Uncorrectable-error analysis (section 3.5, Figure 15).

Computes the DUE rate per DIMM per year over the HET recording window and
the corresponding FIT (failures per 10^9 device-hours), plus the daily
per-event-type series of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY_S, HOURS_PER_YEAR
from repro.synth.het import EVENT_TYPES, HET_DTYPE


def due_records(het: np.ndarray) -> np.ndarray:
    """The NON-RECOVERABLE subset (Figure 15b)."""
    if het.dtype != HET_DTYPE:
        raise ValueError("expected HET_DTYPE")
    return het[het["non_recoverable"]]


@dataclass(frozen=True)
class DueRate:
    """DUE rate over a recording window."""

    n_dues: int
    n_dimms: int
    window_years: float

    @property
    def per_dimm_year(self) -> float:
        """DUEs per DIMM per year (the paper reports 0.00948)."""
        return self.n_dues / (self.n_dimms * self.window_years)

    @property
    def fit_per_dimm(self) -> float:
        """FIT: failures per 10^9 device-hours (~1081 in the paper)."""
        return self.per_dimm_year / HOURS_PER_YEAR * 1e9


def due_rate(
    het: np.ndarray,
    window: tuple[float, float],
    n_dimms: int,
) -> DueRate:
    """Compute the DUE rate over ``window`` for a DIMM population."""
    if n_dimms < 1:
        raise ValueError("n_dimms must be positive")
    t0, t1 = window
    if t1 <= t0:
        raise ValueError("empty window")
    dues = due_records(het)
    inside = (dues["time"] >= t0) & (dues["time"] < t1)
    return DueRate(
        n_dues=int(inside.sum()),
        n_dimms=n_dimms,
        window_years=(t1 - t0) / (365.0 * DAY_S),
    )


def daily_counts_by_event(
    het: np.ndarray, window: tuple[float, float]
) -> dict[str, np.ndarray]:
    """Daily counts per event type over ``window`` (Figure 15 series)."""
    if het.dtype != HET_DTYPE:
        raise ValueError("expected HET_DTYPE")
    t0, t1 = window
    n_days = max(1, int(np.ceil((t1 - t0) / DAY_S)))
    out = {}
    days = np.floor((het["time"] - t0) / DAY_S).astype(np.int64)
    valid = (days >= 0) & (days < n_days)
    for idx, name in enumerate(EVENT_TYPES):
        sel = valid & (het["event"] == idx)
        out[name] = np.bincount(days[sel], minlength=n_days)
    return out


def recording_gap_respected(het: np.ndarray, gap_end: float) -> bool:
    """No HET records before the firmware update (the Figure 15 gap)."""
    if het.size == 0:
        return True
    return float(het["time"].min()) >= gap_end
