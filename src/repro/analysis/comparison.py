"""The cross-study comparison of section 3.4 and the conclusion, as code.

One of the paper's listed contributions is "a detailed comparison of
results presented here with the positional effects found in several
previous large-scale reliability studies".  This module encodes each
prior finding as a structured, machine-checkable claim and evaluates the
campaign against it, regenerating the comparison:

- Sridharan et al. (SC'13, Cielo/Jaguar): ~20% more faults in top-of-rack
  chassis; lower-numbered racks with more errors.
- Gupta et al. (DSN'15, Blue Waters): node failures likelier near the
  top of the rack.
- Schroeder et al. (SIGMETRICS'09, Google fleet): +20 degC correlates
  with at least a doubling of the CE rate; utilisation explains it.
- Hsu et al. (IPDPS'05): node failures double per +10 degC (Arrhenius).
- El-Sayed et al. (SIGMETRICS'12): no strong temperature correlation for
  DRAM-related failures -- the prior study Astra *agrees* with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.positional import (
    counts_by_rack,
    counts_by_region,
    region_fraction_by_rack,
    top_region_dominance,
)
from repro.analysis.temperature import (
    decile_curve,
    monthly_ce_counts,
    monthly_node_sensor_means,
)
from repro.analysis.trends import linear_fit


@dataclass(frozen=True)
class PriorFinding:
    """One prior study's positional/environmental claim."""

    study: str
    system: str
    claim: str
    #: Whether the paper reports Astra agreeing with the prior finding.
    astra_agrees: bool


PRIOR_FINDINGS = (
    PriorFinding(
        "Sridharan et al., SC'13",
        "Cielo/Jaguar",
        "top-of-rack chassis see ~20% more faults than bottom",
        astra_agrees=False,
    ),
    PriorFinding(
        "Gupta et al., DSN'15",
        "Blue Waters",
        "failures likelier in cages near the top of the rack",
        astra_agrees=False,
    ),
    PriorFinding(
        "Sridharan et al., SC'13",
        "Cielo/Jaguar",
        "lower-numbered racks experience more frequent errors",
        astra_agrees=False,
    ),
    PriorFinding(
        "Schroeder et al., SIGMETRICS'09",
        "Google fleet",
        "+20 degC correlates with >= 2x the correctable-error rate",
        astra_agrees=False,
    ),
    PriorFinding(
        "Hsu et al., IPDPS'05",
        "(unpublished data)",
        "node failure rate doubles per +10 degC (Arrhenius)",
        astra_agrees=False,
    ),
    PriorFinding(
        "El-Sayed et al., SIGMETRICS'12",
        "data centers",
        "no strong temperature correlation for DRAM-related failures",
        astra_agrees=True,
    ),
)


@dataclass(frozen=True)
class ComparisonRow:
    """A prior claim evaluated against the campaign."""

    finding: PriorFinding
    measured: str
    holds_on_campaign: bool

    @property
    def consistent_with_paper(self) -> bool:
        """The campaign should reproduce the paper's agree/disagree call."""
        return self.holds_on_campaign == self.finding.astra_agrees


def _top_bottom_fault_excess(campaign) -> float:
    region = counts_by_region(campaign.faults(), campaign.topology)
    return float(region[2] / max(region[0], 1) - 1.0)


def _rack_number_error_slope(campaign) -> float:
    racks = counts_by_rack(campaign.errors, campaign.topology)
    fit = linear_fit(np.arange(racks.size), racks)
    # Normalise: fraction of the mean per rack index.
    return float(fit.slope / max(racks.mean(), 1.0))


def _temperature_doubling_evidence(campaign, grid_s: float) -> bool:
    n_nodes = campaign.topology.n_nodes
    window = campaign.calibration.sensor_window
    temps = monthly_node_sensor_means(campaign.sensors, 0, window, n_nodes, grid_s)
    ces = monthly_ce_counts(campaign.errors, window, n_nodes)
    curve = decile_curve(
        temps.ravel(), ces.ravel().astype(np.float64), trim_top_fraction=0.002
    )
    return curve.increasing_trend()


def compare_with_prior_studies(campaign, grid_s: float = 24 * 3600.0) -> list[ComparisonRow]:
    """Evaluate every encoded prior finding against the campaign."""
    rows: list[ComparisonRow] = []

    # Sridharan's Cielo effect was *systematic*: the top chassis led in
    # (almost) every rack.  Astra's aggregate top excess is similar in
    # size (Figure 10b) but vanishes rack-by-rack (Figure 11), which is
    # the basis of the paper's disagreement -- so the claim is evaluated
    # as aggregate excess AND per-rack dominance together.
    excess = _top_bottom_fault_excess(campaign)
    dominance = top_region_dominance(
        region_fraction_by_rack(campaign.faults(), campaign.topology)
    )
    rows.append(
        ComparisonRow(
            PRIOR_FINDINGS[0],
            measured=(
                f"aggregate top-over-bottom excess {excess:+.1%}, but top "
                f"leads in only {dominance:.0%} of racks"
            ),
            holds_on_campaign=excess >= 0.20 and dominance > 0.5,
        )
    )
    region_err = counts_by_region(campaign.errors, campaign.topology)
    rows.append(
        ComparisonRow(
            PRIOR_FINDINGS[1],
            measured=(
                "errors by region (b,m,t) = "
                + ", ".join(str(int(x)) for x in region_err)
            ),
            holds_on_campaign=bool(region_err[2] == region_err.max()),
        )
    )
    slope = _rack_number_error_slope(campaign)
    rows.append(
        ComparisonRow(
            PRIOR_FINDINGS[2],
            measured=f"error trend per rack index {slope:+.2%} of mean",
            holds_on_campaign=slope < -0.01,
        )
    )
    doubling = _temperature_doubling_evidence(campaign, grid_s)
    rows.append(
        ComparisonRow(
            PRIOR_FINDINGS[3],
            measured="temperature-decile CE trend "
            + ("present" if doubling else "absent"),
            holds_on_campaign=doubling,
        )
    )
    rows.append(
        ComparisonRow(
            PRIOR_FINDINGS[4],
            measured="same decile evidence as above",
            holds_on_campaign=doubling,
        )
    )
    rows.append(
        ComparisonRow(
            PRIOR_FINDINGS[5],
            measured="no strong temperature correlation "
            + ("(holds)" if not doubling else "(violated)"),
            holds_on_campaign=not doubling,
        )
    )
    return rows


def render_comparison_table(rows: list[ComparisonRow]) -> str:
    """Text rendering of the cross-study table."""
    lines = [
        f"{'prior study':<32} {'system':<16} {'Astra (paper)':<14} "
        f"{'campaign':<10} claim",
        "-" * 110,
    ]
    for row in rows:
        paper = "agrees" if row.finding.astra_agrees else "disagrees"
        measured = "agrees" if row.holds_on_campaign else "disagrees"
        lines.append(
            f"{row.finding.study:<32} {row.finding.system:<16} {paper:<14} "
            f"{measured:<10} {row.finding.claim}"
        )
    return "\n".join(lines)
