"""Uniformity tests backing the "fairly uniform" claims of section 3.2.

The paper argues that fault counts across sockets, banks, columns and
rack regions are consistent with uniform-plus-noise, while error counts
are not.  Chi-square goodness of fit against the uniform distribution is
the standard instrument; relative spread (max/mean) gives the readable
companion number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class UniformityResult:
    """Chi-square uniformity test result."""

    statistic: float
    pvalue: float
    cv: float  # coefficient of variation of the counts
    max_over_mean: float

    def is_uniform(self, alpha: float = 0.01) -> bool:
        """Whether uniformity is *not rejected* at level ``alpha``."""
        return self.pvalue >= alpha


def chi_square_uniform(counts) -> UniformityResult:
    """Test observed category counts against the uniform distribution."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size < 2:
        raise ValueError("need a 1-D array of at least two category counts")
    if counts.sum() <= 0:
        raise ValueError("counts sum to zero")
    statistic, pvalue = stats.chisquare(counts)
    mean = counts.mean()
    return UniformityResult(
        statistic=float(statistic),
        pvalue=float(pvalue),
        cv=float(counts.std() / mean) if mean else np.inf,
        max_over_mean=float(counts.max() / mean) if mean else np.inf,
    )


def subsampled_uniformity(
    counts, sample_size: int = 2000, seed: int = 0
) -> UniformityResult:
    """Uniformity test at a fixed statistical power.

    With millions of observations a chi-square test rejects uniformity
    for trivially small deviations; the paper's claim is about *practical*
    uniformity ("variation can be explained by statistical noise" at the
    fault scale).  Testing a multinomial subsample of fixed size asks the
    comparable question: would a dataset the size of the fault population
    distinguish these counts from uniform?
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts sum to zero")
    rng = np.random.default_rng(seed)
    sample = rng.multinomial(min(sample_size, int(total)), counts / total)
    return chi_square_uniform(sample)


def relative_spread(counts) -> float:
    """(max - min) / mean of category counts; 0 for perfectly uniform."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0 or counts.mean() == 0:
        raise ValueError("need nonzero counts")
    return float((counts.max() - counts.min()) / counts.mean())
