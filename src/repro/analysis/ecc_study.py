"""SEC-DED versus Chipkill: the protection trade-off Astra made.

Astra's designers chose SEC-DED over Chipkill to save cost and power
(section 2.2); the consequence, noted in section 3.2, is that any fault
corrupting more than one bit of a word -- a multi-bit device fault, a dead
chip -- surfaces as a detected uncorrectable error (or worse).  This
module quantifies the trade-off by Monte-Carlo-injecting physically
motivated error patterns through both *real* codecs:

- :class:`repro.machine.dram.SecDed72` -- Hsiao (72,64), what Astra runs;
- :class:`repro.machine.chipkill.ChipkillSsc` -- an SSC-DSD symbol code
  over GF(256), the chipkill-correct class.

Patterns are defined at device granularity (x8 DRAM chips), the level at
which real faults strike.  Outcomes distinguish *miscorrection* (the
decoder "fixes" the word into silent corruption) from clean detection,
because that is the difference between a crashed job and a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.chipkill import (
    CHECK_SYMBOLS,
    CODEWORD_SYMBOLS,
    DATA_SYMBOLS,
    ChipkillSsc,
)
from repro.machine.dram import CODEWORD_BITS, DATA_BITS, SecDed72

#: The error patterns studied, in escalating severity.
PATTERNS = (
    "single-bit",
    "double-bit same device",
    "double-bit cross device",
    "single device failure",
    "double device failure",
)


@dataclass(frozen=True)
class EccOutcomes:
    """Monte-Carlo outcome tallies for one (scheme, pattern) pair."""

    corrected: int
    detected: int
    miscorrected: int
    undetected: int

    @property
    def trials(self) -> int:
        return self.corrected + self.detected + self.miscorrected + self.undetected

    @property
    def silent_fraction(self) -> float:
        """Fraction of trials ending in silent corruption (the worst)."""
        bad = self.miscorrected + self.undetected
        return bad / self.trials if self.trials else 0.0

    def summary(self) -> str:
        n = max(self.trials, 1)
        return (
            f"corrected {self.corrected / n:6.1%}  "
            f"detected {self.detected / n:6.1%}  "
            f"miscorrected {self.miscorrected / n:6.1%}  "
            f"undetected {self.undetected / n:6.1%}"
        )


# ----------------------------------------------------------------------
# SEC-DED evaluation: 72-bit words over nine x8 devices (8 data + check).
# ----------------------------------------------------------------------
_SECDED_DEVICES = CODEWORD_BITS // 8  # 9


def _secded_pattern_bits(pattern: str, n: int, rng) -> list[np.ndarray]:
    """Per-trial lists of codeword bit positions to flip."""
    if pattern == "single-bit":
        return [rng.integers(0, CODEWORD_BITS, 1) for _ in range(n)]
    if pattern == "double-bit same device":
        out = []
        for _ in range(n):
            dev = rng.integers(0, _SECDED_DEVICES)
            bits = dev * 8 + rng.choice(8, 2, replace=False)
            out.append(bits)
        return out
    if pattern == "double-bit cross device":
        out = []
        for _ in range(n):
            devs = rng.choice(_SECDED_DEVICES, 2, replace=False)
            out.append(devs * 8 + rng.integers(0, 8, 2))
        return out
    if pattern == "single device failure":
        out = []
        for _ in range(n):
            dev = int(rng.integers(0, _SECDED_DEVICES))
            byte = int(rng.integers(1, 256))  # nonzero corruption
            bits = np.flatnonzero([(byte >> b) & 1 for b in range(8)]) + dev * 8
            out.append(bits)
        return out
    if pattern == "double device failure":
        out = []
        for _ in range(n):
            devs = rng.choice(_SECDED_DEVICES, 2, replace=False)
            bits = []
            for dev in devs:
                byte = int(rng.integers(1, 256))
                bits.extend(
                    int(dev) * 8 + b for b in range(8) if (byte >> b) & 1
                )
            out.append(np.array(bits))
        return out
    raise ValueError(f"unknown pattern: {pattern!r}")


def evaluate_secded(pattern: str, trials: int = 2000, seed: int = 0) -> EccOutcomes:
    """Inject a pattern through the Hsiao SEC-DED codec."""
    rng = np.random.default_rng(seed)
    code = SecDed72()
    corrected = detected = miscorrected = undetected = 0
    flips = _secded_pattern_bits(pattern, trials, rng)
    data = rng.integers(0, 2**63, trials, dtype=np.uint64)
    checks = code.encode(data)
    for i in range(trials):
        bad_d, bad_c = data[i], int(checks[i])
        for pos in np.asarray(flips[i], dtype=np.int64):
            if pos < DATA_BITS:
                bad_d = bad_d ^ (np.uint64(1) << np.uint64(pos))
            else:
                bad_c ^= 1 << int(pos - DATA_BITS)
        fixed, status = code.correct(bad_d, np.uint8(bad_c))
        if status == 0:
            # Zero syndrome with flips applied: undetected corruption.
            undetected += 1
        elif status == 2:
            detected += 1
        elif fixed == data[i]:
            corrected += 1
        else:
            miscorrected += 1
    return EccOutcomes(corrected, detected, miscorrected, undetected)


# ----------------------------------------------------------------------
# Chipkill evaluation: 19-symbol words over x8 devices (one per symbol).
# ----------------------------------------------------------------------
def _chipkill_pattern_symbols(pattern: str, n: int, rng):
    """Per-trial (positions, error_bytes) to XOR into codewords."""
    if pattern == "single-bit":
        pos = rng.integers(0, CODEWORD_SYMBOLS, (n, 1))
        err = (1 << rng.integers(0, 8, (n, 1))).astype(np.uint8)
        return pos, err
    if pattern == "double-bit same device":
        pos = rng.integers(0, CODEWORD_SYMBOLS, (n, 1))
        err = np.zeros((n, 1), dtype=np.uint8)
        for i in range(n):
            bits = rng.choice(8, 2, replace=False)
            err[i, 0] = (1 << bits[0]) | (1 << bits[1])
        return pos, err
    if pattern == "double-bit cross device":
        pos = np.stack(
            [rng.choice(CODEWORD_SYMBOLS, 2, replace=False) for _ in range(n)]
        )
        err = (1 << rng.integers(0, 8, (n, 2))).astype(np.uint8)
        return pos, err
    if pattern == "single device failure":
        pos = rng.integers(0, CODEWORD_SYMBOLS, (n, 1))
        err = rng.integers(1, 256, (n, 1)).astype(np.uint8)
        return pos, err
    if pattern == "double device failure":
        pos = np.stack(
            [rng.choice(CODEWORD_SYMBOLS, 2, replace=False) for _ in range(n)]
        )
        err = rng.integers(1, 256, (n, 2)).astype(np.uint8)
        return pos, err
    raise ValueError(f"unknown pattern: {pattern!r}")


def evaluate_chipkill(pattern: str, trials: int = 2000, seed: int = 0) -> EccOutcomes:
    """Inject a pattern through the SSC-DSD chipkill codec."""
    rng = np.random.default_rng(seed)
    code = ChipkillSsc()
    data = rng.integers(0, 256, (trials, DATA_SYMBOLS)).astype(np.uint8)
    clean = code.encode(data)
    bad = clean.copy()
    pos, err = _chipkill_pattern_symbols(pattern, trials, rng)
    rows = np.arange(trials)[:, None]
    bad[rows, pos] ^= err
    fixed, status = code.decode(bad)

    corrected = detected = miscorrected = undetected = 0
    for i in range(trials):
        if status[i] == 0:
            undetected += 1
        elif status[i] == 2:
            detected += 1
        elif np.array_equal(fixed[i], clean[i]):
            corrected += 1
        else:
            miscorrected += 1
    return EccOutcomes(corrected, detected, miscorrected, undetected)


def compare_schemes(trials: int = 2000, seed: int = 0) -> dict:
    """Run every pattern through both codecs.

    Returns ``{pattern: {"secded": EccOutcomes, "chipkill": EccOutcomes}}``.
    """
    out = {}
    for pattern in PATTERNS:
        out[pattern] = {
            "secded": evaluate_secded(pattern, trials, seed),
            "chipkill": evaluate_chipkill(pattern, trials, seed),
        }
    return out


def render_comparison(results: dict) -> str:
    """Text table of the scheme comparison."""
    lines = [
        "pattern                         scheme     outcome mix",
        "-" * 78,
    ]
    for pattern, pair in results.items():
        for scheme in ("secded", "chipkill"):
            lines.append(
                f"{pattern:<30} {scheme:<9} {pair[scheme].summary()}"
            )
    return "\n".join(lines)
