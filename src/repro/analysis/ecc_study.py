"""SEC-DED versus Chipkill: the protection trade-off Astra made.

Astra's designers chose SEC-DED over Chipkill to save cost and power
(section 2.2); the consequence, noted in section 3.2, is that any fault
corrupting more than one bit of a word -- a multi-bit device fault, a dead
chip -- surfaces as a detected uncorrectable error (or worse).  This
module quantifies the trade-off by Monte-Carlo-injecting physically
motivated error patterns through both *real* codecs:

- :class:`repro.machine.dram.SecDed72` -- Hsiao (72,64), what Astra runs;
- :class:`repro.machine.chipkill.ChipkillSsc` -- an SSC-DSD symbol code
  over GF(256), the chipkill-correct class.

The evaluation machinery now lives in :mod:`repro.mitigation.codes`,
the code-model layer shared with the counterfactual what-if engine
(:mod:`repro.mitigation.whatif`); this module re-exports it unchanged
-- same functions, same RNG draw order, byte-identical results -- and
keeps the text rendering for the ablation bench and examples.
"""

from __future__ import annotations

from repro.machine.chipkill import (  # noqa: F401  (re-exported context)
    CHECK_SYMBOLS,
    CODEWORD_SYMBOLS,
    DATA_SYMBOLS,
    ChipkillSsc,
)
from repro.machine.dram import (  # noqa: F401  (re-exported context)
    CODEWORD_BITS,
    DATA_BITS,
    SecDed72,
)
from repro.mitigation.codes import (  # noqa: F401
    PATTERNS,
    EccOutcomes,
    _chipkill_pattern_symbols,
    _secded_pattern_bits,
    compare_schemes,
    evaluate_chipkill,
    evaluate_secded,
)

_SECDED_DEVICES = CODEWORD_BITS // 8  # 9

__all__ = [
    "PATTERNS",
    "EccOutcomes",
    "compare_schemes",
    "evaluate_chipkill",
    "evaluate_secded",
    "render_comparison",
]


def render_comparison(results: dict) -> str:
    """Text table of the scheme comparison."""
    lines = [
        "pattern                         scheme     outcome mix",
        "-" * 78,
    ]
    for pattern, pair in results.items():
        for scheme in ("secded", "chipkill"):
            lines.append(
                f"{pattern:<30} {scheme:<9} {pair[scheme].summary()}"
            )
    return "\n".join(lines)
