"""astra-memrepro: reproduction of the HPDC'22 Astra memory-failure study.

The package is layered bottom-up:

- :mod:`repro.machine` -- the Astra platform model (topology, node
  internals, DRAM geometry, ECC, sensors, cooling).
- :mod:`repro.faults` -- fault/error taxonomy, error-to-fault coalescing
  and fault-mode classification.
- :mod:`repro.synth` -- calibrated synthetic telemetry generators standing
  in for the proprietary production logs (see DESIGN.md section 2).
- :mod:`repro.logs` -- on-disk log formats (syslog CE records, BMC sensor
  streams, inventory scans, HET records) and the columnar record store.
- :mod:`repro.analysis` -- the statistics the paper applies: power-law
  fits, uniformity tests, concentration curves, temperature and
  utilisation correlation, positional aggregation, FIT rates.
- :mod:`repro.mitigation` -- page-retirement and node-exclusion
  simulators for the mitigation implications the paper argues for.
- :mod:`repro.experiments` -- one module per paper table/figure that
  regenerates its rows/series.
- :mod:`repro.parallel` -- shard-parallel execution of the analyses.

Quickstart::

    from repro.synth import CampaignGenerator
    from repro import experiments
    campaign = CampaignGenerator(seed=7).generate()
    result = experiments.run("fig05", campaign)
    print(result.render())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
