"""Compute-node internals: sockets, memory channels and DIMM slots.

Each Astra node carries two 28-core Marvell ThunderX2 sockets.  Each socket
drives eight DDR4-2666 memory channels with one dual-rank 8 GB registered
DIMM per channel (paper section 2.2).  The sixteen DIMM slots are lettered
``A`` through ``P``; slots ``A``-``H`` belong to socket 0 and ``I``-``P``
to socket 1 (Figure 7 caption).

Slot letters are the unit the paper reports per-slot fault counts in
(Figure 7c/d), so this module provides fast letter <-> index <-> socket
conversions, vectorised over NumPy arrays where useful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: DIMM slot letters in index order.  Index ``i`` maps to socket ``i // 8``
#: and channel ``i % 8`` on that socket.
DIMM_SLOTS = tuple("ABCDEFGHIJKLMNOP")

#: Number of DIMM slots per node.
N_SLOTS = len(DIMM_SLOTS)

_SLOT_TO_INDEX = {letter: i for i, letter in enumerate(DIMM_SLOTS)}


def slot_index(letter: str) -> int:
    """Return the 0-based slot index for a slot letter (``'A'`` -> 0)."""
    try:
        return _SLOT_TO_INDEX[letter.upper()]
    except KeyError:
        raise ValueError(f"unknown DIMM slot letter: {letter!r}") from None


def slot_letter(index: int) -> str:
    """Return the slot letter for a 0-based slot index (0 -> ``'A'``)."""
    if not 0 <= index < N_SLOTS:
        raise ValueError(f"slot index out of range: {index}")
    return DIMM_SLOTS[index]


def socket_of_slot(slot):
    """Socket (0 or 1) owning a slot, by letter, index, or index array.

    >>> socket_of_slot("A"), socket_of_slot("I")
    (0, 1)
    """
    if isinstance(slot, str):
        return slot_index(slot) // 8
    arr = np.asarray(slot)
    if np.any((arr < 0) | (arr >= N_SLOTS)):
        raise ValueError("slot index out of range")
    out = arr // 8
    return out if out.ndim else int(out)


def channel_of_slot(slot):
    """Memory channel (0..7) of a slot within its socket."""
    if isinstance(slot, str):
        return slot_index(slot) % 8
    arr = np.asarray(slot)
    if np.any((arr < 0) | (arr >= N_SLOTS)):
        raise ValueError("slot index out of range")
    out = arr % 8
    return out if out.ndim else int(out)


def slots_of_socket(socket: int) -> tuple[str, ...]:
    """The eight slot letters attached to a socket."""
    if socket == 0:
        return DIMM_SLOTS[:8]
    if socket == 1:
        return DIMM_SLOTS[8:]
    raise ValueError(f"socket out of range: {socket}")


@dataclass(frozen=True)
class NodeConfig:
    """Static configuration of one compute node.

    Defaults describe an Astra node.  The derived properties are the
    denominators used throughout the analysis (DIMMs per node, total
    memory, and so on).
    """

    n_sockets: int = 2
    cores_per_socket: int = 28
    channels_per_socket: int = 8
    dimms_per_channel: int = 1
    ranks_per_dimm: int = 2
    dimm_capacity_gib: int = 8
    dram_generation: str = "DDR4-2666"
    ecc_scheme: str = "SEC-DED"  # Astra uses SEC-DED, *not* Chipkill

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ValueError("n_sockets must be positive")
        if self.channels_per_socket < 1 or self.dimms_per_channel < 1:
            raise ValueError("memory channel configuration must be positive")
        if self.ranks_per_dimm < 1:
            raise ValueError("ranks_per_dimm must be positive")

    @property
    def n_cores(self) -> int:
        """Total cores per node."""
        return self.n_sockets * self.cores_per_socket

    @property
    def dimms_per_socket(self) -> int:
        """DIMMs attached to one socket."""
        return self.channels_per_socket * self.dimms_per_channel

    @property
    def dimms_per_node(self) -> int:
        """Total DIMMs per node (16 on Astra)."""
        return self.n_sockets * self.dimms_per_socket

    @property
    def memory_per_node_gib(self) -> int:
        """Total DRAM capacity per node in GiB."""
        return self.dimms_per_node * self.dimm_capacity_gib

    def system_dimm_count(self, n_nodes: int) -> int:
        """DIMM population of a system with ``n_nodes`` nodes.

        For Astra (2,592 nodes) this is the 41,472 DIMM denominator used in
        Table 1 and in the FIT computation of section 3.5.
        """
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        return n_nodes * self.dimms_per_node

    def system_processor_count(self, n_nodes: int) -> int:
        """Processor (socket) population of an ``n_nodes`` system (5,184)."""
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        return n_nodes * self.n_sockets
