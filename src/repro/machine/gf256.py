"""GF(2^8) arithmetic for the symbol-level (Chipkill-class) ECC model.

A tiny, table-driven Galois-field implementation: log/antilog tables over
the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11B), with vectorised
multiply/divide/power on NumPy ``uint8`` arrays.  Enough field to build
the RS-style single-symbol-correct code in :mod:`repro.machine.chipkill`.
"""

from __future__ import annotations

import numpy as np

#: Field-defining polynomial (degree-8 terms included): x^8+x^4+x^3+x+1.
POLY = 0x11B
#: Multiplicative generator used to build the tables.
GENERATOR = 0x03

_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int16)


def _build_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        # multiply by the generator (0x03 = x + 1): x*2 ^ x
        hi = x << 1
        if hi & 0x100:
            hi ^= POLY
        x = hi ^ x
    _EXP[255:510] = _EXP[:255]  # wraparound for cheap modular indexing
    _LOG[0] = -1


_build_tables()


def gf_mul(a, b):
    """Multiply in GF(256), vectorised; 0 * anything = 0."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    out = _EXP[(_LOG[a] + _LOG[b]) % 255]
    out = np.where((a == 0) | (b == 0), 0, out)
    return out if out.ndim else np.uint8(out)


def gf_div(a, b):
    """Divide in GF(256); division by zero raises."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    out = _EXP[(_LOG[a] - _LOG[b]) % 255]
    out = np.where(a == 0, 0, out)
    return out if out.ndim else np.uint8(out)


def gf_pow(base: int, exponent) -> np.ndarray:
    """``base ** exponent`` in GF(256) for integer exponent arrays."""
    if base == 0:
        raise ValueError("gf_pow base must be nonzero")
    e = np.asarray(exponent, dtype=np.int64)
    out = _EXP[(_LOG[base] * e) % 255]
    return out if out.ndim else np.uint8(out)


def gf_log(a) -> np.ndarray:
    """Discrete log base the generator; log(0) is -1 by convention."""
    out = _LOG[np.asarray(a, dtype=np.uint8)]
    return out if out.ndim else int(out)


def alpha(i) -> np.ndarray:
    """The field element alpha^i (alpha = the generator)."""
    out = _EXP[np.asarray(i, dtype=np.int64) % 255]
    return out if out.ndim else np.uint8(out)
