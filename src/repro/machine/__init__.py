"""Machine model of the Astra platform.

This subpackage encodes the physical structure that every analysis in the
paper is phrased against:

- :mod:`repro.machine.topology` -- the rack / chassis / node hierarchy and
  the three vertical rack regions used by the positional analysis (paper
  section 3.4).
- :mod:`repro.machine.node` -- node internals: two ThunderX2 sockets, eight
  memory channels per socket, DIMM slots ``A`` .. ``P`` and their socket
  affinity (paper section 2.2, Figure 1).
- :mod:`repro.machine.dram` -- DDR4 device geometry, the node physical
  address map, and a working Hsiao SEC-DED (72,64) code used to produce
  the syndromes carried by correctable-error records (paper section 2.1).
- :mod:`repro.machine.sensors` -- the per-node sensor complement: one CPU
  temperature sensor per socket, one DIMM temperature sensor per group of
  four DIMM slots, and one DC power sensor (paper section 2.2, Figure 2).
- :mod:`repro.machine.cooling` -- the front-to-back airflow model that
  makes the CPU1 side of a node run hotter than the CPU2 side (Figure 1,
  section 3.3).

All quantities default to Astra's published configuration but are
parameterisable so tests can exercise miniature systems.
"""

from repro.machine.topology import (
    AstraTopology,
    NodeLocation,
    REGION_BOTTOM,
    REGION_MIDDLE,
    REGION_TOP,
    REGION_NAMES,
)
from repro.machine.node import (
    DIMM_SLOTS,
    NodeConfig,
    slot_index,
    slot_letter,
    socket_of_slot,
)
from repro.machine.chipkill import ChipkillSsc
from repro.machine.dram import DRAMGeometry, AddressMap, SecDed72
from repro.machine.memsim import Defect, DefectKind, SimulatedRank
from repro.machine.sensors import SensorSpec, NodeSensorComplement
from repro.machine.cooling import CoolingModel

__all__ = [
    "AstraTopology",
    "NodeLocation",
    "REGION_BOTTOM",
    "REGION_MIDDLE",
    "REGION_TOP",
    "REGION_NAMES",
    "DIMM_SLOTS",
    "NodeConfig",
    "slot_index",
    "slot_letter",
    "socket_of_slot",
    "DRAMGeometry",
    "AddressMap",
    "SecDed72",
    "ChipkillSsc",
    "Defect",
    "DefectKind",
    "SimulatedRank",
    "SensorSpec",
    "NodeSensorComplement",
    "CoolingModel",
]
