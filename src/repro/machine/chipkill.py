"""A Chipkill-class symbol-correcting code, for the SEC-DED comparison.

Astra deliberately uses SEC-DED rather than Chipkill (section 2.2): it is
cheaper and less power-hungry, at the cost that any multi-bit fault
confined to one DRAM device -- let alone a dead device -- becomes a
detected uncorrectable error (the paper notes multi-rank/multi-bank
faults "would manifest as uncorrectable memory errors").

To quantify that trade-off we implement a real single-symbol-correct /
double-symbol-detect (SSC-DSD) code over GF(256): data words are 16
8-bit symbols (one per x8 DRAM device of a rank) plus 3 check symbols,
with the Reed-Solomon-style parity-check matrix::

    H = [ alpha^(0*j) ]          j = 0 .. n-1
        [ alpha^(1*j) ]
        [ alpha^(2*j) ]

Any error confined to one symbol yields syndromes S0 = e,
S1 = e*alpha^j, S2 = e*alpha^(2j), which are mutually consistent
(S1^2 == S0*S2) and locate the symbol as j = log(S1/S0).  Errors
spanning two symbols break the consistency relation and are detected.
This is the textbook construction behind "chipkill-correct" DIMMs,
evaluated at pattern level exactly like :class:`SecDed72`.
"""

from __future__ import annotations

import numpy as np

from repro.machine.gf256 import alpha, gf_div, gf_log, gf_mul

#: Data symbols per codeword: one per x8 device carrying data.
DATA_SYMBOLS = 16
#: Check symbols (three -> minimum distance 4: SSC-DSD).
CHECK_SYMBOLS = 3
#: Total codeword symbols.
CODEWORD_SYMBOLS = DATA_SYMBOLS + CHECK_SYMBOLS

#: Decode outcomes, mirroring SecDed72.classify's convention.
CLEAN = 0
CORRECTED = 1
DETECTED_UNCORRECTABLE = 2


class ChipkillSsc:
    """SSC-DSD symbol code over GF(256)."""

    def __init__(self) -> None:
        j = np.arange(CODEWORD_SYMBOLS, dtype=np.int64)
        #: H rows: alpha^(r*j) for r = 0, 1, 2.
        self._h = np.stack([alpha(r * j) for r in range(CHECK_SYMBOLS)])

    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Append check symbols to data words.

        ``data`` has shape (..., 16) of uint8; returns (..., 19).  The
        check symbols are chosen so every row of H sums (XORs) to zero
        over the codeword; solving the 3x3 system over the check
        positions is precomputed via matrix inversion in GF(256).
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] != DATA_SYMBOLS:
            raise ValueError(f"data must have {DATA_SYMBOLS} symbols")
        # Partial syndromes over data positions.
        partial = self._syndromes_at(data, np.arange(DATA_SYMBOLS))
        checks = self._solve_checks(partial)
        return np.concatenate([data, checks], axis=-1)

    def _syndromes_at(self, symbols: np.ndarray, positions: np.ndarray):
        """XOR-accumulated syndromes of ``symbols`` at given positions."""
        out = np.zeros(symbols.shape[:-1] + (CHECK_SYMBOLS,), dtype=np.uint8)
        for r in range(CHECK_SYMBOLS):
            terms = gf_mul(symbols, self._h[r][positions])
            out[..., r] = np.bitwise_xor.reduce(terms, axis=-1)
        return out

    def _solve_checks(self, partial: np.ndarray) -> np.ndarray:
        """Solve H_check @ c = partial for the three check symbols."""
        # 3x3 system over check positions 16, 17, 18; invert once.
        if not hasattr(self, "_inv"):
            pos = np.arange(DATA_SYMBOLS, CODEWORD_SYMBOLS)
            m = np.stack([self._h[r][pos] for r in range(CHECK_SYMBOLS)])
            self._inv = _gf_mat_inv(m)
        c = np.zeros(partial.shape, dtype=np.uint8)
        for i in range(CHECK_SYMBOLS):
            acc = np.zeros(partial.shape[:-1], dtype=np.uint8)
            for k in range(CHECK_SYMBOLS):
                acc ^= gf_mul(self._inv[i, k], partial[..., k])
            c[..., i] = acc
        return c

    # ------------------------------------------------------------------
    def syndromes(self, codeword: np.ndarray) -> np.ndarray:
        """Syndromes S0, S1, S2 of received codewords (..., 19)."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        if codeword.shape[-1] != CODEWORD_SYMBOLS:
            raise ValueError(f"codeword must have {CODEWORD_SYMBOLS} symbols")
        return self._syndromes_at(codeword, np.arange(CODEWORD_SYMBOLS))

    def decode(self, codeword: np.ndarray):
        """Decode received codewords: (corrected, status) per word.

        status: 0 clean, 1 corrected (single-symbol error), 2 detected
        uncorrectable.  Corrections are applied in place on a copy.
        """
        cw = np.asarray(codeword, dtype=np.uint8)
        scalar = cw.ndim == 1
        cw = np.atleast_2d(cw).copy()
        syn = self.syndromes(cw)
        s0, s1, s2 = syn[..., 0], syn[..., 1], syn[..., 2]

        status = np.full(cw.shape[0], DETECTED_UNCORRECTABLE, dtype=np.int8)
        clean = (s0 == 0) & (s1 == 0) & (s2 == 0)
        status[clean] = CLEAN

        # Single-symbol candidates: all syndromes nonzero and consistent
        # (S1^2 == S0*S2), location log(S1/S0) inside the codeword.
        cand = (~clean) & (s0 != 0) & (s1 != 0) & (s2 != 0)
        consistent = np.zeros_like(cand)
        consistent[cand] = gf_mul(s1[cand], s1[cand]) == gf_mul(
            s0[cand], s2[cand]
        )
        loc = np.zeros(cw.shape[0], dtype=np.int64)
        ok = cand & consistent
        if ok.any():
            loc[ok] = (gf_log(s1[ok]).astype(np.int64) - gf_log(s0[ok])) % 255
            in_range = ok & (loc < CODEWORD_SYMBOLS)
            rows = np.flatnonzero(in_range)
            cw[rows, loc[in_range]] ^= s0[in_range]
            status[in_range] = CORRECTED
        if scalar:
            return cw[0], int(status[0])
        return cw, status


def _gf_mat_inv(m: np.ndarray) -> np.ndarray:
    """Invert a small GF(256) matrix by Gauss-Jordan elimination."""
    n = m.shape[0]
    a = m.astype(np.uint8).copy()
    inv = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = next((r for r in range(col, n) if a[r, col]), None)
        if pivot is None:
            raise ValueError("singular matrix over GF(256)")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        scale = a[col, col]
        a[col] = gf_div(a[col], scale)
        inv[col] = gf_div(inv[col], scale)
        for r in range(n):
            if r != col and a[r, col]:
                factor = a[r, col]
                a[r] ^= gf_mul(factor, a[col])
                inv[r] ^= gf_mul(factor, inv[col])
    return inv
