"""Per-node sensor complement and DIMM-slot-to-sensor wiring.

Every Astra compute node exposes seven sensors sampled once per minute by
the BMC (paper section 2.2):

- one CPU temperature sensor per socket (``cpu1``, ``cpu2`` -- the paper
  numbers sockets 1 and 2 in the airflow discussion; we keep socket ids
  0/1 internally and expose the paper's names for reporting);
- four DIMM temperature sensors, each covering a group of four DIMM
  slots: ``A,C,E,G`` and ``H,F,D,B`` on socket 0, ``I,K,M,O`` and
  ``J,L,N,P`` on socket 1;
- one node DC power sensor.

The group wiring matters: the temperature attributed to a correctable
error (Figure 9) is read from the sensor covering the slot the error
occurred in, so the analysis needs the exact slot -> sensor map.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.machine.node import N_SLOTS, slot_index


class SensorKind(Enum):
    """The physical quantity a sensor measures."""

    CPU_TEMP = "cpu_temp"
    DIMM_TEMP = "dimm_temp"
    DC_POWER = "dc_power"


@dataclass(frozen=True)
class SensorSpec:
    """One sensor on a node.

    ``index`` is the dense per-node sensor index used in columnar sensor
    logs; ``socket`` is the socket the sensor is physically associated
    with (-1 for the node-level power sensor); ``slots`` is the tuple of
    DIMM slot letters covered (empty for CPU/power sensors).
    """

    index: int
    name: str
    kind: SensorKind
    socket: int
    slots: tuple[str, ...]
    valid_min: float
    valid_max: float

    def covers_slot(self, letter: str) -> bool:
        """Whether this sensor covers DIMM slot ``letter``."""
        return letter.upper() in self.slots


#: DIMM sensor groups, in the order the paper lists them (Figure 2 legend).
DIMM_SENSOR_GROUPS: tuple[tuple[str, ...], ...] = (
    ("A", "C", "E", "G"),
    ("H", "F", "D", "B"),
    ("I", "K", "M", "O"),
    ("J", "L", "N", "P"),
)


def _build_sensors() -> tuple[SensorSpec, ...]:
    sensors = [
        SensorSpec(0, "cpu0", SensorKind.CPU_TEMP, 0, (), 10.0, 110.0),
        SensorSpec(1, "cpu1", SensorKind.CPU_TEMP, 1, (), 10.0, 110.0),
    ]
    for i, group in enumerate(DIMM_SENSOR_GROUPS):
        socket = 0 if i < 2 else 1
        name = "dimm_" + "".join(group).lower()
        sensors.append(
            SensorSpec(2 + i, name, SensorKind.DIMM_TEMP, socket, group, 5.0, 95.0)
        )
    sensors.append(SensorSpec(6, "dc_power", SensorKind.DC_POWER, -1, (), 50.0, 900.0))
    return tuple(sensors)


class NodeSensorComplement:
    """The full set of sensors on one node, with lookup helpers."""

    #: Sampling cadence of the BMC collection loop (paper: once per minute).
    SAMPLE_PERIOD_S = 60.0

    def __init__(self) -> None:
        self.sensors = _build_sensors()
        self._by_name = {s.name: s for s in self.sensors}
        # slot index -> sensor index, vectorisable.
        slot_map = np.full(N_SLOTS, -1, dtype=np.int64)
        for s in self.sensors:
            for letter in s.slots:
                slot_map[slot_index(letter)] = s.index
        self._slot_to_sensor = slot_map

    def __len__(self) -> int:
        return len(self.sensors)

    def __iter__(self):
        return iter(self.sensors)

    def by_name(self, name: str) -> SensorSpec:
        """Look a sensor up by name (e.g. ``'dimm_aceg'``)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(f"unknown sensor: {name!r}") from None

    def by_index(self, index: int) -> SensorSpec:
        """Look a sensor up by dense index."""
        if not 0 <= index < len(self.sensors):
            raise ValueError(f"sensor index out of range: {index}")
        return self.sensors[index]

    @property
    def names(self) -> tuple[str, ...]:
        """All sensor names in index order."""
        return tuple(s.name for s in self.sensors)

    @property
    def temperature_sensors(self) -> tuple[SensorSpec, ...]:
        """The six temperature sensors (CPU + DIMM)."""
        return tuple(s for s in self.sensors if s.kind is not SensorKind.DC_POWER)

    @property
    def dimm_sensors(self) -> tuple[SensorSpec, ...]:
        """The four DIMM-group temperature sensors."""
        return tuple(s for s in self.sensors if s.kind is SensorKind.DIMM_TEMP)

    @property
    def power_sensor(self) -> SensorSpec:
        """The node DC power sensor."""
        return self._by_name["dc_power"]

    def sensor_for_slot(self, slot) -> "SensorSpec | np.ndarray":
        """Sensor index covering a DIMM slot (letter, index, or array).

        This is the join used by the temperature-correlation analysis: a
        CE on slot ``J`` reads its temperature from ``dimm_jlnp``.
        """
        if isinstance(slot, str):
            return self.sensors[self._slot_to_sensor[slot_index(slot)]]
        arr = np.asarray(slot)
        if np.any((arr < 0) | (arr >= N_SLOTS)):
            raise ValueError("slot index out of range")
        out = self._slot_to_sensor[arr]
        return out if out.ndim else self.sensors[int(out)]

    def sensor_index_for_slot(self, slot_indices) -> np.ndarray:
        """Vectorised slot-index array -> sensor-index array."""
        arr = np.asarray(slot_indices)
        if np.any((arr < 0) | (arr >= N_SLOTS)):
            raise ValueError("slot index out of range")
        return self._slot_to_sensor[arr]

    def is_valid_sample(self, sensor_index, values) -> np.ndarray:
        """Validity mask for raw samples, per sensor range limits.

        The paper excludes clearly-invalid sensor readings (stuck sensors,
        impossible power values); fewer than 1% of samples are dropped.
        """
        idx = np.atleast_1d(np.asarray(sensor_index))
        vals = np.atleast_1d(np.asarray(values, dtype=np.float64))
        idx, vals = np.broadcast_arrays(idx, vals)
        lo = np.array([s.valid_min for s in self.sensors])[idx]
        hi = np.array([s.valid_max for s in self.sensors])[idx]
        ok = np.isfinite(vals) & (vals >= lo) & (vals <= hi)
        if np.ndim(sensor_index) == 0 and np.ndim(values) == 0:
            return bool(ok[0])
        return ok
