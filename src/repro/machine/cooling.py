"""Thermal model of Astra's front-to-back airflow.

Unlike older bottom-to-top cooled machines (Cielo), Astra racks draw cold
air in at the front and exhaust at the back (Figure 1).  Air passes over
the second socket (CPU2, internally socket 1) and its DIMMs *before*
reaching the first socket (CPU1, socket 0), so socket 0 runs measurably
hotter (Figure 13 discussion).

Two further facts from section 3.4 shape the model:

- the mean temperature is nearly constant across the three vertical
  regions of a rack (differences well under 1 degC), unlike Cielo's strong
  bottom-to-top gradient; and
- rack-to-rack mean temperature varies by no more than about 4.2 degC.

The model produces *expected steady-state* temperatures; the synthetic
sensor generator adds utilisation coupling and measurement noise on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.sensors import SensorKind, NodeSensorComplement
from repro.machine.topology import AstraTopology


@dataclass(frozen=True)
class CoolingModel:
    """Expected temperatures for each sensor on each node.

    Parameters are calibrated so that system-wide sensor distributions
    match Figure 2 and the decile spans of Figure 13: CPU temperatures
    centred in the 55-75 degC band with socket 0 a few degrees above
    socket 1, DIMM temperatures in the 35-52 degC band with the same
    ordering, and only sub-degree region effects.
    """

    topology: AstraTopology = field(default_factory=AstraTopology)
    #: Machine-room inlet temperature (degC).
    inlet_temp_c: float = 18.0
    #: CPU die temperature rise above inlet for the upstream socket (CPU2).
    cpu_rise_c: float = 40.0
    #: Extra rise for the downstream socket (CPU1), preheated air.
    downstream_cpu_extra_c: float = 5.5
    #: DIMM temperature rise above inlet for upstream-socket DIMMs.
    dimm_rise_c: float = 22.0
    #: Extra rise for downstream-socket DIMMs.
    downstream_dimm_extra_c: float = 3.0
    #: Second-group DIMM sensors sit behind the first group of four slots.
    dimm_group_stagger_c: float = 1.0
    #: Peak-to-peak vertical (region) variation; Astra's is sub-degree.
    region_gradient_c: float = 0.6
    #: Peak-to-peak rack-to-rack variation.  The paper bounds observed
    #: rack means at < ~4.2 degC; per-node device offsets add ~0.3 degC
    #: of per-rack-mean noise on top of this fixed pattern, so the
    #: pattern itself stays comfortably below the bound.
    rack_variation_c: float = 3.0

    def _rack_offsets(self) -> np.ndarray:
        """Per-rack temperature offsets, fixed by rack index.

        A smooth pseudo-pattern (cosine over the rack row plus a small
        deterministic ripple) keeps the spread within ``rack_variation_c``
        without pretending to know the real machine-room geometry.
        """
        racks = np.arange(self.topology.n_racks)
        phase = 2.0 * np.pi * racks / max(self.topology.n_racks, 1)
        pattern = 0.5 * np.cos(phase) + 0.3 * np.cos(3.1 * phase + 1.0)
        pattern = pattern / max(np.ptp(pattern), 1e-12)  # normalise to ptp 1
        return pattern * self.rack_variation_c

    def _region_offsets(self) -> np.ndarray:
        """Per-region offsets (bottom, middle, top); deliberately tiny."""
        return np.array([-0.5, 0.0, 0.5]) * self.region_gradient_c

    def expected_temperature(self, node_ids, sensor_index) -> np.ndarray:
        """Expected steady-state temperature (degC), vectorised.

        ``sensor_index`` follows :class:`NodeSensorComplement` indices; the
        power sensor (index 6) is rejected, it has no temperature.
        """
        complement = NodeSensorComplement()
        nodes = np.atleast_1d(np.asarray(node_ids))
        sens = np.atleast_1d(np.asarray(sensor_index))
        nodes, sens = np.broadcast_arrays(nodes, sens)
        kinds = np.array(
            [s.kind is SensorKind.DC_POWER for s in complement.sensors], dtype=bool
        )
        if np.any(kinds[sens]):
            raise ValueError("expected_temperature is undefined for the power sensor")

        sockets = np.array(
            [max(s.socket, 0) for s in complement.sensors], dtype=np.int64
        )[sens]
        is_cpu = np.array(
            [s.kind is SensorKind.CPU_TEMP for s in complement.sensors], dtype=bool
        )[sens]
        # Within a socket, DIMM group 0 (A,C,E,G / I,K,M,O) is upstream of
        # group 1 (H,F,D,B / J,L,N,P) by a small stagger.
        dimm_group = np.array([0, 0, 0, 1, 0, 1, 0], dtype=np.int64)[sens]

        base = np.where(
            is_cpu,
            self.inlet_temp_c + self.cpu_rise_c,
            self.inlet_temp_c + self.dimm_rise_c,
        ).astype(np.float64)
        # Socket 0 (paper's CPU1) is downstream and hotter.
        downstream = sockets == 0
        base = base + np.where(
            downstream & is_cpu, self.downstream_cpu_extra_c, 0.0
        )
        base = base + np.where(
            downstream & ~is_cpu, self.downstream_dimm_extra_c, 0.0
        )
        base = base + np.where(~is_cpu, dimm_group * self.dimm_group_stagger_c, 0.0)

        base = base + self._rack_offsets()[self.topology.rack_of(nodes)]
        base = base + self._region_offsets()[self.topology.region_of(nodes)]
        if np.ndim(node_ids) == 0 and np.ndim(sensor_index) == 0:
            return float(base[0])
        return base

    def expected_spread_ok(self) -> bool:
        """Self-check: region spread < 1 degC and rack spread <= 4.2 degC."""
        return (
            float(np.ptp(self._region_offsets())) < 1.0
            and float(np.ptp(self._rack_offsets())) <= 4.2
        )
