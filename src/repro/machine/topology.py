"""Rack / chassis / node topology of the Astra system.

Astra consists of 36 racks, each containing 18 chassis stacked vertically,
each chassis holding 4 compute nodes, for 2,592 nodes total (paper section
2.2).  For the positional analysis of section 3.4 the paper divides every
rack into three vertical *regions* of 6 chassis each -- bottom, middle and
top -- to enable a direct comparison with the Cielo/Jaguar study of
Sridharan et al.

Node identifiers are dense integers assigned rack-major, chassis-next,
slot-minor::

    node_id = rack * (chassis_per_rack * nodes_per_chassis)
            + chassis * nodes_per_chassis
            + slot

All location queries are vectorised: they accept scalars or NumPy integer
arrays and return the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Region codes, ordered bottom-to-top so that sorting by code follows the
#: vertical airflow axis used in the Cielo comparison.
REGION_BOTTOM = 0
REGION_MIDDLE = 1
REGION_TOP = 2

#: Human-readable region names indexed by region code.
REGION_NAMES = ("bottom", "middle", "top")

#: Number of regions a rack is divided into for positional analysis.
N_REGIONS = 3


@dataclass(frozen=True)
class NodeLocation:
    """Physical location of a single compute node."""

    node_id: int
    rack: int
    chassis: int
    slot: int
    region: int

    @property
    def region_name(self) -> str:
        """Return the region name (``bottom``/``middle``/``top``)."""
        return REGION_NAMES[self.region]


@dataclass(frozen=True)
class AstraTopology:
    """The rack/chassis/node hierarchy of an Astra-like system.

    The defaults describe Astra itself; smaller values may be passed for
    tests.  ``chassis_per_rack`` must be divisible by the number of regions
    (3) so that every region contains the same number of chassis, matching
    the paper's 6-chassis regions.

    Examples
    --------
    >>> topo = AstraTopology()
    >>> topo.n_nodes
    2592
    >>> topo.region_of(0) == REGION_BOTTOM
    True
    """

    n_racks: int = 36
    chassis_per_rack: int = 18
    nodes_per_chassis: int = 4

    def __post_init__(self) -> None:
        if self.n_racks < 1 or self.chassis_per_rack < 1 or self.nodes_per_chassis < 1:
            raise ValueError("topology dimensions must be positive")
        if self.chassis_per_rack % N_REGIONS != 0:
            raise ValueError(
                f"chassis_per_rack={self.chassis_per_rack} must be divisible by "
                f"{N_REGIONS} regions"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def nodes_per_rack(self) -> int:
        """Number of compute nodes in one rack."""
        return self.chassis_per_rack * self.nodes_per_chassis

    @property
    def n_nodes(self) -> int:
        """Total number of compute nodes in the system."""
        return self.n_racks * self.nodes_per_rack

    @property
    def chassis_per_region(self) -> int:
        """Number of chassis in each of the three vertical regions."""
        return self.chassis_per_rack // N_REGIONS

    @property
    def nodes_per_region(self) -> int:
        """Number of nodes in one region of one rack."""
        return self.chassis_per_region * self.nodes_per_chassis

    # ------------------------------------------------------------------
    # Forward mapping: (rack, chassis, slot) -> node id
    # ------------------------------------------------------------------
    def node_id(self, rack, chassis, slot):
        """Return the dense node id for ``(rack, chassis, slot)``.

        Accepts scalars or broadcastable integer arrays.
        """
        rack = np.asarray(rack)
        chassis = np.asarray(chassis)
        slot = np.asarray(slot)
        if np.any((rack < 0) | (rack >= self.n_racks)):
            raise ValueError("rack out of range")
        if np.any((chassis < 0) | (chassis >= self.chassis_per_rack)):
            raise ValueError("chassis out of range")
        if np.any((slot < 0) | (slot >= self.nodes_per_chassis)):
            raise ValueError("slot out of range")
        out = rack * self.nodes_per_rack + chassis * self.nodes_per_chassis + slot
        return out if out.ndim else int(out)

    # ------------------------------------------------------------------
    # Inverse mappings: node id -> position
    # ------------------------------------------------------------------
    def _check_ids(self, node_ids) -> np.ndarray:
        ids = np.asarray(node_ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError("node ids must be integers")
        if np.any((ids < 0) | (ids >= self.n_nodes)):
            raise ValueError("node id out of range")
        return ids

    def rack_of(self, node_ids):
        """Rack index for each node id (vectorised)."""
        ids = self._check_ids(node_ids)
        out = ids // self.nodes_per_rack
        return out if out.ndim else int(out)

    def chassis_of(self, node_ids):
        """Chassis index within the rack for each node id (vectorised)."""
        ids = self._check_ids(node_ids)
        out = (ids % self.nodes_per_rack) // self.nodes_per_chassis
        return out if out.ndim else int(out)

    def slot_of(self, node_ids):
        """Slot index within the chassis for each node id (vectorised)."""
        ids = self._check_ids(node_ids)
        out = ids % self.nodes_per_chassis
        return out if out.ndim else int(out)

    def region_of(self, node_ids):
        """Vertical region code for each node id (vectorised).

        Chassis ``0 .. c/3-1`` form the bottom region, the next third the
        middle, the top third the top -- chassis are numbered bottom-up.
        """
        chassis = self.chassis_of(node_ids)
        out = np.asarray(chassis) // self.chassis_per_region
        return out if out.ndim else int(out)

    def locate(self, node_id: int) -> NodeLocation:
        """Return the full :class:`NodeLocation` of a single node."""
        node_id = int(node_id)
        self._check_ids(node_id)
        return NodeLocation(
            node_id=node_id,
            rack=self.rack_of(node_id),
            chassis=self.chassis_of(node_id),
            slot=self.slot_of(node_id),
            region=self.region_of(node_id),
        )

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def all_node_ids(self) -> np.ndarray:
        """Dense array of every node id in the system."""
        return np.arange(self.n_nodes, dtype=np.int64)

    def nodes_in_rack(self, rack: int) -> np.ndarray:
        """Node ids belonging to ``rack`` in ascending order."""
        if not 0 <= rack < self.n_racks:
            raise ValueError("rack out of range")
        start = rack * self.nodes_per_rack
        return np.arange(start, start + self.nodes_per_rack, dtype=np.int64)

    def nodes_in_region(self, rack: int, region: int) -> np.ndarray:
        """Node ids in one vertical region of one rack."""
        if region not in (REGION_BOTTOM, REGION_MIDDLE, REGION_TOP):
            raise ValueError("region out of range")
        rack_nodes = self.nodes_in_rack(rack)
        return rack_nodes[self.region_of(rack_nodes) == region]
