"""A mechanistic DRAM rank simulator: defects in, CE records out.

Everywhere else in this package, CE records are *sampled* from calibrated
distributions.  This module closes the loop mechanistically: a simulated
rank holds injected physical defects (stuck bits, flaky cells, row/column
defects), every read runs through the real Hsiao SEC-DED codec, and
corrections are logged as `ERROR_DTYPE` records byte-identical in schema
to the campaign's.  It exists to demonstrate -- and test -- that the
record format, the address map, the syndrome field and the fault-mode
classifier all agree with an actual error-producing mechanism:

    stuck bit at (bank 3, row 9, col 17, bit 42)
        -> repeated CE records, same address, same syndrome
        -> coalesced into one fault
        -> classified SINGLE_BIT.

Memory contents are a pure hash of the cell coordinates (nothing is
materialised); a defect manifests only when it disagrees with the stored
bit, which is the real reason stuck-at cells produce errors on roughly
half their reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro._util import hash_uniform
from repro.faults.types import NO_ROW, empty_errors
from repro.machine.dram import AddressMap, DATA_BITS, DRAMGeometry, SecDed72


class DefectKind(Enum):
    """Physical defect archetypes behind the paper's fault modes."""

    STUCK_BIT = "stuck-bit"  # one cell always reads a constant
    FLAKY_BIT = "flaky-bit"  # one cell flips with probability p per read
    ROW_DEFECT = "row"  # one bit lane stuck across every column of a row
    COLUMN_DEFECT = "column"  # one bit lane stuck across every row of a column
    BANK_DEFECT = "bank"  # random single-bit upsets anywhere in a bank


@dataclass(frozen=True)
class Defect:
    """One injected defect.  Unused coordinates are -1 (wildcards)."""

    kind: DefectKind
    bank: int
    row: int = -1
    column: int = -1
    bit: int = -1  # data bit lane 0..63
    stuck_value: int = 1
    flip_probability: float = 1.0

    def matches(self, bank: int, row: int, column: int) -> bool:
        """Whether this defect touches the given cell."""
        if self.bank != bank:
            return False
        if self.kind is DefectKind.BANK_DEFECT:
            return True
        if self.kind is DefectKind.ROW_DEFECT:
            return row == self.row
        if self.kind is DefectKind.COLUMN_DEFECT:
            return column == self.column
        return row == self.row and column == self.column


@dataclass
class ReadResult:
    """Outcome of one simulated read."""

    data: int
    status: int  # 0 clean, 1 corrected (CE logged), 2 uncorrectable (DUE)
    ce_logged: bool


class SimulatedRank:
    """One DRAM rank with injected defects and a CE log.

    The rank knows its position (node, slot, rank index) so the CE
    records it emits carry the full campaign schema.
    """

    def __init__(
        self,
        node: int = 0,
        slot: int = 0,
        rank: int = 0,
        geometry: DRAMGeometry | None = None,
        address_map: AddressMap | None = None,
        seed: int = 0,
    ) -> None:
        self.node = node
        self.slot = slot
        self.rank = rank
        self.geometry = geometry or DRAMGeometry()
        self.address_map = address_map or AddressMap(geometry=self.geometry)
        self.seed = seed
        self._secded = SecDed72()
        self._defects: list[Defect] = []
        self._log: list[np.ndarray] = []
        self._n_reads = 0
        self._n_dues = 0

    # ------------------------------------------------------------------
    def inject(self, defect: Defect) -> None:
        """Add a physical defect to the rank."""
        g = self.geometry
        if not 0 <= defect.bank < g.n_banks:
            raise ValueError("defect bank out of range")
        if defect.bit >= DATA_BITS:
            raise ValueError("defect bit lane out of range")
        self._defects.append(defect)

    # ------------------------------------------------------------------
    def _stored_word(self, bank: int, row: int, column: int) -> int:
        """The (defect-free) stored data word for a cell: a pure hash."""
        u = hash_uniform(
            np.int64(bank), np.int64(row), np.int64(column), seed=self.seed
        )
        return int(u * (1 << 53)) * 2047 % (1 << 64)  # spread over 64 bits

    def _error_bits(self, bank: int, row: int, column: int, t: float) -> list[int]:
        """Data-bit lanes that read wrong for this access."""
        flipped = []
        word = self._stored_word(bank, row, column)
        for i, d in enumerate(self._defects):
            if not d.matches(bank, row, column):
                continue
            if d.kind is DefectKind.BANK_DEFECT:
                u = hash_uniform(
                    np.int64(i), np.int64(self._n_reads), seed=self.seed + 17
                )
                if u < d.flip_probability:
                    lane = int(
                        hash_uniform(
                            np.int64(i),
                            np.int64(self._n_reads),
                            seed=self.seed + 29,
                        )
                        * DATA_BITS
                    )
                    flipped.append(lane)
                continue
            if d.kind is DefectKind.FLAKY_BIT:
                u = hash_uniform(
                    np.int64(i), np.int64(self._n_reads), seed=self.seed + 23
                )
                if u < d.flip_probability:
                    flipped.append(d.bit)
                continue
            # Stuck-type defects disagree with the stored bit half the time.
            stored_bit = (word >> d.bit) & 1
            if stored_bit != d.stuck_value:
                flipped.append(d.bit)
        return sorted(set(flipped))

    # ------------------------------------------------------------------
    def read(self, bank: int, row: int, column: int, t: float = 0.0) -> ReadResult:
        """Read one word through the ECC path, logging any CE."""
        g = self.geometry
        if not (0 <= bank < g.n_banks and 0 <= row < g.n_rows and 0 <= column < g.n_columns):
            raise ValueError("cell coordinates out of range")
        self._n_reads += 1
        word = self._stored_word(bank, row, column)
        checks = self._secded.encode(np.uint64(word))
        bad = word
        for lane in self._error_bits(bank, row, column, t):
            bad ^= 1 << lane
        fixed, status = self._secded.correct(np.uint64(bad), checks)

        if status == 1:
            syndrome = self._secded.syndrome(np.uint64(bad), checks)
            position = self._secded.position_of_syndrome(syndrome)
            record = empty_errors(1)
            record["time"] = t
            record["node"] = self.node
            record["socket"] = self.slot // 8
            record["slot"] = self.slot
            record["rank"] = self.rank
            record["bank"] = bank
            record["row"] = NO_ROW  # Astra's records omit the row
            record["column"] = column
            record["bit_pos"] = position
            record["address"] = self.address_map.encode(
                self.slot // 8, self.slot % 8, self.rank, bank, row, column
            )
            record["syndrome"] = syndrome
            self._log.append(record)
        elif status == 2:
            self._n_dues += 1
        return ReadResult(data=int(fixed), status=int(status), ce_logged=status == 1)

    def scrub_pass(self, bank: int, row: int, t0: float = 0.0, dt: float = 0.001):
        """Patrol-scrub one row: read every column in order."""
        return [
            self.read(bank, row, col, t0 + i * dt)
            for i, col in enumerate(range(self.geometry.n_columns))
        ]

    # ------------------------------------------------------------------
    @property
    def ce_log(self) -> np.ndarray:
        """All correctable-error records logged so far (time order)."""
        if not self._log:
            return empty_errors(0)
        out = np.concatenate(self._log)
        return out[np.argsort(out["time"], kind="stable")]

    @property
    def due_count(self) -> int:
        """Detected-uncorrectable reads so far."""
        return self._n_dues

    @property
    def read_count(self) -> int:
        return self._n_reads
