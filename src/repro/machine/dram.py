"""DRAM device geometry, the node physical-address map, and SEC-DED ECC.

Three substrates live here:

:class:`DRAMGeometry`
    The bank/row/column shape of the DDR4 devices behind one rank, used by
    the fault classifier to reason about which addresses share a row,
    column, word or bank (paper section 2.1).

:class:`AddressMap`
    A documented, invertible mapping between a node-local physical address
    and the tuple ``(socket, channel, rank, bank, row, column, offset)``.
    Correctable-error records carry a physical address (section 2.4); the
    analysis needs to both synthesise plausible addresses and decode them.

:class:`SecDed72`
    A working Hsiao (72,64) single-error-correct / double-error-detect
    code.  Astra protects DRAM with SEC-DED rather than Chipkill (section
    2.2), which is why multi-bit faults on one device surface as detected
    uncorrectable errors.  The code is used to produce the
    ``vendor-specific syndrome data`` field of CE records and to decide
    CE-vs-DUE in the synthetic error generator.

All hot paths are vectorised over NumPy ``uint64`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import combinations

import numpy as np

#: Number of data bits protected by one ECC word.
DATA_BITS = 64
#: Number of check bits in the (72,64) code.
CHECK_BITS = 8
#: Total codeword width; CE records report bit positions in ``[0, 72)``.
CODEWORD_BITS = DATA_BITS + CHECK_BITS


def _bit_length(n: int) -> int:
    """Number of address bits needed for a field with ``n`` values."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"field size must be a positive power of two, got {n}")
    return n.bit_length() - 1


@dataclass(frozen=True)
class DRAMGeometry:
    """Shape of the DRAM address space behind one rank.

    Defaults approximate the 8 Gb-class DDR4 devices on Astra's 8 GB
    dual-rank DIMMs: 16 banks (4 bank groups x 4 banks), 32 Ki rows and
    1 Ki columns.  All sizes must be powers of two so the address map can
    pack them into bit fields.
    """

    n_banks: int = 16
    n_rows: int = 32768
    n_columns: int = 1024

    def __post_init__(self) -> None:
        # _bit_length validates the power-of-two requirement.
        _bit_length(self.n_banks)
        _bit_length(self.n_rows)
        _bit_length(self.n_columns)

    @property
    def bank_bits(self) -> int:
        return _bit_length(self.n_banks)

    @property
    def row_bits(self) -> int:
        return _bit_length(self.n_rows)

    @property
    def column_bits(self) -> int:
        return _bit_length(self.n_columns)

    @property
    def cells_per_bank(self) -> int:
        """Row x column positions within one bank."""
        return self.n_rows * self.n_columns


@dataclass(frozen=True)
class AddressMap:
    """Invertible node-local physical address layout.

    The layout, low to high bits, is::

        [ offset | column | bank | row | rank | channel | socket ]

    where ``offset`` addresses the byte within one 64-byte cache line.
    Placing column below bank below row mirrors common open-page
    interleavings (consecutive lines walk columns within a row before
    switching banks).  The exact layout is a modelling choice -- Astra's
    real interleaving is undocumented -- but it is fixed, documented and
    invertible, which is what the analysis requires.
    """

    geometry: DRAMGeometry = DRAMGeometry()
    n_sockets: int = 2
    channels_per_socket: int = 8
    ranks_per_dimm: int = 2
    line_bytes: int = 64

    def __post_init__(self) -> None:
        _bit_length(self.n_sockets)
        _bit_length(self.channels_per_socket)
        _bit_length(self.ranks_per_dimm)
        _bit_length(self.line_bytes)

    # Field shift amounts, low to high.
    @cached_property
    def _shifts(self) -> dict[str, int]:
        g = self.geometry
        shifts = {}
        pos = 0
        for name, bits in (
            ("offset", _bit_length(self.line_bytes)),
            ("column", g.column_bits),
            ("bank", g.bank_bits),
            ("row", g.row_bits),
            ("rank", _bit_length(self.ranks_per_dimm)),
            ("channel", _bit_length(self.channels_per_socket)),
            ("socket", _bit_length(self.n_sockets)),
        ):
            shifts[name] = pos
            pos += bits
        shifts["_total"] = pos
        return shifts

    @property
    def address_bits(self) -> int:
        """Total width of an encoded address."""
        return self._shifts["_total"]

    def _field_width(self, name: str) -> int:
        order = ["offset", "column", "bank", "row", "rank", "channel", "socket"]
        i = order.index(name)
        upper = (
            self._shifts[order[i + 1]] if i + 1 < len(order) else self._shifts["_total"]
        )
        return upper - self._shifts[name]

    def encode(self, socket, channel, rank, bank, row, column, offset=0):
        """Pack fields into physical addresses (vectorised).

        All arguments broadcast; the result dtype is ``uint64``.
        """
        fields = {
            "socket": socket,
            "channel": channel,
            "rank": rank,
            "bank": bank,
            "row": row,
            "column": column,
            "offset": offset,
        }
        out = np.zeros(np.broadcast(*fields.values()).shape, dtype=np.uint64)
        scalar = out.ndim == 0
        for name, value in fields.items():
            arr = np.asarray(value, dtype=np.int64)
            width = self._field_width(name)
            if np.any((arr < 0) | (arr >= (1 << width))):
                raise ValueError(f"{name} out of range for {width}-bit field")
            out = out | (arr.astype(np.uint64) << np.uint64(self._shifts[name]))
        return int(out) if scalar else out

    def decode(self, address):
        """Unpack physical addresses into a dict of field arrays.

        The inverse of :meth:`encode`: ``decode(encode(**f)) == f``.
        """
        arr = np.asarray(address, dtype=np.uint64)
        if np.any(arr >> np.uint64(self.address_bits)):
            raise ValueError("address has bits above the mapped range")
        out = {}
        scalar = arr.ndim == 0
        for name in ("socket", "channel", "rank", "bank", "row", "column", "offset"):
            width = self._field_width(name)
            mask = np.uint64((1 << width) - 1)
            val = (arr >> np.uint64(self._shifts[name])) & mask
            out[name] = int(val) if scalar else val.astype(np.int64)
        return out


class SecDed72:
    """Hsiao (72,64) SEC-DED code.

    The parity-check matrix has 72 distinct odd-weight 8-bit columns: the
    eight weight-1 unit vectors protect the check bits themselves, and the
    64 data columns are the 56 weight-3 vectors plus eight weight-5
    vectors.  Odd column weights give the Hsiao property: any single-bit
    error produces an odd-weight syndrome, any double-bit error an
    even-weight (nonzero) syndrome, so the two are always distinguishable.

    Codeword bit positions ``0..63`` are data bits, ``64..71`` check bits;
    this position is the ``bit position in a cache line`` field of the CE
    records analysed in Figure 8a.
    """

    def __init__(self) -> None:
        data_columns: list[int] = []
        for weight in (3, 5):
            for bits in combinations(range(CHECK_BITS), weight):
                data_columns.append(sum(1 << b for b in bits))
                if len(data_columns) == DATA_BITS:
                    break
            if len(data_columns) == DATA_BITS:
                break
        assert len(data_columns) == DATA_BITS
        check_columns = [1 << i for i in range(CHECK_BITS)]
        #: H-matrix column (an 8-bit syndrome) for every codeword position.
        self.columns = np.array(data_columns + check_columns, dtype=np.uint8)
        # Row masks: for check row i, the 64-bit mask of data positions
        # participating in parity equation i.
        masks = np.zeros(CHECK_BITS, dtype=np.uint64)
        for j, col in enumerate(data_columns):
            for i in range(CHECK_BITS):
                if col >> i & 1:
                    masks[i] |= np.uint64(1 << j)
        self._row_masks = masks
        # Inverse map: syndrome value -> codeword position, or -1.
        inv = np.full(256, -1, dtype=np.int16)
        inv[self.columns] = np.arange(CODEWORD_BITS)
        self._position_of_syndrome = inv

    # ------------------------------------------------------------------
    def encode(self, data):
        """Compute the 8 check bits for 64-bit data words (vectorised)."""
        d = np.asarray(data, dtype=np.uint64)
        scalar = d.ndim == 0
        d = np.atleast_1d(d)
        checks = np.zeros(d.shape, dtype=np.uint8)
        for i in range(CHECK_BITS):
            parity = np.bitwise_count(d & self._row_masks[i]).astype(np.uint8) & 1
            checks |= parity << np.uint8(i)
        return int(checks[0]) if scalar else checks

    def syndrome(self, data, checks):
        """Syndrome of received (data, checks) pairs (vectorised)."""
        c = np.asarray(checks, dtype=np.uint8)
        return self.encode(data) ^ c

    def syndrome_of_position(self, position):
        """Syndrome produced by flipping a single codeword bit (vectorised).

        This is the value the memory controller logs in the CE record's
        syndrome field for a single-bit error.
        """
        pos = np.asarray(position)
        if np.any((pos < 0) | (pos >= CODEWORD_BITS)):
            raise ValueError("codeword position out of range")
        out = self.columns[pos]
        return int(out) if np.ndim(position) == 0 else out

    def position_of_syndrome(self, syndrome):
        """Codeword position for a syndrome, or -1 if not a single-bit one."""
        s = np.asarray(syndrome, dtype=np.uint8)
        out = self._position_of_syndrome[s]
        return int(out) if np.ndim(syndrome) == 0 else out

    def classify(self, syndrome):
        """Classify syndromes: 0 = clean, 1 = correctable, 2 = uncorrectable.

        Per the Hsiao property: zero syndrome means no (detected) error, a
        syndrome matching an H column is a correctable single-bit error,
        and anything else (even-weight, or odd-weight non-column) is a
        detected uncorrectable error.
        """
        s = np.atleast_1d(np.asarray(syndrome, dtype=np.uint8))
        out = np.full(s.shape, 2, dtype=np.int8)
        out[s == 0] = 0
        out[self._position_of_syndrome[s] >= 0] = 1
        return int(out[0]) if np.ndim(syndrome) == 0 else out

    def correct(self, data, checks):
        """Decode received words: return (corrected_data, status).

        ``status`` follows :meth:`classify`.  Double-bit errors are
        detected but not corrected; the data is returned unchanged for
        them, mirroring a real SEC-DED controller that raises a machine
        check instead of writing back.
        """
        d = np.atleast_1d(np.asarray(data, dtype=np.uint64))
        c = np.atleast_1d(np.asarray(checks, dtype=np.uint8))
        d, c = np.broadcast_arrays(d, c)
        syn = self.encode(d) ^ c
        status = self.classify(syn)
        pos = self._position_of_syndrome[syn]
        fix = (status == 1) & (pos >= 0) & (pos < DATA_BITS)
        corrected = d.copy()
        corrected[fix] ^= np.uint64(1) << pos[fix].astype(np.uint64)
        if np.ndim(data) == 0 and np.ndim(checks) == 0:
            return int(corrected[0]), int(np.atleast_1d(status)[0])
        return corrected, status
