"""Small shared utilities: time handling and stateless hash noise.

The sensor field generator needs *stateless* pseudo-randomness -- the value
of sensor ``s`` on node ``n`` at minute ``t`` must be computable in any
order, for any subset, without materialising a 10^9-sample series.  A
SplitMix64-style integer mixer provides that: uniform, deterministic,
vectorisable, seedable.
"""

from __future__ import annotations

import os

import numpy as np

#: Seconds per day; the study's natural reporting granularity.
DAY_S = 86400.0
#: Seconds per hour.
HOUR_S = 3600.0
#: Average seconds per month (30.44 days); used for "monthly" windows.
MONTH_S = 2_629_746.0
#: Hours per year, used by FIT computations.
HOURS_PER_YEAR = 24 * 365


def epoch(date: str) -> float:
    """Unix epoch seconds (UTC) for an ISO date or datetime string.

    >>> epoch("1970-01-02")
    86400.0
    """
    return float(np.datetime64(date).astype("datetime64[s]").astype(np.int64))


def iso(t: float) -> str:
    """ISO-8601 UTC timestamp (second resolution) for epoch seconds."""
    return str(np.datetime64(int(t), "s"))


def month_index(times, t0: float) -> np.ndarray:
    """0-based month bucket of each timestamp relative to ``t0``.

    Buckets are fixed-width average months (30.44 days), matching how the
    paper bins its "per month" series (Figure 4a x-axis is month number).
    """
    t = np.asarray(times, dtype=np.float64)
    out = np.floor((t - t0) / MONTH_S).astype(np.int64)
    return out if out.ndim else int(out)


def day_index(times, t0: float) -> np.ndarray:
    """0-based day bucket of each timestamp relative to ``t0``."""
    t = np.asarray(times, dtype=np.float64)
    out = np.floor((t - t0) / DAY_S).astype(np.int64)
    return out if out.ndim else int(out)


def full_jitter_backoff(
    attempt: int, base_s: float, max_s: float, rng
) -> float:
    """Full-jitter exponential backoff delay for retry ``attempt`` (1-based).

    The classic AWS "full jitter" scheme: sample uniformly from
    ``[0, min(max_s, base_s * 2**(attempt-1))]``.  Jitter decorrelates
    retries that failed together (a broken pool re-queues several tasks
    at once; unjittered backoff would stampede them back in lock-step),
    and the cap keeps the worst-case sleep bounded no matter how many
    attempts a caller allows.  ``rng`` is a ``random.Random`` (seeded by
    the caller, so retry schedules are reproducible in tests).
    """
    cap = min(float(max_s), float(base_s) * (2.0 ** (max(attempt, 1) - 1)))
    return rng.uniform(0.0, cap)


def fsync_dir(directory) -> None:
    """fsync a directory so a rename/create inside it survives power loss.

    ``os.replace`` makes a rename atomic with respect to *crashes of the
    process*, but the new directory entry itself lives in the directory
    inode -- until that is flushed, a power cut can roll the rename back
    (or lose a freshly created file entirely).  POSIX requires opening
    the directory read-only and fsyncing the fd.  Platforms whose
    directory handles refuse fsync (some network filesystems, Windows)
    are skipped silently -- the data fsync still happened, this is
    best-effort hardening of the metadata.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x) -> np.ndarray:
    """SplitMix64 finaliser: a high-quality 64-bit integer mixer."""
    with np.errstate(over="ignore"):
        z = (np.asarray(x, dtype=np.uint64) + _GAMMA) * np.uint64(1)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def hash_uniform(*keys, seed: int = 0) -> np.ndarray:
    """Stateless uniform [0, 1) noise keyed by integer arrays.

    All key arrays broadcast together; the same keys and seed always give
    the same value.  Used for sensor noise, utilisation blocks, and
    invalid-sample marking.
    """
    keys = [np.asarray(k) for k in keys]
    shape = np.broadcast(*keys).shape if keys else ()
    acc = np.full(shape, np.uint64(seed) ^ np.uint64(0xA076_1D64_78BD_642F))
    with np.errstate(over="ignore"):
        for k in keys:
            acc = splitmix64(acc ^ (np.asarray(k).astype(np.uint64) * _GAMMA))
    # 53-bit mantissa for a clean float in [0, 1).
    return (acc >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def hash_normalish(*keys, seed: int = 0) -> np.ndarray:
    """Stateless roughly-normal noise (mean 0, sd ~1) from 4 uniforms.

    The sum of four uniforms (Irwin-Hall) is close enough to Gaussian for
    sensor jitter; it avoids Box-Muller's log/sqrt on the hot path.
    """
    acc = np.zeros(np.broadcast(*[np.asarray(k) for k in keys]).shape)
    for i in range(4):
        acc = acc + hash_uniform(*keys, seed=seed * 7919 + i)
    return (acc - 2.0) * np.sqrt(3.0)
