"""Fleet layout: dozens of Astra-sized clusters as one addressable system.

The paper studies one machine (36 racks, 2,592 nodes).  A *fleet* is
``n_clusters`` independent Astra-shaped clusters whose telemetry is
analysed as a single system: cluster ``i`` occupies global racks
``[i * 36, (i + 1) * 36)`` and its local node ids are offset by
``i * 2592``.  Because node ids are rack-major, the offset keeps every
global id consistent with :class:`~repro.machine.topology.AstraTopology`
of ``n_racks = 36 * n_clusters`` -- fleet-wide analyses reuse the
single-machine code paths unchanged.

On disk a fleet is a directory of ordinary campaign directories plus a
small manifest::

    <dir>/fleet.json
    <dir>/cluster-00/   # a standard campaign dir (local node ids)
    <dir>/cluster-01/
    ...

Each cluster directory is independently valid (loadable with
``load_campaign_records``); the global view exists only in aggregation,
which is what lets per-cluster shards be produced, shipped and mmapped
without rewriting any record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.machine.topology import AstraTopology

#: Manifest filename inside a fleet directory.
MANIFEST_NAME = "fleet.json"

#: Bumped when the manifest layout changes incompatibly.
FLEET_SCHEMA_VERSION = 1

#: Seed stride between clusters: far enough apart that per-cluster
#: generators never reuse a seed for realistic fleet sizes, and stable
#: so cluster ``i`` of fleet seed ``s`` is reproducible forever.
_SEED_STRIDE = 7919  # a prime, to avoid accidental alignment with user seeds


@dataclass(frozen=True)
class FleetSpec:
    """Shape of a fleet: how many clusters, seeded and scaled how."""

    n_clusters: int
    seed: int = 0
    scale: float = 1.0
    #: Per-cluster machine shape; defaults to the paper's Astra.
    base_topology: AstraTopology = field(default_factory=AstraTopology)

    def __post_init__(self):
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if not self.scale > 0:
            raise ValueError("scale must be > 0")

    @property
    def name_width(self) -> int:
        """Zero-pad width keeping cluster names lexicographically ordered."""
        return max(2, len(str(self.n_clusters - 1)))

    def cluster_name(self, i: int) -> str:
        self._check_index(i)
        return f"cluster-{i:0{self.name_width}d}"

    def cluster_seed(self, i: int) -> int:
        """Deterministic per-cluster seed (distinct streams per cluster)."""
        self._check_index(i)
        return self.seed + _SEED_STRIDE * (i + 1)

    def node_offset(self, i: int) -> int:
        """Offset turning cluster ``i``'s local node ids into global ids."""
        self._check_index(i)
        return i * self.base_topology.n_nodes

    def fleet_topology(self) -> AstraTopology:
        """The whole fleet as one rack-major topology."""
        return AstraTopology(
            n_racks=self.base_topology.n_racks * self.n_clusters,
            chassis_per_rack=self.base_topology.chassis_per_rack,
            nodes_per_chassis=self.base_topology.nodes_per_chassis,
        )

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n_clusters:
            raise IndexError(f"cluster index {i} out of range "
                             f"(fleet has {self.n_clusters})")


@dataclass
class Fleet:
    """A fleet spec bound to its on-disk directory."""

    spec: FleetSpec
    directory: Path
    #: Per-cluster record counts recorded at synthesis time (informational;
    #: aggregation recounts from the actual files).
    n_errors: list = field(default_factory=list)

    @property
    def cluster_dirs(self) -> list[Path]:
        return [self.cluster_dir(i) for i in range(self.spec.n_clusters)]

    def cluster_dir(self, i: int) -> Path:
        return self.directory / self.spec.cluster_name(i)

    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def to_dict(self) -> dict:
        topo = self.spec.base_topology
        return {
            "schema_version": FLEET_SCHEMA_VERSION,
            "kind": "astra-memrepro-fleet",
            "n_clusters": self.spec.n_clusters,
            "seed": self.spec.seed,
            "scale": self.spec.scale,
            "topology": {
                "n_racks": topo.n_racks,
                "chassis_per_rack": topo.chassis_per_rack,
                "nodes_per_chassis": topo.nodes_per_chassis,
            },
            "clusters": [
                {
                    "name": self.spec.cluster_name(i),
                    "seed": self.spec.cluster_seed(i),
                    "node_offset": self.spec.node_offset(i),
                    "n_errors": (
                        int(self.n_errors[i]) if i < len(self.n_errors) else None
                    ),
                }
                for i in range(self.spec.n_clusters)
            ],
        }

    def save(self) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.manifest_path()
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "Fleet":
        """Load a fleet manifest; raises :class:`FleetFormatError` if bad."""
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        if not path.exists():
            raise FleetFormatError(
                path, f"not a fleet directory ({MANIFEST_NAME} missing)"
            )
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetFormatError(path, f"unreadable manifest ({exc})") from exc
        if not isinstance(doc, dict) or doc.get("kind") != "astra-memrepro-fleet":
            raise FleetFormatError(path, "not an astra-memrepro fleet manifest")
        version = doc.get("schema_version")
        if version != FLEET_SCHEMA_VERSION:
            raise FleetFormatError(
                path,
                f"unsupported schema_version {version!r} "
                f"(this build reads {FLEET_SCHEMA_VERSION})",
            )
        try:
            topo_doc = doc.get("topology", {})
            spec = FleetSpec(
                n_clusters=int(doc["n_clusters"]),
                seed=int(doc["seed"]),
                scale=float(doc["scale"]),
                base_topology=AstraTopology(
                    n_racks=int(topo_doc.get("n_racks", 36)),
                    chassis_per_rack=int(topo_doc.get("chassis_per_rack", 18)),
                    nodes_per_chassis=int(topo_doc.get("nodes_per_chassis", 4)),
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetFormatError(path, f"bad manifest fields ({exc})") from exc
        n_errors = [
            c.get("n_errors") for c in doc.get("clusters", [])
            if isinstance(c, dict)
        ]
        return cls(spec=spec, directory=directory, n_errors=n_errors)


class FleetFormatError(ValueError):
    """A fleet directory does not look like one (file and reason named)."""

    def __init__(self, path, reason: str):
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")
