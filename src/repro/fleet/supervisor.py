"""Supervised shard execution: bounded retry, quarantine, crash resume.

:func:`~repro.fleet.engine.process_fleet` used to fan shards out with
fire-and-forget semantics -- a dead worker silently degraded to a
serial re-run and a corrupt shard poisoned the reduction.  The
:class:`ShardSupervisor` replaces that with an explicit failure model:

- every attempt, commit and quarantine is appended (fsynced) to the
  fleet ledger, so a ``kill -9`` at any instant loses at most the
  shards that had not yet committed;
- a committed shard's reduced artefacts live in the digest-verified
  shard cache, so ``--resume`` loads them instead of re-running and the
  re-reduction is byte-identical to an uninterrupted run;
- worker death (``BrokenProcessPool``), wedged workers (past
  ``task_timeout_s``) and transient ``OSError`` get bounded
  full-jitter retry; :class:`~repro.logs.integrity.ShardIntegrityError`
  does not (the damage is on disk; retrying cannot help);
- a shard that exhausts its retries is *quarantined*: the fleet result
  carries the surviving reduction plus explicit coverage accounting for
  the records the quarantined shards would have contributed, so the
  experiment layer downgrades to ``pass-degraded`` instead of trusting
  a silently partial answer.

The parallel path mirrors the experiment runner's supervision model
(deadline per task, abandoned slots written off) and adds pool
recreation: when chaos -- or the OOM killer -- SIGKILLs a worker, every
in-flight task is requeued with its attempt count bumped and a fresh
pool takes over.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro._util import full_jitter_backoff
from repro.fleet.ledger import (
    CACHE_DIR_NAME,
    LEDGER_NAME,
    FleetLedger,
    ShardResultCache,
    task_key,
)
from repro.logs.integrity import ShardIntegrityError, sidecar_path


@dataclass
class SuperviseConfig:
    """Knobs of the supervised execution path."""

    jobs: int = 0
    #: Per-shard wall-clock budget in the parallel path; ``None`` trusts
    #: workers to finish (serial execution always runs to completion).
    task_timeout_s: float | None = None
    #: Re-attempts per shard beyond the first try.
    shard_retries: int = 2
    backoff_s: float = 0.25
    max_backoff_s: float = 5.0
    #: Seed of the retry-backoff RNG (full jitter; see
    #: :func:`repro._util.full_jitter_backoff`).
    retry_seed: int = 0
    #: Load committed shards from the cache instead of re-running them.
    resume: bool = False
    #: Write the ledger and shard cache (required for later ``resume``).
    ledger: bool = True
    #: A planned :class:`~repro.inject.chaos.ChaosPlan`, or ``None``.
    chaos: object | None = None
    #: This run needs per-shard rollup payloads: cached commits from an
    #: earlier run *without* rollups are treated as cache misses (the
    #: shard re-runs and ships its cubes) instead of silently producing
    #: a fleet result whose rollups cover only some shards.
    require_rollups: bool = False


@dataclass
class SuperviseOutcome:
    """What supervised execution produced, keyed by task."""

    #: ``{task key: worker result dict}`` for every surviving shard.
    results: dict = field(default_factory=dict)
    #: Task keys in plan order (reduction order; stable across resume).
    order: list = field(default_factory=list)
    #: One dict per abandoned shard: task, cluster, shard, kind, reason,
    #: attempts, est_records.
    quarantined: list = field(default_factory=list)
    #: Task keys whose results were loaded from the shard cache.
    resumed: list = field(default_factory=list)
    retries: int = 0
    integrity_failures: int = 0


class ShardSupervisor:
    """Drive one fleet's shard tasks to commit, quarantine, or resume."""

    def __init__(self, fleet, tasks: list, config: SuperviseConfig):
        self.fleet = fleet
        self.tasks = tasks
        self.cfg = config
        self.rng = random.Random(config.retry_seed)
        self.outcome = SuperviseOutcome(order=[task_key(t) for t in tasks])
        self.ledger: FleetLedger | None = None
        self.cache: ShardResultCache | None = None
        if config.ledger:
            self.cache = ShardResultCache(
                Path(fleet.directory) / CACHE_DIR_NAME, chaos=config.chaos
            )
        self._ledger_errors = 0
        # Per-cluster synth-time record counts, for estimating what a
        # quarantined whole-cluster text task would have contributed.
        self._cluster_records = {}
        for i in range(fleet.spec.n_clusters):
            if i < len(fleet.n_errors) and fleet.n_errors[i] is not None:
                self._cluster_records[fleet.spec.cluster_name(i)] = int(
                    fleet.n_errors[i]
                )

    # ------------------------------------------------------------------
    def run(self) -> SuperviseOutcome:
        from repro import obs

        ledger_path = Path(self.fleet.directory) / LEDGER_NAME
        pending = list(self.tasks)

        if self.cfg.resume and self.cfg.ledger:
            pending = self._load_committed(ledger_path, pending)

        with obs.span(
            "fleet.supervise",
            attrs={
                "jobs": self.cfg.jobs,
                "n_tasks": len(self.tasks),
                "n_resumed": len(self.outcome.resumed),
                "chaos": getattr(
                    getattr(self.cfg.chaos, "profile", None), "name", None
                ),
            },
        ) as sp:
            if self.cfg.ledger:
                self.ledger = FleetLedger(
                    ledger_path,
                    chaos=self.cfg.chaos,
                    truncate=not self.cfg.resume,
                )
            try:
                self._append(
                    "resume" if self.cfg.resume else "plan",
                    n_tasks=len(self.tasks),
                    n_committed=len(self.outcome.resumed),
                    jobs=int(self.cfg.jobs),
                    chaos=getattr(
                        getattr(self.cfg.chaos, "profile", None), "name", None
                    ),
                    chaos_seed=getattr(self.cfg.chaos, "seed", None),
                )
                if self.cfg.jobs > 1 and len(pending) > 1:
                    self._run_parallel(pending)
                else:
                    self._run_serial(deque((t, 1, 0.0) for t in pending))
            finally:
                if self.ledger is not None:
                    self.ledger.close()
            sp.add(
                retries=self.outcome.retries,
                quarantined=len(self.outcome.quarantined),
            )
        if self.outcome.resumed:
            obs.count("fleet.resumed_shards", len(self.outcome.resumed))
        return self.outcome

    # ------------------------------------------------------------------
    def _load_committed(self, ledger_path: Path, pending: list) -> list:
        """Resume: satisfy tasks from the cache, return what remains."""
        committed = FleetLedger.committed(ledger_path)
        if not committed or self.cache is None:
            return pending
        remaining = []
        for task in pending:
            key = task_key(task)
            entry = committed.get(key)
            cached = (
                self.cache.load(key, entry.get("digest", ""))
                if entry is not None
                else None
            )
            if (
                cached is not None
                and self.cfg.require_rollups
                and cached.get("rollup") is None
            ):
                # Committed by a run that did not build rollups; this
                # one needs the shard's cubes, so the cache cannot
                # satisfy the task.
                cached = None
            if cached is None:
                # Never committed, or the cache file does not match its
                # committed digest (torn write): run it again.
                remaining.append(task)
                continue
            cached["cluster"] = task["cluster"]
            cached["shard"] = task["shard"]
            self.outcome.results[key] = cached
            self.outcome.resumed.append(key)
        return remaining

    # ------------------------------------------------------------------
    def _append(self, event: str, **fields) -> None:
        """Ledger append with bounded retry; best-effort past that.

        A full disk (real or injected ``ENOSPC``) usually clears on
        retry; if it does not, the run continues and only durability is
        lost -- dropping results because the *journal* is sick would be
        worse than finishing without one.
        """
        from repro import obs

        if self.ledger is None:
            return
        for attempt in range(1, 4):
            try:
                self.ledger.append(event, **fields)
                return
            except OSError:
                obs.count("fleet.ledger_errors")
                self._ledger_errors += 1
                if attempt < 3:
                    time.sleep(
                        full_jitter_backoff(
                            attempt,
                            self.cfg.backoff_s,
                            self.cfg.max_backoff_s,
                            self.rng,
                        )
                    )

    # ------------------------------------------------------------------
    def _prepare(self, task: dict, attempt: int, parallel: bool) -> dict:
        """Copy a task for dispatch, arming its planned chaos fault.

        Faults arm only on attempt 1: the fault model is "transient"
        (a worker killed once, a wedge that clears), so a retry of the
        victim must run clean -- that is exactly the property that
        makes ``--chaos light`` byte-identical to a clean run.
        """
        prepared = dict(task)
        chaos = self.cfg.chaos
        if chaos is not None and attempt == 1:
            fault = chaos.task_fault(task_key(task))
            if fault is not None:
                prepared["chaos_fault"] = fault
                prepared["chaos_parallel"] = parallel
                timeout = self.cfg.task_timeout_s
                prepared["chaos_wedge_s"] = (
                    2.0 * timeout if timeout else 2.0
                )
        return prepared

    # ------------------------------------------------------------------
    def _commit(self, task: dict, attempt: int, result: dict) -> None:
        key = task_key(task)
        fields = dict(
            task=key,
            attempt=attempt,
            n_errors=int(result["n_errors"]),
            n_faults=int(result["faults"].size),
            wall_s=float(result["wall_s"]),
        )
        if self.cache is not None:
            rel, digest = self.cache.save(key, result)
            fields.update(cache=rel, digest=digest)
        self._append("commit", **fields)
        self.outcome.results[key] = result

    # ------------------------------------------------------------------
    def _failure(self, task: dict, attempt: int, exc, queue) -> None:
        """Route one failed attempt: retry with backoff, or quarantine."""
        from repro import obs

        key = task_key(task)
        reason = f"{type(exc).__name__}: {exc}"
        self._append("failed", task=key, attempt=attempt, error=reason[:500])
        integrity = isinstance(exc, ShardIntegrityError)
        if integrity:
            self.outcome.integrity_failures += 1
            obs.count("fleet.integrity_failures")
        if not integrity and attempt <= self.cfg.shard_retries:
            self.outcome.retries += 1
            obs.count("fleet.retries")
            delay = full_jitter_backoff(
                attempt, self.cfg.backoff_s, self.cfg.max_backoff_s, self.rng
            )
            queue.append((task, attempt + 1, time.monotonic() + delay))
            return
        self._quarantine(task, attempt, reason)

    def _quarantine(self, task: dict, attempts: int, reason: str) -> None:
        from repro import obs

        key = task_key(task)
        entry = {
            "task": key,
            "cluster": task["cluster"],
            "shard": task["shard"],
            "kind": task["kind"],
            "reason": reason,
            "attempts": attempts,
            "est_records": self._estimate_records(task),
        }
        self.outcome.quarantined.append(entry)
        obs.count("fleet.quarantined")
        self._append(
            "quarantine", task=key, attempts=attempts, reason=reason[:500]
        )

    def _estimate_records(self, task: dict) -> int:
        """Best-effort count of records a quarantined shard withheld.

        Binary shards: the checksum sidecar records the *healthy* file
        size (a torn file's ``stat`` understates it), and npy overhead
        is a fixed small header.  Text tasks cover a whole cluster, so
        the synth-time count from the fleet manifest applies.  The
        estimate only feeds coverage accounting -- being a record or
        two off moves the coverage fraction, never the fault stream.
        """
        import json

        from repro.faults.types import ERROR_DTYPE

        if task["kind"] == "binary":
            path = Path(task["path"])
            size = None
            try:
                size = int(json.loads(sidecar_path(path).read_text())["size"])
            except (OSError, ValueError, KeyError):
                try:
                    size = path.stat().st_size
                except OSError:
                    return 0
            return max(0, (size - 128) // ERROR_DTYPE.itemsize)
        return self._cluster_records.get(task["cluster"], 0)

    # ------------------------------------------------------------------
    def _run_serial(self, queue: deque) -> None:
        from repro.fleet.engine import _process_shard

        while queue:
            task, attempt, ready_at = queue.popleft()
            delay = ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._append("attempt", task=task_key(task), attempt=attempt)
            try:
                result = _process_shard(self._prepare(task, attempt, False))
            except Exception as exc:
                self._failure(task, attempt, exc, queue)
            else:
                self._commit(task, attempt, result)

    # ------------------------------------------------------------------
    def _run_parallel(self, pending: list) -> None:
        from repro.fleet.engine import _process_shard

        max_workers = min(self.cfg.jobs, len(pending))
        queue: deque = deque((t, 1, 0.0) for t in pending)
        in_flight: dict = {}  # future -> (task, attempt, deadline)
        abandoned = 0
        broken = False
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except OSError:
            # Restricted environment: no pool at all, run serially.
            self._run_serial(queue)
            return
        try:
            while queue or in_flight:
                if broken:
                    try:
                        pool = self._recreate_pool(pool, max_workers)
                    except OSError:
                        # Could not bring a fresh pool up; finish what
                        # is left (queued and in flight) serially
                        # rather than giving up.
                        for task, attempt, _ in in_flight.values():
                            queue.append((task, attempt, 0.0))
                        in_flight.clear()
                        self._run_serial(queue)
                        break
                    broken = False
                capacity = max_workers - abandoned
                if capacity <= 0:
                    # Every slot is wedged; the remainder runs serially
                    # in the parent (wedged workers die at shutdown).
                    self._run_serial(queue)
                    queue.clear()
                    break

                now = time.monotonic()
                while queue and len(in_flight) < capacity and not broken:
                    idx = next(
                        (
                            i
                            for i, (_, _, ready) in enumerate(queue)
                            if ready <= now
                        ),
                        None,
                    )
                    if idx is None:
                        break
                    queue.rotate(-idx)
                    task, attempt, ready_at = queue.popleft()
                    queue.rotate(idx)
                    self._append(
                        "attempt", task=task_key(task), attempt=attempt
                    )
                    try:
                        future = pool.submit(
                            _process_shard, self._prepare(task, attempt, True)
                        )
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        queue.appendleft((task, attempt, ready_at))
                        break
                    deadline = (
                        now + self.cfg.task_timeout_s
                        if self.cfg.task_timeout_s
                        else None
                    )
                    in_flight[future] = (task, attempt, deadline)

                if not in_flight:
                    if broken:
                        continue
                    if queue:
                        # Everything queued is backing off; sleep until
                        # the earliest becomes ready.
                        soonest = min(ready for _, _, ready in queue)
                        time.sleep(
                            max(0.0, min(soonest - time.monotonic(), 0.5))
                        )
                    continue

                poll = 0.05 if self.cfg.task_timeout_s else (0.25 if queue else None)
                done, _ = wait(
                    list(in_flight), timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in done:
                    task, attempt, _ = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        # A worker died (chaos kill, OOM): the pool and
                        # every sibling future die with it.  Each victim
                        # comes back through here and is requeued; the
                        # next submission round gets a fresh pool.
                        broken = True
                        self._failure(task, attempt, exc, queue)
                    except Exception as exc:
                        self._failure(task, attempt, exc, queue)
                    else:
                        self._commit(task, attempt, result)

                now = time.monotonic()
                for future, (task, attempt, deadline) in list(in_flight.items()):
                    if deadline is None or now <= deadline or future.done():
                        continue
                    # Past deadline: the worker may be wedged.  Abandon
                    # the future, write the slot off, and retry in a
                    # fresh one; the process is terminated at shutdown.
                    del in_flight[future]
                    abandoned += 1
                    self._failure(
                        task,
                        attempt,
                        TimeoutError(
                            "shard exceeded --task-timeout="
                            f"{self.cfg.task_timeout_s}s"
                        ),
                        queue,
                    )
        finally:
            self._shutdown_pool(pool, force=bool(abandoned))

    # ------------------------------------------------------------------
    @staticmethod
    def _shutdown_pool(pool, force: bool) -> None:
        if force:
            pool.shutdown(wait=False, cancel_futures=True)
            processes = getattr(pool, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError):  # pragma: no cover
                    pass
        else:
            pool.shutdown(wait=True)

    def _recreate_pool(self, pool, max_workers: int):
        self._shutdown_pool(pool, force=True)
        return ProcessPoolExecutor(max_workers=max_workers)
