"""Synthesising a fleet directory: one campaign per cluster.

Each cluster is generated with its own deterministic seed (see
:meth:`FleetSpec.cluster_seed`) at the fleet's common scale, and written
as an ordinary campaign directory -- so every cluster remains
analysable on its own with the single-machine tooling.  Generation can
go through a :class:`~repro.run.cache.CampaignCache` (the per-cluster
(seed, scale, calibration) key is exactly the cache's key), which makes
re-synthesising a fleet after deleting its directory a pure cache read.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.fleet.spec import Fleet, FleetFormatError, FleetSpec
from repro.logs.campaign_io import write_campaign
from repro.machine.topology import AstraTopology
from repro.synth.campaign import CampaignGenerator


def _backfill_text_logs(fleet: Fleet) -> None:
    """Write missing ce.log/het.log from a cluster's binary mirrors.

    Lets ``--source text`` work on a fleet originally synthesised
    binary-only without re-generating any campaign: the text emitters
    take the record arrays directly, so the logs are identical to what
    synthesis with ``text_logs=True`` would have written.
    """
    from repro.faults.types import ERROR_DTYPE
    from repro.logs.het import write_het_log
    from repro.logs.store import load_records
    from repro.logs.syslog import write_ce_log
    from repro.synth.het import HET_DTYPE

    for cdir in fleet.cluster_dirs:
        if not (cdir / "ce.log").exists():
            write_ce_log(
                load_records(cdir / "errors.npy", ERROR_DTYPE, mmap=True),
                cdir / "ce.log",
            )
        if not (cdir / "het.log").exists():
            write_het_log(
                load_records(cdir / "het.npy", HET_DTYPE, mmap=True),
                cdir / "het.log",
            )


def synth_fleet(
    spec: FleetSpec,
    directory: str | os.PathLike,
    text_logs: bool = False,
    shards: bool = True,
    cache=None,
    force: bool = False,
) -> Fleet:
    """Materialise ``spec`` under ``directory``; returns the Fleet handle.

    An existing manifest matching the spec short-circuits (the fleet is
    already on disk) unless ``force`` re-synthesises every cluster.
    ``shards`` additionally writes per-rack error shards inside each
    cluster directory -- the finer task granularity the fleet engine
    prefers.  ``text_logs`` writes the paper-faithful ``ce.log`` /
    ``het.log`` per cluster (slow at fleet sizes; needed only for the
    text-ingest path).  ``cache`` is an optional ``CampaignCache``;
    cache reuse requires the spec's per-cluster topology to be the stock
    Astra shape, since the cache keys campaigns by (seed, scale,
    calibration) only.
    """
    from repro import obs

    directory = Path(directory)
    if not force:
        try:
            existing = Fleet.load(directory)
        except FleetFormatError:
            pass
        else:
            if existing.spec == spec and all(
                (d / "manifest.txt").exists() for d in existing.cluster_dirs
            ):
                if text_logs:
                    _backfill_text_logs(existing)
                obs.count("fleet.synth.reused")
                return existing

    use_cache = cache is not None and spec.base_topology == AstraTopology()
    fleet = Fleet(spec=spec, directory=directory)
    with obs.span(
        "fleet.synth",
        attrs={"n_clusters": spec.n_clusters, "scale": spec.scale},
    ):
        for i in range(spec.n_clusters):
            seed = spec.cluster_seed(i)
            with obs.span(
                "fleet.synth.cluster",
                prune=True,
                attrs={"cluster": spec.cluster_name(i), "seed": seed},
            ):
                if use_cache:
                    campaign, _outcome = cache.get_or_generate(
                        seed=seed, scale=spec.scale
                    )
                else:
                    campaign = CampaignGenerator(
                        seed=seed,
                        scale=spec.scale,
                        topology=spec.base_topology,
                    ).generate()
                write_campaign(
                    campaign,
                    fleet.cluster_dir(i),
                    text_logs=text_logs,
                    shards=shards,
                )
                fleet.n_errors.append(campaign.n_errors)
            obs.count("fleet.clusters_synthesized")
            obs.count("fleet.errors_synthesized", campaign.n_errors)
    fleet.save()
    return fleet
