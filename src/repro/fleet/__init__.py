"""Fleet-scale sharded campaign engine.

Scales the single-Astra pipeline (synthesis -> ingest -> coalesce ->
experiments) to dozens of Astra-sized clusters analysed as one system:

- :mod:`repro.fleet.spec` -- the fleet layout (clusters, seeds, node
  offsets) and its on-disk ``fleet.json`` manifest;
- :mod:`repro.fleet.synth` -- materialising per-cluster campaign
  directories (cache-aware);
- :mod:`repro.fleet.engine` -- the process-parallel shard scheduler
  with memory-mapped shards and exact cross-shard reduction;
- :mod:`repro.fleet.supervisor` -- crash-safe execution on top of the
  engine: the fsynced attempt ledger, bounded full-jitter retry,
  quarantine with coverage accounting, and ``--resume`` from the
  digest-verified shard cache (:mod:`repro.fleet.ledger`);
- :mod:`repro.fleet.handle` -- the fleet as a single analysable
  :class:`~repro.synth.campaign.Campaign`, so every registered
  experiment runs unchanged.
"""

from repro.fleet.spec import (
    FLEET_SCHEMA_VERSION,
    Fleet,
    FleetFormatError,
    FleetSpec,
    MANIFEST_NAME,
)
from repro.fleet.synth import synth_fleet
from repro.fleet.engine import (
    FleetResult,
    merge_ingest_stats,
    process_fleet,
    shard_tasks,
)
from repro.fleet.handle import drop_quarantined, fleet_campaign, fleet_errors
from repro.fleet.ledger import (
    CACHE_DIR_NAME,
    LEDGER_NAME,
    FleetLedger,
    ShardResultCache,
    task_key,
)
from repro.fleet.supervisor import (
    ShardSupervisor,
    SuperviseConfig,
    SuperviseOutcome,
)

__all__ = [
    "CACHE_DIR_NAME",
    "FLEET_SCHEMA_VERSION",
    "LEDGER_NAME",
    "MANIFEST_NAME",
    "Fleet",
    "FleetFormatError",
    "FleetLedger",
    "FleetSpec",
    "FleetResult",
    "ShardResultCache",
    "ShardSupervisor",
    "SuperviseConfig",
    "SuperviseOutcome",
    "drop_quarantined",
    "fleet_campaign",
    "fleet_errors",
    "merge_ingest_stats",
    "process_fleet",
    "shard_tasks",
    "synth_fleet",
    "task_key",
]
