"""The per-shard attempt ledger and the shard-result cache.

Crash-safe fleet execution rests on two pieces of persistence inside the
fleet directory:

- ``fleet-ledger.jsonl`` (:class:`FleetLedger`): an append-only record
  of everything the supervisor decided -- the task plan, every attempt,
  every commit (with the result digest), every quarantine.  Appends are
  atomic at the line level (one ``os.write`` of one ``\\n``-terminated
  line on an ``O_APPEND`` fd, fsynced), so a ``kill -9`` can at worst
  tear the *final* line; :meth:`FleetLedger.read` tolerates exactly
  that and reports anything else it skipped.

- ``fleet-cache/`` (:class:`ShardResultCache`): one ``.npz`` per
  committed shard holding the reduced artefacts (fault array, per-mode
  counts, ingest accounting).  Files are written tmp + fsync +
  ``os.replace`` + directory fsync, and the ledger's commit line
  records the CRC-32C of the file bytes -- so ``--resume`` trusts a
  cached result only when its digest matches, and a torn cache write
  (crash between rename and durability, or an injected
  ``checkpoint-tear``) simply re-runs that shard instead of poisoning
  the reduction.

Resuming replays nothing: committed shards load their cached artefacts,
uncommitted ones re-run, and the final reduction is byte-identical to
an uninterrupted run because :func:`repro.faults.coalesce.
merge_shard_faults` is order-exact over the same per-shard inputs.

The line format is validated in CI against
``schemas/ledger.schema.json`` (via ``python -m repro.obs.schema
--jsonl``).
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

import numpy as np

from repro._util import fsync_dir
from repro.logs.ingest import IngestStats
from repro.logs.integrity import crc32c

#: Ledger filename inside a fleet directory.
LEDGER_NAME = "fleet-ledger.jsonl"

#: Shard-result cache directory inside a fleet directory.
CACHE_DIR_NAME = "fleet-cache"

#: Bumped when the ledger line layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Every event kind the supervisor appends.
EVENTS = ("plan", "resume", "attempt", "commit", "failed", "quarantine")


class LedgerError(RuntimeError):
    """A ledger could not be used (wrong version, unreadable, mismatched)."""


def task_key(task: dict) -> str:
    """Stable identity of one shard task: ``<cluster>/<shard>``."""
    return f"{task['cluster']}/{task['shard']}"


class FleetLedger:
    """Append-only, fsynced JSONL ledger of shard attempts and commits."""

    def __init__(
        self, path: str | os.PathLike, chaos=None, truncate: bool = False
    ):
        self.path = Path(path)
        #: Optional chaos hooks (``on_ledger_append``) -- see
        #: :mod:`repro.inject.chaos`.
        self.chaos = chaos
        #: A fresh (non-resume) run truncates any prior ledger: the
        #: journal describes one run and its resumes, so stale commits
        #: from an earlier run on the same directory can never satisfy
        #: a later ``--resume``.
        self.truncate = truncate
        self._fd: int | None = None
        self._appends = 0

    # -- writing -------------------------------------------------------
    def append(self, event: str, **fields) -> dict:
        """Atomically append one event line; returns the written record.

        The line is one ``os.write`` on an ``O_APPEND`` descriptor
        followed by ``fsync``: concurrent writers interleave whole
        lines, and a crash tears at most the final line.  Raises
        ``OSError`` on I/O failure (disk full); callers that must
        survive that wrap appends in bounded retry.
        """
        if event not in EVENTS:
            raise ValueError(f"unknown ledger event {event!r}")
        record = {
            "v": LEDGER_SCHEMA_VERSION,
            "event": event,
            "t": time.time(),
            **fields,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        if self.chaos is not None:
            # May raise a planned OSError (ENOSPC) -- before the write,
            # like a real full disk would.
            self.chaos.on_ledger_append(self._appends)
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            flags = os.O_WRONLY | os.O_APPEND | os.O_CREAT
            if self.truncate:
                flags |= os.O_TRUNC
            self._fd = os.open(self.path, flags, 0o644)
        os.write(self._fd, line.encode())
        os.fsync(self._fd)
        self._appends += 1
        return record

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FleetLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    @classmethod
    def read(cls, path: str | os.PathLike) -> tuple:
        """Parse a ledger; returns ``(events, n_skipped)``.

        A torn final line (crash mid-append) is expected and skipped;
        any other unparseable or wrong-version line is also skipped but
        counted, so callers can surface damage without refusing to
        resume from the intact majority.
        """
        path = Path(path)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return [], 0
        except OSError as exc:
            raise LedgerError(f"{path}: unreadable ledger ({exc})") from exc
        events = []
        skipped = 0
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if (
                not isinstance(doc, dict)
                or doc.get("v") != LEDGER_SCHEMA_VERSION
                or doc.get("event") not in EVENTS
            ):
                skipped += 1
                continue
            events.append(doc)
        return events, skipped

    @classmethod
    def committed(cls, path: str | os.PathLike) -> dict:
        """``{task_key: commit event}`` for every committed shard.

        The *last* commit per task wins (a shard re-run after a torn
        cache write commits again); quarantine events do not count as
        commits -- a resumed run re-attempts quarantined shards, since
        the fault may have been transient.
        """
        events, _ = cls.read(path)
        out: dict[str, dict] = {}
        for event in events:
            if event["event"] == "commit" and "task" in event:
                out[event["task"]] = event
        return out


# ----------------------------------------------------------------------
# Shard result cache
# ----------------------------------------------------------------------
class ShardResultCache:
    """Digest-verified persistence of per-shard reduced artefacts."""

    def __init__(self, directory: str | os.PathLike, chaos=None):
        self.directory = Path(directory)
        self.chaos = chaos
        self._saves = 0

    def path_for(self, key: str) -> Path:
        # "cluster-00/errors-rack03.npy" -> "cluster-00__errors-rack03.npy.npz"
        return self.directory / (key.replace("/", "__") + ".npz")

    # ------------------------------------------------------------------
    def save(self, key: str, result: dict) -> tuple:
        """Persist one shard result; returns ``(relative path, digest)``.

        The payload is serialised to an in-memory npz, its CRC-32C
        computed over the *intended* bytes, and the file written
        tmp -> fsync -> ``os.replace`` -> directory fsync.  The digest
        the caller writes into the ledger therefore vouches for the
        bytes that should be on disk; any divergence (torn write,
        bit rot, an injected ``checkpoint-tear``) is caught by
        :meth:`load` and the shard simply re-runs on resume.
        """
        meta = {
            "n_errors": int(result["n_errors"]),
            "stats": result["stats"].to_dict(),
            "wall_s": float(result["wall_s"]),
        }
        arrays = {
            "faults": result["faults"],
            "mode_counts": result["mode_counts"],
        }
        rollup = result.get("rollup")
        if rollup is not None:
            # Rollup payloads ride in the same npz: the cube arrays get
            # a reserved prefix and the cube meta joins the JSON doc, so
            # one digest still vouches for the whole committed result.
            meta["rollup_meta"] = rollup["meta"]
            for name, arr in rollup["arrays"].items():
                arrays["rollup__" + name] = arr
        buf = io.BytesIO()
        np.savez(buf, meta=np.array(json.dumps(meta)), **arrays)
        payload = buf.getvalue()
        digest = f"{crc32c(payload):08x}"
        if self.chaos is not None and self.chaos.on_cache_save(self._saves):
            # Injected torn write: commit only a prefix, exactly what a
            # crash between write and fsync can surface after a rename
            # that was never made durable.
            payload = payload[: max(1, len(payload) // 2)]
        self._saves += 1
        path = self.path_for(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(self.directory)
        return str(path.relative_to(self.directory)), digest

    # ------------------------------------------------------------------
    def load(self, key: str, digest: str) -> dict | None:
        """Load a cached shard result iff its bytes match ``digest``.

        Returns ``None`` (-> re-run the shard) when the file is missing,
        its digest differs, or the payload does not deserialise -- a
        cached result is either byte-exactly what was committed or it
        does not exist.
        """
        path = self.path_for(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        if f"{crc32c(payload):08x}" != str(digest).lower():
            return None
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
                faults = npz["faults"]
                mode_counts = npz["mode_counts"]
                meta = json.loads(str(npz["meta"]))
                rollup_arrays = {
                    name[len("rollup__"):]: npz[name]
                    for name in npz.files
                    if name.startswith("rollup__")
                }
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        stats_doc = dict(meta["stats"])
        stats_doc.pop("coverage", None)
        stats = IngestStats(**stats_doc)
        result = {
            "faults": faults,
            "mode_counts": mode_counts,
            "n_errors": int(meta["n_errors"]),
            "stats": stats,
            "wall_s": float(meta["wall_s"]),
        }
        if "rollup_meta" in meta:
            result["rollup"] = {
                "meta": meta["rollup_meta"],
                "arrays": rollup_arrays,
            }
        return result
