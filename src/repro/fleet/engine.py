"""The sharded campaign engine: per-shard workers, exact reduction.

One task = one shard of one cluster's error stream (a per-rack
``shards/errors-rackNN.npy``, a whole ``errors.npy``, or a ``ce.log``).
Workers never materialise more than their shard: binary shards are
memory-mapped read-only and coalesced in place; text shards stream
through the block-granular two-gear reader into an
:class:`~repro.stream.online_coalesce.OnlineCoalescer`.  Each worker
returns only the reduced artefacts -- the shard's fault array (node ids
already lifted to fleet-global), a per-mode count vector, and ingest
accounting -- so inter-process traffic stays tiny next to the shard
payload.

Reduction is exact, not approximate (DESIGN.md section 11): the
coalescing key (node, slot, rank, bank) never spans a rack, so
per-shard coalescing followed by
:func:`~repro.faults.coalesce.merge_shard_faults` and element-wise
count merging reproduces the whole-stream answer byte for byte.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.coalesce import coalesce, merge_shard_faults
from repro.faults.types import ERROR_DTYPE, FaultMode
from repro.fleet.spec import Fleet, FleetFormatError
from repro.logs.ingest import IngestPolicy, IngestStats
from repro.logs.store import load_records
from repro.parallel.sharding import merge_counts

#: ``source`` values accepted by :func:`process_fleet`.
SOURCES = ("auto", "shards", "binary", "text")


def merge_ingest_stats(parts: list) -> IngestStats:
    """Exact sum of per-shard ingest accounting (one family)."""
    parts = [p for p in parts if p is not None]
    if not parts:
        return IngestStats(family="errors", missing=True, source="missing")
    sources = {p.source for p in parts}
    out = IngestStats(
        family=parts[0].family,
        source=sources.pop() if len(sources) == 1 else "mixed",
    )
    for p in parts:
        out.seen += p.seen
        out.parsed += p.parsed
        out.repaired += p.repaired
        out.quarantined += p.quarantined
        out.fast_lines += p.fast_lines
    out.missing = all(p.missing for p in parts)
    out.check_invariant()
    return out


def _process_shard(task: dict) -> dict:
    """Worker: ingest + coalesce one shard, return reduced artefacts.

    Module-level so the process pool can pickle it by name; runs under
    ``obs.capture`` so worker spans and counters ship back as a payload
    the parent merges deterministically (never mutating forked state).
    """
    from repro import obs
    from repro.inject.chaos import worker_fault
    from repro.logs.syslog import stream_ce_batches
    from repro.stream.online_coalesce import OnlineCoalescer

    t0 = time.perf_counter()
    with obs.capture(trace=task.get("trace", False)) as cap:
        with obs.span(
            "fleet.shard",
            attrs={"cluster": task["cluster"], "shard": task["shard"]},
        ):
            # Chaos (when armed by the supervisor): SIGKILL/wedge this
            # worker before it does any work, like a real mid-task death.
            worker_fault(task)
            # Test/CI knob: slow every shard down so an external
            # kill -9 lands mid-run deterministically.
            try:
                delay = float(os.environ.get("ASTRA_MEMREPRO_SHARD_DELAY_S", 0))
            except ValueError:
                delay = 0.0
            if delay > 0:
                time.sleep(delay)
            offset = int(task["node_offset"])
            rollup = None
            if task.get("rollup") is not None:
                from repro.query.rollup import RollupConfig, RollupStore

                rollup = RollupStore(RollupConfig.from_dict(task["rollup"]))
                rollup.source = "fleet"
                rollup.policy = task["policy"]
            if task["kind"] == "binary":
                # verify=True checks the CRC-32C sidecar before the mmap
                # is trusted; a torn/bit-flipped shard raises
                # ShardIntegrityError into the supervisor's quarantine
                # path instead of poisoning the reduction.
                records = load_records(
                    task["path"], ERROR_DTYPE, mmap=True, verify=True
                )
                n_errors = int(records.size)
                faults = coalesce(records)
                if rollup is not None:
                    rollup.update(records, node_offset=offset)
                del records  # drop the mmap view before pickling results
                stats = IngestStats(
                    family="errors", seen=n_errors, parsed=n_errors,
                    source="binary",
                )
            else:
                stats = IngestStats(family="errors", source="text")
                coal = OnlineCoalescer()
                n_errors = 0
                for batch in stream_ce_batches(
                    task["path"],
                    policy=task["policy"],
                    quarantine=task["quarantine"],
                    stats=stats,
                ):
                    n_errors += int(batch.size)
                    coal.add(batch)
                    if rollup is not None:
                        rollup.update(batch, node_offset=offset)
                faults = coal.faults()
            if offset:
                faults["node"] += offset
            if rollup is not None:
                # Faults already carry fleet-global node ids here, and
                # this shard's coalescing groups never span a rack, so
                # per-shard fault cubes merge additively in the parent.
                rollup.set_faults(faults)
            obs.count("fleet.shard.errors", n_errors)
            obs.count("fleet.shard.faults", int(faults.size))
    result = {
        "cluster": task["cluster"],
        "shard": task["shard"],
        "n_errors": n_errors,
        "faults": faults,
        "mode_counts": np.bincount(
            faults["mode"], minlength=len(FaultMode)
        ).astype(np.int64),
        "stats": stats,
        "wall_s": time.perf_counter() - t0,
        "obs": cap.payload(),
    }
    if rollup is not None:
        result["rollup"] = rollup.to_payload()
    return result


@dataclass
class FleetResult:
    """Fleet-wide aggregation: exact, order-independent reductions."""

    #: Coalesced fault records over the whole fleet, in the canonical
    #: (node, slot, rank, bank) order with renumbered ``fault_id`` --
    #: byte-identical to coalescing the concatenated stream whole.
    faults: np.ndarray
    #: Fault counts per :class:`FaultMode` value (index = mode value).
    mode_counts: np.ndarray
    n_errors: int
    ingest: IngestStats
    #: Per-shard rows: cluster, shard, n_errors, n_faults, wall_s.
    per_shard: list = field(default_factory=list)
    source: str = "auto"
    jobs: int = 0
    wall_s: float = 0.0
    #: ``pass`` (every shard reduced), ``pass-degraded`` (some shards
    #: quarantined; the reduction covers the survivors and ``coverage``
    #: accounts for the rest), or ``fail`` (nothing survived).
    status: str = "pass"
    #: One dict per quarantined shard (task, reason, attempts,
    #: est_records); empty on a clean run.
    quarantined: list = field(default_factory=list)
    #: Shard attempts that were retried (worker death, wedge, ENOSPC).
    retries: int = 0
    #: Task keys whose committed results were loaded from the shard
    #: cache instead of re-run (``--resume``).
    resumed_shards: list = field(default_factory=list)
    #: Shards that failed their CRC-32C content check.
    integrity_failures: int = 0
    #: Fleet-wide :class:`~repro.query.rollup.RollupStore` (exact merge
    #: of the per-shard cubes), or ``None`` when rollups were not
    #: requested.
    rollups: object | None = None

    @property
    def n_faults(self) -> int:
        return int(self.faults.size)

    @property
    def coverage(self) -> float:
        """Usable fraction of the error records the fleet holds."""
        return self.ingest.coverage

    def mode_histogram(self) -> dict:
        """``{mode name: fault count}`` over the fleet."""
        return {
            mode.name.lower(): int(self.mode_counts[mode.value])
            for mode in FaultMode
        }

    def to_dict(self) -> dict:
        return {
            "n_errors": int(self.n_errors),
            "n_faults": self.n_faults,
            "n_shards": len(self.per_shard),
            "source": self.source,
            "jobs": int(self.jobs),
            "wall_s": float(self.wall_s),
            "status": self.status,
            "coverage": float(self.coverage),
            "retries": int(self.retries),
            "integrity_failures": int(self.integrity_failures),
            "quarantined": [dict(row) for row in self.quarantined],
            "resumed_shards": list(self.resumed_shards),
            "mode_counts": self.mode_histogram(),
            "ingest": self.ingest.to_dict(),
            "per_shard": [dict(row) for row in self.per_shard],
            "rollups": (
                None
                if self.rollups is None
                else {
                    "errors_seen": int(self.rollups.errors_seen),
                    "n_faults": int(self.rollups.n_faults),
                    "n_racks": int(self.rollups.n_racks),
                    "n_buckets": int(self.rollups.n_buckets),
                }
            ),
        }


def shard_tasks(
    fleet: Fleet,
    source: str = "auto",
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = False,
    rollup: dict | None = None,
) -> list[dict]:
    """Plan the shard task list for ``fleet``.

    ``auto`` prefers, per cluster: per-rack binary shards (finest
    granularity), then the whole-cluster binary mirror, then the text
    log.  Forcing ``shards``/``binary``/``text`` raises
    :class:`FleetFormatError` when a cluster lacks that source.
    ``rollup`` (a :meth:`RollupConfig.to_dict` document) asks every
    worker to maintain and ship per-shard rollup cubes; task identity
    (:func:`~repro.fleet.ledger.task_key`) does not include it, so a
    resume may satisfy rollup-bearing tasks from earlier commits.
    """
    from repro import obs

    if source not in SOURCES:
        raise ValueError(f"source must be one of {SOURCES}, got {source!r}")
    policy = IngestPolicy.coerce(policy)
    want_trace = obs.tracing_enabled()
    tasks = []
    for i in range(fleet.spec.n_clusters):
        cdir = fleet.cluster_dir(i)
        common = dict(
            cluster=fleet.spec.cluster_name(i),
            node_offset=fleet.spec.node_offset(i),
            policy=policy.value,
            quarantine=quarantine,
            trace=want_trace,
        )
        if rollup is not None:
            common["rollup"] = dict(rollup)
        shard_paths = sorted((cdir / "shards").glob("errors-rack*.npy"))
        kind = source
        if source == "auto":
            if shard_paths:
                kind = "shards"
            elif (cdir / "errors.npy").exists():
                kind = "binary"
            elif (cdir / "ce.log").exists():
                kind = "text"
            else:
                raise FleetFormatError(
                    cdir, "no shards/, errors.npy or ce.log to process"
                )
        if kind == "shards":
            if not shard_paths:
                raise FleetFormatError(
                    cdir / "shards", "no errors-rack*.npy shards"
                )
            for p in shard_paths:
                tasks.append(
                    dict(common, shard=p.name, path=str(p), kind="binary")
                )
        else:
            name = "errors.npy" if kind == "binary" else "ce.log"
            path = cdir / name
            if not path.exists():
                raise FleetFormatError(path, f"{name} missing")
            tasks.append(
                dict(
                    common, shard=name, path=str(path),
                    kind="binary" if kind == "binary" else "text",
                )
            )
    return tasks


def process_fleet(
    fleet: Fleet,
    jobs: int = 0,
    source: str = "auto",
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = False,
    task_timeout_s: float | None = None,
    shard_retries: int = 2,
    backoff_s: float = 0.25,
    max_backoff_s: float = 5.0,
    resume: bool = False,
    ledger: bool = True,
    chaos=None,
    chaos_seed: int = 0,
    rollups=None,
) -> FleetResult:
    """Ingest and coalesce every shard of ``fleet``, supervised.

    The reduction is exact: the returned fault stream and per-mode
    counts equal what a single process would compute over the
    concatenated (node-offset) error stream, byte for byte, for any
    ``jobs`` and any shard granularity.  Execution is supervised
    (:mod:`repro.fleet.supervisor`): failing shards are retried up to
    ``shard_retries`` times with full-jitter backoff, wedged workers
    are abandoned after ``task_timeout_s``, and shards that cannot be
    reduced are quarantined -- the result then degrades to
    ``status="pass-degraded"`` with the missing records accounted in
    its coverage rather than silently vanishing.

    ``ledger`` journals every attempt/commit to ``fleet-ledger.jsonl``
    and caches per-shard results, which is what makes ``resume=True``
    able to skip committed shards after a crash and still produce a
    byte-identical reduction.  ``chaos`` (a profile name or
    :class:`~repro.inject.chaos.ChaosProfile`) injects planned process
    and IO faults for self-testing; the plan is seeded by
    ``chaos_seed`` and recorded in ``chaos-manifest.json``.

    ``rollups`` (``True``, a :class:`~repro.query.rollup.RollupConfig`,
    or its ``to_dict`` form) additionally has every worker maintain
    per-shard rollup cubes, merged exactly during the reduction into
    ``result.rollups`` -- byte-identical to building one store over the
    concatenated node-offset stream, because the error cubes are pure
    sums and coalescing groups never span a rack (DESIGN.md section 11).
    """
    from repro import obs
    from repro.fleet.supervisor import ShardSupervisor, SuperviseConfig
    from repro.obs.trace import attach_tree

    rollup_config = None
    if rollups:
        from repro.query.rollup import RollupConfig

        if isinstance(rollups, RollupConfig):
            rollup_config = rollups
        elif isinstance(rollups, dict):
            rollup_config = RollupConfig.from_dict(rollups)
        else:
            rollup_config = RollupConfig()

    t0 = time.perf_counter()
    with obs.span(
        "fleet.process",
        attrs={
            "jobs": jobs,
            "source": source,
            "n_clusters": fleet.spec.n_clusters,
        },
    ) as sp:
        tasks = shard_tasks(
            fleet,
            source,
            policy,
            quarantine,
            rollup=(
                None if rollup_config is None else rollup_config.to_dict()
            ),
        )
        sp.set("n_shards", len(tasks))

        plan = None
        if chaos is not None:
            from repro.inject.chaos import ChaosPlan, coerce_profile

            plan = ChaosPlan(coerce_profile(chaos), chaos_seed, tasks)
            _apply_chaos_once(plan, fleet)

        outcome = ShardSupervisor(
            fleet,
            tasks,
            SuperviseConfig(
                jobs=jobs,
                task_timeout_s=task_timeout_s,
                shard_retries=shard_retries,
                backoff_s=backoff_s,
                max_backoff_s=max_backoff_s,
                retry_seed=chaos_seed,
                resume=resume,
                ledger=ledger,
                chaos=plan,
                require_rollups=rollup_config is not None,
            ),
        ).run()

        # Reduce in plan order: merge_shard_faults re-canonicalises, so
        # the answer is order-independent, but keeping plan order makes
        # per_shard rows stable across resume/retry scheduling noise.
        results = [
            outcome.results[key]
            for key in outcome.order
            if key in outcome.results
        ]
        for r in results:
            for root in obs.merge_payload(r.pop("obs", None)):
                attach_tree(sp, root)
        faults = merge_shard_faults([r["faults"] for r in results])
        if results:
            mode_counts = merge_counts([r["mode_counts"] for r in results])
        else:
            mode_counts = np.zeros(len(FaultMode), dtype=np.int64)

        rollup_store = None
        if rollup_config is not None:
            from repro.query.rollup import RollupStore

            rollup_store = RollupStore(rollup_config)
            rollup_store.source = "fleet"
            rollup_store.policy = IngestPolicy.coerce(policy).value
            with obs.span(
                "query.fleet_merge", counts={"shards": len(results)}
            ):
                for r in results:
                    rollup_store.merge_payload(r["rollup"])

        ingest = merge_ingest_stats([r["stats"] for r in results])
        est_missing = sum(q["est_records"] for q in outcome.quarantined)
        if outcome.quarantined:
            # Coverage accounting for what the quarantined shards would
            # have contributed: the records were "seen" by the fleet (they
            # exist on disk) but none survived to the reduction, which is
            # exactly the seen/quarantined split IngestStats models.  The
            # experiment layer's min-coverage gate then downgrades
            # verdicts instead of trusting a partial answer.
            if results:
                ingest.seen += est_missing
                ingest.quarantined += est_missing
                ingest.check_invariant()
                status = "pass-degraded"
            else:
                ingest = IngestStats(
                    family="errors", missing=True, source="missing"
                )
                status = "fail"
        else:
            status = "pass"

        result = FleetResult(
            faults=faults,
            mode_counts=mode_counts,
            n_errors=sum(r["n_errors"] for r in results),
            ingest=ingest,
            per_shard=[
                {
                    "cluster": r["cluster"],
                    "shard": r["shard"],
                    "n_errors": int(r["n_errors"]),
                    "n_faults": int(r["faults"].size),
                    "wall_s": float(r["wall_s"]),
                }
                for r in results
            ],
            source=source,
            jobs=jobs,
            wall_s=time.perf_counter() - t0,
            status=status,
            quarantined=list(outcome.quarantined),
            retries=outcome.retries,
            resumed_shards=list(outcome.resumed),
            integrity_failures=outcome.integrity_failures,
            rollups=rollup_store,
        )
        obs.count("fleet.shards_processed", len(results))
        obs.count("fleet.errors_processed", result.n_errors)
        obs.count("fleet.faults_merged", result.n_faults)
        sp.add(errors=result.n_errors, faults=result.n_faults)
        sp.set("status", result.status)
    return result


def _apply_chaos_once(plan, fleet: Fleet) -> None:
    """Apply the plan's file faults unless an identical run already did.

    Re-applying is not idempotent (a second bit flip flips the bit
    *back*), so a resume of a chaos run -- same profile, same seed --
    must not damage the files twice.  The chaos manifest written by the
    first application is the marker.
    """
    import json

    from repro.inject.chaos import CHAOS_MANIFEST_NAME, apply_file_faults

    marker = Path(fleet.directory) / CHAOS_MANIFEST_NAME
    try:
        doc = json.loads(marker.read_text())
    except (OSError, ValueError):
        doc = None
    if (
        isinstance(doc, dict)
        and doc.get("profile") == plan.profile.name
        and doc.get("seed") == plan.seed
    ):
        return
    apply_file_faults(plan, fleet.directory)
