"""A fleet as one analysable Campaign.

``fleet_campaign`` builds a *real* :class:`~repro.synth.campaign.Campaign`
over the whole fleet -- the topology is the fleet-wide rack-major
:class:`AstraTopology`, the record streams are the per-cluster binary
mirrors with node ids lifted to fleet-global and re-sorted by time --
so every experiment in :mod:`repro.experiments.registry` runs unchanged
over a fleet handle.  When a :class:`~repro.fleet.engine.FleetResult`
is supplied, its exactly-merged fault stream pre-warms the campaign's
fault cache, so no experiment ever re-coalesces the concatenated
stream.

Record streams are read through ``load_records(mmap=True)`` by default:
each cluster's mirror is a read-only view until the single fleet-wide
concatenation copies it, so peak memory is one fleet-wide array, not
two.
"""

from __future__ import annotations

import re

import numpy as np

from repro.faults.types import ERROR_DTYPE
from repro.fleet.spec import Fleet
from repro.logs.ingest import IngestStats
from repro.logs.store import load_records
from repro.synth.het import HET_DTYPE
from repro.synth.replacements import REPLACEMENT_DTYPE


def _concat_offset(fleet: Fleet, npy_name: str, dtype, mmap: bool = True):
    """Concatenate one family across clusters: offset nodes, sort by time."""
    views = []
    for i, cdir in enumerate(fleet.cluster_dirs):
        views.append(
            (
                load_records(cdir / npy_name, dtype, mmap=mmap),
                fleet.spec.node_offset(i),
            )
        )
    out = np.empty(sum(v.size for v, _ in views), dtype=dtype)
    pos = 0
    for view, offset in views:
        out[pos : pos + view.size] = view
        if offset and view.size:
            out["node"][pos : pos + view.size] += offset
        pos += view.size
    return out[np.argsort(out["time"], kind="stable")]


def fleet_errors(fleet: Fleet, mmap: bool = True) -> np.ndarray:
    """The fleet-wide CE stream: node-offset, time-ordered."""
    return _concat_offset(fleet, "errors.npy", ERROR_DTYPE, mmap=mmap)


def drop_quarantined(fleet: Fleet, result, errors: np.ndarray) -> np.ndarray:
    """Remove error records belonging to a result's quarantined shards.

    A degraded :class:`~repro.fleet.engine.FleetResult` excludes
    quarantined shards from its fault stream; any whole-fleet view built
    beside it (the campaign handle, a ``--check`` reference) must
    exclude the same records or the two disagree by construction.  A
    per-rack shard maps to its global rack; a whole-cluster task
    (``errors.npy`` / ``ce.log``) maps to the cluster's full rack span.
    """
    quarantined = getattr(result, "quarantined", None) if result else None
    if not quarantined or errors.size == 0:
        return errors
    topo = fleet.spec.fleet_topology()
    racks = topo.rack_of(errors["node"])
    per_cluster = fleet.spec.base_topology.n_racks
    index_of = {
        fleet.spec.cluster_name(i): i for i in range(fleet.spec.n_clusters)
    }
    drop = np.zeros(errors.size, dtype=bool)
    for entry in quarantined:
        ci = index_of.get(entry["cluster"])
        if ci is None:
            continue
        match = re.search(r"rack(\d+)", entry["shard"])
        if match:
            drop |= racks == ci * per_cluster + int(match.group(1))
        else:
            drop |= (racks >= ci * per_cluster) & (
                racks < (ci + 1) * per_cluster
            )
    return errors[~drop] if drop.any() else errors


def _binary_stats(family: str, size: int) -> IngestStats:
    return IngestStats(
        family=family, seen=int(size), parsed=int(size), source="binary"
    )


def fleet_campaign(fleet: Fleet, result=None, mmap: bool = True):
    """Build the fleet-wide Campaign handle.

    ``result`` (a :class:`~repro.fleet.engine.FleetResult`) pre-warms
    the fault cache with the shard-merged stream and carries the error
    family's ingest accounting (which, for text-sourced fleets, records
    quarantine counts the binary mirrors cannot).  The campaign keeps
    the *per-machine* ``scale`` and sets ``machines = n_clusters``: the
    fleet is ``n_clusters`` Astra-sized machines each carrying
    ``scale`` of the paper's volume, so intensive paper checks
    (fractions, per-DIMM rates) apply unchanged and extensive totals
    multiply by ``machines``.
    """
    from repro.machine.cooling import CoolingModel
    from repro.machine.dram import AddressMap
    from repro.machine.node import NodeConfig
    from repro.synth.campaign import Campaign
    from repro.synth.config import PaperCalibration
    from repro.synth.sensors import SensorFieldModel

    errors = drop_quarantined(
        fleet, result, _concat_offset(fleet, "errors.npy", ERROR_DTYPE, mmap=mmap)
    )
    replacements = _concat_offset(
        fleet, "replacements.npy", REPLACEMENT_DTYPE, mmap=mmap
    )
    het = _concat_offset(fleet, "het.npy", HET_DTYPE, mmap=mmap)
    topology = fleet.spec.fleet_topology()
    campaign = Campaign(
        seed=fleet.spec.seed,
        scale=fleet.spec.scale,
        machines=fleet.spec.n_clusters,
        calibration=PaperCalibration(),
        topology=topology,
        node_config=NodeConfig(),
        address_map=AddressMap(),
        population=None,
        errors=errors,
        replacements=replacements,
        het=het,
        sensors=SensorFieldModel(
            seed=fleet.spec.seed, cooling=CoolingModel(topology=topology)
        ),
        ingest={
            "errors": (
                result.ingest if result is not None
                else _binary_stats("errors", errors.size)
            ),
            "replacements": _binary_stats("replacements", replacements.size),
            "het": _binary_stats("het", het.size),
        },
    )
    if result is not None:
        campaign._faults_cache = result.faults
        rollups = getattr(result, "rollups", None)
        if rollups is not None:
            # Figure reads go through repro.query.views, which re-checks
            # the store against this campaign's topology and error count
            # before trusting a cube slice.
            campaign.rollups = rollups
    return campaign
