"""One-call orchestration of a full synthetic campaign.

A :class:`Campaign` bundles everything the paper's analyses consume: the
CE record stream, the planned fault population (ground truth), the
replacement and HET event streams, the sensor field model, and the
machine/calibration context.  :class:`CampaignGenerator` builds one from a
seed and a scale.

``scale=1.0`` reproduces the paper's full volume (4.37 M CEs); tests use
small scales.  Generation is deterministic per (seed, scale,
calibration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.machine.cooling import CoolingModel
from repro.machine.dram import AddressMap
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.config import PaperCalibration
from repro.synth.errors import expand_errors
from repro.synth.het import HetGenerator
from repro.synth.population import FaultPopulation, FaultPopulationGenerator
from repro.synth.replacements import ReplacementGenerator
from repro.synth.sensors import SensorFieldModel


@dataclass
class Campaign:
    """A complete synthetic telemetry campaign."""

    seed: int
    scale: float
    calibration: PaperCalibration
    topology: AstraTopology
    node_config: NodeConfig
    address_map: AddressMap
    #: Ground-truth fault population; ``None`` for campaigns rebuilt
    #: from stored records (the analyses never need it).
    population: FaultPopulation | None
    errors: np.ndarray
    replacements: np.ndarray
    het: np.ndarray
    sensors: SensorFieldModel
    #: Per-family ingest accounting (``{family: IngestStats}``) when the
    #: campaign was loaded from stored telemetry; empty for campaigns
    #: generated in memory (perfect coverage).
    ingest: dict = field(default_factory=dict, repr=False)
    #: Number of Astra-sized machines the topology spans (1 for the
    #: paper's single system; > 1 for fleet campaigns).  ``scale`` stays
    #: per machine, so intensive checks (fractions, per-DIMM rates,
    #: per-fault extremes) compare against the paper unchanged while
    #: extensive totals multiply by ``machines``.
    machines: int = 1
    #: Optional attached :class:`~repro.query.rollup.RollupStore` built
    #: alongside this campaign (stream or fleet run); figure paths may
    #: serve reads from it via :mod:`repro.query.views`, which gates on
    #: the store actually matching this campaign's topology and stream.
    rollups: object | None = field(default=None, repr=False)
    _faults_cache: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_errors(self) -> int:
        """Number of CE records in the campaign."""
        return int(self.errors.size)

    @property
    def coverage(self) -> dict:
        """``{family: usable fraction}`` from the ingest accounting.

        Empty when the campaign carries no ingest history, which every
        consumer should read as full coverage.
        """
        return {family: stats.coverage for family, stats in self.ingest.items()}

    def faults(self, options: CoalesceOptions | None = None) -> np.ndarray:
        """Coalesced fault records (cached for the default options).

        This runs the *analysis-side* coalescer over the error stream --
        the ground-truth population is ``self.population``; comparing the
        two is itself one of the reproduction's tests.
        """
        if options is None:
            if self._faults_cache is None:
                self._faults_cache = coalesce(self.errors)
            return self._faults_cache
        return coalesce(self.errors, options)


class CampaignGenerator:
    """Seeded, scaled generator for full campaigns."""

    def __init__(
        self,
        seed: int = 0,
        scale: float = 1.0,
        calibration: PaperCalibration | None = None,
        topology: AstraTopology | None = None,
        node_config: NodeConfig | None = None,
        row_fault_fraction: float = 0.0,
        due_hazard: float = 0.0,
    ) -> None:
        """``due_hazard`` links that fraction of DUE placements to the
        fault population (see :class:`~repro.synth.het.HetGenerator`);
        the default keeps the legacy uniform DUE stream byte-identical."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.scale = scale
        self.row_fault_fraction = row_fault_fraction
        self.due_hazard = due_hazard
        self.calibration = calibration or PaperCalibration()
        self.topology = topology or AstraTopology()
        self.node_config = node_config or NodeConfig()
        self.address_map = AddressMap(
            n_sockets=self.node_config.n_sockets,
            channels_per_socket=self.node_config.channels_per_socket,
            ranks_per_dimm=self.node_config.ranks_per_dimm,
        )

    def generate(self, emit_rows: bool = False) -> Campaign:
        """Build the campaign: population, errors, replacements, HET, sensors."""
        population = FaultPopulationGenerator(
            seed=self.seed,
            scale=self.scale,
            calibration=self.calibration,
            topology=self.topology,
            address_map=self.address_map,
            row_fault_fraction=self.row_fault_fraction,
        ).generate()
        errors = expand_errors(
            population.faults,
            address_map=self.address_map,
            seed=self.seed + 1,
            emit_rows=emit_rows,
        )
        replacements = ReplacementGenerator(
            seed=self.seed,
            scale=self.scale,
            calibration=self.calibration,
            topology=self.topology,
            node_config=self.node_config,
        ).generate()
        het = HetGenerator(
            seed=self.seed,
            scale=self.scale,
            calibration=self.calibration,
            topology=self.topology,
            node_config=self.node_config,
            due_hazard=self.due_hazard,
            population=population if self.due_hazard > 0.0 else None,
        ).generate()
        sensors = SensorFieldModel(
            seed=self.seed,
            cooling=CoolingModel(topology=self.topology),
            calibration=self.calibration,
        )
        return Campaign(
            seed=self.seed,
            scale=self.scale,
            calibration=self.calibration,
            topology=self.topology,
            node_config=self.node_config,
            address_map=self.address_map,
            population=population,
            errors=errors,
            replacements=replacements,
            het=het,
            sensors=sensors,
        )
