"""Calibrated synthetic telemetry standing in for the Astra production logs.

The paper's raw data (syslog CE records, BMC sensor streams, inventory
scans, HET records; about 8 GiB) is not available in this environment, so
this subpackage generates the same four log families from generative models
whose parameters are fitted to every quantitative statement in the paper.
DESIGN.md section 2 documents the substitution; :mod:`repro.synth.config`
carries the constants with their paper citations.

- :mod:`repro.synth.config` -- the :class:`PaperCalibration` constants.
- :mod:`repro.synth.population` -- the fault population: how many faults,
  of which modes, with how many errors each, placed on which nodes /
  slots / ranks / banks.
- :mod:`repro.synth.errors` -- expansion of the fault population into
  time-stamped CE records, plus the finite-buffer CE logging model.
- :mod:`repro.synth.sensors` -- the stateless sensor field (temperatures
  and DC power as deterministic functions of node, sensor and time).
- :mod:`repro.synth.replacements` -- hardware replacement events with the
  infant-mortality / upgrade / cooling-issue shape of Figure 3.
- :mod:`repro.synth.het` -- Hardware Event Tracker records including the
  pre-firmware silence and the paper's DUE rate.
- :mod:`repro.synth.campaign` -- one-call orchestration producing a
  :class:`Campaign` with everything the analyses consume.
"""

from repro.synth.config import PaperCalibration
from repro.synth.population import FaultPopulationGenerator, PLANNED_FAULT_DTYPE
from repro.synth.errors import expand_errors, apply_ce_logging
from repro.synth.sensors import SensorFieldModel
from repro.synth.replacements import ReplacementGenerator, REPLACEMENT_DTYPE
from repro.synth.het import HetGenerator, HET_DTYPE
from repro.synth.campaign import Campaign, CampaignGenerator
from repro.synth.validation import validate_campaign, render_validation
from repro.synth.counterfactual import (
    apply_placement_coupling,
    apply_temperature_coupling,
)

__all__ = [
    "PaperCalibration",
    "FaultPopulationGenerator",
    "PLANNED_FAULT_DTYPE",
    "expand_errors",
    "apply_ce_logging",
    "SensorFieldModel",
    "ReplacementGenerator",
    "REPLACEMENT_DTYPE",
    "HetGenerator",
    "HET_DTYPE",
    "Campaign",
    "CampaignGenerator",
    "validate_campaign",
    "render_validation",
    "apply_placement_coupling",
    "apply_temperature_coupling",
]
