"""Campaign self-validation against the paper's calibration targets.

Users who tweak :class:`repro.synth.config.PaperCalibration` (or write a
new generator) need to know whether the campaign still reproduces the
paper's quantitative anchors.  :func:`validate_campaign` runs every
anchor programmatically and returns a structured report; the CLI's
``validate`` subcommand and the test suite both consume it.

The checks here are *calibration* checks (does the generator hit its
targets); the *shape* claims of each figure live with their experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.distributions import concentration_curve, per_node_counts
from repro.faults.classify import errors_per_mode
from repro.faults.types import FaultMode


@dataclass(frozen=True)
class CheckResult:
    """One calibration check: target vs measured."""

    name: str
    target: float
    measured: float
    tolerance: float  # relative, except where target == 0
    passed: bool

    def render(self) -> str:
        flag = "ok " if self.passed else "FAIL"
        return (
            f"[{flag}] {self.name:<44} target {self.target:>12g}  "
            f"measured {self.measured:>12g}"
        )


def _check(name: str, target: float, measured: float, rel: float) -> CheckResult:
    if target == 0:
        passed = measured == 0
    else:
        passed = abs(measured - target) <= rel * abs(target)
    return CheckResult(
        name=name, target=target, measured=measured, tolerance=rel, passed=passed
    )


def validate_campaign(campaign) -> list[CheckResult]:
    """Check a campaign against every scaled calibration anchor."""
    cal = campaign.calibration
    scale = campaign.scale
    checks: list[CheckResult] = []

    checks.append(
        _check(
            "total correctable errors",
            cal.scaled_count(cal.total_errors, scale),
            campaign.n_errors,
            0.02,
        )
    )

    per_node = per_node_counts(campaign.errors, campaign.topology.n_nodes)
    n_error_nodes = min(
        cal.scaled_count(cal.n_error_nodes, scale), campaign.topology.n_nodes
    )
    checks.append(
        _check("nodes with >= 1 CE", n_error_nodes, int((per_node > 0).sum()), 0.05)
    )
    # The top-2% quantile is only meaningful when the error-node
    # population comfortably exceeds 2% of the machine.
    if n_error_nodes > 3 * 0.02 * campaign.topology.n_nodes:
        curve = concentration_curve(per_node)
        checks.append(
            _check("top-2% CE share", cal.top2pct_error_share,
                   curve.share_of_top_fraction(0.02), 0.08)
        )

    faults = campaign.faults()
    epm = errors_per_mode(faults)
    for mode, target in (
        (FaultMode.SINGLE_BIT, cal.errors_single_bit),
        (FaultMode.SINGLE_WORD, cal.errors_single_word),
        (FaultMode.SINGLE_COLUMN, cal.errors_single_column),
        (FaultMode.SINGLE_BANK, cal.errors_single_bank),
        (FaultMode.UNATTRIBUTED, cal.errors_unattributed),
    ):
        checks.append(
            _check(
                f"errors attributed to {mode.label} faults",
                cal.scaled_count(target, scale),
                epm[mode],
                0.12,
            )
        )
    # Below ~20% scale the per-fault ladder cannot respect the scaled
    # cap (the per-mode totals force heavier heads), so the max check is
    # only meaningful near full volume.
    if scale >= 0.2:
        checks.append(
            _check(
                "maximum errors per fault",
                cal.scaled_count(cal.max_errors_per_fault, scale),
                int(faults["n_errors"].max()),
                0.25,
            )
        )
    checks.append(
        _check("median errors per fault", 1.0, float(np.median(faults["n_errors"])), 0.0)
    )

    counts = np.bincount(campaign.replacements["component"], minlength=3)
    for idx, (label, target) in enumerate(
        (
            ("processors replaced", cal.replaced_processors),
            ("motherboards replaced", cal.replaced_motherboards),
            ("DIMMs replaced", cal.replaced_dimms),
        )
    ):
        checks.append(
            _check(label, cal.scaled_count(target, scale), int(counts[idx]), 0.01)
        )

    dues = int(campaign.het["non_recoverable"].sum())
    t0, t1 = cal.het_recording_start, cal.error_window[1]
    years = (t1 - t0) / (365 * 86400.0)
    n_dimms = campaign.node_config.system_dimm_count(campaign.topology.n_nodes)
    expected_dues = cal.due_per_dimm_year * n_dimms * years * scale
    # Poisson-count target with a floor of one generated event; use an
    # absolute-one tolerance alongside the relative band.
    due_ok = abs(dues - expected_dues) <= max(0.3 * expected_dues, 1.0)
    checks.append(
        CheckResult(
            name="uncorrectable errors (DUEs)",
            target=expected_dues,
            measured=dues,
            tolerance=0.3,
            passed=due_ok,
        )
    )

    return checks


def render_validation(checks: list[CheckResult]) -> str:
    """Text report of the calibration checks."""
    passed = sum(c.passed for c in checks)
    lines = [f"calibration checks: {passed}/{len(checks)} pass", ""]
    lines += [c.render() for c in checks]
    return "\n".join(lines)
