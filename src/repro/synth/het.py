"""Hardware Event Tracker (HET) records, including uncorrectable errors.

Section 3.5: uncorrectable memory errors surface as machine checks and are
recorded in the syslog by the HET.  Two calibration facts drive the
generator:

- **the firmware gap**: no HET records exist between May 20 and Aug 23,
  2019; recording starts with the August firmware update;
- **the DUE rate**: over the recorded period, 0.00948 DUEs per DIMM per
  year, i.e. a FIT of ~1081 per DIMM.

The event-type vocabulary reproduces Figure 15's legend verbatim
(including the vendor's "redundacy" spelling); the NON-RECOVERABLE subset
is ``uncorrectableECC`` and ``uncorrectableMachineCheckException``.
"""

from __future__ import annotations

import numpy as np

from repro._util import DAY_S
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.config import PaperCalibration

#: One HET record.
HET_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("node", np.int32),
        ("event", np.int8),  # index into EVENT_TYPES
        ("non_recoverable", np.bool_),
    ]
)

#: Event-type vocabulary, exactly as listed in Figure 15a's legend.
EVENT_TYPES = (
    "redundacyLost",
    "ucGoingHigh",
    "powerSupplyFailureDetected de-asserted",
    "unrGoingHigh",
    "uncorrectableECC",
    "powerSupplyFailureDetected",
    "uncorrectableMachineCheckException",
    "redundacyNeInsufficientResources",
)

#: Indices of event types with NON-RECOVERABLE severity (Figure 15b).
NON_RECOVERABLE_EVENTS = (
    EVENT_TYPES.index("uncorrectableECC"),
    EVENT_TYPES.index("uncorrectableMachineCheckException"),
)

#: Expected totals of the recoverable event types over the recorded
#: window, eyeballed from Figure 15a's daily counts (tens of events).
_RECOVERABLE_RATES = {
    "redundacyLost": 60.0,
    "ucGoingHigh": 25.0,
    "powerSupplyFailureDetected de-asserted": 18.0,
    "unrGoingHigh": 14.0,
    "powerSupplyFailureDetected": 18.0,
    "redundacyNeInsufficientResources": 8.0,
}


class HetGenerator:
    """Seeded generator for the HET record stream.

    ``due_hazard`` optionally links that fraction of DUE placements to
    the campaign's fault ``population`` instead of drawing nodes
    uniformly: a linked DUE lands on a faulty node (weighted toward
    heavy and non-single-bit faults, the structure the prediction
    literature reports as most predictive) at a time after the fault has
    been producing CEs.  The default ``0.0`` reproduces the legacy
    uniform stream byte-for-byte; the predictor's training campaigns opt
    in because uniform DUEs carry no learnable signal.
    """

    def __init__(
        self,
        seed: int = 0,
        scale: float = 1.0,
        calibration: PaperCalibration | None = None,
        topology: AstraTopology | None = None,
        node_config: NodeConfig | None = None,
        due_hazard: float = 0.0,
        population=None,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if not 0.0 <= due_hazard <= 1.0:
            raise ValueError("due_hazard must be in [0, 1]")
        if due_hazard > 0.0 and population is None:
            raise ValueError("due_hazard > 0 requires a fault population")
        self.seed = seed
        self.scale = scale
        self.calibration = calibration or PaperCalibration()
        self.topology = topology or AstraTopology()
        self.node_config = node_config or NodeConfig()
        self.due_hazard = due_hazard
        self.population = population

    @property
    def recording_window(self) -> tuple[float, float]:
        """The interval during which the firmware logs HET events."""
        return (
            self.calibration.het_recording_start,
            self.calibration.error_window[1],
        )

    def expected_dues(self) -> float:
        """Expected DUE count over the recording window (pre-scale)."""
        t0, t1 = self.recording_window
        years = (t1 - t0) / (365.0 * DAY_S)
        n_dimms = self.node_config.system_dimm_count(self.topology.n_nodes)
        return self.calibration.due_per_dimm_year * n_dimms * years

    def generate(self) -> np.ndarray:
        """Produce the HET record stream, time-ordered.

        All records fall inside the recording window -- the firmware gap
        is represented by their absence before ``het_recording_start``.
        DUEs split between the two non-recoverable event types.
        """
        rng = np.random.default_rng(self.seed + 202)
        t0, t1 = self.recording_window
        parts = []

        n_due = max(1, round(self.expected_dues() * self.scale))
        due_events = rng.choice(NON_RECOVERABLE_EVENTS, size=n_due, p=[0.6, 0.4])
        parts.append((due_events, True))

        for name, expected in _RECOVERABLE_RATES.items():
            n = rng.poisson(expected * self.scale)
            if n:
                idx = EVENT_TYPES.index(name)
                parts.append((np.full(n, idx, dtype=np.int64), False))

        total = sum(ev.size for ev, _ in parts)
        out = np.zeros(total, dtype=HET_DTYPE)
        pos = 0
        for events, non_rec in parts:
            n = events.size
            sl = slice(pos, pos + n)
            out["event"][sl] = events
            out["non_recoverable"][sl] = non_rec
            pos += n
        out["time"] = rng.uniform(t0, t1, size=total)
        out["node"] = rng.integers(0, self.topology.n_nodes, size=total)
        if self.due_hazard > 0.0:
            self._link_dues(out)
        return out[np.argsort(out["time"], kind="stable")]

    def _link_dues(self, out: np.ndarray) -> None:
        """Re-place a hazard-linked share of the DUEs onto faulty nodes.

        Runs on a *separate* RNG stream after the base draw so the
        ``due_hazard=0`` stream is untouched and linkage is itself
        deterministic per seed.  A linked DUE copies a fault's node
        (sampled with weight ``log1p(n_errors)``, boosted 6x for
        non-single-bit modes) and fires no earlier than 30% into the
        fault's active period -- so its CE history is visible *before*
        the failure, which is what makes lead-time prediction possible.
        """
        from repro.faults.types import FaultMode

        rng = np.random.default_rng(self.seed + 203)
        t0, t1 = self.recording_window
        faults = self.population.faults
        due_idx = np.flatnonzero(out["non_recoverable"])
        linked = due_idx[rng.random(due_idx.size) < self.due_hazard]
        if linked.size == 0 or faults.size == 0:
            return
        multibit = (faults["mode"] != FaultMode.SINGLE_BIT) & (
            faults["mode"] != FaultMode.UNATTRIBUTED
        )
        w = np.log1p(faults["n_errors"].astype(np.float64))
        w *= np.where(multibit, 6.0, 1.0)
        pick = rng.choice(faults.size, size=linked.size, p=w / w.sum())
        start = faults["start_time"][pick]
        dur = faults["duration"][pick]
        lo = np.minimum(np.maximum(t0, start + 0.3 * dur), t1 - 3600.0)
        out["node"][linked] = faults["node"][pick]
        out["time"][linked] = rng.uniform(lo, t1)
