"""Hardware replacement events with the Figure 3 temporal shape.

Section 3.1 tallies components replaced during the stabilisation period
(Table 1: 836 processors, 46 motherboards, 1,515 DIMMs) and describes the
daily structure (Figure 3):

- every component shows an initial infant-mortality burst;
- processors show a second uptick from the in-field memory-controller
  speed upgrade (not every part tolerated the higher speed);
- motherboards show a second uptick after months of sustained use;
- DIMMs show elevated mid-period replacement rates attributed to cooling
  issues, then a steady ageing tail;
- all components spike at the end of the window when vendor
  representatives were on site before the move to the closed network.

Daily replacement counts are drawn from a multinomial over a per-day
weight profile encoding exactly those features.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro._util import DAY_S
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.config import PaperCalibration

#: One replacement event.
REPLACEMENT_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("component", np.int8),
        ("node", np.int32),
        ("socket", np.int8),  # processors only; -1 otherwise
        ("slot", np.int8),  # DIMMs only; -1 otherwise
    ]
)


class Component(IntEnum):
    """Component kinds tracked by the inventory analysis (Table 1)."""

    PROCESSOR = 0
    MOTHERBOARD = 1
    DIMM = 2

    @property
    def label(self) -> str:
        return _LABELS[self]


_LABELS = {
    Component.PROCESSOR: "Processors",
    Component.MOTHERBOARD: "Motherboards",
    Component.DIMM: "DIMMs",
}


def _gauss(days: np.ndarray, centre: float, width: float) -> np.ndarray:
    return np.exp(-0.5 * ((days - centre) / width) ** 2)


class ReplacementGenerator:
    """Seeded generator for the replacement event stream."""

    def __init__(
        self,
        seed: int = 0,
        scale: float = 1.0,
        calibration: PaperCalibration | None = None,
        topology: AstraTopology | None = None,
        node_config: NodeConfig | None = None,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.scale = scale
        self.calibration = calibration or PaperCalibration()
        self.topology = topology or AstraTopology()
        self.node_config = node_config or NodeConfig()

    # ------------------------------------------------------------------
    def _n_days(self) -> int:
        t0, t1 = self.calibration.inventory_window
        return max(1, int(round((t1 - t0) / DAY_S)))

    def daily_weights(self, component: Component) -> np.ndarray:
        """Relative replacement propensity per day of the window."""
        n = self._n_days()
        d = np.arange(n, dtype=np.float64)
        infant = np.exp(-d / 25.0)
        endgame = _gauss(d, n - 5, 4.0)  # vendor on-site before the move
        if component is Component.PROCESSOR:
            # Memory-controller speed upgrade, late June (~day 130).
            upgrade = 2.6 * _gauss(d, 130.0, 12.0)
            w = 1.3 * infant + upgrade + 0.9 * endgame + 0.05
        elif component is Component.MOTHERBOARD:
            # Second uptick after months of sustained use (~day 170).
            w = 1.2 * infant + 1.0 * _gauss(d, 170.0, 10.0) + 0.7 * endgame + 0.04
        else:
            # DIMMs: cooling issues mid-period, then a steady ageing tail.
            cooling = 1.3 * _gauss(d, 105.0, 22.0)
            tail = np.where(d > 120, 0.32, 0.0)
            w = 2.4 * infant + cooling + tail + 0.8 * endgame + 0.08
        return w / w.sum()

    def _target_count(self, component: Component) -> int:
        cal = self.calibration
        totals = {
            Component.PROCESSOR: cal.replaced_processors,
            Component.MOTHERBOARD: cal.replaced_motherboards,
            Component.DIMM: cal.replaced_dimms,
        }
        return cal.scaled_count(totals[component], self.scale)

    # ------------------------------------------------------------------
    def generate(self) -> np.ndarray:
        """Produce the full replacement event stream, time-ordered."""
        rng = np.random.default_rng(self.seed + 101)
        t0, _ = self.calibration.inventory_window
        parts = []
        for component in Component:
            total = self._target_count(component)
            weights = self.daily_weights(component)
            per_day = rng.multinomial(total, weights)
            days = np.repeat(np.arange(per_day.size), per_day)
            events = np.zeros(total, dtype=REPLACEMENT_DTYPE)
            # Replacements are detected by a daily inventory scan; give
            # each a business-hours timestamp within its day.
            events["time"] = t0 + days * DAY_S + rng.uniform(
                8 * 3600, 18 * 3600, size=total
            )
            events["component"] = component
            events["node"] = rng.integers(0, self.topology.n_nodes, size=total)
            events["socket"] = np.where(
                component is Component.PROCESSOR,
                rng.integers(0, self.node_config.n_sockets, size=total),
                -1,
            )
            events["slot"] = np.where(
                component is Component.DIMM,
                rng.integers(0, self.node_config.dimms_per_node, size=total),
                -1,
            )
            parts.append(events)
        out = np.concatenate(parts)
        return out[np.argsort(out["time"], kind="stable")]
