"""The stateless synthetic sensor field.

A full-fidelity Astra sensor archive is ~10^9 samples (2,592 nodes x 7
sensors x 1/min x 4 months) -- far too large to materialise.  Instead the
sensor field is a *deterministic function* ``value(node, sensor, time)``
built from:

- the steady-state cooling model (socket/rack/region structure);
- a per-node static offset (device/contact variance);
- a utilisation process (piecewise-constant per 4-hour job block, keyed
  by stateless hash noise) that couples into both power and temperature;
- a small diurnal component (machine-room air handling);
- per-sample measurement noise;
- a sprinkling of invalid samples (stuck/unreadable sensors), < 1% as in
  the paper.

Any subset of the series can be evaluated in any order, with identical
results, in O(requested samples) -- which is what lets the temperature
correlation analysis of Figure 9 compute window means at scale.

Deliberately, the error process does NOT feed back into this model and
the model does not feed the error generator: on Astra, temperature and
utilisation showed no strong correlation with correctable errors
(section 3.3), and independence is the faithful model of that finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import hash_normalish, hash_uniform
from repro.machine.cooling import CoolingModel
from repro.machine.sensors import NodeSensorComplement, SensorKind
from repro.synth.config import PaperCalibration

#: Length of one utilisation "job block" in seconds.
_BLOCK_S = 4 * 3600.0
#: Value written by a wedged temperature sensor.
INVALID_TEMP_VALUE = 0.0
#: Value written by a glitched power sensor (clearly impossible).
INVALID_POWER_VALUE = 4095.0


@dataclass
class SensorFieldModel:
    """Deterministic sensor field for the whole system."""

    seed: int = 0
    cooling: CoolingModel = field(default_factory=CoolingModel)
    calibration: PaperCalibration = field(default_factory=PaperCalibration)
    #: degC of CPU temperature swing per unit utilisation.
    cpu_util_coupling_c: float = 6.0
    #: degC of DIMM temperature swing per unit utilisation.
    dimm_util_coupling_c: float = 3.0
    #: Peak-to-peak diurnal swing (degC).
    diurnal_amplitude_c: float = 1.6
    #: Per-node static temperature offset scale (degC, CPU sensors).
    #: Sized so monthly-mean CPU temperatures span ~7 degC between the
    #: first and ninth deciles (Figure 13a).
    node_offset_cpu_c: float = 4.2
    #: Per-node static temperature offset scale (degC, DIMM sensors);
    #: gives the ~4 degC DIMM decile span of Figure 13b.
    node_offset_dimm_c: float = 1.5
    #: Per-sample measurement noise (degC standard deviation).
    temp_noise_c: float = 0.5
    #: Idle power floor and utilisation span (W).
    power_idle_w: float = 238.0
    power_span_w: float = 145.0
    #: Per-sample power measurement noise (W standard deviation).
    power_noise_w: float = 6.0

    def __post_init__(self) -> None:
        self._sensors = NodeSensorComplement()
        self._is_power = np.array(
            [s.kind is SensorKind.DC_POWER for s in self._sensors.sensors]
        )
        self._is_cpu = np.array(
            [s.kind is SensorKind.CPU_TEMP for s in self._sensors.sensors]
        )

    # ------------------------------------------------------------------
    def utilization(self, node_ids, times) -> np.ndarray:
        """Node utilisation in [0, 1]: 4-hour job blocks plus idle days.

        Most blocks sit in a busy 0.5-0.95 band (the machine was being
        deliberately stressed during stabilisation); roughly one node-day
        in ten idles near 0.15.
        """
        nodes = np.asarray(node_ids)
        t = np.asarray(times, dtype=np.float64)
        block = np.floor(t / _BLOCK_S).astype(np.int64)
        day = np.floor(t / 86400.0).astype(np.int64)
        busy = 0.50 + 0.45 * hash_uniform(nodes, block, seed=self.seed * 31 + 1)
        idle_day = hash_uniform(nodes, day, seed=self.seed * 31 + 2) < 0.10
        idle = 0.10 + 0.10 * hash_uniform(nodes, block, seed=self.seed * 31 + 3)
        out = np.where(idle_day, idle, busy)
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------
    def _node_offset(self, node_ids, sensor_idx) -> np.ndarray:
        scale = np.where(
            self._is_cpu[np.asarray(sensor_idx)],
            self.node_offset_cpu_c,
            self.node_offset_dimm_c,
        )
        u = hash_uniform(node_ids, sensor_idx, seed=self.seed * 31 + 4)
        return (u - 0.5) * 2.0 * scale

    def temperature(self, node_ids, sensor_idx, times) -> np.ndarray:
        """True temperature (degC) of a temperature sensor (vectorised)."""
        nodes = np.asarray(node_ids)
        sens = np.asarray(sensor_idx)
        t = np.asarray(times, dtype=np.float64)
        if np.any(self._is_power[sens]):
            raise ValueError("temperature() is undefined for the power sensor")
        base = self.cooling.expected_temperature(nodes, sens)
        coupling = np.where(
            self._is_cpu[sens], self.cpu_util_coupling_c, self.dimm_util_coupling_c
        )
        util = self.utilization(nodes, t)
        diurnal = 0.5 * self.diurnal_amplitude_c * np.sin(
            2.0 * np.pi * (t / 86400.0)
        )
        minutes = np.floor(t / 60.0).astype(np.int64)
        noise = self.temp_noise_c * hash_normalish(
            nodes, sens, minutes, seed=self.seed * 31 + 5
        )
        out = (
            base
            + self._node_offset(nodes, sens)
            + coupling * (util - 0.5)
            + diurnal
            + noise
        )
        return out if np.ndim(out) else float(out)

    def power(self, node_ids, times) -> np.ndarray:
        """True node DC power draw (W), coupled to utilisation."""
        nodes = np.asarray(node_ids)
        t = np.asarray(times, dtype=np.float64)
        util = self.utilization(nodes, t)
        minutes = np.floor(t / 60.0).astype(np.int64)
        noise = self.power_noise_w * hash_normalish(
            nodes, minutes, seed=self.seed * 31 + 6
        )
        out = self.power_idle_w + self.power_span_w * util + noise
        return out if np.ndim(out) else float(out)

    def value(self, node_ids, sensor_idx, times) -> np.ndarray:
        """True value of any sensor: temperature or power as appropriate."""
        sens = np.atleast_1d(np.asarray(sensor_idx))
        nodes = np.atleast_1d(np.asarray(node_ids))
        t = np.atleast_1d(np.asarray(times, dtype=np.float64))
        nodes, sens, t = np.broadcast_arrays(nodes, sens, t)
        out = np.empty(nodes.shape, dtype=np.float64)
        pw = self._is_power[sens]
        if pw.any():
            out[pw] = self.power(nodes[pw], t[pw])
        if (~pw).any():
            out[~pw] = self.temperature(nodes[~pw], sens[~pw], t[~pw])
        if np.ndim(node_ids) == 0 and np.ndim(sensor_idx) == 0 and np.ndim(times) == 0:
            return float(out[0])
        return out

    # ------------------------------------------------------------------
    def invalid_mask(self, node_ids, sensor_idx, times) -> np.ndarray:
        """Which raw samples a real BMC would have recorded as garbage."""
        minutes = np.floor(np.asarray(times, dtype=np.float64) / 60.0).astype(
            np.int64
        )
        u = hash_uniform(node_ids, sensor_idx, minutes, seed=self.seed * 31 + 7)
        return u < self.calibration.invalid_sample_fraction

    def raw_samples(self, node_ids, sensor_idx, times) -> np.ndarray:
        """Sensor readings as logged: true values with invalids injected."""
        vals = np.atleast_1d(self.value(node_ids, sensor_idx, times))
        bad = np.atleast_1d(self.invalid_mask(node_ids, sensor_idx, times))
        sens = np.atleast_1d(np.asarray(sensor_idx))
        vals, bad, sens = np.broadcast_arrays(vals, bad, sens)
        vals = vals.copy()
        vals[bad & self._is_power[sens]] = INVALID_POWER_VALUE
        vals[bad & ~self._is_power[sens]] = INVALID_TEMP_VALUE
        return vals

    # ------------------------------------------------------------------
    def window_mean(
        self,
        node_ids,
        sensor_idx,
        t_end,
        window_s: float,
        max_samples: int = 256,
    ) -> np.ndarray:
        """Mean sensor value over ``[t_end - window_s, t_end)``.

        Evaluates the field on an evenly spaced grid of at most
        ``max_samples`` points per window (at least every 10 minutes for
        short windows), which is exact for the piecewise components up to
        grid resolution.  Vectorised over requests; memory is bounded by
        ``len(requests) * max_samples`` floats, so callers with millions
        of requests should chunk.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        nodes = np.atleast_1d(np.asarray(node_ids))
        sens = np.atleast_1d(np.asarray(sensor_idx))
        ends = np.atleast_1d(np.asarray(t_end, dtype=np.float64))
        nodes, sens, ends = np.broadcast_arrays(nodes, sens, ends)

        m = int(min(max_samples, max(4, window_s / 600.0)))
        offs = (np.arange(m, dtype=np.float64) + 0.5) * (window_s / m)
        grid = ends[:, None] - offs[None, :]
        vals = self.value(
            np.repeat(nodes, m).reshape(-1, m),
            np.repeat(sens, m).reshape(-1, m),
            grid,
        )
        out = vals.mean(axis=1)
        if np.ndim(t_end) == 0 and np.ndim(node_ids) == 0:
            return float(out[0])
        return out
