"""The synthetic fault population.

This module decides *what faults exist*: how many of each mode, how many
errors each produces, and where each sits (node, DIMM slot, rank, bank,
row, column, bit).  :mod:`repro.synth.errors` later expands the population
into time-stamped CE records.

The construction follows the paper's reported structure:

- **Errors-per-fault** follow a singleton-dominated heavy tail: a fixed
  fraction of faults produce exactly one error (median 1, Figure 4b) and
  the rest follow a truncated power-law "ladder" whose exponent is solved
  by bisection so each mode's error total matches the paper's Figure 4a
  numbers, with the single largest fault pinned just over 91,000 errors.

- **Node concentration** (Figure 5b) comes from a three-tier assignment:
  the heaviest faults go to a handful of *storm* nodes (top-8 share of
  CEs > 50%), the next tier to *hot* nodes completing the top-2% ~ 90%
  concentration, and the rest spread over the remaining error nodes with
  power-law per-node fault counts (Figure 5a).

- **Positional structure** (sections 3.2/3.4): DIMM slots are weighted
  (J, E, I, P high; A, K, L, M, N low), rank 0 takes a bigger fault share
  than rank 1, banks/columns/sockets are uniform, storm nodes are placed
  bottom-heavy in their racks so *errors* rank bottom > top > middle while
  *faults* stay nearly uniform, and the designated spike rack hosts the
  largest storm so its error count exceeds twice any other rack's.

Within one node every fault gets a distinct (slot, rank, bank) location so
that coalescing recovers the planned population exactly; the real-world
possibility of two faults sharing a bank is a known limitation of the
coalescing methodology itself, not of this generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.types import NO_BANK, NO_BIT, NO_COLUMN, FaultMode
from repro.machine.dram import AddressMap, SecDed72
from repro.machine.node import DIMM_SLOTS
from repro.machine.topology import AstraTopology
from repro.synth.config import PaperCalibration

#: Planned-fault layout: the generator's ground truth for one fault.
PLANNED_FAULT_DTYPE = np.dtype(
    [
        ("node", np.int32),
        ("socket", np.int8),
        ("slot", np.int8),
        ("rank", np.int8),
        ("bank", np.int8),
        ("row", np.int32),
        ("column", np.int16),
        ("bit_pos", np.int16),
        ("address", np.uint64),
        ("syndrome", np.uint8),
        ("mode", np.int8),
        ("n_errors", np.int64),
        ("start_time", np.float64),
        ("duration", np.float64),
    ]
)

#: Per-mode cap on errors from one fault.  Single-bit carries the global
#: 91 k maximum; the unattributed storms stay just below it.
_MODE_MAX_ERRORS = {
    FaultMode.SINGLE_BIT: 91_000,
    FaultMode.SINGLE_WORD: 8_000,
    FaultMode.SINGLE_COLUMN: 12_000,
    FaultMode.SINGLE_BANK: 2_500,
    FaultMode.UNATTRIBUTED: 80_000,
}

#: Relative error-mass weights of the storm nodes.  The first (placed in
#: the spike rack) is ~3.5x the others, producing the Figure 12a spike.
_STORM_WEIGHTS = np.array([4.8, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])

#: Share of total errors carried by the storm tier / by the top-2% tier.
_STORM_MASS_SHARE = 0.58
_TOP2PCT_MASS_SHARE = 0.90


def _ladder(
    rng: np.random.Generator,
    n_faults: int,
    total_errors: int,
    max_count: int,
    singleton_frac: float,
) -> np.ndarray:
    """Per-fault error counts: singletons plus a truncated power-law tail.

    Returns ``n_faults`` positive counts summing to ``total_errors``
    (exactly), with the largest pinned near ``max_count`` when the budget
    allows.  The tail exponent is solved by bisection.
    """
    if n_faults <= 0:
        return np.zeros(0, dtype=np.int64)
    if total_errors < n_faults:
        raise ValueError("total_errors must allow one error per fault")

    n_singletons = int(round(n_faults * singleton_frac))
    n_heavy = n_faults - n_singletons
    if n_heavy == 0:
        n_heavy, n_singletons = 1, n_faults - 1
    target_heavy = total_errors - n_singletons

    max_count = min(max_count, target_heavy - (n_heavy - 1))
    max_count = max(max_count, 1)

    k = np.arange(1, n_heavy + 1, dtype=np.float64)

    def ladder_sum(s: float) -> float:
        return float(np.maximum(1, np.round(max_count * k**-s)).sum())

    lo, hi = 0.0, 8.0
    # ladder_sum decreases in s; bisect toward target_heavy.
    if ladder_sum(lo) <= target_heavy:
        s = lo
    elif ladder_sum(hi) >= target_heavy:
        s = hi
    else:
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if ladder_sum(mid) > target_heavy:
                lo = mid
            else:
                hi = mid
        s = 0.5 * (lo + hi)

    counts = np.maximum(1, np.round(max_count * k**-s)).astype(np.int64)
    # Multiplicative jitter on the tail (not the pinned head), then an
    # exact fix-up spread over the mid-ladder.
    if n_heavy > 2:
        jitter = np.exp(rng.normal(0.0, 0.08, n_heavy - 1))
        counts[1:] = np.maximum(1, np.round(counts[1:] * jitter)).astype(np.int64)
    diff = target_heavy - int(counts.sum())
    # Distribute the residual over entries 1..10 (or all but the head).
    spread = counts[1 : max(2, min(11, n_heavy))]
    if spread.size:
        per = diff // spread.size
        spread += per
        spread[0] += diff - per * spread.size
        np.maximum(spread, 1, out=spread)
    else:
        counts[0] += diff
    # Whatever clamping left over lands on the head (kept >= 1).
    counts[0] += target_heavy - int(counts.sum())
    counts[0] = max(counts[0], 1)

    out = np.concatenate([counts, np.ones(n_singletons, dtype=np.int64)])
    return out


def _powerlaw_node_counts(
    rng: np.random.Generator, n_nodes: int, total: int, kmax: int
) -> np.ndarray:
    """Per-node fault counts: >= 1 each, power-law-ish, summing to total."""
    if n_nodes <= 0:
        return np.zeros(0, dtype=np.int64)
    total = max(total, n_nodes)
    k = np.arange(1, kmax + 1, dtype=np.float64)

    def mean_for(alpha: float) -> float:
        p = k**-alpha
        return float((k * p).sum() / p.sum())

    target_mean = total / n_nodes
    lo, hi = 0.05, 6.0
    if mean_for(hi) >= target_mean:
        alpha = hi
    elif mean_for(lo) <= target_mean:
        alpha = lo
    else:
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if mean_for(mid) > target_mean:
                lo = mid
            else:
                hi = mid
        alpha = 0.5 * (lo + hi)
    p = k**-alpha
    counts = rng.choice(np.arange(1, kmax + 1), size=n_nodes, p=p / p.sum())
    counts = counts.astype(np.int64)
    # Exact fix-up: walk the residual into counts, clamped to [1, kmax].
    diff = total - int(counts.sum())
    while diff != 0:
        idx = rng.integers(0, n_nodes)
        step = 1 if diff > 0 else -1
        new = counts[idx] + step
        if 1 <= new <= kmax:
            counts[idx] = new
            diff -= step
    return counts


@dataclass
class FaultPopulation:
    """The generated fault population plus its tier metadata."""

    faults: np.ndarray
    storm_nodes: np.ndarray
    hot_nodes: np.ndarray
    normal_nodes: np.ndarray
    calibration: PaperCalibration
    scale: float

    @property
    def error_nodes(self) -> np.ndarray:
        """All nodes hosting at least one fault."""
        return np.unique(self.faults["node"])

    @property
    def total_errors(self) -> int:
        """Total planned errors across all faults."""
        return int(self.faults["n_errors"].sum())


class FaultPopulationGenerator:
    """Seeded generator for the calibrated fault population."""

    def __init__(
        self,
        seed: int = 0,
        scale: float = 1.0,
        calibration: PaperCalibration | None = None,
        topology: AstraTopology | None = None,
        address_map: AddressMap | None = None,
        row_fault_fraction: float = 0.0,
    ) -> None:
        """``row_fault_fraction`` converts that share of the single-bank
        population into genuine single-row faults (all errors in one row,
        columns varying).  Astra's records cannot distinguish the two --
        the paper says so explicitly -- so the default is zero; the
        coalescing ablation uses a nonzero value to quantify what a
        row-reporting platform would see differently."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if not 0.0 <= row_fault_fraction <= 1.0:
            raise ValueError("row_fault_fraction must be in [0, 1]")
        self.seed = seed
        self.scale = scale
        self.row_fault_fraction = row_fault_fraction
        self.calibration = calibration or PaperCalibration()
        self.calibration.validate()
        self.topology = topology or AstraTopology()
        self.address_map = address_map or AddressMap()
        self._secded = SecDed72()

    # ------------------------------------------------------------------
    def _mode_plan(self) -> list[tuple[FaultMode, int, int]]:
        """(mode, n_faults, total_errors) per mode at the current scale."""
        cal, s = self.calibration, self.scale
        plan = [
            (FaultMode.SINGLE_BIT, cal.n_faults_single_bit, cal.errors_single_bit),
            (FaultMode.SINGLE_WORD, cal.n_faults_single_word, cal.errors_single_word),
            (
                FaultMode.SINGLE_COLUMN,
                cal.n_faults_single_column,
                cal.errors_single_column,
            ),
            (FaultMode.SINGLE_BANK, cal.n_faults_single_bank, cal.errors_single_bank),
            (
                FaultMode.UNATTRIBUTED,
                cal.n_faults_unattributed,
                cal.errors_unattributed,
            ),
        ]
        out = []
        for mode, n, total in plan:
            n_s = cal.scaled_count(n, s)
            total_s = max(cal.scaled_count(total, s), n_s)
            out.append((mode, n_s, total_s))
        return out

    # ------------------------------------------------------------------
    def _pick_node_in(self, rng, rack: int, region: int, used: set[int]) -> int:
        candidates = self.topology.nodes_in_region(rack, region)
        free = [int(n) for n in candidates if int(n) not in used]
        if not free:  # tiny topologies in tests: fall back to any node
            all_nodes = self.topology.all_node_ids()
            free = [int(n) for n in all_nodes if int(n) not in used]
            if not free:
                raise ValueError("topology too small for requested node count")
        return int(rng.choice(free))

    def _choose_nodes(
        self, rng: np.random.Generator, n_error_nodes: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pick storm / hot / normal node ids with positional structure."""
        cal, topo = self.calibration, self.topology
        n_storm = min(cal.n_storm_nodes, max(1, n_error_nodes // 3))
        n_top2 = max(n_storm, round(0.02 * topo.n_nodes))
        n_hot = min(max(0, n_top2 - n_storm), max(0, n_error_nodes - n_storm))
        n_normal = n_error_nodes - n_storm - n_hot

        used: set[int] = set()
        storm_nodes = []
        other_racks = np.array(
            [r for r in range(topo.n_racks) if r != min(cal.spike_rack, topo.n_racks - 1)]
            or [0]
        )
        rng.shuffle(other_racks)
        for i in range(n_storm):
            rack = cal.spike_rack if i == 0 else other_racks[(i - 1) % len(other_racks)]
            rack = min(rack, topo.n_racks - 1)
            region = cal.storm_regions[i % len(cal.storm_regions)]
            node = self._pick_node_in(rng, rack, region, used)
            used.add(node)
            storm_nodes.append(node)

        storm_racks = {int(topo.rack_of(nd)) for nd in storm_nodes}

        def sample_tier(count: int, rack_cap: int | None = None) -> list[int]:
            """Sample tier nodes; ``rack_cap`` bounds the heavy nodes any
            single rack hosts so the error-spike rack stays unique."""
            nodes = []
            rack_load: dict[int, int] = {}
            regions = rng.choice(3, size=count, p=np.asarray(cal.region_fault_shares))
            for region in regions:
                for _ in range(64):
                    rack = int(rng.integers(0, topo.n_racks))
                    if rack_cap is None:
                        break
                    if rack not in storm_racks and rack_load.get(rack, 0) < rack_cap:
                        break
                node = self._pick_node_in(rng, rack, int(region), used)
                used.add(node)
                rack_load[rack] = rack_load.get(rack, 0) + 1
                nodes.append(node)
            return nodes

        hot_nodes = sample_tier(n_hot, rack_cap=2)
        normal_nodes = sample_tier(n_normal)
        return (
            np.array(storm_nodes, dtype=np.int64),
            np.array(hot_nodes, dtype=np.int64),
            np.array(normal_nodes, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def _assign_nodes(
        self,
        rng: np.random.Generator,
        counts_desc: np.ndarray,
        unattr_mask: np.ndarray,
        storm: np.ndarray,
        hot: np.ndarray,
        normal: np.ndarray,
    ) -> np.ndarray:
        """Assign each fault (sorted by errors desc) to a node id.

        Capacity-aware: a node can host at most 32 unattributed faults
        (one per distinct (slot, rank)) and 512 attributed faults (one
        per distinct (slot, rank, bank)), so the location assignment that
        follows is always feasible.
        """
        total = int(counts_desc.sum())
        cum = np.cumsum(counts_desc)
        storm_cut = int(np.searchsorted(cum, _STORM_MASS_SHARE * total)) + 1
        top2_cut = int(np.searchsorted(cum, _TOP2PCT_MASS_SHARE * total)) + 1
        storm_cut = min(storm_cut, counts_desc.size)
        top2_cut = min(max(top2_cut, storm_cut), counts_desc.size)

        owner = np.empty(counts_desc.size, dtype=np.int64)
        unattr_cap = 32
        attr_cap = 32 * self.address_map.geometry.n_banks
        used_unattr: dict[int, int] = {}
        used_attr: dict[int, int] = {}

        def place(i: int, pool: np.ndarray, score, *fallbacks: np.ndarray) -> int:
            """Put fault i on the best-scoring pool node with capacity.

            When every node in ``pool`` is full for this fault's kind,
            spill into the fallback pools (round-robin by capacity); the
            tiered concentration has enough slack that spills only move
            low-mass faults.  Returns the index within ``pool`` used for
            load accounting, or -1 on spill.
            """
            used = used_unattr if unattr_mask[i] else used_attr
            cap = unattr_cap if unattr_mask[i] else attr_cap
            order = np.argsort(score)
            for j in order:
                node = int(pool[j])
                if used.get(node, 0) < cap:
                    used[node] = used.get(node, 0) + 1
                    owner[i] = node
                    return int(j)
            for fb in fallbacks:
                for node in fb:
                    node = int(node)
                    if used.get(node, 0) < cap:
                        used[node] = used.get(node, 0) + 1
                        owner[i] = node
                        return -1
            raise ValueError("fault population exceeds pool location capacity")

        # Tier 1: weighted greedy bin packing onto storm nodes.
        weights = _STORM_WEIGHTS[: storm.size].copy()
        if weights.size < storm.size:  # more storms than weights: pad
            weights = np.pad(
                weights, (0, storm.size - weights.size), constant_values=1.0
            )
        loads = np.zeros(storm.size)
        hot_pool = hot if hot.size else storm
        for i in range(storm_cut):
            j = place(i, storm, loads / weights, hot_pool, normal)
            if j >= 0:
                loads[j] += counts_desc[i]

        # Tier 2: greedy onto hot nodes (uniform weights).
        loads2 = np.zeros(hot_pool.size)
        for i in range(storm_cut, top2_cut):
            j = place(i, hot_pool, loads2, normal, storm)
            if j >= 0:
                loads2[j] += counts_desc[i]

        # Tier 3: per-node fault-count quotas, power-law distributed.
        n_rest = counts_desc.size - top2_cut
        if n_rest > 0:
            pool = normal if normal.size else hot_pool
            quotas = _powerlaw_node_counts(
                rng, pool.size, n_rest, self.calibration.max_faults_per_node
            )
            slots = np.repeat(pool, quotas)
            rng.shuffle(slots)
            owner[top2_cut:] = slots[:n_rest]
            self._repair_overflow(
                rng, owner, unattr_mask, top2_cut, unattr_cap, used_unattr
            )
        return owner

    @staticmethod
    def _repair_overflow(
        rng: np.random.Generator,
        owner: np.ndarray,
        unattr_mask: np.ndarray,
        start: int,
        cap: int,
        reserved: dict[int, int],
    ) -> None:
        """Swap tier-3 fault owners so no node exceeds the unattributed cap.

        Excess unattributed faults on an over-full node trade owners with
        attributed faults from under-full nodes, preserving every node's
        total fault quota.
        """
        idx = np.arange(start, owner.size)
        if idx.size == 0:
            return
        sub_owner = owner[idx]
        sub_unattr = unattr_mask[idx]
        counts: dict[int, int] = dict(reserved)
        for node in sub_owner[sub_unattr]:
            counts[int(node)] = counts.get(int(node), 0) + 1
        over = {n for n, c in counts.items() if c > cap}
        if not over:
            return
        attr_idx = idx[~sub_unattr]
        rng.shuffle(attr_idx)
        cursor = 0
        for node in sorted(over):
            mine = idx[sub_unattr & (sub_owner == node)]
            excess = mine[: counts[node] - cap]
            for e in excess:
                while cursor < attr_idx.size:
                    c = attr_idx[cursor]
                    cursor += 1
                    target = int(owner[c])
                    if target != node and counts.get(target, 0) < cap:
                        owner[e], owner[c] = owner[c], owner[e]
                        counts[target] = counts.get(target, 0) + 1
                        counts[node] -= 1
                        break
                else:
                    raise ValueError(
                        "cannot repair unattributed-fault overflow: "
                        "population too dense for the node pool"
                    )

    # ------------------------------------------------------------------
    def _assign_locations(
        self, rng: np.random.Generator, faults: np.ndarray
    ) -> None:
        """Fill slot/rank/bank/row/column/bit/address, collision-free.

        The location id space is (slot, rank, bank-code) with bank-code 0
        reserved for unattributed faults; ids are unique per node so the
        coalescer recovers the planned population exactly.
        """
        cal = self.calibration
        n = faults.size
        geom = self.address_map.geometry

        slot_w = np.array([cal.slot_fault_weights[s] for s in DIMM_SLOTS])
        rank_w = np.array([cal.rank0_fault_share, 1.0 - cal.rank0_fault_share])

        unattr = faults["mode"] == FaultMode.UNATTRIBUTED

        # Location probability over (slot, rank) pairs and over
        # (slot, rank, bank) triples; banks are uniform (section 3.2).
        p_sr = (slot_w[:, None] * rank_w[None, :]).ravel()
        p_sr = p_sr / p_sr.sum()
        p_srb = np.repeat(p_sr, geom.n_banks) / geom.n_banks

        # Sample locations per node, without replacement, so coalescing
        # recovers the planned population exactly.
        locs = np.empty(n, dtype=np.int64)
        order = np.argsort(faults["node"], kind="stable")
        node_sorted = faults["node"][order]
        starts = np.flatnonzero(
            np.concatenate([[True], node_sorted[1:] != node_sorted[:-1]])
        )
        bounds = np.append(starts, n)
        n_srb = 32 * geom.n_banks
        for a, b in zip(bounds[:-1], bounds[1:]):
            idx = order[a:b]
            un = unattr[idx]
            k_un, k_at = int(un.sum()), int((~un).sum())
            if k_un:
                sr = rng.choice(32, size=k_un, replace=False, p=p_sr)
                locs[idx[un]] = sr * (geom.n_banks + 1)  # bank code 0
            if k_at:
                srb = rng.choice(n_srb, size=k_at, replace=False, p=p_srb)
                sr, bank = srb // geom.n_banks, srb % geom.n_banks
                locs[idx[~un]] = sr * (geom.n_banks + 1) + bank + 1

        bank_code = locs % (geom.n_banks + 1)
        sr = locs // (geom.n_banks + 1)
        faults["slot"] = sr // 2
        faults["rank"] = sr % 2
        faults["socket"] = faults["slot"] // 8

        attributed = ~unattr
        banks = np.where(attributed, bank_code - 1, NO_BANK)
        rows = rng.integers(0, geom.n_rows, size=n)
        cols = rng.integers(0, geom.n_columns, size=n)

        # A small weak-cell population: ~3% of attributed faults sit at a
        # handful of geometrically weak (bank, row, column) cells shared
        # across devices (array edges, repair rows).  Identical cells on
        # different devices produce identical physical addresses whenever
        # (socket, channel, rank) also coincide, which gives Figure 8b its
        # repeated-address tail.  The weak bank is claimed through the
        # same per-node uniqueness bookkeeping as the original sampling,
        # so coalescing still recovers the population exactly; faults
        # whose weak bank is taken on their node stay where they were.
        weak_cells = np.stack(
            [
                rng.integers(0, geom.n_banks, size=4),
                rng.integers(0, geom.n_rows, size=4),
                rng.integers(0, geom.n_columns, size=4),
            ],
            axis=1,
        )
        weak_p = np.array([0.55, 0.25, 0.12, 0.08])
        hot_idx = np.flatnonzero(attributed & (rng.random(n) < 0.03))
        picks = rng.choice(4, size=hot_idx.size, p=weak_p)
        used_locs = set(
            zip(faults["node"].tolist(), sr.tolist(), banks.tolist())
        )
        for i, pick in zip(hot_idx, picks):
            weak_bank, weak_row, weak_col = (int(v) for v in weak_cells[pick])
            key = (int(faults["node"][i]), int(sr[i]), weak_bank)
            if banks[i] != weak_bank and key in used_locs:
                continue  # weak bank taken on this device: stay put
            used_locs.discard((int(faults["node"][i]), int(sr[i]), int(banks[i])))
            used_locs.add(key)
            banks[i] = weak_bank
            rows[i] = weak_row
            cols[i] = weak_col

        faults["bank"] = banks
        faults["row"] = np.where(attributed, rows, -1)
        faults["column"] = np.where(attributed, cols, NO_COLUMN)

        # Bit positions: Zipf over a seed-specific permutation of the 72
        # codeword positions, giving the Figure 8a heavy-tailed shape.
        perm = rng.permutation(72)
        ranks_ = np.arange(1, 73, dtype=np.float64)
        p_bit = ranks_**-1.2
        bits = perm[rng.choice(72, size=n, p=p_bit / p_bit.sum())]
        faults["bit_pos"] = np.where(attributed, bits, NO_BIT)

        addr = self.address_map.encode(
            np.asarray(faults["socket"], dtype=np.int64).clip(0),
            np.asarray(faults["slot"], dtype=np.int64) % 8,
            np.asarray(faults["rank"], dtype=np.int64),
            np.asarray(faults["bank"], dtype=np.int64).clip(0),
            np.asarray(faults["row"], dtype=np.int64).clip(0),
            np.asarray(faults["column"], dtype=np.int64).clip(0),
        )
        faults["address"] = np.where(attributed, addr, 0)
        syn = self._secded.syndrome_of_position(
            np.asarray(faults["bit_pos"], dtype=np.int64).clip(0)
        )
        faults["syndrome"] = np.where(attributed, syn, 0)

    # ------------------------------------------------------------------
    def _assign_times(self, rng: np.random.Generator, faults: np.ndarray) -> None:
        """Activation times with a pre-window warm-up and an early bias.

        Astra ran before the logging window opened (Jan 20), so faults
        may already be active at its start; activations are sampled from
        a 45-day warm-up plus the window itself, biased early.  The
        observable activity interval is the activation interval clipped
        to the window, which yields the paper's steady month-0 counts and
        the slightly declining monthly trend (Figure 4a) -- system
        maintenance (page retirement, swaps) retires faults over time.
        """
        t0, t1 = self.calibration.error_window
        warmup = 45.0 * 86400.0
        span = (t1 - t0) + warmup
        u = rng.beta(1.0, 1.6, size=faults.size)
        raw_start = (t0 - warmup) + u * span
        # Active period grows with the error count: storms burn for weeks.
        base_days = rng.uniform(2.0, 20.0, size=faults.size)
        log_count = np.log10(np.maximum(faults["n_errors"], 1).astype(np.float64))
        duration = base_days * 86400.0 * (0.5 + log_count)
        # Faults activated during the warm-up carry their full remaining
        # activity into the window (no compression of their error budget
        # into a clipped sliver); everything is capped at the window end.
        start = np.clip(raw_start, t0, t1 - 3600.0)
        end = np.clip(start + duration, start + 3600.0, t1)
        faults["start_time"] = start
        faults["duration"] = end - start

    # ------------------------------------------------------------------
    def generate(self) -> FaultPopulation:
        """Build the full fault population."""
        cal = self.calibration
        rng = np.random.default_rng(self.seed)

        parts = []
        for mode, n_faults, total in self._mode_plan():
            counts = _ladder(
                rng,
                n_faults,
                total,
                cal.scaled_count(_MODE_MAX_ERRORS[mode], self.scale),
                cal.singleton_fault_fraction,
            )
            arr = np.zeros(counts.size, dtype=PLANNED_FAULT_DTYPE)
            arr["mode"] = mode
            arr["n_errors"] = counts
            if mode == FaultMode.SINGLE_BANK and self.row_fault_fraction > 0:
                # A random slice of the bank-footprint population is
                # really row-confined; only row-reporting platforms can
                # tell (random so heavy and singleton faults both split).
                n_rows = int(round(counts.size * self.row_fault_fraction))
                chosen = rng.choice(counts.size, size=n_rows, replace=False)
                arr["mode"][chosen] = FaultMode.SINGLE_ROW
            parts.append(arr)
        faults = np.concatenate(parts)

        # Heaviest first for the tiered node assignment.
        faults = faults[np.argsort(-faults["n_errors"], kind="stable")]

        n_error_nodes = min(
            cal.scaled_count(cal.n_error_nodes, self.scale),
            self.topology.n_nodes,
            faults.size,
        )
        storm, hot, normal = self._choose_nodes(rng, n_error_nodes)
        faults["node"] = self._assign_nodes(
            rng,
            faults["n_errors"],
            faults["mode"] == FaultMode.UNATTRIBUTED,
            storm,
            hot,
            normal,
        )

        self._assign_locations(rng, faults)
        self._assign_times(rng, faults)

        return FaultPopulation(
            faults=faults,
            storm_nodes=storm,
            hot_nodes=hot,
            normal_nodes=normal,
            calibration=cal,
            scale=self.scale,
        )
