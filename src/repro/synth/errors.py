"""Expanding the fault population into time-stamped CE records.

:func:`expand_errors` turns each planned fault into ``n_errors``
correctable-error records whose positional payload matches the fault's
mode:

- *single-bit* errors repeat the same (address, bit);
- *single-word* errors share the address but walk a small set of bits;
- *single-column* errors share bank+column while the row (and hence the
  address) varies;
- *single-bank* errors share only the bank;
- *unattributed* errors carry no positional payload (sentinel fields),
  modelling records whose vendor-specific payload could not be parsed.

Timestamps are drawn uniformly inside each fault's active window, which
the population generator biased toward the start of the study to produce
the paper's slightly declining monthly error counts (Figure 4a).

:func:`apply_ce_logging` models section 2.3's logging path: correctable
errors land in a finite internal buffer that the OS polls every few
seconds, so bursts overflow the buffer and drop records.  The default
campaign does *not* apply it (the paper's 4.37 M total is what survived
logging; our calibration is to logged counts) -- it exists for the
``bench_ablation_celog`` sensitivity study.
"""

from __future__ import annotations

import numpy as np

from repro.faults.types import ERROR_DTYPE, NO_ROW, FaultMode, empty_errors
from repro.machine.dram import AddressMap, SecDed72


def expand_errors(
    faults: np.ndarray,
    address_map: AddressMap | None = None,
    seed: int = 1,
    emit_rows: bool = False,
    sort_by_time: bool = True,
) -> np.ndarray:
    """Generate CE records for a planned fault population.

    Parameters
    ----------
    faults:
        Array with dtype ``PLANNED_FAULT_DTYPE`` from
        :class:`repro.synth.population.FaultPopulationGenerator`.
    address_map:
        Address layout used to synthesise addresses for row-varying modes.
    seed:
        RNG seed for timestamps and per-error variation.
    emit_rows:
        Astra CE records do not populate the row field; pass ``True`` to
        model a platform that does (used by the coalescing ablation).
    sort_by_time:
        Return records in log (time) order, as a syslog would.

    Returns
    -------
    numpy.ndarray
        CE records with dtype :data:`repro.faults.types.ERROR_DTYPE`.
    """
    amap = address_map or AddressMap()
    secded = SecDed72()
    rng = np.random.default_rng(seed)
    n_faults = faults.size
    if n_faults == 0:
        return empty_errors(0)

    counts = faults["n_errors"].astype(np.int64)
    total = int(counts.sum())
    fidx = np.repeat(np.arange(n_faults), counts)

    errors = empty_errors(total)
    for name in ("node", "socket", "slot", "rank", "bank", "column", "address"):
        errors[name] = faults[name][fidx]
    errors["bit_pos"] = faults["bit_pos"][fidx]
    errors["syndrome"] = faults["syndrome"][fidx]

    # Timestamps: bursty within each fault's active window.  Real CE
    # streams arrive in bursts (scrub passes, hot access phases), which
    # is what makes the finite logging buffer of section 2.3 lossy; the
    # burst *centres* are uniform over the active window so the monthly
    # shape is unchanged.  Each fault gets ~count/U(20,150) bursts, and
    # errors scatter around their burst centre with a per-fault width
    # from seconds (tight storms) to minutes.
    start = faults["start_time"][fidx]
    dur = faults["duration"][fidx]
    burst_target = rng.uniform(20.0, 150.0, size=n_faults)
    n_bursts = np.maximum(
        1, np.round(counts / burst_target)
    ).astype(np.int64)
    burst_offset = np.concatenate([[0], np.cumsum(n_bursts)])
    total_bursts = int(burst_offset[-1])
    centers = (
        faults["start_time"][np.repeat(np.arange(n_faults), n_bursts)]
        + rng.random(total_bursts)
        * faults["duration"][np.repeat(np.arange(n_faults), n_bursts)]
    )
    burst_width = rng.uniform(2.0, 120.0, size=n_faults)[fidx]
    which_burst = burst_offset[fidx] + np.floor(
        rng.random(total) * n_bursts[fidx]
    ).astype(np.int64)
    errors["time"] = np.clip(
        centers[which_burst] + rng.normal(0.0, 1.0, total) * burst_width,
        start,
        start + dur,
    )

    modes = faults["mode"][fidx]
    geom = amap.geometry

    # single-word: walk a handful of bits around the fault's base bit.
    word_mask = modes == FaultMode.SINGLE_WORD
    if word_mask.any():
        n = int(word_mask.sum())
        base = faults["bit_pos"][fidx[word_mask]].astype(np.int64)
        offs = rng.integers(0, 3, size=n)  # 3-bit pool per word fault
        bits = (base + offs) % 72
        errors["bit_pos"][word_mask] = bits
        errors["syndrome"][word_mask] = secded.syndrome_of_position(bits)

    # single-column: vary the row per error, recomputing the address.
    col_mask = modes == FaultMode.SINGLE_COLUMN
    # single-bank: vary row *and* column per error.
    bank_mask = modes == FaultMode.SINGLE_BANK
    # single-row (row-capable platforms only): vary the column per error.
    row_mask = modes == FaultMode.SINGLE_ROW
    for mask, vary_row, vary_column in (
        (col_mask, True, False),
        (bank_mask, True, True),
        (row_mask, False, True),
    ):
        if not mask.any():
            continue
        n = int(mask.sum())
        sub = fidx[mask]
        rows = (
            rng.integers(0, geom.n_rows, size=n)
            if vary_row
            else faults["row"][sub].astype(np.int64).clip(0)
        )
        cols = (
            rng.integers(0, geom.n_columns, size=n)
            if vary_column
            else faults["column"][sub].astype(np.int64)
        )
        bits = rng.integers(0, 64, size=n)  # any data bit of the word
        errors["row"][mask] = rows  # filled; masked out below if not emitted
        errors["column"][mask] = cols
        errors["bit_pos"][mask] = bits
        errors["syndrome"][mask] = secded.syndrome_of_position(bits)
        errors["address"][mask] = amap.encode(
            faults["socket"][sub].astype(np.int64).clip(0),
            faults["slot"][sub].astype(np.int64) % 8,
            faults["rank"][sub].astype(np.int64),
            faults["bank"][sub].astype(np.int64).clip(0),
            rows,
            cols,
        )

    if emit_rows:
        attributed = modes != FaultMode.UNATTRIBUTED
        static = attributed & ~col_mask & ~bank_mask
        errors["row"][static] = faults["row"][fidx[static]]
    else:
        errors["row"] = NO_ROW

    if sort_by_time:
        errors = errors[np.argsort(errors["time"], kind="stable")]
    return errors


def apply_ce_logging(
    errors: np.ndarray,
    buffer_slots: int = 16,
    poll_period_s: float = 5.0,
) -> np.ndarray:
    """Model the finite CE logging buffer of section 2.3.

    Each node's memory controller stores CE details in an internal buffer
    with ``buffer_slots`` entries; the OS drains it every
    ``poll_period_s`` seconds.  Errors beyond the buffer capacity within
    one polling interval are dropped.  Returns the surviving records
    (time-ordered).

    The model is per-node (Astra logs CEs through one polling path per
    node) and conservative: it assumes the buffer is empty at each poll.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    if buffer_slots < 1:
        raise ValueError("buffer_slots must be positive")
    if poll_period_s <= 0:
        raise ValueError("poll_period_s must be positive")
    if errors.size == 0:
        return errors.copy()

    window = np.floor(errors["time"] / poll_period_s).astype(np.int64)
    order = np.lexsort((errors["time"], window, errors["node"]))
    e = errors[order]
    w = window[order]

    # Rank each error within its (node, window) group; keep the first
    # `buffer_slots` of each group.
    new_group = np.ones(e.size, dtype=bool)
    new_group[1:] = (e["node"][1:] != e["node"][:-1]) | (w[1:] != w[:-1])
    group_start = np.maximum.accumulate(np.where(new_group, np.arange(e.size), 0))
    rank_in_group = np.arange(e.size) - group_start
    kept = e[rank_in_group < buffer_slots]
    return kept[np.argsort(kept["time"], kind="stable")]
