"""Counterfactual campaigns: what if temperature *did* drive errors?

The headline negative results of section 3.3 (no temperature or
utilisation correlation) are only meaningful if the instruments could
have detected a real effect.  This module manufactures the counterfactual:
it re-weights a campaign's CE stream so the error rate doubles every
``doubling_deg_c`` degrees of the errored DIMM's temperature -- the
effect size Schroeder et al. and Hsu et al. report -- while leaving the
fault population and positional structure untouched.

Running the Figure 9/13 analyses on the coupled stream must flip their
verdicts; ``tests/synth/test_counterfactual.py`` and
``benchmarks/bench_counterfactual_power.py`` assert exactly that.  This
is the detection-power control for the reproduction's negative results.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.temperature import errored_dimm_sensor
from repro.faults.types import ERROR_DTYPE


def apply_temperature_coupling(
    errors: np.ndarray,
    sensor_model,
    doubling_deg_c: float = 10.0,
    seed: int = 0,
    keep_fraction: float = 0.5,
) -> np.ndarray:
    """Thin a CE stream so retention probability rises with temperature.

    Each error is kept with probability proportional to
    ``2 ** (T / doubling_deg_c)``, where ``T`` is its DIMM sensor's
    temperature at the error time.  Probabilities are normalised so the
    *average* retention is ``keep_fraction`` -- the coupling reshapes the
    stream rather than simply shrinking it.

    Returns the retained records (time order preserved).  Faults remain
    faults (thinning cannot split a group), so coalescing still works on
    the counterfactual stream.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    if doubling_deg_c <= 0:
        raise ValueError("doubling_deg_c must be positive")
    if not 0 < keep_fraction <= 1:
        raise ValueError("keep_fraction must be in (0, 1]")
    if errors.size == 0:
        return errors.copy()

    sensors = errored_dimm_sensor(errors)
    temps = sensor_model.temperature(
        errors["node"].astype(np.int64), sensors, errors["time"]
    )
    weight = np.power(2.0, temps / doubling_deg_c)
    p = weight / weight.mean() * keep_fraction
    p = np.clip(p, 0.0, 1.0)
    rng = np.random.default_rng(seed)
    kept = rng.random(errors.size) < p
    return errors[kept]


def coupled_campaign_errors(campaign, doubling_deg_c: float = 10.0, seed: int = 0):
    """Convenience: the campaign's error stream with coupling applied."""
    return apply_temperature_coupling(
        campaign.errors, campaign.sensors, doubling_deg_c, seed=seed
    )


def apply_placement_coupling(
    errors: np.ndarray,
    sensor_model,
    topology,
    doubling_deg_c: float = 4.0,
    seed: int = 0,
    sample_time: float | None = None,
) -> np.ndarray:
    """Relocate error nodes toward chronically hot nodes.

    The second way temperature could drive errors: hot *nodes* develop
    more faults (the effect the Figure 13 decile instrument measures).
    This transform permutes node identities so that nodes with errors
    land preferentially on nodes whose static DIMM temperature offset is
    high -- selection weight ``2 ** (T / doubling_deg_c)`` -- while the
    per-node error streams (and hence all fault structure) move intact.

    Returns a relabelled copy of the error stream.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError("expected ERROR_DTYPE")
    if doubling_deg_c <= 0:
        raise ValueError("doubling_deg_c must be positive")
    if errors.size == 0:
        return errors.copy()
    rng = np.random.default_rng(seed)
    all_nodes = topology.all_node_ids()
    # Chronic hotness: average the four DIMM sensors at a fixed instant;
    # static per-node offsets dominate this quantity.
    t = float(errors["time"].mean()) if sample_time is None else sample_time
    temps = np.mean(
        [
            sensor_model.temperature(all_nodes, np.full(all_nodes.size, s), t)
            for s in (2, 3, 4, 5)
        ],
        axis=0,
    )
    weight = np.power(2.0, temps / doubling_deg_c)
    p = weight / weight.sum()

    old_nodes = np.unique(errors["node"])
    new_nodes = rng.choice(all_nodes, size=old_nodes.size, replace=False, p=p)
    mapping = np.full(topology.n_nodes, -1, dtype=np.int64)
    mapping[old_nodes] = new_nodes
    out = errors.copy()
    out["node"] = mapping[errors["node"].astype(np.int64)]
    return out
