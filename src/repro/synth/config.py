"""Calibration constants for the synthetic campaign.

Every constant is a quantitative statement from the paper, cited by
section/figure.  The generators treat these as *targets*: the synthetic
campaign reproduces them approximately (concentration quantiles, totals,
positional tilts), and the experiment shape-tests verify the qualitative
claims hold on regenerated data.

A ``scale`` factor shrinks the campaign proportionally for tests: event
counts scale linearly, the topology and study windows do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import DAY_S, epoch


@dataclass(frozen=True)
class PaperCalibration:
    """All paper-reported quantities the generators are fitted to."""

    # ------------------------------------------------------------------
    # Study windows (sections 2.3, 3.1, 3.3, 3.5)
    # ------------------------------------------------------------------
    #: CE analysis window: Jan 20 - Sep 14 2019 (section 2.3).
    error_window: tuple[float, float] = (epoch("2019-01-20"), epoch("2019-09-14"))
    #: Inventory/replacement window: Feb 17 - Sep 17 2019 (Table 1).
    inventory_window: tuple[float, float] = (
        epoch("2019-02-17"),
        epoch("2019-09-17"),
    )
    #: Environmental window: May 20 - Sep 19 2019 (section 3.3, Figure 2).
    sensor_window: tuple[float, float] = (epoch("2019-05-20"), epoch("2019-09-19"))
    #: HET records only exist after the Aug 2019 firmware update (section 3.5).
    het_recording_start: float = epoch("2019-08-23")

    # ------------------------------------------------------------------
    # Correctable errors and faults (section 3.2)
    # ------------------------------------------------------------------
    #: Total CEs over the error window ("over 4,369,731").
    total_errors: int = 4_369_731
    #: Errors attributed to single-bit faults.
    errors_single_bit: int = 1_412_738
    #: Errors attributed to single-word faults.
    errors_single_word: int = 31_055
    #: Errors attributed to single-column faults.
    errors_single_column: int = 54_126
    #: Errors attributed to single-bank faults.
    errors_single_bank: int = 7_658
    #: Maximum errors produced by one fault ("just over 91,000", Fig 4b).
    max_errors_per_fault: int = 91_000
    #: Nodes that experienced at least one CE (Figure 5).
    n_error_nodes: int = 1_013
    #: The 8 highest-CE nodes carry more than half the CEs (Figure 5b).
    top8_error_share_min: float = 0.50
    #: The top 2% of nodes carry about 90% of CEs (Figure 5b).
    top2pct_error_share: float = 0.90
    #: Maximum faults observed on any node (Figure 5a x-axis reach).
    max_faults_per_node: int = 60

    # Fault population sizing.  The paper does not print a total fault
    # count; Figures 10b/12b imply roughly 7-8 k faults system-wide.
    n_faults_single_bit: int = 4_200
    n_faults_single_word: int = 300
    n_faults_single_column: int = 420
    n_faults_single_bank: int = 120
    n_faults_unattributed: int = 2_100
    #: Fraction of faults producing exactly one error ("the vast majority
    #: ... resulted in only one error", Figure 4b; the median is 1).
    singleton_fault_fraction: float = 0.70

    # ------------------------------------------------------------------
    # Positional structure (sections 3.2, 3.4)
    # ------------------------------------------------------------------
    #: Fault share of DRAM rank 0 vs rank 1 ("rank zero seems to
    #: experience more faults", Figure 7a/b).
    rank0_fault_share: float = 0.62
    #: Relative per-slot fault weights: J, E, I, P highest; A, K, L, M, N
    #: lowest (Figure 7d).  Keyed by slot letter; normalised by use.
    slot_fault_weights: dict = field(
        default_factory=lambda: {
            "A": 0.45, "B": 1.00, "C": 0.95, "D": 1.05, "E": 1.80,
            "F": 1.00, "G": 0.90, "H": 1.10, "I": 1.70, "J": 1.95,
            "K": 0.50, "L": 0.45, "M": 0.50, "N": 0.55, "O": 1.00,
            "P": 1.75,
        }
    )
    #: Region fault shares (bottom, middle, top): faults mildly favour the
    #: top of the rack (Figure 10b) but far less than errors vary.  The
    #: tilt also offsets the bottom-heavy storm-node placement (storms
    #: carry many faults each), keeping the *count* ordering stable.
    region_fault_shares: tuple[float, float, float] = (0.315, 0.285, 0.40)
    #: The rack whose error count spikes to >2x any other (Figure 12a).
    spike_rack: int = 31
    #: Number of "storm" nodes hosting the heaviest faults; these drive
    #: the top-8 concentration of Figure 5b.
    n_storm_nodes: int = 8
    #: Regions of the storm nodes, bottom-heavy so that *errors* rank
    #: bottom > top > middle (Figure 10a) even though faults do not.
    storm_regions: tuple[int, ...] = (0, 0, 0, 2, 2, 0, 1, 2)

    # ------------------------------------------------------------------
    # Hardware replacements (section 3.1, Table 1, Figure 3)
    # ------------------------------------------------------------------
    replaced_processors: int = 836
    replaced_motherboards: int = 46
    replaced_dimms: int = 1_515

    # ------------------------------------------------------------------
    # Uncorrectable errors (section 3.5)
    # ------------------------------------------------------------------
    #: DUEs per DIMM per year over the HET recording period.
    due_per_dimm_year: float = 0.00948
    #: Resulting FIT per DIMM ("approximately 1081").
    fit_per_dimm: float = 1_081.0

    # ------------------------------------------------------------------
    # Sensors (section 2.2, Figure 2, Figure 13)
    # ------------------------------------------------------------------
    #: Fraction of sensor samples that are invalid/unreadable (< 1%).
    invalid_sample_fraction: float = 0.005
    #: First-to-ninth decile span of monthly CPU temperatures (~7 degC).
    cpu_decile_span_c: float = 7.0
    #: First-to-ninth decile span of monthly DIMM temperatures (~4 degC).
    dimm_decile_span_c: float = 4.0
    #: Modal node DC power band (W), per Figure 2c / Figure 14 x-axes.
    power_band_w: tuple[float, float] = (240.0, 380.0)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def errors_unattributed(self) -> int:
        """Errors not attributable to the four reported modes.

        The paper's per-mode totals sum to ~1.51 M of 4.37 M CEs; the
        remainder is carried by faults whose records lack the positional
        payload needed for classification (DESIGN.md section 5).
        """
        return self.total_errors - (
            self.errors_single_bit
            + self.errors_single_word
            + self.errors_single_column
            + self.errors_single_bank
        )

    @property
    def n_faults_total(self) -> int:
        """Total planned faults across all modes."""
        return (
            self.n_faults_single_bit
            + self.n_faults_single_word
            + self.n_faults_single_column
            + self.n_faults_single_bank
            + self.n_faults_unattributed
        )

    @property
    def error_days(self) -> float:
        """Length of the CE analysis window in days."""
        return (self.error_window[1] - self.error_window[0]) / DAY_S

    def scaled_count(self, value: int, scale: float) -> int:
        """Scale an event count, keeping at least 1 for positive inputs."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if value == 0:
            return 0
        return max(1, round(value * scale))

    def validate(self) -> None:
        """Internal consistency checks; raises ``ValueError`` on failure."""
        if self.errors_unattributed < 0:
            raise ValueError("per-mode error totals exceed total_errors")
        if not 0 < self.singleton_fault_fraction < 1:
            raise ValueError("singleton_fault_fraction must be in (0, 1)")
        if abs(sum(self.region_fault_shares) - 1.0) > 1e-9:
            raise ValueError("region_fault_shares must sum to 1")
        if len(self.storm_regions) != self.n_storm_nodes:
            raise ValueError("storm_regions must list one region per storm node")
        if len(self.slot_fault_weights) != 16:
            raise ValueError("slot_fault_weights must cover all 16 slots")
        if self.error_window[0] >= self.error_window[1]:
            raise ValueError("error window is empty")
