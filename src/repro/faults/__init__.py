"""Fault and error modelling: taxonomy, record layouts, coalescing.

The paper's central methodological point (section 3.2) is that *errors*
(observed incorrect states) and *faults* (the underlying defects) have very
different distributions, and that analyses performed on raw error streams
reach wrong conclusions.  This subpackage implements that methodology:

- :mod:`repro.faults.taxonomy` -- the Avizienis fault/error/failure
  vocabulary used in section 2.1.
- :mod:`repro.faults.types` -- NumPy record layouts for correctable-error
  records and coalesced fault records, plus the :class:`FaultMode` enum
  (single-bit / single-word / single-column / single-row / single-bank).
- :mod:`repro.faults.coalesce` -- vectorised grouping of millions of CE
  records into per-device-bank fault groups.
- :mod:`repro.faults.classify` -- fault-mode classification from the
  address structure of each group, honouring Astra's missing-row quirk.
"""

from repro.faults.types import (
    ERROR_DTYPE,
    FAULT_DTYPE,
    FaultMode,
    NO_BANK,
    NO_BIT,
    NO_COLUMN,
    NO_ROW,
    empty_errors,
    empty_faults,
)
from repro.faults.taxonomy import ErrorOutcome, FaultState, classify_outcome
from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.faults.classify import classify_group_modes

__all__ = [
    "ERROR_DTYPE",
    "FAULT_DTYPE",
    "FaultMode",
    "NO_BANK",
    "NO_BIT",
    "NO_COLUMN",
    "NO_ROW",
    "empty_errors",
    "empty_faults",
    "ErrorOutcome",
    "FaultState",
    "classify_outcome",
    "CoalesceOptions",
    "coalesce",
    "classify_group_modes",
]
