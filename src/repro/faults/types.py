"""Record layouts and the fault-mode vocabulary.

Two structured dtypes carry all reliability data through the pipeline:

``ERROR_DTYPE``
    One row per logged correctable error, mirroring the fields of the
    Astra data release (section 2.4): timestamp, node id, socket, DIMM
    slot, rank, bank, row, column, bit position, physical address and
    syndrome.  On Astra the row field of CE records is not populated
    (section 3.2), which is represented by :data:`NO_ROW`; storm records
    whose positional payload could not be parsed carry :data:`NO_BANK` /
    :data:`NO_COLUMN` / :data:`NO_BIT` and a zero address.

``FAULT_DTYPE``
    One row per coalesced fault, produced by :func:`repro.faults.coalesce.
    coalesce`: the device-bank location, the classified
    :class:`FaultMode`, the number of errors attributed to the fault and
    the first/last error timestamps.

Structured arrays keep the multi-million-record analyses fully
vectorised, per the HPC coding guides.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

#: Sentinel for the unavailable DRAM row in Astra CE records.
NO_ROW = -1
#: Sentinel bank for records whose positional payload was unparseable.
NO_BANK = -1
#: Sentinel column, likewise.
NO_COLUMN = -1
#: Sentinel bit position, likewise.
NO_BIT = -1


class FaultMode(IntEnum):
    """DRAM fault modes, following section 2.1 of the paper.

    ``UNATTRIBUTED`` marks faults whose errors lack the positional payload
    needed for mode classification (see DESIGN.md section 5: the paper's
    per-mode error totals sum to ~1.5 M of the 4.37 M total; the remainder
    is mode-unattributable).  ``MULTI_BANK`` can only be produced when
    coalescing with ``split_banks=False`` (an ablation); on Astra's
    SEC-DED memory such faults would surface as uncorrectable errors.
    """

    SINGLE_BIT = 0
    SINGLE_WORD = 1
    SINGLE_COLUMN = 2
    SINGLE_ROW = 3
    SINGLE_BANK = 4
    MULTI_BANK = 5
    UNATTRIBUTED = 6

    @property
    def label(self) -> str:
        """Hyphenated label as printed in the paper's figures."""
        return _MODE_LABELS[self]


_MODE_LABELS = {
    FaultMode.SINGLE_BIT: "single-bit",
    FaultMode.SINGLE_WORD: "single-word",
    FaultMode.SINGLE_COLUMN: "single-column",
    FaultMode.SINGLE_ROW: "single-row",
    FaultMode.SINGLE_BANK: "single-bank",
    FaultMode.MULTI_BANK: "multi-bank",
    FaultMode.UNATTRIBUTED: "unattributed",
}

#: The four modes the paper reports per-mode error totals for (Figure 4a).
REPORTED_MODES = (
    FaultMode.SINGLE_BIT,
    FaultMode.SINGLE_WORD,
    FaultMode.SINGLE_COLUMN,
    FaultMode.SINGLE_BANK,
)

#: Correctable-error record layout.
ERROR_DTYPE = np.dtype(
    [
        ("time", np.float64),  # seconds since the Unix epoch
        ("node", np.int32),
        ("socket", np.int8),
        ("slot", np.int8),  # DIMM slot index 0..15 ('A'..'P')
        ("rank", np.int8),
        ("bank", np.int8),  # NO_BANK when unparseable
        ("row", np.int32),  # NO_ROW on Astra (not populated)
        ("column", np.int16),  # NO_COLUMN when unparseable
        ("bit_pos", np.int16),  # codeword bit 0..71, NO_BIT when unparseable
        ("address", np.uint64),
        ("syndrome", np.uint8),
    ]
)

#: Coalesced-fault record layout.
FAULT_DTYPE = np.dtype(
    [
        ("fault_id", np.int64),
        ("node", np.int32),
        ("socket", np.int8),
        ("slot", np.int8),
        ("rank", np.int8),
        ("bank", np.int8),
        ("mode", np.int8),  # FaultMode value
        ("n_errors", np.int64),
        ("first_time", np.float64),
        ("last_time", np.float64),
        ("row", np.int32),  # representative row, NO_ROW if unavailable/mixed
        ("column", np.int16),  # representative column, NO_COLUMN if mixed
        ("bit_pos", np.int16),  # representative bit, NO_BIT if mixed
        ("address", np.uint64),  # representative address (first error's)
    ]
)


def empty_errors(n: int = 0) -> np.ndarray:
    """Allocate an empty CE record array of length ``n``.

    Positional fields are initialised to their sentinels so that records
    filled field-by-field default to "unknown" rather than to a valid
    location 0.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    out = np.zeros(n, dtype=ERROR_DTYPE)
    out["row"] = NO_ROW
    out["bank"] = NO_BANK
    out["column"] = NO_COLUMN
    out["bit_pos"] = NO_BIT
    return out


def empty_faults(n: int = 0) -> np.ndarray:
    """Allocate an empty fault record array of length ``n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    out = np.zeros(n, dtype=FAULT_DTYPE)
    out["row"] = NO_ROW
    out["bank"] = NO_BANK
    out["column"] = NO_COLUMN
    out["bit_pos"] = NO_BIT
    out["mode"] = FaultMode.UNATTRIBUTED
    return out


def validate_errors(errors: np.ndarray) -> None:
    """Sanity-check a CE record array; raise ``ValueError`` on bad data.

    Checks dtype identity, field ranges (allowing sentinels) and
    monotonicity requirements are *not* imposed -- logs may interleave
    nodes -- but times must be finite and non-negative.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    if errors.size == 0:
        return
    if not np.all(np.isfinite(errors["time"])) or np.any(errors["time"] < 0):
        raise ValueError("error times must be finite and non-negative")
    if np.any((errors["socket"] < 0) | (errors["socket"] > 1)):
        raise ValueError("socket out of range")
    if np.any((errors["slot"] < 0) | (errors["slot"] > 15)):
        raise ValueError("slot out of range")
    if np.any((errors["rank"] < 0) | (errors["rank"] > 1)):
        raise ValueError("rank out of range")
    if np.any(errors["bank"] < NO_BANK):
        raise ValueError("bank below sentinel range")
    if np.any(errors["bit_pos"] > 71):
        raise ValueError("bit position above codeword width")
