"""Fault-mode classification from per-group address structure.

Given the distinct-value counts of each coalesced error group, assign the
:class:`repro.faults.types.FaultMode` per section 2.1 of the paper:

- *single-bit*: all errors map to a single bit (same word, same bit);
- *single-word*: all errors map to a single word (same address, several
  bit positions);
- *single-column*: all errors map to a single column;
- *single-row*: all errors map to a single row -- only classifiable when
  the CE records carry row information, which Astra's do not;
- *single-bank*: all errors confined to one bank without tighter
  structure;
- *multi-bank*: errors spanning banks within a rank (only observable when
  coalescing at rank granularity; a would-be DUE on SEC-DED memory);
- *unattributed*: the positional payload needed for classification is
  missing from the records.

The cascade is strict-to-loose, so every group gets the tightest mode its
evidence supports.
"""

from __future__ import annotations

import numpy as np

from repro.faults.types import FaultMode


def classify_group_modes(
    *,
    uniq_bits: np.ndarray,
    uniq_words: np.ndarray,
    uniq_cols: np.ndarray,
    uniq_rows: np.ndarray,
    uniq_banks: np.ndarray,
    bank_valid: np.ndarray,
    column_valid: np.ndarray,
    bit_valid: np.ndarray,
    row_valid: np.ndarray | None = None,
    row_available: bool = False,
) -> np.ndarray:
    """Classify each error group into a fault mode (vectorised).

    Parameters
    ----------
    uniq_bits, uniq_words, uniq_cols, uniq_rows, uniq_banks:
        Per-group distinct counts of (address, bit) pairs, addresses,
        columns, rows, and banks.
    bank_valid, column_valid, bit_valid, row_valid:
        Per-group flags: whether the group's records carry a usable value
        for the field.  Groups are location-homogeneous by construction
        (the coalescing key includes the fields), so a single flag per
        group suffices.  ``row_valid`` defaults to all-``False`` (the
        Astra case).
    row_available:
        Enable the single-row rung of the cascade.  Astra's records never
        populate the row field (paper section 3.2), so the default is
        ``False`` and row-shaped faults fall through to single-bank -- the
        same limitation the paper works under.

    Returns
    -------
    numpy.ndarray of int8
        ``FaultMode`` values, one per group.
    """
    arrays = [uniq_bits, uniq_words, uniq_cols, uniq_rows, uniq_banks]
    n = arrays[0].shape[0]
    for a in arrays + [bank_valid, column_valid, bit_valid]:
        if a.shape[0] != n:
            raise ValueError("all per-group arrays must have equal length")

    if row_valid is None:
        row_valid = np.zeros(n, dtype=bool)
    elif row_valid.shape[0] != n:
        raise ValueError("all per-group arrays must have equal length")

    from repro import obs

    with obs.span("coalesce.classify", transient=True) as sp:
        modes = np.full(n, FaultMode.SINGLE_BANK, dtype=np.int8)

        # Loosest first, then tighten; later assignments win.
        if row_available:
            modes[(uniq_rows == 1) & row_valid] = FaultMode.SINGLE_ROW
        modes[(uniq_cols == 1) & column_valid] = FaultMode.SINGLE_COLUMN
        modes[uniq_words == 1] = FaultMode.SINGLE_WORD
        modes[(uniq_bits == 1) & bit_valid] = FaultMode.SINGLE_BIT

        # Structural overrides.
        modes[uniq_banks > 1] = FaultMode.MULTI_BANK
        modes[~bank_valid] = FaultMode.UNATTRIBUTED

        sp.add(groups=n)
        per_mode = np.bincount(modes, minlength=len(FaultMode))
        for mode in FaultMode:
            if per_mode[mode]:
                obs.count(f"coalesce.mode.{mode.name.lower()}", int(per_mode[mode]))
    return modes


def mode_counts(faults: np.ndarray) -> dict[FaultMode, int]:
    """Count faults per mode from a fault record array."""
    out: dict[FaultMode, int] = {}
    counts = np.bincount(faults["mode"], minlength=len(FaultMode))
    for mode in FaultMode:
        out[mode] = int(counts[mode])
    return out


def errors_per_mode(faults: np.ndarray) -> dict[FaultMode, int]:
    """Total errors attributed to faults of each mode (Figure 4a totals)."""
    out: dict[FaultMode, int] = {}
    sums = np.bincount(
        faults["mode"], weights=faults["n_errors"], minlength=len(FaultMode)
    )
    for mode in FaultMode:
        out[mode] = int(sums[mode])
    return out
