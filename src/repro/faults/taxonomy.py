"""The Avizienis dependable-computing vocabulary used by the paper.

Section 2.1 adopts the standard taxonomy of Avizienis et al.:

- a **fault** is the underlying cause of an error (e.g. a stuck-at bit);
  faults can be *active* (producing errors) or *dormant*;
- an **error** is incorrect state resulting from an active fault; errors
  may be *detected and corrected* (CE), *detected but uncorrectable*
  (DUE), or entirely *undetected* (silent -- out of scope for the paper
  and flagged as such here).

These enums are small but load-bearing: the synthetic generator and the
analysis code both dispatch on them, and keeping the vocabulary in one
place prevents the fault/error conflation the paper warns about.
"""

from __future__ import annotations

from enum import Enum


class FaultState(Enum):
    """Whether a fault is currently producing errors."""

    DORMANT = "dormant"
    ACTIVE = "active"


class ErrorOutcome(Enum):
    """What the detection/correction machinery did with an error."""

    #: Detected and corrected (CE) -- e.g. a single-bit flip under SEC-DED.
    CORRECTED = "CE"
    #: Detected but uncorrectable (DUE) -- e.g. a double-bit flip.
    DETECTED_UNCORRECTABLE = "DUE"
    #: Undetected (silent data corruption); out of the paper's scope.
    SILENT = "SDC"


def classify_outcome(detected: bool, corrected: bool) -> ErrorOutcome:
    """Map (detected, corrected) observations to an :class:`ErrorOutcome`.

    >>> classify_outcome(True, True)
    <ErrorOutcome.CORRECTED: 'CE'>
    >>> classify_outcome(True, False)
    <ErrorOutcome.DETECTED_UNCORRECTABLE: 'DUE'>
    >>> classify_outcome(False, False)
    <ErrorOutcome.SILENT: 'SDC'>
    """
    if corrected and not detected:
        raise ValueError("an error cannot be corrected without being detected")
    if not detected:
        return ErrorOutcome.SILENT
    return ErrorOutcome.CORRECTED if corrected else ErrorOutcome.DETECTED_UNCORRECTABLE


def outcome_of_secded_status(status: int) -> ErrorOutcome | None:
    """Translate a :meth:`SecDed72.classify` status to an outcome.

    Status 0 (clean word) has no error, returning ``None``; status 1 is a
    CE; status 2 a DUE.
    """
    if status == 0:
        return None
    if status == 1:
        return ErrorOutcome.CORRECTED
    if status == 2:
        return ErrorOutcome.DETECTED_UNCORRECTABLE
    raise ValueError(f"unknown SEC-DED status: {status}")
