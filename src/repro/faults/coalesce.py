"""Coalescing correctable-error records into fault records.

The methodology follows Sridharan et al. and the paper's section 3.2: all
errors observed at the same device-bank location -- the key
``(node, slot, rank, bank)`` -- are attributed to a single underlying
fault, whose *mode* is then classified from the spatial structure of the
error addresses (:mod:`repro.faults.classify`).

Grouping millions of records is done with one ``lexsort`` plus
boundary-detection, never a Python loop over records.  Distinct-value
counts within groups use a combined-key ``np.unique`` reduction, with a
sort-based per-group fallback when the combined key would overflow
int64.

Two knobs exist for ablation studies:

- ``split_banks=False`` groups at rank granularity instead, allowing the
  ``MULTI_BANK`` mode the paper notes would be a DUE under SEC-DED;
- ``row_available=True`` enables single-row classification for systems
  (unlike Astra) whose CE records populate the row field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.classify import classify_group_modes
from repro.faults.types import (
    ERROR_DTYPE,
    FAULT_DTYPE,
    empty_faults,
)


@dataclass(frozen=True)
class CoalesceOptions:
    """Options controlling error-to-fault coalescing."""

    #: Group per (node, slot, rank, bank); ``False`` groups per rank.
    split_banks: bool = True
    #: Whether CE records carry a usable row field (not on Astra).
    row_available: bool = False


def _distinct_per_group(
    gid: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Count distinct ``values`` within each group (vectorised).

    Builds a combined ``group * base + value`` key and counts unique keys
    per group.  ``values`` may contain small negative sentinels; they are
    shifted to non-negative before combining.  When the combined key
    would overflow int64 (huge value spans, pathological group counts)
    the count falls back to a sort-based per-group unique reduction
    instead of failing the whole coalesce.
    """
    if gid.size == 0:
        return np.zeros(n_groups, dtype=np.int64)
    v = values.astype(np.int64)
    # Span arithmetic in Python ints: v.max() - v.min() itself can exceed
    # int64 when sentinels sit near one extreme and data near the other.
    vmin = int(v.min())
    base = int(v.max()) - vmin + 1
    if n_groups * base < np.iinfo(np.int64).max:
        key = gid.astype(np.int64) * base + (v - vmin)
        uniq = np.unique(key)
        return np.bincount(uniq // base, minlength=n_groups)
    # Overflow fallback: sort by (group, value) and count the positions
    # where either changes -- each is the first occurrence of a distinct
    # value within its group.  No combined key, no shift, same result.
    order = np.lexsort((v, gid))
    g = gid[order].astype(np.int64)
    vv = v[order]
    first = np.ones(g.size, dtype=bool)
    first[1:] = (g[1:] != g[:-1]) | (vv[1:] != vv[:-1])
    return np.bincount(g[first], minlength=n_groups)


def coalesce(
    errors: np.ndarray, options: CoalesceOptions | None = None
) -> np.ndarray:
    """Coalesce CE records into fault records.

    Parameters
    ----------
    errors:
        Array with dtype :data:`repro.faults.types.ERROR_DTYPE`.
    options:
        Coalescing behaviour; defaults to Astra's (per-bank groups, no row
        information).

    Returns
    -------
    numpy.ndarray
        Array with dtype :data:`repro.faults.types.FAULT_DTYPE`, one row
        per fault, ordered by (node, slot, rank, bank).  Representative
        positional fields (row/column/bit/address) carry the group's
        unique value where the group is homogeneous in that field and the
        sentinel where it is not.
    """
    from repro import obs

    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    options = options or CoalesceOptions()
    n = errors.size
    if n == 0:
        return empty_faults(0)

    # Transient: whether coalescing runs here (cache miss, first
    # experiment) or not at all (pre-warmed fault cache) depends on the
    # environment, so the span is elided from the stable trace view.
    with obs.span("coalesce.errors_to_faults", transient=True) as sp:
        faults = _coalesce(errors, options)
        sp.add(errors_seen=n, faults_emitted=faults.size)
    obs.count("coalesce.errors_seen", n)
    obs.count("coalesce.faults_emitted", faults.size)
    return faults


def _coalesce(errors: np.ndarray, options: CoalesceOptions) -> np.ndarray:
    n = errors.size
    if options.split_banks:
        key_fields = ("node", "slot", "rank", "bank")
    else:
        key_fields = ("node", "slot", "rank")

    # Sort once: group key fields (major) then time so first/last fall out.
    order = np.lexsort(
        tuple(errors[f] for f in ("time",) + tuple(reversed(key_fields)))
    )
    e = errors[order]

    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for f in key_fields:
        boundary[1:] |= e[f][1:] != e[f][:-1]
    gid = np.cumsum(boundary) - 1
    n_groups = int(gid[-1]) + 1
    starts = np.flatnonzero(boundary)

    counts = np.diff(np.append(starts, n))

    # Distinct-structure counts drive mode classification.
    # A "bit" identity is the (address, bit position) pair; combine them
    # into one value first (addresses fit in 41 bits, bits in 8).
    addr = e["address"].astype(np.int64)
    bitkey = addr * 128 + (e["bit_pos"].astype(np.int64) + 1)
    uniq_bits = _distinct_per_group(gid, bitkey, n_groups)
    uniq_words = _distinct_per_group(gid, addr, n_groups)
    uniq_cols = _distinct_per_group(gid, e["column"], n_groups)
    uniq_rows = _distinct_per_group(gid, e["row"], n_groups)
    uniq_banks = _distinct_per_group(gid, e["bank"], n_groups)

    first = e[starts]
    last = e[starts + counts - 1]

    faults = empty_faults(n_groups)
    faults["fault_id"] = np.arange(n_groups)
    for f in ("node", "socket", "slot", "rank"):
        faults[f] = first[f]
    faults["n_errors"] = counts
    faults["first_time"] = first["time"]
    faults["last_time"] = last["time"]

    # Representative positional fields: keep the unique value when the
    # group is homogeneous, else the sentinel (already set by empty_faults).
    homog_bank = uniq_banks == 1
    faults["bank"][homog_bank] = first["bank"][homog_bank]
    homog_col = uniq_cols == 1
    faults["column"][homog_col] = first["column"][homog_col]
    homog_row = uniq_rows == 1
    faults["row"][homog_row] = first["row"][homog_row]
    homog_bit = uniq_bits == 1
    faults["bit_pos"][homog_bit] = first["bit_pos"][homog_bit]
    faults["address"] = first["address"]

    faults["mode"] = classify_group_modes(
        uniq_bits=uniq_bits,
        uniq_words=uniq_words,
        uniq_cols=uniq_cols,
        uniq_rows=uniq_rows,
        uniq_banks=uniq_banks,
        bank_valid=first["bank"] >= 0,
        column_valid=first["column"] >= 0,
        bit_valid=first["bit_pos"] >= 0,
        row_valid=first["row"] >= 0,
        row_available=options.row_available,
    )
    return faults


def errors_with_fault_ids(
    errors: np.ndarray, options: CoalesceOptions | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`coalesce`, but also label every error with its fault.

    Returns ``(faults, fault_id_per_error)`` where the second array is
    aligned with ``errors`` (original order) and holds the ``fault_id`` of
    the fault each error was attributed to.  Used by the errors-per-fault
    analysis (Figure 4b) and the mitigation simulators.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    options = options or CoalesceOptions()
    faults = coalesce(errors, options)
    if errors.size == 0:
        return faults, np.zeros(0, dtype=np.int64)

    if options.split_banks:
        key_fields = ("node", "slot", "rank", "bank")
    else:
        key_fields = ("node", "slot", "rank")
    order = np.lexsort(tuple(errors[f] for f in tuple(reversed(key_fields))))
    e = errors[order]
    boundary = np.zeros(errors.size, dtype=bool)
    boundary[0] = True
    for f in key_fields:
        boundary[1:] |= e[f][1:] != e[f][:-1]
    gid_sorted = np.cumsum(boundary) - 1
    out = np.empty(errors.size, dtype=np.int64)
    out[order] = faults["fault_id"][gid_sorted]
    return faults, out


def merge_shard_faults(partials: list) -> np.ndarray:
    """Exactly merge per-shard fault arrays into the whole-stream answer.

    The reducer side of shard-parallel coalescing (racks within one
    system, clusters within a fleet): when the sharding key partitions
    the coalescing key space -- no (node, slot, rank, bank) group spans
    two shards -- concatenating the per-shard fault arrays, re-sorting
    by the group key and renumbering ``fault_id`` is byte-identical to
    coalescing the concatenated error stream.  The lexsort is stable,
    but with disjoint keys no ties exist for order to matter.
    """
    parts = [p for p in partials if p is not None and p.size]
    if not parts:
        return empty_faults(0)
    merged = np.concatenate(parts)
    order = np.lexsort(
        (merged["bank"], merged["rank"], merged["slot"], merged["node"])
    )
    out = merged[order]
    out["fault_id"] = np.arange(out.size)
    return out
