"""Command-line interface: ``astra-memrepro``.

Subcommands:

- ``synth``      generate a campaign and write it to a directory;
- ``analyze``    run experiments over a stored campaign directory;
- ``experiment`` generate in memory and run one (or all) experiments;
- ``stream``     tail a campaign's text logs incrementally (live faults,
  alerts, checkpoint/resume; see DESIGN.md section 10);
- ``fleet``      synthesise and analyse a fleet of Astra-sized clusters
  through the sharded campaign engine (DESIGN.md section 11);
- ``query``      answer campaign-history queries from incrementally
  maintained rollup cubes, with zero log rescan (DESIGN.md section 14);
- ``list``       list the registered experiments.

Examples::

    astra-memrepro synth --scale 0.05 --out /tmp/camp --text-logs
    astra-memrepro stream /tmp/camp --rollups-dir /tmp/camp/rollups
    astra-memrepro query /tmp/camp --select errors --group-by rack,bucket
    astra-memrepro query /tmp/camp --select errors --group-by node --top-k 8
    astra-memrepro query /tmp/camp --build --select faults --group-by mode \
        --check --json
    astra-memrepro fleet --shard-dir /tmp/fleet --clusters 4 --scale 0.02 \
        --jobs 4 --check --fleet-report fleet.json
    astra-memrepro fleet --shard-dir /tmp/fleet --exp fig04 fig05
    astra-memrepro analyze /tmp/camp --exp fig05 fig12
    astra-memrepro stream /tmp/camp --follow --checkpoint-dir /tmp/ckpt \
        --alerts-out /tmp/alerts.jsonl
    astra-memrepro stream /tmp/camp --max-batches 8 --batch-bytes 65536
    astra-memrepro experiment --exp fig04 --scale 0.1
    astra-memrepro experiment --all --scale 1.0 > report.txt
    astra-memrepro experiment --all --jobs 4 --json-report run.json
    astra-memrepro experiment --all --scale 0.05 --inject moderate \
        --ingest-policy repair --min-coverage 0.5 --json-report dirty.json
    astra-memrepro analyze /tmp/camp --ingest-policy repair --timeout 120

``--inject PROFILE`` runs the harness self-test loop: corrupt a
disposable copy of the campaign artifacts (``light``/``moderate``/
``hostile``), re-ingest them under ``--ingest-policy``, and report
per-family coverage plus per-experiment degradation status
(``pass-degraded`` / ``skipped-insufficient-data``) instead of crashing
on dirty telemetry.

Repeated ``experiment``/``analyze`` invocations reuse the campaign
cache (``--cache-dir``, default ``~/.cache/astra-memrepro`` or
``$ASTRA_MEMREPRO_CACHE_DIR``); ``--no-cache`` disables it.
"""

from __future__ import annotations

import argparse
import sys


def _add_common_gen_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="campaign RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="volume scale; 1.0 = the paper's 4.37M CEs",
    )


def _add_predict_gate_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--min-auc", type=float, default=None, metavar="F",
        help="gate: exit 1 unless held-out AUC reaches F",
    )
    parser.add_argument(
        "--min-recall", type=float, default=None, metavar="F",
        help="gate: exit 1 unless held-out recall at the target FPR "
        "reaches F",
    )
    parser.add_argument(
        "--require-beats-baseline", action="store_true",
        help="gate: exit 1 unless the model beats the trivial "
        "rate-threshold baseline on held-out AUC and recall",
    )


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="run experiments in N parallel worker processes (0/1 = serial)",
    )
    parser.add_argument(
        "--json-report",
        metavar="PATH",
        default=None,
        help="also write a machine-readable JSON run report to PATH",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="campaign cache directory (default: $ASTRA_MEMREPRO_CACHE_DIR "
        "or ~/.cache/astra-memrepro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the campaign cache entirely",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-time budget in the parallel path; a "
        "wedged worker is abandoned instead of stalling the run",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-attempts for a failing or timed-out experiment "
        "(exponential backoff; default 1)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="skip experiments whose input telemetry coverage is below "
        "this fraction (status skipped-insufficient-data; default 0.5)",
    )
    parser.add_argument(
        "--ingest-policy",
        choices=("strict", "repair", "skip"),
        default="strict",
        help="how to treat unparseable telemetry: strict raises a typed "
        "error, repair salvages and re-sorts what it can, skip "
        "quarantines silently (default strict)",
    )
    parser.add_argument(
        "--inject",
        choices=("light", "moderate", "hostile"),
        default=None,
        metavar="PROFILE",
        help="harness self-test: corrupt a copy of the campaign "
        "artifacts with the named fault-injection profile before "
        "ingesting them",
    )
    parser.add_argument(
        "--inject-seed",
        type=int,
        default=0,
        help="RNG seed for --inject (same seed = identical corruption)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable tracing and write the span tree (ingest, coalesce, "
        "cache, per-experiment spans with wall/CPU time and record "
        "counts) as JSON to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics registry (counters, gauges, latency "
        "histograms) as JSON to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap each experiment body in cProfile and print per-"
        "experiment hotspot tables (adds overhead; off by default)",
    )


#: Every registered subcommand, shared by the parser and the friendly
#: unknown-command pre-check in :func:`main`.
_COMMANDS = (
    "synth", "analyze", "experiment", "stream", "fleet", "query",
    "mitigate", "whatif", "predict", "serve", "validate", "release",
    "list",
)


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="astra-memrepro",
        description="Reproduction of the HPDC'22 Astra memory-failure study.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser("synth", help="generate and store a campaign")
    _add_common_gen_args(p_synth)
    p_synth.add_argument("--out", required=True, help="output directory")
    p_synth.add_argument(
        "--text-logs", action="store_true", help="also write text logs (slower)"
    )
    p_synth.add_argument(
        "--shards", action="store_true", help="write per-rack error shards"
    )

    p_analyze = sub.add_parser("analyze", help="run experiments on a stored campaign")
    p_analyze.add_argument("directory", help="campaign directory from 'synth'")
    p_analyze.add_argument(
        "--exp", nargs="*", default=None, help="experiment ids (default: all)"
    )
    p_analyze.add_argument(
        "--rollups", metavar="DIR", default=None,
        help="attach a rollup snapshot directory; figure paths serve "
        "reads from its cubes when it matches the campaign "
        "(identity-gated, silent fallback to the rescan path otherwise)",
    )
    _add_run_args(p_analyze)

    p_exp = sub.add_parser("experiment", help="generate in memory and run experiments")
    _add_common_gen_args(p_exp)
    group = p_exp.add_mutually_exclusive_group(required=True)
    group.add_argument("--exp", nargs="*", help="experiment ids (empty = all)")
    group.add_argument("--all", action="store_true", help="run every experiment")
    _add_run_args(p_exp)

    p_stream = sub.add_parser(
        "stream",
        help="tail a campaign's text logs incrementally (live faults, "
        "alerts, checkpoint/resume)",
    )
    p_stream.add_argument(
        "directory", help="directory holding ce.log/het.log/bmc*/inventory*"
    )
    p_stream.add_argument(
        "--follow", action="store_true",
        help="keep polling for appended data instead of stopping at EOF",
    )
    p_stream.add_argument(
        "--poll-interval", type=float, default=1.0, metavar="SECONDS",
        help="idle sleep between empty polls under --follow (default 1.0)",
    )
    p_stream.add_argument(
        "--max-batches", type=int, default=None, metavar="N",
        help="stop after N consuming batches (bounded mode for tests/CI)",
    )
    p_stream.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe checkpoints here; an existing checkpoint "
        "is resumed from unless --no-resume",
    )
    p_stream.add_argument(
        "--no-resume", action="store_true",
        help="ignore an existing checkpoint and start from byte zero",
    )
    p_stream.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint after every N consuming batches (default 1)",
    )
    p_stream.add_argument(
        "--alerts-out", default=None, metavar="PATH",
        help="append structured JSONL alert events to PATH",
    )
    p_stream.add_argument(
        "--batch-bytes", type=int, default=1 << 20, metavar="BYTES",
        help="bytes consumed per file per batch (default 1 MiB)",
    )
    p_stream.add_argument(
        "--faults-out", default=None, metavar="PATH",
        help="write the final live fault array to PATH as .npy",
    )
    p_stream.add_argument(
        "--ingest-policy", choices=("strict", "repair", "skip"),
        default="repair",
        help="how to treat unparseable telemetry (default repair)",
    )
    p_stream.add_argument(
        "--ce-rate-threshold", type=int, default=100, metavar="N",
        help="CE count per node per window that trips the ce_rate alert",
    )
    p_stream.add_argument(
        "--ce-rate-window", type=float, default=3600.0, metavar="SECONDS",
        help="epoch-aligned window width for the ce_rate alert",
    )
    p_stream.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="enable tracing and write stream.* spans as JSON to PATH",
    )
    p_stream.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write stream counters/gauges as JSON to PATH",
    )
    p_stream.add_argument(
        "--rollups-dir", default=None, metavar="DIR",
        help="maintain rollup cubes incrementally and snapshot them here "
        "(versioned + atomic; query later with 'query --rollups DIR')",
    )
    p_stream.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON summary on stdout instead "
        "of the human-readable report",
    )
    p_stream.add_argument(
        "--predict", action="store_true",
        help="mount the online failure predictor: re-score every CE "
        "batch's nodes and raise predicted_failure alerts through the "
        "same exactly-once sink (requires --model)",
    )
    p_stream.add_argument(
        "--model", metavar="PATH", default=None,
        help="trained predictor artifact from 'predict train' "
        "(CRC-guarded JSON)",
    )
    p_stream.add_argument(
        "--predict-rearm", type=float, default=86400.0, metavar="SECONDS",
        help="per-node re-arm window for predicted_failure alerts "
        "(event time; default 1 day)",
    )

    p_fleet = sub.add_parser(
        "fleet",
        help="synthesise and analyse a fleet of Astra-sized clusters "
        "through the sharded campaign engine",
    )
    p_fleet.add_argument(
        "--shard-dir", required=True, metavar="DIR",
        help="fleet directory (one campaign dir per cluster plus "
        "fleet.json); synthesised here when missing",
    )
    p_fleet.add_argument(
        "--clusters", type=int, default=None, metavar="N",
        help="number of Astra-sized clusters when synthesising "
        "(default 2; an existing fleet.json fixes the value)",
    )
    p_fleet.add_argument("--seed", type=int, default=7, help="fleet RNG seed")
    p_fleet.add_argument(
        "--scale", type=float, default=1.0,
        help="per-cluster volume scale; 1.0 = the paper's 4.37M CEs "
        "per cluster",
    )
    p_fleet.add_argument(
        "--jobs", type=int, default=0,
        help="process shards in N parallel workers (0/1 = serial)",
    )
    p_fleet.add_argument(
        "--source", choices=("auto", "shards", "binary", "text"),
        default="auto",
        help="shard source: per-rack binary shards, whole-cluster binary "
        "mirrors, or text logs (auto prefers the finest binary form)",
    )
    p_fleet.add_argument(
        "--text-logs", action="store_true",
        help="when synthesising, also write per-cluster ce.log/het.log "
        "(required later for --source text; slower)",
    )
    p_fleet.add_argument(
        "--force-synth", action="store_true",
        help="re-synthesise every cluster even if the fleet exists",
    )
    p_fleet.add_argument(
        "--check", action="store_true",
        help="verify the sharded result byte-identical to the "
        "single-process whole-stream path (exit 1 on mismatch)",
    )
    p_fleet.add_argument(
        "--exp", nargs="*", default=None,
        help="also run experiments over the fleet-wide campaign "
        "(empty = all registered experiments)",
    )
    p_fleet.add_argument(
        "--fleet-report", metavar="PATH", default=None,
        help="write a machine-readable fleet report (schemas/"
        "fleet.schema.json) to PATH",
    )
    p_fleet.add_argument(
        "--ingest-policy", choices=("strict", "repair", "skip"),
        default="repair",
        help="ingest policy for --source text (default repair)",
    )
    for flag, help_text in (
        ("--json-report", "also write a JSON run report for --exp to PATH"),
        ("--trace-out", "enable tracing and write the span tree to PATH"),
        ("--metrics-out", "write the metrics registry as JSON to PATH"),
    ):
        p_fleet.add_argument(flag, metavar="PATH", default=None, help=help_text)
    p_fleet.add_argument(
        "--cache-dir", default=None,
        help="campaign cache directory used during synthesis",
    )
    p_fleet.add_argument(
        "--no-cache", action="store_true",
        help="bypass the campaign cache during synthesis",
    )
    p_fleet.add_argument(
        "--resume", action="store_true",
        help="resume from the fleet ledger: shards committed by an "
        "interrupted run load from the shard cache instead of re-running "
        "(the re-reduction is byte-identical to an uninterrupted run)",
    )
    p_fleet.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry a shard whose worker exceeds this wall "
        "time (parallel mode; default: no limit)",
    )
    p_fleet.add_argument(
        "--shard-retries", type=int, default=2, metavar="N",
        help="re-attempts per shard (full-jitter backoff) before it is "
        "quarantined and the result degrades (default 2)",
    )
    p_fleet.add_argument(
        "--no-ledger", action="store_true",
        help="skip the fleet-ledger.jsonl journal and shard cache "
        "(disables --resume for this run)",
    )
    p_fleet.add_argument(
        "--chaos", choices=("light", "moderate", "hostile"), default=None,
        help="inject planned process/IO faults: light kills and wedges "
        "workers (retries absorb everything), moderate adds torn shards "
        "and ENOSPC, hostile adds bit rot -- see chaos-manifest.json",
    )
    p_fleet.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the chaos plan (same profile+seed = same faults)",
    )
    p_fleet.add_argument(
        "--faults-out", metavar="PATH", default=None,
        help="write the fleet-wide coalesced fault array to PATH (.npy)",
    )
    p_fleet.add_argument(
        "--rollups-out", metavar="DIR", default=None,
        help="have every shard worker maintain rollup cubes, merge them "
        "exactly during the reduction, and snapshot the fleet-wide "
        "store here (query later with 'query --rollups DIR')",
    )
    p_fleet.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON summary on stdout instead "
        "of the human-readable report (not combinable with --exp)",
    )

    p_query = sub.add_parser(
        "query",
        help="answer campaign-history queries from rollup cubes with "
        "zero log rescan",
    )
    p_query.add_argument(
        "directory",
        help="campaign directory the rollups describe (used by --build "
        "and --check to reach the raw records)",
    )
    p_query.add_argument(
        "--rollups", metavar="DIR", default=None,
        help="rollup snapshot directory (default: DIRECTORY/rollups)",
    )
    p_query.add_argument(
        "--build", action="store_true",
        help="(re)build a rollup snapshot from the campaign's records "
        "before answering",
    )
    p_query.add_argument(
        "--snapshot-version", type=int, default=None, metavar="N",
        help="load this snapshot version instead of the manifest's latest",
    )
    p_query.add_argument(
        "--select",
        choices=("errors", "faults", "mode_errors", "ce_windows", "dropout"),
        default="errors",
        help="what to count (default errors)",
    )
    p_query.add_argument(
        "--group-by", default="", metavar="DIMS",
        help="comma-separated dimensions (errors: rack,slot,bucket or "
        "node or bitpos or bank; faults: rack,slot,mode,bucket; "
        "ce_windows: node,window)",
    )
    p_query.add_argument(
        "--racks", default=None, metavar="IDS",
        help="comma-separated rack-id filter",
    )
    p_query.add_argument(
        "--slots", default=None, metavar="IDS",
        help="comma-separated DIMM-slot filter",
    )
    p_query.add_argument(
        "--nodes", default=None, metavar="IDS",
        help="comma-separated node-id filter (per-node cube only)",
    )
    p_query.add_argument(
        "--modes", default=None, metavar="NAMES",
        help="comma-separated fault-mode filter (e.g. single_bit,row)",
    )
    p_query.add_argument(
        "--since", type=float, default=None, metavar="EPOCH",
        help="time filter: include the bucket containing this time and "
        "later (bucket-granular, inclusive)",
    )
    p_query.add_argument(
        "--until", type=float, default=None, metavar="EPOCH",
        help="time filter: include buckets up to the one containing "
        "this time (inclusive)",
    )
    p_query.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="keep only the K largest groups (ties break on key)",
    )
    p_query.add_argument(
        "--check", action="store_true",
        help="differential gate: recompute the answer by a full rescan "
        "of the raw records and assert element-for-element identity "
        "(exit 1 on any divergence)",
    )
    p_query.add_argument(
        "--ingest-policy", choices=("strict", "repair", "skip"),
        default="repair",
        help="ingest policy for --build, and for --check when the "
        "snapshot predates policy recording (default repair)",
    )
    p_query.add_argument(
        "--json", action="store_true",
        help="emit the answer document as JSON on stdout",
    )
    for flag, help_text in (
        ("--trace-out", "enable tracing and write query.* spans to PATH"),
        ("--metrics-out", "write query counters as JSON to PATH"),
    ):
        p_query.add_argument(flag, metavar="PATH", default=None, help=help_text)

    p_mit = sub.add_parser(
        "mitigate", help="run the mitigation simulators on a campaign"
    )
    _add_common_gen_args(p_mit)
    p_mit.add_argument(
        "--retire-threshold", type=int, default=2, help="page retirement CE threshold"
    )
    p_mit.add_argument(
        "--exclude-budget", type=int, default=1000, help="exclude-list CE budget"
    )

    p_whatif = sub.add_parser(
        "whatif",
        help="counterfactual ECC replay: codes x scrub x retirement grids",
    )
    _add_common_gen_args(p_whatif)
    p_whatif.add_argument(
        "--codes",
        default="secded,chipkill,rs-36-32,rs-72-64",
        help="comma-separated protection codes to replay under "
        "(default: all four)",
    )
    p_whatif.add_argument(
        "--scrub",
        default="0,24",
        help="comma-separated patrol-scrub intervals in hours; 0 = no "
        "scrubbing (default: 0,24)",
    )
    p_whatif.add_argument(
        "--retire",
        default="0,2",
        help="comma-separated page-retirement CE thresholds; 0 = off "
        "(default: 0,2)",
    )
    p_whatif.add_argument(
        "--exclude-budget",
        type=int,
        default=0,
        help="exclude-list CE budget applied to every scenario; 0 = off",
    )
    p_whatif.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="replay policy groups in N parallel workers (0/1 = serial; "
        "byte-identical to serial)",
    )
    p_whatif.add_argument(
        "--fleet",
        metavar="DIR",
        default=None,
        help="replay a stored fleet campaign directory instead of "
        "synthesising one from --seed/--scale",
    )
    p_whatif.add_argument(
        "--scenarios-out",
        metavar="PATH",
        default=None,
        help="write the per-scenario report tables as JSON to PATH "
        "(schemas/whatif.schema.json)",
    )
    p_whatif.add_argument(
        "--check",
        action="store_true",
        help="verify the vectorised engine element-for-element against "
        "the brute-force per-event reference on a downsampled replay "
        "(exit 1 on any mismatch)",
    )
    p_whatif.add_argument(
        "--check-events",
        type=int,
        default=20000,
        metavar="N",
        help="downsample size for --check (default 20000)",
    )
    for flag, help_text in (
        ("--trace-out", "enable tracing and write the span tree to PATH"),
        ("--metrics-out", "write the metrics registry as JSON to PATH"),
    ):
        p_whatif.add_argument(flag, metavar="PATH", default=None, help=help_text)

    p_predict = sub.add_parser(
        "predict",
        help="train, evaluate and apply the online failure predictor",
    )
    predict_sub = p_predict.add_subparsers(dest="predict_command", required=True)

    p_ptrain = predict_sub.add_parser(
        "train",
        help="train on hazard-linked campaigns, evaluate held-out, "
        "write the model artifact",
    )
    p_ptrain.add_argument(
        "--out", required=True, metavar="PATH",
        help="where to write the model artifact (CRC-guarded JSON)",
    )
    p_ptrain.add_argument(
        "--train-seeds", default=None, metavar="CSV",
        help="comma-separated training campaign seeds (default 101,102,103)",
    )
    p_ptrain.add_argument(
        "--eval-seeds", default=None, metavar="CSV",
        help="comma-separated held-out campaign seeds (default 201,202); "
        "must be disjoint from --train-seeds",
    )
    p_ptrain.add_argument(
        "--scale", type=float, default=0.02,
        help="campaign volume scale for the train/eval campaigns "
        "(default 0.02)",
    )
    p_ptrain.add_argument(
        "--target-fpr", type=float, default=0.01, metavar="F",
        help="false-positive budget the alert threshold is set at "
        "(default 0.01)",
    )
    p_ptrain.add_argument(
        "--jobs", type=int, default=0,
        help="build per-seed datasets in N parallel workers (0/1 = "
        "serial; byte-identical to serial)",
    )
    p_ptrain.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the eval report (schemas/predict.schema.json) to PATH",
    )
    _add_predict_gate_args(p_ptrain)
    p_ptrain.add_argument(
        "--json", action="store_true",
        help="emit the eval report as JSON on stdout",
    )

    p_peval = predict_sub.add_parser(
        "eval",
        help="re-evaluate a saved model on held-out campaigns and gate",
    )
    p_peval.add_argument(
        "--model", required=True, metavar="PATH",
        help="model artifact from 'predict train'",
    )
    p_peval.add_argument(
        "--seeds", default=None, metavar="CSV",
        help="comma-separated held-out campaign seeds (default: the "
        "eval seeds recorded in the artifact, else 201,202)",
    )
    p_peval.add_argument(
        "--scale", type=float, default=None,
        help="campaign volume scale (default: recorded in the artifact)",
    )
    p_peval.add_argument(
        "--target-fpr", type=float, default=None, metavar="F",
        help="false-positive budget (default: recorded in the artifact)",
    )
    p_peval.add_argument(
        "--jobs", type=int, default=0,
        help="build per-seed datasets in N parallel workers",
    )
    p_peval.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the eval report (schemas/predict.schema.json) to PATH",
    )
    _add_predict_gate_args(p_peval)
    p_peval.add_argument(
        "--json", action="store_true",
        help="emit the eval report as JSON on stdout",
    )

    p_pscore = predict_sub.add_parser(
        "score",
        help="score every CE-active node of a stored campaign",
    )
    p_pscore.add_argument(
        "directory", help="campaign directory from 'synth'"
    )
    p_pscore.add_argument(
        "--model", required=True, metavar="PATH",
        help="model artifact from 'predict train'",
    )
    p_pscore.add_argument(
        "--at", type=float, default=None, metavar="EPOCH",
        help="score using only records at or before this time "
        "(default: the whole campaign)",
    )
    p_pscore.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="print the K highest-risk nodes (default 10)",
    )
    p_pscore.add_argument(
        "--jobs", type=int, default=0,
        help="extract features in N parallel workers (0/1 = serial; "
        "byte-identical to serial)",
    )
    p_pscore.add_argument(
        "--scores-out", metavar="PATH", default=None,
        help="write the full (node, score) table as JSON to PATH",
    )
    p_pscore.add_argument(
        "--ingest-policy", choices=("strict", "repair", "skip"),
        default="repair",
        help="how to treat unparseable telemetry (default repair)",
    )
    p_pscore.add_argument(
        "--json", action="store_true",
        help="emit the score table as JSON on stdout",
    )
    for p in (p_ptrain, p_peval, p_pscore):
        for flag, help_text in (
            ("--trace-out", "enable tracing and write predict.* spans to PATH"),
            ("--metrics-out", "write predict counters as JSON to PATH"),
        ):
            p.add_argument(flag, metavar="PATH", default=None, help=help_text)

    p_serve = sub.add_parser(
        "serve",
        help="serve warm predictions, alerts and rollup queries over "
        "HTTP (asyncio, stdlib only)",
    )
    p_serve.add_argument(
        "--model", required=True, metavar="PATH",
        help="model artifact from 'predict train' (CRC-guarded; a "
        "damaged file is refused before the port binds)",
    )
    p_serve.add_argument(
        "directory", nargs="?", default=None,
        help="campaign directory to fold into the warm risk table "
        "(omit for an empty table)",
    )
    p_serve.add_argument(
        "--rollups", metavar="DIR", default=None,
        help="rollup snapshot directory for /v1/query "
        "(default: DIRECTORY/rollups when present)",
    )
    p_serve.add_argument(
        "--alerts", metavar="PATH", default=None,
        help="alerts JSONL (e.g. from stream --alerts-out) to tail "
        "incrementally for /v1/alerts",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 binds an ephemeral port (default)",
    )
    p_serve.add_argument(
        "--ready-file", metavar="PATH", default=None,
        help="write {host, port, pid, model_id} as JSON once accepting "
        "(how tests and the bench discover an ephemeral port)",
    )
    p_serve.add_argument(
        "--ingest-policy", choices=("strict", "repair", "skip"),
        default="repair",
        help="how to treat unparseable telemetry (default repair)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=0,
        help="fold the campaign in N parallel workers at startup",
    )

    p_val = sub.add_parser(
        "validate", help="check a campaign against the calibration targets"
    )
    _add_common_gen_args(p_val)

    p_rel = sub.add_parser(
        "release", help="write the section 2.4-shaped public data release"
    )
    _add_common_gen_args(p_rel)
    p_rel.add_argument("--out", required=True, help="release directory")
    p_rel.add_argument(
        "--sensor-cadence", type=float, default=3600.0,
        help="environmental sampling cadence in seconds",
    )

    sub.add_parser("list", help="list registered experiments")
    return parser


def _resolve_exp_ids(exp_ids):
    """Normalise a CLI ``--exp`` value to a concrete id list.

    ``None`` *and* an empty list mean "run all paper experiments"
    (matching the help-text default; a bare ``--exp`` no longer silently
    runs nothing).  Unknown ids raise ``SystemExit(2)`` with a friendly
    message instead of a traceback.
    """
    from repro import experiments

    if not exp_ids:
        return [e for e, _ in experiments.list_experiments()]
    known = {e for e, _ in experiments.list_experiments(include_extensions=True)}
    unknown = [e for e in exp_ids if e not in known]
    if unknown:
        print(
            f"error: unknown experiment id(s): {', '.join(unknown)}\n"
            f"known ids: {', '.join(sorted(known))}\n"
            "hint: 'astra-memrepro list' shows every registered experiment",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return list(exp_ids)


def _validate_json_report(json_report) -> None:
    """Fail fast (exit 2) on an unwritable --json-report destination."""
    from pathlib import Path

    if not json_report:
        return
    parent = Path(json_report).resolve().parent
    if not parent.is_dir():
        print(
            f"error: --json-report directory does not exist: {parent}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def _make_cache(cache_dir):
    """Build a CampaignCache, rejecting a path that is not a directory."""
    from repro.run import CampaignCache

    cache = CampaignCache(cache_dir)
    if cache.directory.exists() and not cache.directory.is_dir():
        print(
            f"error: cache dir exists and is not a directory: {cache.directory}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return cache


def _inject_campaign(source, profile: str, inject_seed: int, policy: str):
    """Corrupt a disposable copy of the campaign and re-ingest it.

    ``source`` is either an in-memory campaign (written out first, with
    text logs so the fallback path has something to chew on) or an
    existing campaign directory (copied; the original is never touched).
    Returns ``(campaign, manifest)``.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.inject import LogCorruptor
    from repro.logs.campaign_io import (
        campaign_from_records,
        load_campaign_records,
        write_campaign,
    )

    workdir = Path(tempfile.mkdtemp(prefix="astra-inject-"))
    if isinstance(source, (str, Path)):
        shutil.copytree(source, workdir, dirs_exist_ok=True)
    else:
        write_campaign(source, workdir, text_logs=True)
    manifest = LogCorruptor(profile=profile, seed=inject_seed).corrupt_campaign(
        workdir
    )
    records = load_campaign_records(workdir, policy=policy)
    campaign = campaign_from_records(records)
    print(
        f"injected profile={manifest.profile} seed={manifest.seed} "
        f"({len(manifest.events)} fault events) into {workdir}"
    )
    return campaign, manifest


def _run_experiments(
    campaign,
    exp_ids,
    jobs: int = 0,
    json_report=None,
    cache_outcome=None,
    campaign_dir=None,
    timeout=None,
    retries: int = 1,
    min_coverage: float = 0.0,
    ingest_policy: str | None = None,
    injection=None,
    trace_out=None,
    metrics_out=None,
) -> int:
    from repro import obs
    from repro.run import ExperimentRunner

    _validate_json_report(json_report)
    exp_ids = _resolve_exp_ids(exp_ids)
    runner = ExperimentRunner(
        jobs=jobs,
        campaign_dir=campaign_dir,
        timeout_s=timeout,
        retries=retries,
        min_coverage=min_coverage,
    )
    results, report = runner.run(campaign, exp_ids)
    if cache_outcome is not None:
        report.cache = cache_outcome.to_dict()
    report.ingest_policy = ingest_policy
    if injection is not None:
        report.injection = injection.to_dict()
    # Observability section (report schema v3): the metrics snapshot is
    # always cheap to carry; the trace tree rides along when tracing was
    # enabled, with any worker-process spans already merged in.
    report.metrics = obs.get_metrics().export()
    if obs.tracing_enabled():
        report.trace = obs.get_tracer().export()
    if obs.profiles():
        report.profiles = obs.profiles()
    for exp_id in exp_ids:
        if exp_id in results:
            print(results[exp_id].render())
        else:
            metric = next(m for m in report.experiments if m.exp_id == exp_id)
            print(f"== {exp_id} ==\n  ERROR: {metric.error}")
        print()
    if obs.profiles():
        print(obs.render_profiles())
        print()
    print(report.summary())
    if json_report:
        report.write(json_report)
        print(f"wrote JSON run report to {json_report}")
    if trace_out:
        obs.write_trace(trace_out)
        print(f"wrote trace to {trace_out}")
    if metrics_out:
        obs.write_metrics(metrics_out)
        print(f"wrote metrics to {metrics_out}")
    return 0 if report.all_pass else 1


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Friendly unknown-subcommand handling (same convention as unknown
    # experiment ids): a clear error plus the known vocabulary, exit 2,
    # instead of argparse's bare usage dump.
    first = next((a for a in argv if not a.startswith("-")), None)
    if first is not None and first not in _COMMANDS:
        print(
            f"error: unknown command {first!r}\n"
            f"known commands: {', '.join(_COMMANDS)}\n"
            "hint: 'astra-memrepro --help' shows usage",
            file=sys.stderr,
        )
        return 2
    args = _build_parser().parse_args(argv)

    from repro.logs.ingest import IngestError

    try:
        return _dispatch(args)
    except IngestError as exc:
        # Typed telemetry failures (malformed records under --ingest-policy
        # strict, unrecoverable campaign directories) exit cleanly instead
        # of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_stream(args, trace_out, metrics_out) -> int:
    """The ``stream`` verb: drive a StreamPipeline over a directory."""
    import numpy as np

    from repro import obs
    from repro.predict.errors import PredictError
    from repro.stream import StreamPipeline
    from repro.stream.alerts import AlertRules
    from repro.stream.checkpoint import CheckpointError
    from repro.stream.tailer import TailError

    for path in (args.alerts_out, args.faults_out):
        _validate_json_report(path)
    model = None
    if args.predict:
        from repro.predict.model import Model

        if not args.model:
            print(
                "error: --predict needs --model pointing at a trained "
                "artifact; hint: 'predict train --out model.json' "
                "produces one",
                file=sys.stderr,
            )
            return 2
        try:
            model = Model.load(args.model)
        except PredictError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.model:
        print(
            "error: --model does nothing without --predict; hint: add "
            "--predict to mount the online scorer",
            file=sys.stderr,
        )
        return 2
    try:
        pipeline = StreamPipeline(
            directory=args.directory,
            policy=args.ingest_policy,
            checkpoint_dir=args.checkpoint_dir,
            alerts_out=args.alerts_out,
            batch_bytes=args.batch_bytes,
            checkpoint_every=args.checkpoint_every,
            rules=AlertRules(
                ce_rate_threshold=args.ce_rate_threshold,
                ce_rate_window_s=args.ce_rate_window,
            ),
            resume=not args.no_resume,
            rollup_dir=args.rollups_dir,
            predict_model=model,
            predict_rearm_s=args.predict_rearm,
        )
    except (ValueError, CheckpointError) as exc:
        # No tailable files, or an incompatible checkpoint: exit cleanly
        # instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if pipeline.batches and not args.json:
        print(f"resumed from checkpoint at batch {pipeline.batches}")

    def progress(p, summary):
        consumed = ", ".join(
            f"{family}+{n}" for family, n in summary["consumed"].items()
        )
        line = f"batch {p.batches - 1}: {consumed or 'idle'}"
        if summary["alerts"]:
            line += f"; {len(summary['alerts'])} alert(s)"
        print(line)

    try:
        run_info = pipeline.run(
            max_batches=args.max_batches,
            follow=args.follow,
            poll_interval=args.poll_interval,
            progress=None if args.json else progress,
        )
    except (TailError, PredictError) as exc:
        # Mid-stream rotation/truncation (and a predictor refusing
        # foreign fleet geometry) carry their own recovery hints;
        # surface them as clean operational errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = pipeline.finalize()
    if args.json:
        import json

        doc = {
            "schema_version": 1,
            "steps": int(run_info["steps"]),
            "summary": summary,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"streamed {run_info['steps']} batch(es): "
            f"{summary['faults']} live fault(s), {summary['alerts']} alert(s)"
        )
        for family, s in sorted(summary["ingest"].items()):
            print(
                f"  {family}: seen={s['seen']} parsed={s['parsed']} "
                f"repaired={s['repaired']} quarantined={s['quarantined']} "
                f"coverage={s['coverage']:.3f}"
            )
        if summary["mode_counts"]:
            modes = ", ".join(
                f"{label}={n}"
                for label, n in sorted(summary["mode_counts"].items())
            )
            print(f"  modes: {modes}")
        if summary.get("rollups"):
            r = summary["rollups"]
            where = f" v{r['version']} at {r['dir']}" if r.get("dir") else ""
            print(
                f"  rollups: {r['errors']} CEs, {r['faults']} fault(s)"
                f"{where}"
            )
        if summary.get("predictor"):
            p = summary["predictor"]
            print(
                f"  predictor: model {p['model_id']}, "
                f"{p['scored_batches']} batch(es) scored"
            )
    if args.faults_out:
        np.save(args.faults_out, pipeline.coalescer.faults())
        if not args.json:
            print(f"wrote faults to {args.faults_out}")
    if trace_out:
        obs.write_trace(trace_out)
        if not args.json:
            print(f"wrote trace to {trace_out}")
    if metrics_out:
        obs.write_metrics(metrics_out)
        if not args.json:
            print(f"wrote metrics to {metrics_out}")
    return 0


def _predict_gates(report: dict, args) -> list[str]:
    """Evaluate the CI gate flags against an eval report."""
    failures = []
    model = report["model"]
    base = report["baseline"]
    if args.min_auc is not None and model["auc"] < args.min_auc:
        failures.append(
            f"held-out AUC {model['auc']:.4f} below --min-auc {args.min_auc}"
        )
    if args.min_recall is not None and model["recall_at_fpr"] < args.min_recall:
        failures.append(
            f"recall@{report['target_fpr']:g}FPR {model['recall_at_fpr']:.4f} "
            f"below --min-recall {args.min_recall}"
        )
    if args.require_beats_baseline:
        if model["auc"] <= base["auc"]:
            failures.append(
                f"model AUC {model['auc']:.4f} does not beat the rate-"
                f"threshold baseline {base['auc']:.4f}"
            )
        if model["recall_at_fpr"] < base["recall_at_fpr"]:
            failures.append(
                f"model recall@FPR {model['recall_at_fpr']:.4f} below the "
                f"baseline's {base['recall_at_fpr']:.4f}"
            )
    return failures


def _emit_predict_report(report: dict, args, extra_lines=()) -> int:
    """Shared report rendering + gates for train/eval; returns exit code."""
    import json

    failures = _predict_gates(report, args)
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        m, b = report["model"], report["baseline"]
        print(
            f"held-out: AUC {m['auc']:.4f} (baseline {b['auc']:.4f}), "
            f"recall@{report['target_fpr']:g}FPR {m['recall_at_fpr']:.4f} "
            f"(baseline {b['recall_at_fpr']:.4f})"
        )
        print(
            f"operating point: precision {m['precision_at_threshold']:.4f}, "
            f"recall {m['recall_at_threshold']:.4f}"
        )
        lead = ", ".join(
            f"{e['lead_h']}h={e['recall']:.3f}" for e in m["lead_curve"]
        )
        print(f"lead-time recall: {lead}")
        for line in extra_lines:
            print(line)
        if args.report:
            print(f"wrote eval report to {args.report}")
    for failure in failures:
        print(f"gate FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _run_predict(args, trace_out, metrics_out) -> int:
    """The ``predict`` verb: train / eval / score."""
    from repro import obs
    from repro.predict import PredictError

    try:
        if args.predict_command == "train":
            code = _predict_train(args)
        elif args.predict_command == "eval":
            code = _predict_eval(args)
        else:
            code = _predict_score(args)
    except PredictError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if trace_out:
        obs.write_trace(trace_out)
        if not args.json:
            print(f"wrote trace to {trace_out}")
    if metrics_out:
        obs.write_metrics(metrics_out)
        if not args.json:
            print(f"wrote metrics to {metrics_out}")
    return code


def _predict_train(args) -> int:
    from repro.predict import EVAL_SEEDS, TRAIN_SEEDS, train_and_evaluate

    train_seeds = (
        tuple(_parse_axis(args.train_seeds, int, "--train-seeds"))
        if args.train_seeds else TRAIN_SEEDS
    )
    eval_seeds = (
        tuple(_parse_axis(args.eval_seeds, int, "--eval-seeds"))
        if args.eval_seeds else EVAL_SEEDS
    )
    _validate_json_report(args.report)
    model, report = train_and_evaluate(
        train_seeds=train_seeds,
        eval_seeds=eval_seeds,
        scale=args.scale,
        jobs=args.jobs,
        target_fpr=args.target_fpr,
    )
    model_id = model.save(args.out)
    extra = [
        f"wrote model {model_id} to {args.out} "
        f"(train seeds {list(train_seeds)}, eval seeds {list(eval_seeds)})"
    ]
    return _emit_predict_report(report, args, extra)


def _predict_eval(args) -> int:
    from repro.predict import (
        DatasetConfig,
        build_seed_datasets,
        evaluate,
    )
    from repro.predict.errors import PredictError
    from repro.predict.model import Model
    from repro.predict.train import (
        EVAL_SEEDS,
        REPORT_SCHEMA_VERSION,
        _split_stats,
    )

    _validate_json_report(args.report)
    model = Model.load(args.model)
    trained = model.trained
    seeds = (
        tuple(_parse_axis(args.seeds, int, "--seeds"))
        if args.seeds
        else tuple(trained.get("eval_seeds", EVAL_SEEDS))
    )
    train_seeds = set(map(int, trained.get("train_seeds", ())))
    overlap = train_seeds & set(map(int, seeds))
    if overlap:
        raise PredictError(
            f"eval seeds {sorted(overlap)} were in the model's training "
            f"set; hint: pick --seeds the model never saw"
        )
    scale = args.scale if args.scale is not None else float(
        trained.get("scale", 0.02)
    )
    target_fpr = args.target_fpr if args.target_fpr is not None else float(
        trained.get("target_fpr", 0.01)
    )
    config = (
        DatasetConfig.from_dict(trained["dataset"])
        if "dataset" in trained else DatasetConfig()
    )
    ds = build_seed_datasets(seeds, scale, config, args.jobs)
    results = evaluate(model, ds, target_fpr)
    report = {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "predict-eval",
        "model_id": model.model_id,
        "target_fpr": float(target_fpr),
        "scale": float(scale),
        "config": config.to_dict(),
        "train": {
            "seeds": sorted(train_seeds),
            "rows": int(trained.get("rows", 0)),
            "positives": int(trained.get("positives", 0)),
            "unseeable": 0,
        },
        "eval": _split_stats(ds, seeds),
        **results,
    }
    return _emit_predict_report(report, args)


def _predict_score(args) -> int:
    import json

    from repro.logs.campaign_io import load_campaign_records
    from repro.predict import score_records
    from repro.predict.model import Model

    _validate_json_report(args.scores_out)
    model = Model.load(args.model)
    records = load_campaign_records(
        args.directory, policy=args.ingest_policy
    )
    nodes, scores = score_records(
        records.errors, records.het, model, at=args.at, jobs=args.jobs
    )
    doc = {
        "schema_version": 1,
        "kind": "predict-scores",
        "model_id": model.model_id,
        "threshold": float(model.threshold),
        "at": args.at,
        "directory": str(args.directory),
        "nodes": nodes.tolist(),
        "scores": scores.tolist(),
    }
    if args.scores_out:
        from pathlib import Path

        Path(args.scores_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    import numpy as np

    order = np.lexsort((nodes, -scores))[: max(args.top, 0)]
    print(
        f"scored {nodes.size} node(s) with model {model.model_id} "
        f"(threshold {model.threshold:.4f})"
    )
    for rank, i in enumerate(order.tolist(), 1):
        flag = " AT RISK" if scores[i] >= model.threshold else ""
        print(f"  #{rank}: node {int(nodes[i])} score {scores[i]:.4f}{flag}")
    if args.scores_out:
        print(f"wrote scores to {args.scores_out}")
    return 0


def _run_serve(args, trace_out, metrics_out) -> int:
    """The ``serve`` verb: warm state + the asyncio HTTP front door."""
    from repro.predict import PredictError
    from repro.query import RollupError
    from repro.serve import ServeState, run as serve_run

    try:
        state = ServeState.build(
            args.model,
            directory=args.directory,
            rollups_dir=args.rollups,
            alerts_path=args.alerts,
            policy=args.ingest_policy,
            jobs=args.jobs,
        )
    except (PredictError, RollupError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    serve_run(
        state, host=args.host, port=args.port, ready_file=args.ready_file
    )
    return 0


def _query_inputs(directory, source: str, policy: str):
    """Gather ``(errors, faults, sensor_samples)`` the way ``source`` did.

    Symmetry is the point: ``--build`` and ``--check`` both come through
    here, so the reference a check recomputes from is fed by exactly the
    ingest path that produced the snapshot under test -- ``stream``
    snapshots re-parse the text logs under the recorded policy, ``batch``
    snapshots re-load the binary mirrors, ``fleet`` snapshots re-read
    the node-offset concatenation of the cluster mirrors.
    """
    from pathlib import Path

    from repro.faults.coalesce import coalesce

    directory = Path(directory)
    if source == "stream":
        from repro.logs.syslog import ingest_ce_log

        errors = ingest_ce_log(directory / "ce.log", policy=policy).errors
    elif source == "fleet":
        from repro.fleet import Fleet, fleet_errors

        errors = fleet_errors(Fleet.load(directory))
    else:
        from repro.logs.campaign_io import load_campaign_records

        errors = load_campaign_records(directory, policy=policy).errors
    samples = None
    bmc_files = sorted(directory.glob("bmc*.csv"))
    if bmc_files:
        import numpy as np

        from repro.logs.bmc import ingest_bmc_log

        parts = [ingest_bmc_log(p, policy=policy)[0] for p in bmc_files]
        samples = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return errors, coalesce(errors), samples


def _run_query(args, trace_out, metrics_out) -> int:
    """The ``query`` verb: rollup-served answers plus the --check gate."""
    import json
    from pathlib import Path

    from repro import obs
    from repro.query import (
        Query,
        QueryError,
        RollupError,
        RollupStore,
        answers_equal,
        build_store,
        execute,
        recompute,
    )

    directory = Path(args.directory)
    rollup_dir = (
        Path(args.rollups) if args.rollups else directory / "rollups"
    )

    try:
        where = {}
        for key, raw, flag in (
            ("rack", args.racks, "--racks"),
            ("slot", args.slots, "--slots"),
            ("node", args.nodes, "--nodes"),
        ):
            if raw is not None:
                where[key] = _parse_axis(raw, int, flag)
        if args.modes is not None:
            where["mode"] = [
                m.strip() for m in args.modes.split(",") if m.strip()
            ]
        if args.since is not None:
            where["since"] = args.since
        if args.until is not None:
            where["until"] = args.until
        group_by = tuple(
            d.strip() for d in (args.group_by or "").split(",") if d.strip()
        )
        query = Query(
            args.select, group_by=group_by, where=where, top_k=args.top_k
        )
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.build:
            errors, faults, samples = _query_inputs(
                directory, "batch", args.ingest_policy
            )
            store = build_store(
                errors,
                faults=faults,
                sensor_samples=samples,
                source="batch",
                policy=args.ingest_policy,
            )
            version = store.snapshot(rollup_dir)
            if not args.json:
                print(
                    f"built rollup snapshot v{version} at {rollup_dir} "
                    f"({store.errors_seen} CEs, {store.n_faults} faults)"
                )
        else:
            store = RollupStore.load(
                rollup_dir, version=args.snapshot_version
            )
            version = (
                args.snapshot_version
                if args.snapshot_version is not None
                else RollupStore.latest_version(rollup_dir)
            )
        answer = execute(store, query)
    except (RollupError, QueryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    check_doc = None
    exit_code = 0
    if args.check:
        source = store.source if store.source in ("stream", "fleet") else "batch"
        policy = store.policy or args.ingest_policy
        try:
            errors, faults, samples = _query_inputs(directory, source, policy)
        except OSError as exc:
            print(f"error: --check cannot re-ingest: {exc}", file=sys.stderr)
            return 2
        reference = build_store(
            errors,
            faults=faults,
            config=store.config,
            sensor_samples=samples,
            source=store.source,
            policy=store.policy,
        )
        ref_answer = recompute(
            query,
            store.config,
            errors=errors,
            faults=faults,
            sensor_times=None if samples is None else samples["time"],
        )
        answer_ok = answers_equal(answer, ref_answer)
        store_ok = store.equal(reference)
        check_doc = {
            "identical": bool(answer_ok and store_ok),
            "answer_identical": bool(answer_ok),
            "store_identical": bool(store_ok),
            "source": source,
            "policy": policy,
            "n_errors_reference": int(errors.size),
        }
        if not (answer_ok and store_ok):
            what = []
            if not answer_ok:
                what.append("answer differs from the full-rescan recompute")
            if not store_ok:
                what.append("cubes differ from the from-scratch rebuild")
            print(f"check FAILED: {'; '.join(what)}", file=sys.stderr)
            exit_code = 1
        elif not args.json:
            print(
                "check: cube answer element-identical to the full-rescan "
                f"recompute over {errors.size} records (source={source})"
            )

    if args.json:
        doc = {
            "schema_version": 1,
            "answer": answer,
            "rollups": {
                "dir": str(rollup_dir),
                "version": version,
                "source": store.source,
                "policy": store.policy,
                "errors_seen": int(store.errors_seen),
                "n_faults": int(store.n_faults),
            },
            "check": check_doc,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        dims = ",".join(answer["group_by"]) or "-"
        print(
            f"query: select={answer['select']} group_by={dims} "
            f"served_from={answer['served_from']} (snapshot v{version})"
        )
        shown = 0
        for key, value in zip(answer["keys"], answer["values"]):
            if shown >= 40:
                print(f"  ... ({answer['n_groups'] - shown} more group(s))")
                break
            label = " ".join(
                f"{d}={k}" for d, k in zip(answer["group_by"], key)
            )
            print(f"  {label or 'total'}: {value}")
            shown += 1
        print(f"  groups={answer['n_groups']} total={answer['total']}")

    if trace_out:
        obs.write_trace(trace_out)
        if not args.json:
            print(f"wrote trace to {trace_out}")
    if metrics_out:
        obs.write_metrics(metrics_out)
        if not args.json:
            print(f"wrote metrics to {metrics_out}")
    return exit_code


def _fleet_reference_faults(fleet, result, source: str, policy: str):
    """The single-process whole-stream answer the shard engine must match.

    Binary sources compare against coalescing the concatenated binary
    mirrors; the text source compares against serially re-parsing every
    cluster's ``ce.log`` (text timestamps carry second resolution, so the
    binary mirrors are not its ground truth).

    Degraded results stay checkable: the reference excludes the records
    of quarantined shards (via :func:`repro.fleet.drop_quarantined`), so
    a ``pass-degraded`` run is verified exact *over the shards that
    survived* rather than reported as a spurious mismatch.
    """
    import numpy as np

    from repro.faults.coalesce import coalesce
    from repro.fleet import drop_quarantined, fleet_errors
    from repro.logs.syslog import ingest_ce_log

    if source != "text":
        return coalesce(drop_quarantined(fleet, result, fleet_errors(fleet)))
    parts = []
    quarantined_clusters = {
        q["cluster"] for q in getattr(result, "quarantined", ())
    }
    for i, cdir in enumerate(fleet.cluster_dirs):
        if fleet.spec.cluster_name(i) in quarantined_clusters:
            continue
        errors = ingest_ce_log(cdir / "ce.log", policy=policy).errors.copy()
        errors["node"] += fleet.spec.node_offset(i)
        parts.append(errors)
    if not parts:
        from repro.faults.types import ERROR_DTYPE

        return coalesce(np.zeros(0, dtype=ERROR_DTYPE))
    merged = np.concatenate(parts)
    return coalesce(merged[np.argsort(merged["time"], kind="stable")])


def _run_fleet(args, trace_out, metrics_out) -> int:
    """The ``fleet`` verb: synthesise, shard-process, check, analyse."""
    import time

    import numpy as np

    from repro import obs
    from repro.fleet import (
        Fleet,
        FleetFormatError,
        FleetSpec,
        fleet_campaign,
        process_fleet,
        synth_fleet,
    )

    for path in (args.fleet_report, args.json_report):
        _validate_json_report(path)
    if args.json and args.exp is not None:
        print(
            "error: --json cannot be combined with --exp; hint: use "
            "--json-report for the experiment run report",
            file=sys.stderr,
        )
        return 2

    from pathlib import Path

    shard_dir = Path(args.shard_dir)
    try:
        existing = Fleet.load(shard_dir) if shard_dir.exists() else None
    except FleetFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if existing is not None and not args.force_synth:
        if args.clusters is not None and args.clusters != existing.spec.n_clusters:
            print(
                f"error: {shard_dir} already holds a "
                f"{existing.spec.n_clusters}-cluster fleet; pass "
                "--force-synth to re-synthesise it",
                file=sys.stderr,
            )
            return 2
        spec = existing.spec
    else:
        spec = FleetSpec(
            n_clusters=args.clusters if args.clusters is not None else 2,
            seed=args.seed,
            scale=args.scale,
        )
    cache = None if args.no_cache else _make_cache(args.cache_dir)
    fleet = synth_fleet(
        spec,
        shard_dir,
        text_logs=args.text_logs or args.source == "text",
        shards=True,
        cache=cache,
        force=args.force_synth,
    )
    if not args.json:
        print(
            f"fleet: {spec.n_clusters} cluster(s), seed={spec.seed}, "
            f"scale={spec.scale}, {fleet.spec.fleet_topology().n_nodes} "
            f"nodes at {shard_dir}"
        )

    try:
        result = process_fleet(
            fleet, jobs=args.jobs, source=args.source,
            policy=args.ingest_policy,
            task_timeout_s=args.task_timeout,
            shard_retries=args.shard_retries,
            resume=args.resume,
            ledger=not args.no_ledger,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            rollups=bool(args.rollups_out),
        )
    except FleetFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.json:
        modes = ", ".join(
            f"{label}={n}"
            for label, n in sorted(result.mode_histogram().items())
            if n
        )
        print(
            f"processed {len(result.per_shard)} shard(s) with "
            f"jobs={args.jobs}: {result.n_errors} CEs -> "
            f"{result.n_faults} fault(s) in {result.wall_s:.2f}s"
        )
        if modes:
            print(f"  modes: {modes}")
        status_line = f"  status: {result.status}"
        if result.coverage is not None:
            status_line += f", coverage={result.coverage:.4f}"
        if result.retries:
            status_line += f", retries={result.retries}"
        if result.resumed_shards:
            status_line += f", resumed={len(result.resumed_shards)}"
        if result.integrity_failures:
            status_line += (
                f", integrity_failures={result.integrity_failures}"
            )
        print(status_line)
    for entry in result.quarantined:
        print(
            f"  quarantined {entry['cluster']}/{entry['shard']} "
            f"after {entry['attempts']} attempt(s): {entry['reason']}",
            file=sys.stderr,
        )
    if result.status == "fail":
        print(
            "error: every shard was quarantined; no fleet result survived",
            file=sys.stderr,
        )
        return 1

    rollup_info = None
    if args.rollups_out and result.rollups is not None:
        version = result.rollups.snapshot(args.rollups_out)
        rollup_info = {
            "dir": str(args.rollups_out),
            "version": int(version),
            "errors_seen": int(result.rollups.errors_seen),
            "n_faults": int(result.rollups.n_faults),
        }
        if not args.json:
            print(
                f"  rollups: snapshot v{version} at {args.rollups_out} "
                f"({result.rollups.errors_seen} CEs)"
            )

    check = None
    exit_code = 0
    if args.check:
        reference = _fleet_reference_faults(
            fleet, result, args.source, args.ingest_policy
        )
        identical = (
            result.faults.dtype == reference.dtype
            and result.faults.tobytes() == reference.tobytes()
        )
        check = {
            "identical": bool(identical),
            "reference": "text" if args.source == "text" else "binary",
            "n_faults_reference": int(reference.size),
            "degraded": bool(result.quarantined),
        }
        if not identical:
            print(
                f"check FAILED: sharded faults differ from the "
                f"whole-stream path ({result.n_faults} vs {reference.size})",
                file=sys.stderr,
            )
            exit_code = 1
        elif not args.json:
            scope = (
                "whole-stream path over surviving shards"
                if result.quarantined else "whole-stream path"
            )
            print(f"check: sharded result identical to {scope} "
                  f"({reference.size} faults)")

    if args.fleet_report:
        import json

        from repro._util import iso

        now = time.time()
        doc = {
            "schema_version": 1,
            "created": now,
            "created_iso": iso(now) + "Z",
            "fleet": fleet.to_dict(),
            "result": result.to_dict(),
            "check": check,
        }
        Path(args.fleet_report).write_text(json.dumps(doc, indent=2) + "\n")
        if not args.json:
            print(f"wrote fleet report to {args.fleet_report}")

    if args.faults_out:
        np.save(args.faults_out, result.faults)
        if not args.json:
            print(f"wrote faults to {args.faults_out}")

    if args.json:
        import json

        doc = {
            "schema_version": 1,
            "fleet": fleet.to_dict(),
            "result": result.to_dict(),
            "check": check,
            "rollups": rollup_info,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        if trace_out:
            obs.write_trace(trace_out)
        if metrics_out:
            obs.write_metrics(metrics_out)
        return exit_code

    if args.exp is not None:
        campaign = fleet_campaign(fleet, result=result)
        exp_code = _run_experiments(
            campaign,
            args.exp,
            jobs=args.jobs,
            json_report=args.json_report,
            ingest_policy=args.ingest_policy,
            trace_out=trace_out,
            metrics_out=metrics_out,
        )
        return exit_code or exp_code

    if trace_out:
        obs.write_trace(trace_out)
        print(f"wrote trace to {trace_out}")
    if metrics_out:
        obs.write_metrics(metrics_out)
        print(f"wrote metrics to {metrics_out}")
    return exit_code


def _parse_axis(raw: str, kind, flag: str) -> list:
    """Parse a comma-separated numeric CLI axis with a friendly exit 2."""
    out = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            out.append(kind(part))
        except ValueError:
            print(
                f"error: invalid {flag} value {part!r} (expected "
                f"{kind.__name__}s, comma-separated)",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    if not out:
        print(f"error: {flag} must name at least one value", file=sys.stderr)
        raise SystemExit(2)
    return out


def _run_whatif(args, trace_out, metrics_out) -> int:
    """The ``whatif`` verb: counterfactual scenario replay + self-check."""
    import json
    import time

    import numpy as np

    from repro import obs
    from repro.mitigation.codes import CODES
    from repro.mitigation.reference import reference_replay_events
    from repro.mitigation.whatif import (
        render_table,
        replay_campaign,
        replay_events,
        scenario_grid,
    )

    _validate_json_report(args.scenarios_out)
    codes = [c.strip() for c in args.codes.split(",") if c.strip()]
    unknown = [c for c in codes if c not in CODES]
    if not codes or unknown:
        print(
            f"error: unknown code(s): {', '.join(unknown) or '(none given)'}\n"
            f"known codes: {', '.join(CODES)}",
            file=sys.stderr,
        )
        return 2
    scrub_hours = _parse_axis(args.scrub, float, "--scrub")
    retire = _parse_axis(args.retire, int, "--retire")
    if min(scrub_hours) < 0 or min(retire) < 0 or args.exclude_budget < 0:
        print(
            "error: --scrub/--retire/--exclude-budget values must be >= 0 "
            "(0 disables the mechanism)",
            file=sys.stderr,
        )
        return 2

    if args.fleet:
        from repro.fleet import Fleet, fleet_errors

        fleet = Fleet.load(args.fleet)
        errors = np.ascontiguousarray(fleet_errors(fleet))
        source = f"fleet:{args.fleet}"
    else:
        from repro.synth import CampaignGenerator

        campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
        errors = campaign.errors
        source = "synth"

    scenarios = scenario_grid(
        codes=codes,
        scrub_hours=scrub_hours,
        retire_thresholds=retire,
        exclude_budget=args.exclude_budget,
    )
    t0 = time.perf_counter()
    reports = replay_campaign(errors, scenarios, seed=args.seed, jobs=args.jobs)
    wall = time.perf_counter() - t0
    print(
        f"replayed {errors.size} CEs under {len(scenarios)} scenarios "
        f"in {wall:.2f}s (source={source}, jobs={args.jobs})"
    )
    print(render_table(reports))

    check_payload = None
    exit_code = 0
    if args.check:
        n = int(errors.size)
        take = min(max(int(args.check_events), 1), n) if n else 0
        sel = np.unique(np.linspace(0, n - 1, take).astype(np.int64)) if n else []
        sub = errors[sel]
        mismatches = 0
        with obs.span("whatif.check", transient=True) as sp:
            for sc in scenarios:
                fast = replay_events(sub, sc, seed=args.seed)
                slow = reference_replay_events(sub, sc, seed=args.seed)
                mismatches += int((fast != slow).sum())
            sp.add(events=int(sub.size), scenarios=len(scenarios))
        check_payload = {
            "identical": mismatches == 0,
            "events_compared": int(sub.size),
            "scenarios_compared": len(scenarios),
            "mismatches": mismatches,
        }
        if mismatches:
            print(
                f"check FAILED: {mismatches} per-event mismatches vs the "
                "brute-force reference",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            print(
                f"check ok: engine identical to brute-force reference on "
                f"{sub.size} events x {len(scenarios)} scenarios"
            )

    if args.scenarios_out:
        now = time.time()
        payload = {
            "schema_version": 1,
            "created": now,
            "created_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
            ),
            "campaign": {
                "seed": int(args.seed),
                "scale": float(args.scale),
                "n_errors": int(errors.size),
                "source": source,
            },
            "grid": {
                "codes": codes,
                "scrub_h": [float(s) for s in scrub_hours],
                "retire": [int(r) for r in retire],
                "exclude_budget": int(args.exclude_budget),
            },
            "jobs": int(args.jobs),
            "wall_s": wall,
            "check": check_payload,
            "scenarios": [r.to_dict() for r in reports],
        }
        from pathlib import Path

        Path(args.scenarios_out).write_text(json.dumps(payload, indent=2))
        print(f"wrote scenario report to {args.scenarios_out}")

    if trace_out:
        obs.write_trace(trace_out)
        print(f"wrote trace to {trace_out}")
    if metrics_out:
        obs.write_metrics(metrics_out)
        print(f"wrote metrics to {metrics_out}")
    return exit_code


def _dispatch(args) -> int:
    from repro import obs

    # Configure observability before any campaign load or generation so
    # ingest/cache spans land in the trace.
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    obs.configure(
        trace=bool(trace_out),
        profile=bool(getattr(args, "profile", False)),
    )
    for path in (trace_out, metrics_out):
        _validate_json_report(path)

    if args.command == "list":
        from repro.experiments import list_experiments

        for exp_id, title in list_experiments(include_extensions=True):
            print(f"{exp_id:<12} {title}")
        return 0

    if args.command == "synth":
        from repro.logs.campaign_io import write_campaign
        from repro.synth import CampaignGenerator

        campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
        directory = write_campaign(
            campaign, args.out, text_logs=args.text_logs, shards=args.shards
        )
        print(
            f"wrote campaign (seed={args.seed}, scale={args.scale}, "
            f"{campaign.n_errors} CEs) to {directory}"
        )
        return 0

    if args.command == "analyze":
        from repro.logs.campaign_io import (
            campaign_from_records,
            load_campaign_records,
        )

        # Validate cheap things (ids, report path) before the expensive
        # campaign load / fault coalescing.
        exp_ids = _resolve_exp_ids(args.exp)
        _validate_json_report(args.json_report)
        outcome = None
        injection = None
        campaign_dir = args.directory
        if args.inject:
            campaign, injection = _inject_campaign(
                args.directory, args.inject, args.inject_seed, args.ingest_policy
            )
            # Workers re-loading the corrupted directory under the default
            # strict policy would fail; ship the repaired campaign instead.
            campaign_dir = None
        else:
            records = load_campaign_records(args.directory, policy=args.ingest_policy)
            clean = all(s.source == "binary" for s in records.ingest.values())
            if not clean:
                campaign_dir = None
            if args.no_cache or not clean:
                # Degraded loads stay out of the campaign cache: an entry
                # keyed only by (seed, scale) must never serve partial data
                # to a later clean run.
                campaign = campaign_from_records(records)
            else:
                campaign, outcome = _make_cache(args.cache_dir).warm_from_records(
                    records
                )
        if args.rollups:
            from repro.query import RollupError, RollupStore

            try:
                campaign.rollups = RollupStore.load(args.rollups)
            except RollupError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        return _run_experiments(
            campaign,
            exp_ids,
            jobs=args.jobs,
            json_report=args.json_report,
            cache_outcome=outcome,
            campaign_dir=campaign_dir,
            timeout=args.timeout,
            retries=args.retries,
            min_coverage=args.min_coverage,
            ingest_policy=args.ingest_policy,
            injection=injection,
            trace_out=trace_out,
            metrics_out=metrics_out,
        )

    if args.command == "experiment":
        exp_ids = _resolve_exp_ids(None if args.all else args.exp)
        _validate_json_report(args.json_report)
        outcome = None
        injection = None
        campaign_dir = None
        if args.no_cache:
            from repro.synth import CampaignGenerator

            campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
        else:
            campaign, outcome = _make_cache(args.cache_dir).get_or_generate(
                seed=args.seed, scale=args.scale
            )
            campaign_dir = outcome.path
        if args.inject:
            # Harness self-test: write the campaign out (text logs and
            # all), corrupt the copy, and re-ingest it under the policy.
            campaign, injection = _inject_campaign(
                campaign, args.inject, args.inject_seed, args.ingest_policy
            )
            campaign_dir = None
        return _run_experiments(
            campaign,
            exp_ids,
            jobs=args.jobs,
            json_report=args.json_report,
            cache_outcome=outcome,
            campaign_dir=campaign_dir,
            timeout=args.timeout,
            retries=args.retries,
            min_coverage=args.min_coverage,
            ingest_policy=args.ingest_policy,
            injection=injection,
            trace_out=trace_out,
            metrics_out=metrics_out,
        )

    if args.command == "stream":
        return _run_stream(args, trace_out, metrics_out)

    if args.command == "fleet":
        return _run_fleet(args, trace_out, metrics_out)

    if args.command == "query":
        return _run_query(args, trace_out, metrics_out)

    if args.command == "whatif":
        return _run_whatif(args, trace_out, metrics_out)

    if args.command == "predict":
        return _run_predict(args, trace_out, metrics_out)

    if args.command == "serve":
        return _run_serve(args, trace_out, metrics_out)

    if args.command == "mitigate":
        from repro.mitigation import (
            ExcludeListPolicy,
            PageRetirementPolicy,
            simulate_exclude_list,
            simulate_page_retirement,
        )
        from repro.synth import CampaignGenerator

        campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
        retire = simulate_page_retirement(
            campaign.errors,
            PageRetirementPolicy(threshold=args.retire_threshold),
        )
        exclude = simulate_exclude_list(
            campaign.errors, ExcludeListPolicy(ce_budget=args.exclude_budget)
        )
        print(f"campaign: {campaign.n_errors} CEs (seed={args.seed}, scale={args.scale})")
        print(
            f"page retirement (k={args.retire_threshold}): avoided "
            f"{retire.errors_avoided} CEs ({retire.avoided_fraction:.1%}), "
            f"{retire.pages_retired} pages ({retire.retired_bytes / 1024:.0f} KiB)"
        )
        print(
            f"exclude list (B={args.exclude_budget}): avoided "
            f"{exclude.errors_avoided} CEs ({exclude.avoided_fraction:.1%}), "
            f"{exclude.nodes_excluded} nodes, "
            f"{exclude.node_seconds_lost / 86400.0:.0f} node-days lost"
        )
        return 0

    if args.command == "release":
        from repro.logs.release import write_release
        from repro.synth import CampaignGenerator

        campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
        directory = write_release(
            campaign, args.out, sensor_cadence_s=args.sensor_cadence
        )
        print(f"wrote release ({campaign.n_errors} CE records) to {directory}")
        return 0

    if args.command == "validate":
        from repro.synth import CampaignGenerator, render_validation, validate_campaign

        campaign = CampaignGenerator(seed=args.seed, scale=args.scale).generate()
        checks = validate_campaign(campaign)
        print(render_validation(checks))
        return 0 if all(c.passed for c in checks) else 1

    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
