"""Vectorised primitives for the text-ingest/emit fast path.

The slow ingest path hands every line to a Python ``parse_line``
callback; at the study's data volumes (multi-million-line CE syslogs)
the interpreter loop dominates the cost of turning text into columns.
This module provides the building blocks for the chunked fast path the
parsers in :mod:`repro.logs` share:

- a block reader that slices a binary stream into newline-aligned
  byte chunks with per-line extents (no per-line Python objects);
- ASCII stripping / empty-line / non-ASCII triage over whole chunks;
- vectorised field splitting (space- or comma-separated tokens),
  fixed-prefix and vocabulary matching;
- vectorised decimal, hexadecimal, fixed-point and ISO-8601 parsing
  whose accept/reject behaviour is a strict *subset* of the per-line
  parsers' -- a line the fast grammar accepts always produces exactly
  the row ``parse_line`` would have produced, and everything else is
  routed back through the per-line machinery (see DESIGN.md section 9);
- the symmetric emit side: per-column digit/hex/choice byte matrices
  assembled into one contiguous byte buffer per chunk
  (:func:`build_lines`), replacing per-record f-strings.

Nothing in here knows about ingest policies, quarantine or stats; the
drivers in :mod:`repro.logs.ingest` own those semantics.
"""

from __future__ import annotations

import numpy as np

#: Default block size for chunked reads (bytes).
DEFAULT_CHUNK_BYTES = 4 << 20

#: ASCII whitespace bytes that ``str.strip`` would also remove.
_WS = np.zeros(256, dtype=bool)
_WS[[9, 10, 11, 12, 13, 28, 29, 30, 31, 32]] = True

_HEXCHARS = np.frombuffer(b"0123456789abcdef", dtype=np.uint8)

#: Hex digit value per byte (-1 for non-hex bytes).
_HEXVAL = np.full(256, -1, dtype=np.int8)
for _c in b"0123456789":
    _HEXVAL[_c] = _c - ord("0")
for _c in b"abcdef":
    _HEXVAL[_c] = _c - ord("a") + 10
for _c in b"ABCDEF":
    _HEXVAL[_c] = _c - ord("A") + 10


class Chunk:
    """One block's fast-path candidate lines.

    ``data`` is the whole block as a uint8 array; ``starts``/``ends``
    bound each candidate line (already ASCII-stripped, non-empty,
    ASCII-only, in file order).
    """

    __slots__ = ("data", "starts", "ends")

    def __init__(self, data: np.ndarray, starts: np.ndarray, ends: np.ndarray):
        self.data = data
        self.starts = starts
        self.ends = ends

    @property
    def n_lines(self) -> int:
        return int(self.starts.size)


# ----------------------------------------------------------------------
# Reading: blocks -> line extents -> cleaned candidate spans
# ----------------------------------------------------------------------
def iter_blocks(fh, chunk_bytes: int = DEFAULT_CHUNK_BYTES):
    """Yield ``(data, starts, ends)`` newline-aligned blocks from ``fh``.

    ``fh`` must be a binary stream.  ``starts``/``ends`` cover *every*
    line in the block (including empty ones) so callers can keep global
    line numbers; ``ends`` excludes the newline itself.  A final line
    without a trailing newline is still yielded.
    """
    carry = b""
    while True:
        block = fh.read(chunk_bytes)
        if not block:
            break
        block = carry + block
        # Match text mode's universal newlines: \r\n and lone \r both end
        # a line.  A trailing \r is held back in case the next read opens
        # with the \n of a split \r\n pair.
        hold_cr = block.endswith(b"\r")
        if hold_cr:
            block = block[:-1]
        block = _translate_newlines(block)
        cut = block.rfind(b"\n")
        if cut < 0:
            carry = block + (b"\r" if hold_cr else b"")
            continue
        carry = block[cut + 1:] + (b"\r" if hold_cr else b"")
        yield _block_lines(block[: cut + 1])
    if carry:
        # A held-back \r at EOF is a real newline (text mode translates
        # it), so only add the synthetic terminator when the translated
        # remainder does not already end with one -- otherwise the last
        # line would grow a spurious empty sibling.
        final = _translate_newlines(carry)
        if not final.endswith(b"\n"):
            final += b"\n"
        yield _block_lines(final)


def _translate_newlines(block: bytes) -> bytes:
    if b"\r" in block:
        block = block.replace(b"\r\n", b"\n").replace(b"\r", b"\n")
    return block


def _block_lines(block: bytes):
    data = np.frombuffer(block, dtype=np.uint8)
    nl = np.flatnonzero(data == 10)
    starts = np.concatenate([[0], nl[:-1] + 1]).astype(np.int64)
    return data, starts, nl.astype(np.int64)


def clean_spans(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                max_rounds: int = 8):
    """ASCII-strip all line spans; triage empty and non-fast lines.

    Returns ``(cs, ce, empty, dirty)``: stripped bounds, a mask of lines
    that stripped to nothing, and a mask of lines the fast path must not
    touch (non-ASCII content, or whitespace runs longer than
    ``max_rounds`` that were not fully stripped).  ``empty`` and
    ``dirty`` are disjoint; everything else is a fast-path candidate.
    """
    cs = starts.copy()
    ce = ends.copy()
    guard = max(data.size - 1, 0)
    for _ in range(max_rounds):
        lead = (cs < ce) & _WS[data[np.minimum(cs, guard)]]
        trail = (cs < ce) & _WS[data[np.maximum(ce - 1, 0)]]
        if not (lead.any() or trail.any()):
            break
        cs[lead] += 1
        ce[trail] -= 1
    empty = cs >= ce
    # Unconverged strips (pathological whitespace runs) stay dirty.
    dirty = ~empty & (
        _WS[data[np.minimum(cs, guard)]] | _WS[data[np.maximum(ce - 1, 0)]]
    )
    if int(data.max(initial=0)) >= 128:
        hi = np.concatenate([[0], np.cumsum(data >= 128)])
        dirty |= ~empty & ((hi[ce] - hi[cs]) > 0)
    return cs, ce, empty, dirty


# ----------------------------------------------------------------------
# Field splitting and matching
# ----------------------------------------------------------------------
def _gather(data: np.ndarray, pos: np.ndarray, ok: np.ndarray) -> np.ndarray:
    """``data[pos]`` with out-of-bounds entries clamped into range.

    Rows outside the caller's ``ok`` mask may carry unspecified (even
    negative) positions; ``take(mode="clip")`` reads a deterministic
    in-range byte for them without materialising a masked index array,
    and the caller's mask discards whatever was read.
    """
    return np.take(data, pos, mode="clip")


def split_tokens(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                 n_tokens: int, sep: int = 32):
    """Bounds of exactly ``n_tokens`` non-empty ``sep``-separated tokens.

    Returns ``(tok_starts, tok_ends, ok)`` of shape ``(n, n_tokens)``;
    rows where the line does not have exactly ``n_tokens - 1``
    separators, or where any token is empty, have ``ok`` False (their
    bounds are unspecified).
    """
    n = starts.size
    sep_pos = np.flatnonzero(data == sep)
    # Separator count per line by rank difference -- no full-chunk cumsum.
    first = np.searchsorted(sep_pos, starts)
    ok = (np.searchsorted(sep_pos, ends) - first) == (n_tokens - 1)
    idx = first[:, None] + np.arange(n_tokens - 1)[None, :]
    if sep_pos.size:
        sp = np.take(sep_pos, idx, mode="clip")
    else:
        sp = np.zeros((n, max(n_tokens - 1, 1)), dtype=np.int64)[:, : n_tokens - 1]
    tok_starts = np.concatenate([starts[:, None], sp + 1], axis=1)
    tok_ends = np.concatenate([sp, ends[:, None]], axis=1)
    ok &= np.all(tok_ends - tok_starts >= 1, axis=1)
    return tok_starts, tok_ends, ok


def split_head_tokens(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                      n_head: int, sep: int = 32):
    """Like :func:`split_tokens` but with a free-form tail.

    Splits off ``n_head`` leading tokens at the first ``n_head``
    separators; the remainder of the line (which may itself contain
    separators) is the final token.  Returns bounds of shape
    ``(n, n_head + 1)`` plus the ``ok`` mask.
    """
    n = starts.size
    sep_pos = np.flatnonzero(data == sep)
    first = np.searchsorted(sep_pos, starts)
    ok = (np.searchsorted(sep_pos, ends) - first) >= n_head
    idx = first[:, None] + np.arange(n_head)[None, :]
    if sep_pos.size:
        sp = np.take(sep_pos, idx, mode="clip")
    else:
        sp = np.zeros((n, n_head), dtype=np.int64)
    tok_starts = np.concatenate([starts[:, None], sp + 1], axis=1)
    tok_ends = np.concatenate([sp, ends[:, None]], axis=1)
    ok &= np.all(tok_ends - tok_starts >= 1, axis=1)
    return tok_starts, tok_ends, ok


def has_prefix(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
               prefix: bytes) -> np.ndarray:
    """Mask of spans beginning with ``prefix``."""
    p = np.frombuffer(prefix, dtype=np.uint8)
    ok = (ends - starts) >= p.size
    pos = starts[:, None] + np.arange(p.size)[None, :]
    ch = _gather(data, pos, ok)
    return ok & np.all(ch == p[None, :], axis=1)


def token_equals(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                 word: bytes) -> np.ndarray:
    """Mask of spans exactly equal to ``word``."""
    return has_prefix(data, starts, ends, word) & ((ends - starts) == len(word))


def compile_prefixes(prefixes):
    """Precompile a prefix table for :func:`has_prefixes`.

    Returns ``(pattern, wild, lengths)``: a ``(k, pmax)`` expected-byte
    matrix, a wildcard mask marking the padding cells of short prefixes,
    and per-column prefix lengths.  Compile once at import time; the
    per-chunk work in :func:`has_prefixes` is then a single broadcast
    gather (fancy per-cell index arrays measure slower than the padded
    broadcast, so padding wins despite the wasted cells).
    """
    k = len(prefixes)
    pmax = max(len(p) for p in prefixes)
    pattern = np.zeros((k, pmax), dtype=np.uint8)
    wild = np.ones((k, pmax), dtype=bool)
    lengths = np.zeros(k, dtype=np.int64)
    for i, p in enumerate(prefixes):
        b = np.frombuffer(bytes(p), dtype=np.uint8)
        pattern[i, : b.size] = b
        wild[i, : b.size] = False
        lengths[i] = b.size
    return pattern, wild, lengths


def has_prefixes(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                 table) -> np.ndarray:
    """Mask of rows whose span ``k`` begins with the ``k``-th prefix.

    ``starts``/``ends`` are ``(n, k)`` column bounds and ``table`` comes
    from :func:`compile_prefixes`.  One fused gather replaces ``k``
    separate :func:`has_prefix` passes -- the difference is pure call
    and temporary-allocation overhead, which dominates at fourteen
    columns per line.
    """
    pattern, wild, lengths = table
    ok = np.all((ends - starts) >= lengths[None, :], axis=1)
    pos = starts[:, :, None] + np.arange(pattern.shape[1])[None, None, :]
    ch = np.take(data, pos, mode="clip")
    hit = (ch == pattern[None, :, :]) | wild[None, :, :]
    return ok & np.all(hit.reshape(hit.shape[0], -1), axis=1)


def match_vocab(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                options):
    """Match each span against a small vocabulary.

    Returns ``(idx, ok)``; ``idx`` is the option index (0 where no
    option matched -- gate on ``ok``).  One padded gather covers every
    option at once instead of a :func:`token_equals` pass per word.
    """
    pattern, wild, lengths = compile_prefixes(options)
    pos = starts[:, None] + np.arange(pattern.shape[1])[None, :]
    ch = np.take(data, pos, mode="clip")
    hit = (ch[:, None, :] == pattern[None, :, :]) | wild[None, :, :]
    match = np.all(hit, axis=2) & ((ends - starts)[:, None] == lengths[None, :])
    ok = match.any(axis=1)
    return np.argmax(match, axis=1), ok


# ----------------------------------------------------------------------
# Vectorised scalar parsing
# ----------------------------------------------------------------------
def parse_uint(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
               max_width: int = 18):
    """Base-10 unsigned parse of ``[start, end)`` spans.

    Returns ``(values, ok)``; ``ok`` requires 1..``max_width`` decimal
    digits (leading zeros allowed -- callers mimicking ``int(x, 0)``
    must reject those themselves via :func:`leading_zero`).
    """
    w = ends - starts
    ok = (w >= 1) & (w <= max_width)
    if not ok.any():
        return np.zeros(starts.size, dtype=np.int64), ok
    mw = int(np.max(np.where(ok, w, 1)))
    offs = np.arange(mw)
    pos = ends[:, None] - 1 - offs[None, :]
    used = offs[None, :] < w[:, None]
    # Stay in uint8 until the final digit extraction: subtraction wraps
    # for non-digit bytes, so one <= 9 compare both validates and masks.
    d8 = np.take(data, pos, mode="clip") - np.uint8(48)
    good = d8 <= 9
    ok &= ~np.any(~good & used, axis=1)
    digit = np.where(good & used, d8, 0).astype(np.int64)
    return digit @ (10 ** offs.astype(np.int64)), ok


def leading_zero(data: np.ndarray, starts: np.ndarray, ends: np.ndarray
                 ) -> np.ndarray:
    """Mask of multi-character spans starting with ``'0'``.

    ``int(x, 0)`` (the per-line parsers' decimal grammar) rejects
    ``"042"``; the fast grammar must too.
    """
    guard = max(data.size - 1, 0)
    return ((ends - starts) > 1) & (data[np.minimum(starts, guard)] == 48)


def parse_hex(data: np.ndarray, starts: np.ndarray, ends: np.ndarray,
              max_width: int = 15):
    """Base-16 unsigned parse (no ``0x`` prefix) of spans."""
    w = ends - starts
    ok = (w >= 1) & (w <= max_width)
    if not ok.any():
        return np.zeros(starts.size, dtype=np.int64), ok
    mw = int(np.max(np.where(ok, w, 1)))
    offs = np.arange(mw)
    pos = ends[:, None] - 1 - offs[None, :]
    used = offs[None, :] < w[:, None]
    d = _HEXVAL[np.take(data, pos, mode="clip")]
    good = d >= 0
    ok &= ~np.any(~good & used, axis=1)
    digit = np.where(good & used, d, 0).astype(np.int64)
    return digit @ (np.int64(1) << (4 * offs.astype(np.int64))), ok


def parse_decimal(data: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    """Parse fixed-point decimals (``[-]digits.digits``) as float64.

    The accepted grammar keeps the total digit count small enough that
    the value is assembled exactly in int64 and divided by an exact
    power of ten, so the result is bit-identical to ``float(str)``.
    Scientific notation, inf/nan and bare integers are rejected
    (``ok`` False) and fall back to the per-line parser.
    """
    guard = max(data.size - 1, 0)
    neg = (ends - starts >= 1) & (data[np.minimum(starts, guard)] == 45)
    s = starts + neg
    dot_pos = np.flatnonzero(data == 46)
    first = np.searchsorted(dot_pos, s)
    ok = (np.searchsorted(dot_pos, ends) - first) == 1
    if dot_pos.size:
        dp = np.take(dot_pos, first, mode="clip")
    else:
        dp = np.zeros(starts.size, dtype=np.int64)
    ipart, ok_i = parse_uint(data, s, dp, max_width=15)
    fpart, ok_f = parse_uint(data, dp + 1, ends, max_width=8)
    flen = ends - dp - 1
    ok &= ok_i & ok_f & ((dp - s) + flen <= 15)
    scale = np.power(10.0, np.where(ok, flen, 0))
    mantissa = ipart * (10 ** np.where(ok, flen, 0)) + fpart
    value = mantissa / scale
    return np.where(neg, -value, value), ok


#: Cumulative days at the start of each month (non-leap).
_MDAYS = np.array([31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31])


def parse_iso_seconds(data: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    """Parse 19-char ``YYYY-MM-DDTHH:MM:SS`` spans to epoch seconds.

    Range-validates exactly like ``np.datetime64`` (months 1-12, days
    within the month including leap years, H<24, M<60, S<60), so a span
    this accepts is guaranteed to parse identically on the slow path.
    Returns ``(seconds, ok)`` as int64.
    """
    ok = (ends - starts) == 19
    pos = starts[:, None] + np.arange(19)[None, :]
    ch = np.take(data, pos, mode="clip")
    sep_idx = np.array([4, 7, 10, 13, 16])
    sep_val = np.array([45, 45, 84, 58, 58], dtype=np.uint8)  # - - T : :
    ok &= np.all(ch[:, sep_idx] == sep_val[None, :], axis=1)
    dig_idx = np.array([0, 1, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15, 17, 18])
    d8 = ch[:, dig_idx] - np.uint8(48)  # wraps for non-digits
    ok &= np.all(d8 <= 9, axis=1)
    d = np.where(ok[:, None], d8, 0).astype(np.int64)
    year = d[:, 0] * 1000 + d[:, 1] * 100 + d[:, 2] * 10 + d[:, 3]
    month = d[:, 4] * 10 + d[:, 5]
    day = d[:, 6] * 10 + d[:, 7]
    hour = d[:, 8] * 10 + d[:, 9]
    minute = d[:, 10] * 10 + d[:, 11]
    sec = d[:, 12] * 10 + d[:, 13]
    leap = ((year % 4 == 0) & (year % 100 != 0)) | (year % 400 == 0)
    month_c = np.clip(month, 1, 12)
    mdays = _MDAYS[month_c - 1] + ((month_c == 2) & leap)
    ok &= (
        (month >= 1) & (month <= 12)
        & (day >= 1) & (day <= mdays)
        & (hour <= 23) & (minute <= 59) & (sec <= 59)
    )
    # Howard Hinnant's days-from-civil, vectorised (proleptic Gregorian,
    # matching numpy's datetime64 exactly).
    y = year - (month <= 2)
    era = np.floor_divide(y, 400)
    yoe = y - era * 400
    doy = (153 * (month + np.where(month > 2, -3, 9)) + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    days = era * 146097 + doe - 719468
    return days * 86400 + hour * 3600 + minute * 60 + sec, ok


# ----------------------------------------------------------------------
# Emit: per-column byte matrices -> one contiguous buffer per chunk
# ----------------------------------------------------------------------
def uint_digits(values, min_width: int = 1):
    """Right-aligned decimal digit matrix for non-negative ints.

    Returns ``(mat, widths)``; widths below ``min_width`` are
    zero-padded, matching ``%0<min_width>d``.
    """
    v = np.asarray(values).astype(np.int64)
    nd = np.ones(v.size, dtype=np.int64)
    p = 10
    while p <= 10 ** 18:
        nd += v >= p
        p *= 10
    widths = np.maximum(nd, min_width)
    wmax = int(widths.max(initial=min_width))
    pw = 10 ** np.arange(wmax - 1, -1, -1, dtype=np.int64)
    mat = ((v[:, None] // pw[None, :]) % 10 + 48).astype(np.uint8)
    return mat, widths


def opt_uint_digits(values, min_width: int = 1):
    """Like :func:`uint_digits` but negative values render as ``"-"``.

    Mirrors the writers' ``opt()`` convention for sentinel fields.
    """
    v = np.asarray(values).astype(np.int64)
    neg = v < 0
    mat, widths = uint_digits(np.where(neg, 0, v), min_width)
    widths = np.where(neg, 1, widths)
    mat[neg, -1] = 45
    return mat, widths


def hex_digits(values, width: int = 12):
    """Fixed-width lowercase hex digit matrix (``%0<width>x``)."""
    v = np.asarray(values).astype(np.uint64)
    shifts = (4 * np.arange(width - 1, -1, -1)).astype(np.uint64)
    mat = _HEXCHARS[((v[:, None] >> shifts[None, :]) & np.uint64(15)).astype(np.int64)]
    return mat, np.full(v.size, width, dtype=np.int64)


def choice_bytes(idx, options):
    """Right-aligned byte matrix selecting ``options[idx]`` per row."""
    idx = np.asarray(idx)
    opts = [np.frombuffer(bytes(o), dtype=np.uint8) for o in options]
    lens = np.array([o.size for o in opts], dtype=np.int64)
    widths = lens[idx]
    wmax = int(lens.max(initial=1))
    mat = np.zeros((idx.size, wmax), dtype=np.uint8)
    for k, o in enumerate(opts):
        rows = idx == k
        if rows.any() and o.size:
            mat[rows, wmax - o.size:] = o[None, :]
    return mat, widths


def iso_bytes(times):
    """19-char ISO-8601 byte matrix for epoch-second times.

    Callers must pre-mask times to ``[0, 253402300800)`` (years
    1970-9999) so every rendered string is exactly 19 bytes.
    """
    t = np.asarray(times).astype(np.int64)
    s = np.datetime_as_string(t.astype("datetime64[s]")).astype("S19")
    mat = np.frombuffer(s.tobytes(), dtype=np.uint8).reshape(t.size, 19)
    return mat, np.full(t.size, 19, dtype=np.int64)


def str_matrix(strings):
    """Left-aligned byte matrix + widths from a sequence of ASCII strings."""
    arr = np.asarray(strings, dtype="S")
    width = arr.dtype.itemsize
    mat = np.frombuffer(arr.tobytes(), dtype=np.uint8).reshape(arr.size, width)
    widths = (mat != 0).sum(axis=1).astype(np.int64)
    # Embedded NUL would break the width computation; callers pass
    # printable formatter output only.
    return mat, widths


def build_lines(n: int, segments) -> bytes:
    """Assemble ``n`` newline-terminated lines from column segments.

    Each segment is either a constant ``bytes`` run or a tuple
    ``(mat, widths[, align])`` with a per-row byte matrix: right-aligned
    (digit matrices; the default) or left-aligned (string matrices).
    Returns the concatenated buffer, one ``\\n`` after each line.
    """
    if n == 0:
        return b""
    rendered = []
    total = np.ones(n, dtype=np.int64)  # the newline
    for seg in segments:
        if isinstance(seg, (bytes, bytearray)):
            b = np.frombuffer(bytes(seg), dtype=np.uint8)
            rendered.append((b, None, "const"))
            total += b.size
        else:
            mat, widths = seg[0], seg[1]
            align = seg[2] if len(seg) > 2 else "right"
            widths = np.asarray(widths)
            if widths.ndim == 0:
                widths = np.full(n, int(widths), dtype=np.int64)
            rendered.append((mat, widths.astype(np.int64), align))
            total += widths
    starts = np.concatenate([[0], np.cumsum(total)[:-1]])
    buf = np.empty(int(total.sum()), dtype=np.uint8)
    cursor = starts.copy()
    for mat, widths, align in rendered:
        if align == "const":
            buf[cursor[:, None] + np.arange(mat.size)[None, :]] = mat[None, :]
            cursor += mat.size
            continue
        wmax = mat.shape[1]
        for j in range(wmax):
            if align == "right":
                use = widths > (wmax - 1 - j)
                if not use.any():
                    continue
                pos = cursor[use] + (j - (wmax - widths[use]))
            else:
                use = widths > j
                if not use.any():
                    continue
                pos = cursor[use] + j
            buf[pos] = mat[use, j]
        cursor += widths
    buf[cursor] = 10
    return buf.tobytes()
