"""The section 2.4 public data release, as a packager.

The paper commits to releasing "text files containing both the memory
failure telemetry information extracted from the system logs and the
environmental sensor data extracted from the BMC log files", with the
failure records carrying: timestamp, node ID, socket, type of failure,
DIMM slot, row, rank, bank, bit position, physical address and
vendor-specific syndrome data.

:func:`write_release` lays a campaign out in exactly that shape (plus a
README manifest); :func:`read_release` loads it back.  Missing fields
(Astra's row) are released as ``-1``, as field datasets typically do.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._util import iso
from repro.faults.types import empty_errors
from repro.machine.node import slot_letter
from repro.synth.het import EVENT_TYPES

#: Header of the failure-telemetry file, mirroring the paper's field list.
FAILURE_HEADER = (
    "timestamp,node,socket,failure_type,dimm_slot,row,rank,bank,"
    "bit_position,physical_address,syndrome"
)

#: Header of the environmental file.
ENVIRONMENT_HEADER = "timestamp,node,sensor,value"


def write_release(
    campaign,
    directory: str | os.PathLike,
    sensor_cadence_s: float = 3600.0,
    sensor_nodes=None,
) -> Path:
    """Write the release layout; returns the directory.

    ``sensor_nodes`` limits the environmental file to a node subset
    (default: the first 64 nodes) -- the full per-minute fleet archive is
    the paper's 8 GiB and can be regenerated from the sensor field at
    will, so the release ships a representative slice plus the recipe.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Failure telemetry: CEs then DUEs, time-ordered.
    with open(directory / "memory_failures.txt", "w") as fh:
        fh.write(FAILURE_HEADER + "\n")
        for rec in campaign.errors:
            slot = slot_letter(int(rec["slot"]))
            fh.write(
                f"{iso(float(rec['time']))},{int(rec['node'])},"
                f"{int(rec['socket'])},CE,{slot},{int(rec['row'])},"
                f"{int(rec['rank'])},{int(rec['bank'])},"
                f"{int(rec['bit_pos'])},0x{int(rec['address']):012x},"
                f"0x{int(rec['syndrome']):02x}\n"
            )
        dues = campaign.het[campaign.het["non_recoverable"]]
        for rec in dues:
            name = EVENT_TYPES[int(rec["event"])]
            fh.write(
                f"{iso(float(rec['time']))},{int(rec['node'])},-1,"
                f"DUE:{name},-,-1,-1,-1,-1,-,-\n"
            )

    # ------------------------------------------------------------------
    # Environmental telemetry: a node slice at the requested cadence.
    if sensor_nodes is None:
        sensor_nodes = np.arange(min(64, campaign.topology.n_nodes))
    from repro.logs.bmc import write_bmc_log

    t0, t1 = campaign.calibration.sensor_window
    n_env = write_bmc_log(
        directory / "environment.txt",
        campaign.sensors,
        sensor_nodes,
        t0,
        t1,
        cadence_s=sensor_cadence_s,
    )

    # ------------------------------------------------------------------
    with open(directory / "README.txt", "w") as fh:
        fh.write(
            "Astra memory error and system monitoring data (synthetic "
            "reproduction)\n"
            "================================================================\n\n"
            "Layout mirrors the data release described in section 2.4 of\n"
            "'Understanding Memory Failures on a Petascale Arm System'\n"
            "(HPDC 2022).  This is the calibrated synthetic campaign, not\n"
            "the original production data.\n\n"
            f"memory_failures.txt : {campaign.n_errors} CE records and "
            f"{int(campaign.het['non_recoverable'].sum())} DUE records\n"
            f"    fields: {FAILURE_HEADER}\n"
            "    row is -1 (not populated in Astra CE records);\n"
            "    storm records carry -1 positional fields.\n"
            f"environment.txt     : {n_env} sensor samples "
            f"({len(sensor_nodes)} nodes at {sensor_cadence_s:.0f} s cadence)\n"
            f"    fields: {ENVIRONMENT_HEADER}\n"
            f"    full fleet series regenerate from seed {campaign.seed}.\n"
        )
    return directory


@dataclass
class ReleaseData:
    """Loaded release content."""

    errors: np.ndarray  # ERROR_DTYPE
    due_times: np.ndarray
    due_nodes: np.ndarray
    environment: np.ndarray  # SENSOR_SAMPLE_DTYPE


def read_release(directory: str | os.PathLike) -> ReleaseData:
    """Load a release directory back into record arrays."""
    from repro.logs.bmc import read_bmc_log
    from repro.machine.node import slot_index

    directory = Path(directory)
    ces = []
    due_times, due_nodes = [], []
    with open(directory / "memory_failures.txt") as fh:
        header = fh.readline().strip()
        if header != FAILURE_HEADER:
            raise ValueError("not a release failure file (bad header)")
        for line in fh:
            parts = line.strip().split(",")
            if len(parts) != 11:
                raise ValueError(f"malformed release record: {line!r}")
            t = float(
                np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64)
            )
            if parts[3] == "CE":
                ces.append(
                    (
                        t,
                        int(parts[1]),
                        int(parts[2]),
                        slot_index(parts[4]),
                        int(parts[6]),
                        int(parts[7]),
                        int(parts[5]),
                        int(parts[8]),
                        int(parts[9], 0),
                        int(parts[10], 0),
                    )
                )
            elif parts[3].startswith("DUE"):
                due_times.append(t)
                due_nodes.append(int(parts[1]))
            else:
                raise ValueError(f"unknown failure type: {parts[3]!r}")

    errors = empty_errors(len(ces))
    for i, (t, node, socket, slot, rank, bank, row, bit, addr, syn) in enumerate(ces):
        errors[i]["time"] = t
        errors[i]["node"] = node
        errors[i]["socket"] = socket
        errors[i]["slot"] = slot
        errors[i]["rank"] = rank
        errors[i]["bank"] = bank
        errors[i]["row"] = row
        errors[i]["bit_pos"] = bit
        errors[i]["address"] = addr
        errors[i]["syndrome"] = syn
    # The release's field list (like the paper's) has no column; it is
    # derivable from the physical address, so recover it on load.
    from repro.machine.dram import AddressMap

    amap = AddressMap()
    valid = errors["address"] > 0
    if valid.any():
        errors["column"][valid] = amap.decode(errors["address"][valid])["column"]
    environment = read_bmc_log(directory / "environment.txt")
    return ReleaseData(
        errors=errors,
        due_times=np.asarray(due_times),
        due_nodes=np.asarray(due_nodes, dtype=np.int64),
        environment=environment,
    )
