"""Shared ingest policy, statistics and quarantine for dirty telemetry.

The study's eight months of Astra telemetry were production logs:
truncated syslog lines, BMC sensor dropouts, inventory gaps.  Every
parser in :mod:`repro.logs` therefore takes an :class:`IngestPolicy`:

- ``strict`` -- the first unparseable record raises a typed
  :class:`MalformedRecordError` naming the file, line and reason;
- ``repair`` -- salvage what can be salvaged (fill truncated fields
  with sentinels, re-sort out-of-order timestamps) and quarantine the
  rest to a sidecar file;
- ``skip`` -- quarantine every unparseable record, repair nothing.

Each ingest returns an :class:`IngestStats` that accounts for every
input record: ``seen == parsed + repaired + quarantined`` always holds,
and ``coverage`` is the fraction of records that made it through.  The
experiment harness uses coverage to downgrade its verdicts
(``pass-degraded`` / ``skipped-insufficient-data``) instead of silently
passing on partial data.

Quarantined records go to ``<log>.quarantine`` as tab-separated
``line_no<TAB>reason<TAB>raw-line`` rows so no byte of telemetry is
ever silently discarded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

import numpy as np


class IngestPolicy(str, Enum):
    """How a parser treats records it cannot parse."""

    STRICT = "strict"
    REPAIR = "repair"
    SKIP = "skip"

    @classmethod
    def coerce(cls, value) -> "IngestPolicy":
        """Accept an IngestPolicy, its string name, or None (-> STRICT)."""
        if value is None:
            return cls.STRICT
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown ingest policy {value!r}; expected one of: {names}"
            ) from None


class IngestError(ValueError):
    """Base class for typed ingest failures.

    Subclasses ``ValueError`` so existing callers (and the campaign
    cache's corruption handling) keep working unchanged.
    """


class MalformedRecordError(IngestError):
    """A record could not be parsed under the ``strict`` policy."""

    def __init__(self, family: str, source, line_no: int, line: str, reason: str):
        self.family = family
        self.source = str(source)
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(
            f"{self.source}:{line_no}: malformed {family} record "
            f"({reason}): {line!r}"
        )


class CampaignFormatError(IngestError):
    """A campaign directory is missing or corrupt beyond recovery.

    Raised with the offending file and the expected directory layout so
    the user sees what is wrong instead of an opaque numpy traceback.
    """

    LAYOUT = (
        "manifest.txt, errors.npy (+ optional ce.log text mirror), "
        "replacements.npy, het.npy (+ optional het.log text mirror)"
    )

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(
            f"{self.path}: {reason} (expected campaign layout: {self.LAYOUT})"
        )


@dataclass
class IngestStats:
    """Accounting for one record family's ingest.

    The invariant ``seen == parsed + repaired + quarantined`` holds for
    every policy; ``coverage`` is the usable fraction.  A family whose
    source is entirely missing sets ``missing`` and reports zero
    coverage even though no lines were seen.
    """

    family: str
    seen: int = 0
    parsed: int = 0
    repaired: int = 0
    quarantined: int = 0
    #: The family's source files were absent or unrecoverable.
    missing: bool = False
    #: Where the source was read from (``"binary"``, ``"text"``, ...).
    source: str = ""

    @property
    def coverage(self) -> float:
        """Fraction of seen records that were parsed or repaired."""
        if self.missing:
            return 0.0
        if self.seen == 0:
            return 1.0
        return (self.parsed + self.repaired) / self.seen

    def check_invariant(self) -> None:
        """Raise if the accounting does not balance."""
        if self.seen != self.parsed + self.repaired + self.quarantined:
            raise AssertionError(
                f"{self.family}: seen={self.seen} != parsed={self.parsed} "
                f"+ repaired={self.repaired} + quarantined={self.quarantined}"
            )

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seen": self.seen,
            "parsed": self.parsed,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "missing": self.missing,
            "source": self.source,
            "coverage": self.coverage,
        }


def coverage_map(ingest: dict) -> dict:
    """``{family: coverage}`` from a ``{family: IngestStats}`` mapping."""
    return {family: stats.coverage for family, stats in (ingest or {}).items()}


# ----------------------------------------------------------------------
def quarantine_path(path: str | os.PathLike) -> Path:
    """Sidecar path holding a log's quarantined records."""
    return Path(f"{path}.quarantine")


class Quarantine:
    """Collects unparseable records and writes the sidecar file.

    The sidecar is only written when at least one record was
    quarantined, so clean ingests leave no droppings.
    """

    def __init__(self, source: str | os.PathLike):
        self.source = source
        self.entries: list[tuple[int, str, str]] = []

    def add(self, line_no: int, reason: str, line: str) -> None:
        self.entries.append((line_no, reason, line))

    def flush(self) -> Path | None:
        """Write the sidecar; returns its path (None when empty)."""
        if not self.entries:
            return None
        path = quarantine_path(self.source)
        with open(path, "w") as fh:
            for line_no, reason, line in self.entries:
                fh.write(f"{line_no}\t{reason}\t{line}\n")
        return path


def read_quarantine(path: str | os.PathLike) -> list[tuple[int, str, str]]:
    """Parse a quarantine sidecar back into (line_no, reason, line) rows."""
    out = []
    with open(path) as fh:
        for row in fh:
            row = row.rstrip("\n")
            if not row:
                continue
            line_no, reason, line = row.split("\t", 2)
            out.append((int(line_no), reason, line))
    return out


# ----------------------------------------------------------------------
def ingest_lines(fh, parse_line, stats: IngestStats, policy: IngestPolicy,
                 quarantine: Quarantine | None = None, repair_line=None):
    """Yield parsed rows from a text stream under an ingest policy.

    ``parse_line`` maps a stripped line to a parsed row (raising
    ``ValueError``/``IndexError``/``KeyError`` on garbage); the optional
    ``repair_line`` is tried under the ``repair`` policy before
    quarantining.  Tallies every outcome into ``stats`` and records
    drops in ``quarantine``.  This is the single lenient/strict code
    path shared by every text parser (the logic previously duplicated
    between ``read_ce_log`` and ``iter_ce_log``).
    """
    for line_no, raw in enumerate(fh, 1):
        line = raw.strip()
        if not line:
            continue
        stats.seen += 1
        try:
            row = parse_line(line)
        except (ValueError, IndexError, KeyError) as exc:
            if policy is IngestPolicy.STRICT:
                raise MalformedRecordError(
                    stats.family, getattr(fh, "name", "<stream>"),
                    line_no, line, str(exc),
                ) from exc
            if policy is IngestPolicy.REPAIR and repair_line is not None:
                try:
                    row = repair_line(line)
                except (ValueError, IndexError, KeyError):
                    row = None
                if row is not None:
                    stats.repaired += 1
                    yield row
                    continue
            stats.quarantined += 1
            if quarantine is not None:
                quarantine.add(line_no, str(exc), line)
            continue
        stats.parsed += 1
        yield row


def resort_by_time(records: np.ndarray, stats: IngestStats,
                   policy: IngestPolicy) -> np.ndarray:
    """Repair out-of-order timestamps by a stable re-sort.

    Under ``repair``, records that arrived behind an already-seen later
    timestamp (clock skew, interleaved writers) are re-sorted into place
    and re-counted from ``parsed`` to ``repaired``.  Other policies
    return the stream untouched -- order was never a parse error.
    """
    if policy is not IngestPolicy.REPAIR or records.size == 0:
        return records
    if "time" not in (records.dtype.names or ()):
        return records
    times = records["time"]
    out_of_order = int(np.sum(times < np.maximum.accumulate(times) - 1e-9))
    if out_of_order == 0:
        return records
    moved = min(out_of_order, stats.parsed)
    stats.parsed -= moved
    stats.repaired += moved
    return records[np.argsort(times, kind="stable")]
