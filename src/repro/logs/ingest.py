"""Shared ingest policy, statistics and quarantine for dirty telemetry.

The study's eight months of Astra telemetry were production logs:
truncated syslog lines, BMC sensor dropouts, inventory gaps.  Every
parser in :mod:`repro.logs` therefore takes an :class:`IngestPolicy`:

- ``strict`` -- the first unparseable record raises a typed
  :class:`MalformedRecordError` naming the file, line and reason;
- ``repair`` -- salvage what can be salvaged (fill truncated fields
  with sentinels, re-sort out-of-order timestamps) and quarantine the
  rest to a sidecar file;
- ``skip`` -- quarantine every unparseable record, repair nothing.

Each ingest returns an :class:`IngestStats` that accounts for every
input record: ``seen == parsed + repaired + quarantined`` always holds,
and ``coverage`` is the fraction of records that made it through.  The
experiment harness uses coverage to downgrade its verdicts
(``pass-degraded`` / ``skipped-insufficient-data``) instead of silently
passing on partial data.

Quarantined records go to ``<log>.quarantine`` as tab-separated
``line_no<TAB>reason<TAB>raw-line`` rows so no byte of telemetry is
ever silently discarded.

Parsing itself has two gears (DESIGN.md section 9).  The *fast path*
reads the file in large binary blocks, parses lines that match the
writer's exact grammar column-wise with the :mod:`repro.logs.fastpath`
primitives, and routes every other line -- garbled, truncated,
non-ASCII, or merely unusual -- through the same per-line
``parse_line``/``repair_line`` machinery the slow path uses, in file
order.  Policies, stats, quarantine sidecars and error messages are
byte-for-byte identical either way; ``fast=False`` or the
``ASTRA_MEMREPRO_SLOW_INGEST`` environment variable force the per-line
path everywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

import numpy as np

from repro.logs import fastpath


def fastpath_enabled(fast: bool = True) -> bool:
    """Whether the vectorised fast path should run.

    ``fast`` is the per-call switch; the ``ASTRA_MEMREPRO_SLOW_INGEST``
    environment variable is the global escape hatch (any non-empty
    value forces the per-line path, for debugging and for the
    differential parity suite).
    """
    return bool(fast) and not os.environ.get("ASTRA_MEMREPRO_SLOW_INGEST")


class IngestPolicy(str, Enum):
    """How a parser treats records it cannot parse."""

    STRICT = "strict"
    REPAIR = "repair"
    SKIP = "skip"

    @classmethod
    def coerce(cls, value) -> "IngestPolicy":
        """Accept an IngestPolicy, its string name, or None (-> STRICT)."""
        if value is None:
            return cls.STRICT
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown ingest policy {value!r}; expected one of: {names}"
            ) from None


class IngestError(ValueError):
    """Base class for typed ingest failures.

    Subclasses ``ValueError`` so existing callers (and the campaign
    cache's corruption handling) keep working unchanged.
    """


class MalformedRecordError(IngestError):
    """A record could not be parsed under the ``strict`` policy."""

    def __init__(self, family: str, source, line_no: int, line: str, reason: str):
        self.family = family
        self.source = str(source)
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(
            f"{self.source}:{line_no}: malformed {family} record "
            f"({reason}): {line!r}"
        )


class CampaignFormatError(IngestError):
    """A campaign directory is missing or corrupt beyond recovery.

    Raised with the offending file and the expected directory layout so
    the user sees what is wrong instead of an opaque numpy traceback.
    """

    LAYOUT = (
        "manifest.txt, errors.npy (+ optional ce.log text mirror), "
        "replacements.npy, het.npy (+ optional het.log text mirror)"
    )

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(
            f"{self.path}: {reason} (expected campaign layout: {self.LAYOUT})"
        )


@dataclass
class IngestStats:
    """Accounting for one record family's ingest.

    The invariant ``seen == parsed + repaired + quarantined`` holds for
    every policy; ``coverage`` is the usable fraction.  A family whose
    source is entirely missing sets ``missing`` and reports zero
    coverage even though no lines were seen.
    """

    family: str
    seen: int = 0
    parsed: int = 0
    repaired: int = 0
    quarantined: int = 0
    #: The family's source files were absent or unrecoverable.
    missing: bool = False
    #: Where the source was read from (``"binary"``, ``"text"``, ...).
    source: str = ""
    #: Lines parsed by the vectorised fast path (a subset of ``parsed``;
    #: zero on the per-line path).  Excluded from parity comparisons.
    fast_lines: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of seen records that were parsed or repaired."""
        if self.missing:
            return 0.0
        if self.seen == 0:
            return 1.0
        return (self.parsed + self.repaired) / self.seen

    def check_invariant(self) -> None:
        """Raise if the accounting does not balance."""
        if self.seen != self.parsed + self.repaired + self.quarantined:
            raise AssertionError(
                f"{self.family}: seen={self.seen} != parsed={self.parsed} "
                f"+ repaired={self.repaired} + quarantined={self.quarantined}"
            )

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seen": self.seen,
            "parsed": self.parsed,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "missing": self.missing,
            "source": self.source,
            "coverage": self.coverage,
            "fast_lines": self.fast_lines,
        }


def coverage_map(ingest: dict) -> dict:
    """``{family: coverage}`` from a ``{family: IngestStats}`` mapping."""
    return {family: stats.coverage for family, stats in (ingest or {}).items()}


# ----------------------------------------------------------------------
def quarantine_path(path: str | os.PathLike) -> Path:
    """Sidecar path holding a log's quarantined records."""
    return Path(f"{path}.quarantine")


class Quarantine:
    """Collects unparseable records and writes the sidecar file.

    The sidecar is only written when at least one record was
    quarantined, so clean ingests leave no droppings.
    """

    def __init__(self, source: str | os.PathLike):
        self.source = source
        self.entries: list[tuple[int, str, str]] = []

    def add(self, line_no: int, reason: str, line: str) -> None:
        self.entries.append((line_no, reason, line))

    def flush(self) -> Path | None:
        """Write the sidecar; returns its path (None when empty)."""
        if not self.entries:
            return None
        path = quarantine_path(self.source)
        with open(path, "w") as fh:
            for line_no, reason, line in self.entries:
                fh.write(f"{line_no}\t{reason}\t{line}\n")
        return path


def read_quarantine(path: str | os.PathLike) -> list[tuple[int, str, str]]:
    """Parse a quarantine sidecar back into (line_no, reason, line) rows."""
    out = []
    with open(path) as fh:
        for row in fh:
            row = row.rstrip("\n")
            if not row:
                continue
            line_no, reason, line = row.split("\t", 2)
            out.append((int(line_no), reason, line))
    return out


# ----------------------------------------------------------------------
def ingest_one(line_no: int, line: str, parse_line, stats: IngestStats,
               policy: IngestPolicy, quarantine: Quarantine | None,
               repair_line, source) -> object | None:
    """Run one stripped, non-empty line through the policy machinery.

    Returns the parsed row, or ``None`` when the line was quarantined.
    This is the single strict/repair/skip decision point shared by the
    per-line generator (:func:`ingest_lines`) and the fast path's
    fallback routing -- both gears account records identically because
    they run the same code.
    """
    stats.seen += 1
    try:
        row = parse_line(line)
    except (ValueError, IndexError, KeyError) as exc:
        if policy is IngestPolicy.STRICT:
            raise MalformedRecordError(
                stats.family, source, line_no, line, str(exc),
            ) from exc
        if policy is IngestPolicy.REPAIR and repair_line is not None:
            try:
                row = repair_line(line)
            except (ValueError, IndexError, KeyError):
                row = None
            if row is not None:
                stats.repaired += 1
                return row
        stats.quarantined += 1
        if quarantine is not None:
            quarantine.add(line_no, str(exc), line)
        return None
    stats.parsed += 1
    return row


def ingest_lines(fh, parse_line, stats: IngestStats, policy: IngestPolicy,
                 quarantine: Quarantine | None = None, repair_line=None):
    """Yield parsed rows from a text stream under an ingest policy.

    ``parse_line`` maps a stripped line to a parsed row (raising
    ``ValueError``/``IndexError``/``KeyError`` on garbage); the optional
    ``repair_line`` is tried under the ``repair`` policy before
    quarantining.  Tallies every outcome into ``stats`` and records
    drops in ``quarantine``.  This is the single lenient/strict code
    path shared by every text parser (the logic previously duplicated
    between ``read_ce_log`` and ``iter_ce_log``).
    """
    source = getattr(fh, "name", "<stream>")
    for line_no, raw in enumerate(fh, 1):
        line = raw.strip()
        if not line:
            continue
        row = ingest_one(line_no, line, parse_line, stats, policy,
                         quarantine, repair_line, source)
        if row is not None:
            yield row


def _merge_ordered(fast_out, fast_pos, slow_out, slow_pos):
    """Interleave fast-parsed and fallback rows back into file order."""
    if not len(slow_out):
        return fast_out
    merge = getattr(fast_out, "merge_ordered", None)
    if merge is not None:
        # Containers with a bulk-insertion layout (e.g. the inventory
        # family's run structure) splice the few fallback rows in
        # without materialising a tuple per fast row -- degrading every
        # row to the generic sorted-pairs path was the two-gear tax
        # that made corrupted inventory ingest slower than per-line.
        return merge(fast_pos, slow_out, slow_pos)
    if isinstance(fast_out, np.ndarray):
        if not len(fast_out):
            return slow_out
        pos = np.concatenate([fast_pos, slow_pos])
        order = np.argsort(pos, kind="stable")
        return np.concatenate([fast_out, slow_out])[order]
    pairs = sorted(
        zip(list(fast_pos) + list(slow_pos), list(fast_out) + list(slow_out))
    )
    return [row for _, row in pairs]


def ingest_stream_fast(
    fh,
    parse_line,
    stats: IngestStats,
    policy: IngestPolicy,
    quarantine: Quarantine | None = None,
    repair_line=None,
    *,
    fast_chunk,
    rows_to_records,
    first_line_no: int = 1,
    chunk_bytes: int = fastpath.DEFAULT_CHUNK_BYTES,
):
    """Chunked fast-path ingest driver; yields per-block record batches.

    ``fh`` must be a *binary* stream.  ``fast_chunk`` maps a
    :class:`~repro.logs.fastpath.Chunk` of candidate lines to
    ``(records, ok)`` -- the column-parsed records for the lines whose
    grammar matched, and the mask saying which.  Everything else (plus
    non-ASCII and pathological-whitespace lines) goes through
    :func:`ingest_one` with its original line number, and
    ``rows_to_records`` lifts those rows into the same container type
    so each batch comes back in exact file order.

    The fast path never quarantines and never repairs: any line it
    cannot prove conforming is the slow path's to judge, which is what
    keeps the two gears byte-for-byte equivalent.
    """
    source = getattr(fh, "name", "<stream>")
    line_no0 = first_line_no
    for data, l_starts, l_ends in fastpath.iter_blocks(fh, chunk_bytes):
        cs, ce, empty, dirty = fastpath.clean_spans(data, l_starts, l_ends)
        cand = ~empty & ~dirty
        cand_idx = np.flatnonzero(cand)
        if cand_idx.size:
            chunk = fastpath.Chunk(data, cs[cand_idx], ce[cand_idx])
            records, ok = fast_chunk(chunk)
        else:
            records, ok = rows_to_records([]), np.zeros(0, dtype=bool)
        fast_pos = cand_idx[ok]
        fallback = np.sort(
            np.concatenate([cand_idx[~ok], np.flatnonzero(dirty)])
        )
        slow_rows: list = []
        slow_pos: list[int] = []
        if fallback.size:
            raw = data.tobytes()
            for i in fallback.tolist():
                if cand[i]:
                    line = raw[cs[i]:ce[i]].decode("utf-8")
                else:
                    line = raw[l_starts[i]:l_ends[i]].decode("utf-8").strip()
                    if not line:
                        continue
                row = ingest_one(line_no0 + i, line, parse_line, stats,
                                 policy, quarantine, repair_line, source)
                if row is not None:
                    slow_rows.append(row)
                    slow_pos.append(i)
        n_fast = int(fast_pos.size)
        stats.seen += n_fast
        stats.parsed += n_fast
        stats.fast_lines += n_fast
        yield _merge_ordered(records, fast_pos,
                             rows_to_records(slow_rows), slow_pos)
        line_no0 += l_starts.size


def resort_by_time(records: np.ndarray, stats: IngestStats,
                   policy: IngestPolicy) -> np.ndarray:
    """Repair out-of-order timestamps by a stable re-sort.

    Under ``repair``, records that arrived behind an already-seen later
    timestamp (clock skew, interleaved writers) are re-sorted into place
    and re-counted from ``parsed`` to ``repaired``.  Other policies
    return the stream untouched -- order was never a parse error.
    """
    if policy is not IngestPolicy.REPAIR or records.size == 0:
        return records
    if "time" not in (records.dtype.names or ()):
        return records
    times = records["time"]
    # Tolerance is one unit-in-the-last-place of the largest magnitude in
    # the stream: anything the time dtype itself cannot resolve (float32
    # round-trip jitter, accumulated float error) is not an inversion.
    # Integer time dtypes resolve everything, so their tolerance is zero.
    if times.dtype.kind == "f":
        tol = np.finfo(times.dtype).eps * max(float(np.max(np.abs(times))), 1.0)
    else:
        tol = 0
    out_of_order = int(np.sum(times < np.maximum.accumulate(times) - tol))
    if out_of_order == 0:
        return records
    moved = min(out_of_order, stats.parsed)
    stats.parsed -= moved
    stats.repaired += moved
    return records[np.argsort(times, kind="stable")]
