"""Daily inventory scans and replacement detection by diffing.

Section 3.1: "Component replacements were detected by analyzing the
site's daily inventory scan logs."  This module implements both sides:

- :class:`InventoryModel` evolves per-position serial numbers from a
  replacement event stream, and can render the inventory snapshot for
  any day;
- :func:`diff_inventories` recovers replacement events by comparing two
  snapshots -- the analysis-side operation.

Snapshot line format::

    2019-03-04,n0123,processor,1,SN-P-0123-1-0007

The trailing serial component is a replacement counter, so serials change
exactly when a component is swapped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro._util import DAY_S
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.replacements import REPLACEMENT_DTYPE, Component

#: Component kind -> positions per node.
def _positions_per_node(kind: Component, config: NodeConfig) -> int:
    if kind is Component.PROCESSOR:
        return config.n_sockets
    if kind is Component.MOTHERBOARD:
        return 1
    return config.dimms_per_node


@dataclass
class InventoryModel:
    """Serial-number state machine driven by replacement events."""

    replacements: np.ndarray
    topology: AstraTopology
    node_config: NodeConfig

    def __post_init__(self) -> None:
        if self.replacements.dtype != REPLACEMENT_DTYPE:
            raise ValueError("replacements must use REPLACEMENT_DTYPE")

    def _position_of_event(self, event) -> int:
        kind = Component(int(event["component"]))
        if kind is Component.PROCESSOR:
            return int(event["socket"])
        if kind is Component.DIMM:
            return int(event["slot"])
        return 0

    def replacement_counts_before(self, t: float) -> dict:
        """Per (component, node, position) replacement counts before ``t``.

        Returns a dict mapping ``Component`` to an int array of shape
        ``(n_nodes, positions)``.
        """
        out = {
            kind: np.zeros(
                (
                    self.topology.n_nodes,
                    _positions_per_node(kind, self.node_config),
                ),
                dtype=np.int64,
            )
            for kind in Component
        }
        early = self.replacements[self.replacements["time"] < t]
        for kind in Component:
            sel = early[early["component"] == kind]
            if sel.size == 0:
                continue
            pos = (
                sel["socket"]
                if kind is Component.PROCESSOR
                else sel["slot"]
                if kind is Component.DIMM
                else np.zeros(sel.size, dtype=np.int64)
            )
            np.add.at(out[kind], (sel["node"], np.maximum(pos, 0)), 1)
        return out

    def serial(self, kind: Component, node: int, position: int, count: int) -> str:
        """Serial number of the ``count``-th replacement at a position."""
        tag = {"Processors": "P", "Motherboards": "M", "DIMMs": "D"}[kind.label]
        return f"SN-{tag}-{node:04d}-{position}-{count:04d}"

    def snapshot(self, t: float) -> list[tuple[str, int, int, str]]:
        """Inventory at time ``t``: (component, node, position, serial)."""
        counts = self.replacement_counts_before(t)
        lines = []
        for kind in Component:
            arr = counts[kind]
            for node in range(arr.shape[0]):
                for pos in range(arr.shape[1]):
                    lines.append(
                        (
                            kind.label.lower().rstrip("s"),
                            node,
                            pos,
                            self.serial(kind, node, pos, int(arr[node, pos])),
                        )
                    )
        return lines


_KIND_BY_NAME = {
    "processor": Component.PROCESSOR,
    "motherboard": Component.MOTHERBOARD,
    "dimm": Component.DIMM,
}


def write_inventory_snapshots(
    path: str | os.PathLike,
    model: InventoryModel,
    days: list[float],
) -> int:
    """Write one snapshot per scan time into a single file; returns lines."""
    n = 0
    with open(path, "w") as fh:
        for t in days:
            date = str(np.datetime64(int(t), "s"))[:10]
            for component, node, pos, serial in model.snapshot(t):
                fh.write(f"{date},n{node:04d},{component},{pos},{serial}\n")
                n += 1
    return n


def _parse_snapshot_line(line: str) -> tuple:
    date, node, component, pos, serial = line.split(",")
    if component not in _KIND_BY_NAME:
        raise ValueError(f"unknown component kind: {component!r}")
    if not node.startswith("n"):
        raise ValueError(f"unknown node format: {node!r}")
    return date, (component, int(node[1:]), int(pos)), serial


def ingest_inventory_snapshots(
    path: str | os.PathLike,
    policy=None,
    quarantine: bool = True,
) -> tuple[dict, "IngestStats"]:
    """Parse snapshots under an ingest policy; returns (snapshots, stats).

    Snapshots map ``{date: {(component, node, position): serial}}``.
    Inventory rows have no salvageable partial form (a serial without
    its position is useless), so ``repair`` behaves like ``skip`` here:
    bad rows are quarantined with a reason.  Partial scans are already
    tolerated downstream by :func:`diff_inventories`.
    """
    from repro import obs
    from repro.logs.ingest import (
        IngestPolicy,
        IngestStats,
        Quarantine,
        ingest_lines,
    )

    policy = IngestPolicy.coerce(policy)
    stats = IngestStats(family="inventory", source="text")
    sidecar = Quarantine(path) if quarantine else None
    out: dict[str, dict] = {}
    with obs.span("ingest.inventory", attrs={"policy": policy.value}) as sp:
        with open(path) as fh:
            for date, key, serial in ingest_lines(
                fh, _parse_snapshot_line, stats, policy, sidecar
            ):
                out.setdefault(date, {})[key] = serial
        if sidecar is not None:
            sidecar.flush()
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return out, stats


def read_inventory_snapshots(path: str | os.PathLike) -> dict:
    """Parse snapshots: {date: {(component, node, position): serial}}.

    Strict legacy entry point; :func:`ingest_inventory_snapshots`
    exposes the lenient policies and quarantine accounting.
    """
    from repro.logs.ingest import IngestPolicy

    out, _ = ingest_inventory_snapshots(
        path, policy=IngestPolicy.STRICT, quarantine=False
    )
    return out


def diff_inventories(prev: dict, curr: dict) -> np.ndarray:
    """Detect replacements between two snapshots (the section 3.1 method).

    Returns REPLACEMENT_DTYPE events with time 0 -- the caller stamps the
    scan date.  A position present in only one snapshot is ignored
    (partial scans happen in real logs).
    """
    events = []
    for key, serial in curr.items():
        if key in prev and prev[key] != serial:
            component, node, pos = key
            kind = _KIND_BY_NAME[component]
            events.append((kind, node, pos))
    out = np.zeros(len(events), dtype=REPLACEMENT_DTYPE)
    for i, (kind, node, pos) in enumerate(events):
        out[i]["component"] = kind
        out[i]["node"] = node
        out[i]["socket"] = pos if kind is Component.PROCESSOR else -1
        out[i]["slot"] = pos if kind is Component.DIMM else -1
    return out


def replacements_from_snapshot_file(path: str | os.PathLike) -> np.ndarray:
    """Run the full diff pipeline over a snapshot file.

    Snapshots are diffed in date order; each detected event is stamped
    with its scan date (midnight).  This is the text-log-driven
    equivalent of consuming the generator's event stream directly.
    """
    snaps = read_inventory_snapshots(path)
    dates = sorted(snaps)
    parts = []
    for prev_date, curr_date in zip(dates[:-1], dates[1:]):
        events = diff_inventories(snaps[prev_date], snaps[curr_date])
        events["time"] = float(
            np.datetime64(curr_date).astype("datetime64[s]").astype(np.int64)
        )
        parts.append(events)
    if not parts:
        return np.zeros(0, dtype=REPLACEMENT_DTYPE)
    out = np.concatenate(parts)
    return out[np.argsort(out["time"], kind="stable")]
