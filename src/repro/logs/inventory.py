"""Daily inventory scans and replacement detection by diffing.

Section 3.1: "Component replacements were detected by analyzing the
site's daily inventory scan logs."  This module implements both sides:

- :class:`InventoryModel` evolves per-position serial numbers from a
  replacement event stream, and can render the inventory snapshot for
  any day;
- :func:`diff_inventories` recovers replacement events by comparing two
  snapshots -- the analysis-side operation.

Snapshot line format::

    2019-03-04,n0123,processor,1,SN-P-0123-1-0007

The trailing serial component is a replacement counter, so serials change
exactly when a component is swapped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro._util import DAY_S
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.replacements import REPLACEMENT_DTYPE, Component

#: Component kind -> positions per node.
def _positions_per_node(kind: Component, config: NodeConfig) -> int:
    if kind is Component.PROCESSOR:
        return config.n_sockets
    if kind is Component.MOTHERBOARD:
        return 1
    return config.dimms_per_node


@dataclass
class InventoryModel:
    """Serial-number state machine driven by replacement events."""

    replacements: np.ndarray
    topology: AstraTopology
    node_config: NodeConfig

    def __post_init__(self) -> None:
        if self.replacements.dtype != REPLACEMENT_DTYPE:
            raise ValueError("replacements must use REPLACEMENT_DTYPE")

    def _position_of_event(self, event) -> int:
        kind = Component(int(event["component"]))
        if kind is Component.PROCESSOR:
            return int(event["socket"])
        if kind is Component.DIMM:
            return int(event["slot"])
        return 0

    def replacement_counts_before(self, t: float) -> dict:
        """Per (component, node, position) replacement counts before ``t``.

        Returns a dict mapping ``Component`` to an int array of shape
        ``(n_nodes, positions)``.
        """
        out = {
            kind: np.zeros(
                (
                    self.topology.n_nodes,
                    _positions_per_node(kind, self.node_config),
                ),
                dtype=np.int64,
            )
            for kind in Component
        }
        early = self.replacements[self.replacements["time"] < t]
        for kind in Component:
            sel = early[early["component"] == kind]
            if sel.size == 0:
                continue
            pos = (
                sel["socket"]
                if kind is Component.PROCESSOR
                else sel["slot"]
                if kind is Component.DIMM
                else np.zeros(sel.size, dtype=np.int64)
            )
            np.add.at(out[kind], (sel["node"], np.maximum(pos, 0)), 1)
        return out

    def serial(self, kind: Component, node: int, position: int, count: int) -> str:
        """Serial number of the ``count``-th replacement at a position."""
        tag = {"Processors": "P", "Motherboards": "M", "DIMMs": "D"}[kind.label]
        return f"SN-{tag}-{node:04d}-{position}-{count:04d}"

    def snapshot(self, t: float) -> list[tuple[str, int, int, str]]:
        """Inventory at time ``t``: (component, node, position, serial)."""
        counts = self.replacement_counts_before(t)
        lines = []
        for kind in Component:
            arr = counts[kind]
            for node in range(arr.shape[0]):
                for pos in range(arr.shape[1]):
                    lines.append(
                        (
                            kind.label.lower().rstrip("s"),
                            node,
                            pos,
                            self.serial(kind, node, pos, int(arr[node, pos])),
                        )
                    )
        return lines


_KIND_BY_NAME = {
    "processor": Component.PROCESSOR,
    "motherboard": Component.MOTHERBOARD,
    "dimm": Component.DIMM,
}


_SERIAL_TAGS = {"Processors": "P", "Motherboards": "M", "DIMMs": "D"}


def _emit_inventory_day(date: str, counts: dict) -> tuple[bytes, int]:
    """Render one day's snapshot straight from the replacement counts.

    The per-row ``serial()`` f-strings are fully structured
    (``SN-<tag>-<node:04d>-<pos>-<count:04d>``), so the whole day's
    lines come out of digit matrices without ever materialising the
    tuple snapshot -- the snapshot loop itself, not the serialisation,
    dominated the slow writer.
    """
    from repro.logs import fastpath

    parts = []
    n = 0
    for kind in Component:
        arr = counts[kind]
        n_nodes, p = arr.shape
        comp = kind.label.lower().rstrip("s").encode("ascii")
        tag = _SERIAL_TAGS[kind.label].encode("ascii")
        node_mat = fastpath.uint_digits(
            np.repeat(np.arange(n_nodes, dtype=np.int64), p), 4
        )
        pos_mat = fastpath.uint_digits(
            np.tile(np.arange(p, dtype=np.int64), n_nodes)
        )
        parts.append(
            fastpath.build_lines(
                arr.size,
                [
                    date.encode("ascii") + b",n",
                    node_mat,
                    b"," + comp + b",",
                    pos_mat,
                    b",SN-" + tag + b"-",
                    node_mat,
                    b"-",
                    pos_mat,
                    b"-",
                    fastpath.uint_digits(arr.ravel(), 4),
                ],
            )
        )
        n += arr.size
    return b"".join(parts), n


def write_inventory_snapshots(
    path: str | os.PathLike,
    model: InventoryModel,
    days: list[float],
    fast: bool = True,
) -> int:
    """Write one snapshot per scan time into a single file; returns lines."""
    from repro.logs.ingest import fastpath_enabled

    # The count-driven fast writer re-derives what snapshot()/serial()
    # render, so a model overriding either must take the per-row path.
    use_fast = (
        fastpath_enabled(fast)
        and type(model).snapshot is InventoryModel.snapshot
        and type(model).serial is InventoryModel.serial
        and type(model).replacement_counts_before
        is InventoryModel.replacement_counts_before
    )
    n = 0
    with open(path, "wb") as fh:
        for t in days:
            date = str(np.datetime64(int(t), "s"))[:10]
            if use_fast:
                payload, rows = _emit_inventory_day(
                    date, model.replacement_counts_before(t)
                )
            else:
                snap = model.snapshot(t)
                payload = "".join(
                    f"{date},n{node:04d},{component},{pos},{serial}\n"
                    for component, node, pos, serial in snap
                ).encode("utf-8")
                rows = len(snap)
            fh.write(payload)
            n += rows
    return n


def _parse_snapshot_line(line: str) -> tuple:
    date, node, component, pos, serial = line.split(",")
    if component not in _KIND_BY_NAME:
        raise ValueError(f"unknown component kind: {component!r}")
    if not node.startswith("n"):
        raise ValueError(f"unknown node format: {node!r}")
    return date, (component, int(node[1:]), int(pos)), serial


_COMP_NAMES = tuple(_KIND_BY_NAME)
_COMP_VOCAB = [name.encode() for name in _COMP_NAMES]
#: Object-dtype mirror of ``_COMP_NAMES`` so the fast gear can expand
#: match indices to interned name strings with one C-level take.
_COMP_NAME_ARR = np.array(_COMP_NAMES, dtype=object)


class _SnapshotBatch:
    """Column-parsed snapshot rows with a bulk dict-insertion path.

    Iterating yields the same ``(date, key, serial)`` tuples the
    per-line parser emits (the merge path materialises them when a
    chunk mixes fast and fallback rows), but on all-fast chunks the
    consumer calls :meth:`apply` instead, which inserts each run of
    equal dates with one C-level ``dict.update``.  Row tuples are the
    dominant cost of this family -- its output is a dict of Python
    objects -- so skipping them on the hot path is the entire win.
    """

    __slots__ = ("runs", "keys", "serials")

    def __init__(self, runs, keys, serials):
        self.runs = runs          # [(date, start, end)] over keys/serials
        self.keys = keys          # [(component, node, position)]
        self.serials = serials

    def __len__(self):
        return len(self.serials)

    def __iter__(self):
        dates: list[str] = []
        for d, a, b in self.runs:
            dates.extend([d] * (b - a))
        return zip(dates, self.keys, self.serials)

    def apply(self, out: dict) -> None:
        for d, a, b in self.runs:
            out.setdefault(d, {}).update(
                zip(self.keys[a:b], self.serials[a:b])
            )

    def merge_ordered(self, fast_pos, slow_rows, slow_pos):
        """Splice fallback rows back into file order, keeping the runs.

        Fallback rows are rare even on heavily corrupted files, so each
        joins as its own length-1 run between the split fast runs; the
        consumer keeps the bulk :meth:`apply` path instead of degrading
        the whole chunk to per-row tuples (C-level slice extends do the
        copying, ``searchsorted`` finds the splice points).
        """
        ins = np.searchsorted(
            np.asarray(fast_pos), np.asarray(slow_pos)
        ).tolist()
        keys, serials = self.keys, self.serials
        out_runs: list[tuple[str, int, int]] = []
        out_keys: list = []
        out_serials: list = []

        def copy_fast(date, a, b):
            if a >= b:
                return
            start = len(out_keys)
            out_keys.extend(keys[a:b])
            out_serials.extend(serials[a:b])
            out_runs.append((date, start, len(out_keys)))

        def copy_slow(row):
            date, key, serial = row
            start = len(out_keys)
            out_keys.append(key)
            out_serials.append(serial)
            out_runs.append((date, start, start + 1))

        j = 0
        for date, a, b in self.runs:
            cursor = a
            while j < len(ins) and ins[j] < b:
                copy_fast(date, cursor, ins[j])
                copy_slow(slow_rows[j])
                cursor = ins[j]
                j += 1
            copy_fast(date, cursor, b)
        for row in slow_rows[j:]:
            copy_slow(row)
        return _SnapshotBatch(out_runs, out_keys, out_serials)


def _fast_snapshot_chunk(chunk):
    """Column-validate snapshot lines; returns ``(batch, ok)``.

    The output rows feed a dict of dicts, so beyond vectorising the
    validation the fast gear must also dodge per-row Python work: dates
    are decoded once per run of equal tokens and key tuples come out of
    a single C-level ``zip``; see :class:`_SnapshotBatch`.
    """
    from repro.logs import fastpath

    data = chunk.data
    ts, te, ok = fastpath.split_tokens(data, chunk.starts, chunk.ends, 5, sep=44)
    ok &= fastpath.has_prefix(data, ts[:, 1], te[:, 1], b"n")
    node, ok_n = fastpath.parse_uint(data, ts[:, 1] + 1, te[:, 1])
    ok &= ok_n
    comp, ok_c = fastpath.match_vocab(data, ts[:, 2], te[:, 2], _COMP_VOCAB)
    ok &= ok_c
    pos, ok_p = fastpath.parse_uint(data, ts[:, 3], te[:, 3])
    ok &= ok_p

    if not ok.any():
        return _SnapshotBatch([], [], []), ok
    s = data.tobytes().decode("ascii")
    sel = np.flatnonzero(ok)
    runs = _date_runs(data, ts[sel, 0], te[sel, 0])
    comps = _COMP_NAME_ARR[comp[sel]].tolist()
    serials = [
        s[u:v] for u, v in zip(ts[sel, 4].tolist(), te[sel, 4].tolist())
    ]
    keys = list(zip(comps, node[sel].tolist(), pos[sel].tolist()))
    return _SnapshotBatch(runs, keys, serials), ok


def _date_runs(data, d0, d1) -> list[tuple[str, int, int]]:
    """Runs of equal date tokens, decoding each run's string once.

    Snapshot files hold one scan per day, so the date column is constant
    for tens of thousands of consecutive rows; a chunk yields a handful
    of runs instead of one string slice per row.  Mixed token widths
    (corrupted-but-parseable rows) segment the chunk into maximal
    equal-width spans first: equal tokens have equal widths, so no run
    can span a segment boundary and every segment keeps the vectorised
    matrix compare -- one odd-width token no longer demotes the whole
    chunk to a per-row Python loop.
    """
    if d0.size == 0:
        return []
    w = d1 - d0
    bounds = np.flatnonzero(np.concatenate(([True], w[1:] != w[:-1])))
    bounds = np.append(bounds, w.size)
    runs: list[tuple[str, int, int]] = []
    for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
        width = int(w[a])
        mat = data[d0[a:b, None] + np.arange(width)[None, :]]
        diff = np.any(mat[1:] != mat[:-1], axis=1)
        starts = np.concatenate(
            ([a], np.flatnonzero(diff) + 1 + a, [b])
        )
        runs.extend(
            (mat[i - a].tobytes().decode("ascii"), i, j)
            for i, j in zip(starts[:-1].tolist(), starts[1:].tolist())
        )
    return runs


def ingest_inventory_snapshots(
    path: str | os.PathLike,
    policy=None,
    quarantine: bool = True,
    fast: bool = True,
) -> tuple[dict, "IngestStats"]:
    """Parse snapshots under an ingest policy; returns (snapshots, stats).

    Snapshots map ``{date: {(component, node, position): serial}}``.
    Inventory rows have no salvageable partial form (a serial without
    its position is useless), so ``repair`` behaves like ``skip`` here:
    bad rows are quarantined with a reason.  Partial scans are already
    tolerated downstream by :func:`diff_inventories`.  ``fast`` selects
    the chunked column-wise validator (identical results; see DESIGN.md
    section 9).
    """
    from repro import obs
    from repro.logs.ingest import (
        IngestPolicy,
        IngestStats,
        Quarantine,
        fastpath_enabled,
        ingest_lines,
        ingest_stream_fast,
    )

    policy = IngestPolicy.coerce(policy)
    stats = IngestStats(family="inventory", source="text")
    sidecar = Quarantine(path) if quarantine else None
    out: dict[str, dict] = {}
    with obs.span("ingest.inventory", attrs={"policy": policy.value}) as sp:
        if fastpath_enabled(fast):
            with open(path, "rb") as fh:
                for batch in ingest_stream_fast(
                    fh, _parse_snapshot_line, stats, policy, sidecar,
                    fast_chunk=_fast_snapshot_chunk,
                    rows_to_records=list,
                ):
                    if isinstance(batch, _SnapshotBatch):
                        batch.apply(out)
                    else:
                        for date, key, serial in batch:
                            out.setdefault(date, {})[key] = serial
        else:
            with open(path) as fh:
                for date, key, serial in ingest_lines(
                    fh, _parse_snapshot_line, stats, policy, sidecar
                ):
                    out.setdefault(date, {})[key] = serial
        if sidecar is not None:
            sidecar.flush()
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return out, stats


def read_inventory_snapshots(path: str | os.PathLike) -> dict:
    """Parse snapshots: {date: {(component, node, position): serial}}.

    Strict legacy entry point; :func:`ingest_inventory_snapshots`
    exposes the lenient policies and quarantine accounting.
    """
    from repro.logs.ingest import IngestPolicy

    out, _ = ingest_inventory_snapshots(
        path, policy=IngestPolicy.STRICT, quarantine=False
    )
    return out


def diff_inventories(prev: dict, curr: dict) -> np.ndarray:
    """Detect replacements between two snapshots (the section 3.1 method).

    Returns REPLACEMENT_DTYPE events with time 0 -- the caller stamps the
    scan date.  A position present in only one snapshot is ignored
    (partial scans happen in real logs).
    """
    events = []
    for key, serial in curr.items():
        if key in prev and prev[key] != serial:
            component, node, pos = key
            kind = _KIND_BY_NAME[component]
            events.append((kind, node, pos))
    out = np.zeros(len(events), dtype=REPLACEMENT_DTYPE)
    for i, (kind, node, pos) in enumerate(events):
        out[i]["component"] = kind
        out[i]["node"] = node
        out[i]["socket"] = pos if kind is Component.PROCESSOR else -1
        out[i]["slot"] = pos if kind is Component.DIMM else -1
    return out


def replacements_from_snapshot_file(path: str | os.PathLike) -> np.ndarray:
    """Run the full diff pipeline over a snapshot file.

    Snapshots are diffed in date order; each detected event is stamped
    with its scan date (midnight).  This is the text-log-driven
    equivalent of consuming the generator's event stream directly.
    """
    snaps = read_inventory_snapshots(path)
    dates = sorted(snaps)
    parts = []
    for prev_date, curr_date in zip(dates[:-1], dates[1:]):
        events = diff_inventories(snaps[prev_date], snaps[curr_date])
        events["time"] = float(
            np.datetime64(curr_date).astype("datetime64[s]").astype(np.int64)
        )
        parts.append(events)
    if not parts:
        return np.zeros(0, dtype=REPLACEMENT_DTYPE)
    out = np.concatenate(parts)
    return out[np.argsort(out["time"], kind="stable")]
