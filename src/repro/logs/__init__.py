"""On-disk log formats and the columnar record store.

The paper's pipeline starts from text logs (section 2.4): syslog CE
records, BMC sensor streams, daily inventory scans, and HET machine-check
records.  This subpackage provides faithful writers and parsers for each,
so the analysis can run end-to-end from files exactly as the original
study did, plus a fast binary store for repeated analysis runs.

- :mod:`repro.logs.syslog` -- correctable-error records as syslog lines.
- :mod:`repro.logs.bmc` -- per-minute sensor samples as CSV.
- :mod:`repro.logs.inventory` -- daily inventory snapshots with serial
  numbers; replacements are detected by diffing consecutive scans, the
  same method as section 3.1.
- :mod:`repro.logs.het` -- HET event lines with severities.
- :mod:`repro.logs.store` -- binary (npy) record store with per-rack
  sharding for the parallel engine.
- :mod:`repro.logs.campaign_io` -- write/load a whole campaign directory.
- :mod:`repro.logs.ingest` -- the shared ingest policy machinery
  (strict/repair/skip), per-family :class:`IngestStats` accounting, and
  the quarantine sidecar format for unparseable records.
"""

from repro.logs.ingest import (
    CampaignFormatError,
    IngestError,
    IngestPolicy,
    IngestStats,
    MalformedRecordError,
    coverage_map,
    quarantine_path,
    read_quarantine,
)
from repro.logs.syslog import (
    write_ce_log,
    read_ce_log,
    ingest_ce_log,
    format_ce_record,
)
from repro.logs.bmc import (
    SENSOR_SAMPLE_DTYPE,
    write_bmc_log,
    read_bmc_log,
    ingest_bmc_log,
    filter_valid_samples,
    sensor_dropout_windows,
)
from repro.logs.inventory import (
    InventoryModel,
    write_inventory_snapshots,
    read_inventory_snapshots,
    ingest_inventory_snapshots,
    diff_inventories,
)
from repro.logs.het import write_het_log, read_het_log, ingest_het_log
from repro.logs.release import write_release, read_release
from repro.logs.store import save_records, load_records, shard_by_rack

__all__ = [
    "CampaignFormatError",
    "IngestError",
    "IngestPolicy",
    "IngestStats",
    "MalformedRecordError",
    "coverage_map",
    "quarantine_path",
    "read_quarantine",
    "write_ce_log",
    "read_ce_log",
    "ingest_ce_log",
    "ingest_bmc_log",
    "ingest_het_log",
    "ingest_inventory_snapshots",
    "sensor_dropout_windows",
    "format_ce_record",
    "SENSOR_SAMPLE_DTYPE",
    "write_bmc_log",
    "read_bmc_log",
    "filter_valid_samples",
    "InventoryModel",
    "write_inventory_snapshots",
    "read_inventory_snapshots",
    "diff_inventories",
    "write_het_log",
    "read_het_log",
    "write_release",
    "read_release",
    "save_records",
    "load_records",
    "shard_by_rack",
]
