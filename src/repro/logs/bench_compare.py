"""Compare two ingest benchmark reports and flag regressions.

Usage::

    python -m repro.logs.bench_compare old.json new.json [--threshold 0.10]

Reads two reports written by ``benchmarks/bench_ingest.py`` and compares
the fast-gear wall time of every (family, op) present in both.  A new
time more than ``threshold`` above the old one is a regression; any
regression exits 1 so CI can gate on it.  Ops present in only one
report are listed but never fail the comparison (families and measured
ops may legitimately change between baselines).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_times(path: Path) -> dict:
    """{(family, op): fast seconds} from a bench_ingest report."""
    report = json.loads(path.read_text())
    out = {}
    for family, ops in report.get("results", {}).items():
        for op, r in ops.items():
            if isinstance(r, dict) and "fast_s" in r:
                out[(family, op)] = float(r["fast_s"])
    return out


def compare(old: dict, new: dict, threshold: float) -> tuple[list, list, list]:
    """Returns (regressions, improvements, uncompared) row tuples."""
    regressions, improvements, uncompared = [], [], []
    for key in sorted(old.keys() | new.keys()):
        if key not in old or key not in new:
            uncompared.append((key, "old only" if key in old else "new only"))
            continue
        o, n = old[key], new[key]
        ratio = n / o if o > 0 else float("inf")
        if ratio > 1.0 + threshold:
            regressions.append((key, o, n, ratio))
        elif ratio < 1.0 - threshold:
            improvements.append((key, o, n, ratio))
    return regressions, improvements, uncompared


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("old", type=Path, help="baseline BENCH_ingest.json")
    ap.add_argument("new", type=Path, help="candidate BENCH_ingest.json")
    ap.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative slowdown that counts as a regression (default 0.10)",
    )
    args = ap.parse_args(argv)

    regressions, improvements, uncompared = compare(
        load_times(args.old), load_times(args.new), args.threshold
    )
    for (family, op), o, n, ratio in regressions:
        print(f"REGRESSION  {family}/{op}: {o:.4f}s -> {n:.4f}s "
              f"({(ratio - 1) * 100:+.1f}%)")
    for (family, op), o, n, ratio in improvements:
        print(f"improved    {family}/{op}: {o:.4f}s -> {n:.4f}s "
              f"({(ratio - 1) * 100:+.1f}%)")
    for (family, op), side in uncompared:
        print(f"uncompared  {family}/{op} ({side})")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"no regressions beyond {args.threshold:.0%} "
          f"({len(improvements)} improved)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
