"""Compare two ingest benchmark reports and flag regressions.

Usage::

    python -m repro.logs.bench_compare old.json new.json [--tolerance 0.10]

Reads two reports written by ``benchmarks/bench_ingest.py`` (or any
report sharing its ``results.<family>.<op>.fast_s`` shape, e.g.
``benchmarks/bench_fleet.py``) and compares the fast-gear wall time of
every (family, op) present in both.  A new time more than the tolerance
above the old one is a regression; only true regressions exit 1 so CI
can gate on them.  A family or op present in one side only is reported
as ``new`` (candidate only) or ``removed`` (baseline only) and never
fails the comparison -- an old baseline legitimately predates newly
added families, and retired ops legitimately disappear.  Entries that
are not measurement dicts (annotations, malformed hand edits) are
skipped rather than crashing the diff.

The tolerance defaults to ``$ASTRA_MEMREPRO_BENCH_TOLERANCE`` if set,
else 0.10; ``--threshold`` is accepted as a legacy alias of
``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Environment override for the default tolerance (shared with
#: ``benchmarks/bench_ingest.py --check``).
TOLERANCE_ENV = "ASTRA_MEMREPRO_BENCH_TOLERANCE"

DEFAULT_TOLERANCE = 0.10


def default_tolerance() -> float:
    raw = os.environ.get(TOLERANCE_ENV, "").strip()
    return float(raw) if raw else DEFAULT_TOLERANCE


def load_times(path: Path) -> dict:
    """{(family, op): fast seconds} from a bench report.

    Tolerant by design: a family whose value is not a dict of ops, an
    op that is not a measurement dict, or a ``fast_s`` that is not a
    finite number is skipped -- comparing against an older or
    hand-annotated baseline must degrade to "fewer comparable ops",
    never crash.
    """
    report = json.loads(path.read_text())
    results = report.get("results", {})
    if not isinstance(results, dict):
        return {}
    out = {}
    for family, ops in results.items():
        if not isinstance(ops, dict):
            continue
        for op, r in ops.items():
            if not isinstance(r, dict):
                continue
            try:
                fast_s = float(r["fast_s"])
            except (KeyError, TypeError, ValueError):
                continue
            out[(family, op)] = fast_s
    return out


def compare(old: dict, new: dict, threshold: float) -> tuple[list, list, list]:
    """Returns (regressions, improvements, uncompared) row tuples."""
    regressions, improvements, uncompared = [], [], []
    for key in sorted(old.keys() | new.keys()):
        if key not in old or key not in new:
            # One-sided ops are informational, never failures: "removed"
            # means the baseline measured something the candidate no
            # longer does; "new" means the candidate added a family or
            # op the baseline predates.
            uncompared.append((key, "removed" if key in old else "new"))
            continue
        o, n = old[key], new[key]
        ratio = n / o if o > 0 else float("inf")
        if ratio > 1.0 + threshold:
            regressions.append((key, o, n, ratio))
        elif ratio < 1.0 - threshold:
            improvements.append((key, o, n, ratio))
    return regressions, improvements, uncompared


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("old", type=Path, help="baseline BENCH_ingest.json")
    ap.add_argument("new", type=Path, help="candidate BENCH_ingest.json")
    ap.add_argument(
        "--tolerance", "--threshold", dest="tolerance", type=float,
        default=None,
        help="relative slowdown that counts as a regression (default "
             f"${TOLERANCE_ENV} if set, else {DEFAULT_TOLERANCE})",
    )
    args = ap.parse_args(argv)
    tolerance = default_tolerance() if args.tolerance is None else args.tolerance
    if tolerance < 0:
        ap.error("--tolerance must be >= 0")

    regressions, improvements, uncompared = compare(
        load_times(args.old), load_times(args.new), tolerance
    )
    for (family, op), o, n, ratio in regressions:
        print(f"REGRESSION  {family}/{op}: {o:.4f}s -> {n:.4f}s "
              f"({(ratio - 1) * 100:+.1f}%)")
    for (family, op), o, n, ratio in improvements:
        print(f"improved    {family}/{op}: {o:.4f}s -> {n:.4f}s "
              f"({(ratio - 1) * 100:+.1f}%)")
    for (family, op), side in uncompared:
        print(f"{side:<11} {family}/{op} (not compared)")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{tolerance:.0%}", file=sys.stderr)
        return 1
    print(f"no regressions beyond {tolerance:.0%} "
          f"({len(improvements)} improved)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
