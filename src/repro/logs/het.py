"""HET (Hardware Event Tracker) log lines.

Section 3.5: uncorrectable errors and related hardware events are recorded
in the syslog by the HET, with a severity field.  Line format::

    2019-08-30T07:12:44 astra-n0123 HET severity=NON-RECOVERABLE \
        event=uncorrectableECC

Event names come from Figure 15's legend verbatim.  Parsing goes
through the shared :mod:`repro.logs.ingest` policy machinery: the
legacy :func:`read_het_log` stays strict (any malformed record raises a
typed error), while :func:`ingest_het_log` can quarantine garbage and
repair records whose severity flag contradicts their event type.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import iso
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    Quarantine,
    ingest_lines,
    resort_by_time,
)
from repro.synth.het import EVENT_TYPES, HET_DTYPE, NON_RECOVERABLE_EVENTS


def write_het_log(events: np.ndarray, path: str | os.PathLike) -> int:
    """Write HET records as text lines; returns the line count."""
    if events.dtype != HET_DTYPE:
        raise ValueError(f"expected HET_DTYPE, got {events.dtype}")
    with open(path, "w") as fh:
        for rec in events:
            severity = (
                "NON-RECOVERABLE" if rec["non_recoverable"] else "INFORMATIONAL"
            )
            name = EVENT_TYPES[int(rec["event"])]
            fh.write(
                f"{iso(float(rec['time']))} astra-n{int(rec['node']):04d} HET "
                f"severity={severity} event={name}\n"
            )
    return int(events.size)


_NAME_TO_IDX = {name: i for i, name in enumerate(EVENT_TYPES)}


def _parse_line(line: str) -> tuple:
    # The event name may contain spaces ("... de-asserted"), so split on
    # the known markers instead of naive whitespace.
    head, _, event_part = line.partition(" event=")
    parts = head.split()
    if len(parts) != 4 or parts[2] != "HET" or not event_part:
        raise ValueError("not a HET record")
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    if not parts[1].startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(parts[1][len("astra-n") :])
    severity = parts[3].split("=", 1)[1]
    if event_part not in _NAME_TO_IDX:
        raise ValueError(f"unknown HET event: {event_part!r}")
    event = _NAME_TO_IDX[event_part]
    non_recoverable = severity == "NON-RECOVERABLE"
    if (event in NON_RECOVERABLE_EVENTS) != non_recoverable:
        raise ValueError("severity flag inconsistent with event type")
    return (t, node, event, non_recoverable)


def _repair_line(line: str) -> tuple:
    """Repair a HET record whose severity contradicts its event type.

    The event vocabulary is authoritative (Figure 15b fixes which events
    are NON-RECOVERABLE), so a garbled severity field is recoverable as
    long as the rest of the line parses.
    """
    head, _, event_part = line.partition(" event=")
    parts = head.split()
    if len(parts) != 4 or parts[2] != "HET" or not event_part:
        raise ValueError("not a repairable HET record")
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    if not parts[1].startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(parts[1][len("astra-n") :])
    if event_part not in _NAME_TO_IDX:
        raise ValueError(f"unknown HET event: {event_part!r}")
    event = _NAME_TO_IDX[event_part]
    return (t, node, event, event in NON_RECOVERABLE_EVENTS)


def ingest_het_log(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
) -> tuple[np.ndarray, IngestStats]:
    """Parse a HET log under an ingest policy; returns (events, stats).

    Quarantined lines land in ``<path>.quarantine`` unless ``quarantine``
    is False.
    """
    from repro import obs

    policy = IngestPolicy.coerce(policy)
    stats = IngestStats(family="het", source="text")
    sidecar = Quarantine(path) if quarantine else None
    repair = _repair_line if policy is IngestPolicy.REPAIR else None
    with obs.span("ingest.het", attrs={"policy": policy.value}) as sp:
        with open(path) as fh:
            rows = list(
                ingest_lines(fh, _parse_line, stats, policy, sidecar, repair)
            )
        if sidecar is not None:
            sidecar.flush()
        out = np.zeros(len(rows), dtype=HET_DTYPE)
        for i, row in enumerate(rows):
            out[i] = row
        out = resort_by_time(out, stats, policy)
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return out, stats


def read_het_log(path: str | os.PathLike) -> np.ndarray:
    """Parse a HET log back into a HET_DTYPE array (strict)."""
    events, _ = ingest_het_log(path, policy=IngestPolicy.STRICT, quarantine=False)
    return events
