"""HET (Hardware Event Tracker) log lines.

Section 3.5: uncorrectable errors and related hardware events are recorded
in the syslog by the HET, with a severity field.  Line format::

    2019-08-30T07:12:44 astra-n0123 HET severity=NON-RECOVERABLE \
        event=uncorrectableECC

Event names come from Figure 15's legend verbatim.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import iso
from repro.synth.het import EVENT_TYPES, HET_DTYPE, NON_RECOVERABLE_EVENTS


def write_het_log(events: np.ndarray, path: str | os.PathLike) -> int:
    """Write HET records as text lines; returns the line count."""
    if events.dtype != HET_DTYPE:
        raise ValueError(f"expected HET_DTYPE, got {events.dtype}")
    with open(path, "w") as fh:
        for rec in events:
            severity = (
                "NON-RECOVERABLE" if rec["non_recoverable"] else "INFORMATIONAL"
            )
            name = EVENT_TYPES[int(rec["event"])]
            fh.write(
                f"{iso(float(rec['time']))} astra-n{int(rec['node']):04d} HET "
                f"severity={severity} event={name}\n"
            )
    return int(events.size)


def read_het_log(path: str | os.PathLike) -> np.ndarray:
    """Parse a HET log back into a HET_DTYPE array."""
    name_to_idx = {name: i for i, name in enumerate(EVENT_TYPES)}
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            # The event name may contain spaces ("... de-asserted"), so
            # split on the known markers instead of naive whitespace.
            head, _, event_part = line.partition(" event=")
            parts = head.split()
            if len(parts) != 4 or parts[2] != "HET" or not event_part:
                raise ValueError(f"malformed HET line: {line!r}")
            t = float(
                np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64)
            )
            node = int(parts[1][len("astra-n") :])
            severity = parts[3].split("=", 1)[1]
            if event_part not in name_to_idx:
                raise ValueError(f"unknown HET event: {event_part!r}")
            rows.append((t, node, name_to_idx[event_part], severity))
    out = np.zeros(len(rows), dtype=HET_DTYPE)
    for i, (t, node, event, severity) in enumerate(rows):
        out[i] = (t, node, event, severity == "NON-RECOVERABLE")
        if (event in NON_RECOVERABLE_EVENTS) != out[i]["non_recoverable"]:
            raise ValueError("severity flag inconsistent with event type")
    return out
