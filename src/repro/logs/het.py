"""HET (Hardware Event Tracker) log lines.

Section 3.5: uncorrectable errors and related hardware events are recorded
in the syslog by the HET, with a severity field.  Line format::

    2019-08-30T07:12:44 astra-n0123 HET severity=NON-RECOVERABLE \
        event=uncorrectableECC

Event names come from Figure 15's legend verbatim.  Parsing goes
through the shared :mod:`repro.logs.ingest` policy machinery: the
legacy :func:`read_het_log` stays strict (any malformed record raises a
typed error), while :func:`ingest_het_log` can quarantine garbage and
repair records whose severity flag contradicts their event type.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import iso
from repro.logs import fastpath
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    Quarantine,
    fastpath_enabled,
    ingest_lines,
    ingest_stream_fast,
    resort_by_time,
)
from repro.synth.het import EVENT_TYPES, HET_DTYPE, NON_RECOVERABLE_EVENTS

_SEVERITY_CHOICES = [b"INFORMATIONAL", b"NON-RECOVERABLE"]
_EVENT_CHOICES = [name.encode() for name in EVENT_TYPES]

#: Last epoch second that renders as a 19-char ISO timestamp (year 9999).
_ISO_MAX_S = 253402300800


def _format_het_record(rec) -> str:
    severity = "NON-RECOVERABLE" if rec["non_recoverable"] else "INFORMATIONAL"
    name = EVENT_TYPES[int(rec["event"])]
    return (
        f"{iso(float(rec['time']))} astra-n{int(rec['node']):04d} HET "
        f"severity={severity} event={name}\n"
    )


def _emit_het_chunk(chunk: np.ndarray) -> bytes | None:
    """Render a record chunk column-wise; None -> use the per-record path."""
    t = chunk["time"]
    if not np.all(np.isfinite(t)):
        return None
    t64 = t.astype(np.int64)
    event = chunk["event"].astype(np.int64)
    if (
        np.any(t64 < 0)
        or np.any(t64 >= _ISO_MAX_S)
        or np.any(chunk["node"] < 0)
        or np.any(event < 0)
        or np.any(event >= len(EVENT_TYPES))
    ):
        return None
    return fastpath.build_lines(
        int(chunk.size),
        [
            fastpath.iso_bytes(t64),
            b" astra-n",
            fastpath.uint_digits(chunk["node"], 4),
            b" HET severity=",
            fastpath.choice_bytes(
                chunk["non_recoverable"].astype(np.int64), _SEVERITY_CHOICES
            ),
            b" event=",
            fastpath.choice_bytes(event, _EVENT_CHOICES),
        ],
    )


def write_het_log(events: np.ndarray, path: str | os.PathLike,
                  fast: bool = True) -> int:
    """Write HET records as text lines; returns the line count."""
    if events.dtype != HET_DTYPE:
        raise ValueError(f"expected HET_DTYPE, got {events.dtype}")
    with open(path, "wb") as fh:
        use_fast = fastpath_enabled(fast)
        for start in range(0, events.size, 65536):
            chunk = events[start : start + 65536]
            payload = _emit_het_chunk(chunk) if use_fast and chunk.size else None
            if payload is None:
                payload = "".join(
                    _format_het_record(rec) for rec in chunk
                ).encode("utf-8")
            fh.write(payload)
    return int(events.size)


_NAME_TO_IDX = {name: i for i, name in enumerate(EVENT_TYPES)}


def _parse_line(line: str) -> tuple:
    # The event name may contain spaces ("... de-asserted"), so split on
    # the known markers instead of naive whitespace.
    head, _, event_part = line.partition(" event=")
    parts = head.split()
    if len(parts) != 4 or parts[2] != "HET" or not event_part:
        raise ValueError("not a HET record")
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    if not parts[1].startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(parts[1][len("astra-n") :])
    severity = parts[3].split("=", 1)[1]
    if event_part not in _NAME_TO_IDX:
        raise ValueError(f"unknown HET event: {event_part!r}")
    event = _NAME_TO_IDX[event_part]
    non_recoverable = severity == "NON-RECOVERABLE"
    if (event in NON_RECOVERABLE_EVENTS) != non_recoverable:
        raise ValueError("severity flag inconsistent with event type")
    return (t, node, event, non_recoverable)


def _repair_line(line: str) -> tuple:
    """Repair a HET record whose severity contradicts its event type.

    The event vocabulary is authoritative (Figure 15b fixes which events
    are NON-RECOVERABLE), so a garbled severity field is recoverable as
    long as the rest of the line parses.
    """
    head, _, event_part = line.partition(" event=")
    parts = head.split()
    if len(parts) != 4 or parts[2] != "HET" or not event_part:
        raise ValueError("not a repairable HET record")
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    if not parts[1].startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(parts[1][len("astra-n") :])
    if event_part not in _NAME_TO_IDX:
        raise ValueError(f"unknown HET event: {event_part!r}")
    event = _NAME_TO_IDX[event_part]
    return (t, node, event, event in NON_RECOVERABLE_EVENTS)


def _rows_to_het(rows: list[tuple]) -> np.ndarray:
    out = np.zeros(len(rows), dtype=HET_DTYPE)
    for i, row in enumerate(rows):
        out[i] = row
    return out


_NON_RECOVERABLE_SET = np.array(sorted(NON_RECOVERABLE_EVENTS), dtype=np.int64)


def _fast_het_chunk(chunk: "fastpath.Chunk"):
    """Column-parse canonical HET lines; returns ``(records, ok)``.

    Accepts the writer's grammar only: four single-space head tokens
    (19-char ISO timestamp, ``astra-n<digits>``, the literal ``HET``,
    ``severity=`` with a known severity) and an ``event=`` tail naming a
    known event -- the tail is free-form because event names may contain
    spaces.  Severity must agree with the event type, exactly as the
    per-line parser's consistency check demands; inconsistent lines fall
    back so the slow path raises or repairs them identically.
    """
    data = chunk.data
    ts, te, ok = fastpath.split_head_tokens(data, chunk.starts, chunk.ends, 4)
    t_sec, ok_t = fastpath.parse_iso_seconds(data, ts[:, 0], te[:, 0])
    ok &= ok_t
    ok &= fastpath.has_prefix(data, ts[:, 1], te[:, 1], b"astra-n")
    node, ok_n = fastpath.parse_uint(data, ts[:, 1] + 7, te[:, 1])
    ok &= ok_n & (node <= np.iinfo(np.int32).max)
    ok &= fastpath.token_equals(data, ts[:, 2], te[:, 2], b"HET")
    ok &= fastpath.has_prefix(data, ts[:, 3], te[:, 3], b"severity=")
    sev, ok_s = fastpath.match_vocab(data, ts[:, 3] + 9, te[:, 3], _SEVERITY_CHOICES)
    ok &= ok_s
    ok &= fastpath.has_prefix(data, ts[:, 4], te[:, 4], b"event=")
    event, ok_e = fastpath.match_vocab(data, ts[:, 4] + 6, te[:, 4], _EVENT_CHOICES)
    ok &= ok_e
    non_recoverable = sev == 1
    ok &= np.isin(event, _NON_RECOVERABLE_SET) == non_recoverable

    out = np.zeros(int(np.count_nonzero(ok)), dtype=HET_DTYPE)
    out["time"] = t_sec[ok]
    out["node"] = node[ok]
    out["event"] = event[ok]
    out["non_recoverable"] = non_recoverable[ok]
    return out, ok


def ingest_het_log(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
    fast: bool = True,
) -> tuple[np.ndarray, IngestStats]:
    """Parse a HET log under an ingest policy; returns (events, stats).

    Quarantined lines land in ``<path>.quarantine`` unless ``quarantine``
    is False.  ``fast`` selects the chunked column-wise parser
    (identical results; see DESIGN.md section 9).
    """
    from repro import obs

    policy = IngestPolicy.coerce(policy)
    stats = IngestStats(family="het", source="text")
    sidecar = Quarantine(path) if quarantine else None
    repair = _repair_line if policy is IngestPolicy.REPAIR else None
    with obs.span("ingest.het", attrs={"policy": policy.value}) as sp:
        if fastpath_enabled(fast):
            with open(path, "rb") as fh:
                batches = list(
                    ingest_stream_fast(
                        fh, _parse_line, stats, policy, sidecar, repair,
                        fast_chunk=_fast_het_chunk,
                        rows_to_records=_rows_to_het,
                    )
                )
            out = (
                np.concatenate(batches) if batches
                else np.zeros(0, dtype=HET_DTYPE)
            )
        else:
            with open(path) as fh:
                rows = list(
                    ingest_lines(fh, _parse_line, stats, policy, sidecar, repair)
                )
            out = _rows_to_het(rows)
        if sidecar is not None:
            sidecar.flush()
        out = resort_by_time(out, stats, policy)
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return out, stats


def read_het_log(path: str | os.PathLike) -> np.ndarray:
    """Parse a HET log back into a HET_DTYPE array (strict)."""
    events, _ = ingest_het_log(path, policy=IngestPolicy.STRICT, quarantine=False)
    return events
