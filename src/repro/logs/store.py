"""Binary record store with per-rack sharding.

Text logs are the interchange format; repeated analysis runs want
something faster.  ``save_records``/``load_records`` wrap ``.npy`` files
with dtype checking, and :func:`shard_by_rack` splits an error stream
into one file per rack -- the unit of work for the shard-parallel engine
(:mod:`repro.parallel`).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.machine.topology import AstraTopology


def save_records(path: str | os.PathLike, records: np.ndarray) -> None:
    """Save a structured record array to ``.npy``."""
    if records.dtype.names is None:
        raise ValueError("save_records expects a structured array")
    np.save(path, records, allow_pickle=False)


def load_records(path: str | os.PathLike, expected_dtype=None) -> np.ndarray:
    """Load a structured record array, optionally checking its dtype."""
    out = np.load(path, allow_pickle=False)
    if out.dtype.names is None:
        raise ValueError(f"{path}: not a structured record file")
    if expected_dtype is not None and out.dtype != expected_dtype:
        raise ValueError(
            f"{path}: dtype mismatch (got {out.dtype}, want {expected_dtype})"
        )
    return out


def shard_by_rack(
    errors: np.ndarray,
    directory: str | os.PathLike,
    topology: AstraTopology | None = None,
    prefix: str = "errors-rack",
) -> list[Path]:
    """Split an error stream into one npy shard per rack.

    Only racks that actually contain records get a shard.  Returns the
    shard paths in rack order; shards concatenate back (after a time
    sort) to the original stream.
    """
    topo = topology or AstraTopology()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    racks = topo.rack_of(errors["node"]) if errors.size else np.zeros(0, np.int64)
    # Pad rack numbers to the topology's width so shards past rack 99
    # still list lexicographically in rack order.
    width = max(2, len(str(topo.n_racks - 1)))
    paths = []
    for rack in range(topo.n_racks):
        shard = errors[racks == rack]
        if shard.size == 0:
            continue
        path = directory / f"{prefix}{rack:0{width}d}.npy"
        save_records(path, shard)
        paths.append(path)
    return paths


def load_shards(paths, expected_dtype=None) -> np.ndarray:
    """Concatenate shards back into one stream.

    Streams with a ``"time"`` field come back time-ordered; structured
    arrays without one (e.g. derived or aggregate records) concatenate
    in shard order.
    """
    parts = [load_records(p, expected_dtype) for p in paths]
    if not parts:
        if expected_dtype is None:
            raise ValueError("no shards and no dtype to build an empty array")
        return np.zeros(0, dtype=expected_dtype)
    out = np.concatenate(parts)
    if "time" in (out.dtype.names or ()):
        return out[np.argsort(out["time"], kind="stable")]
    return out
