"""Binary record store with per-rack sharding and memory-mapped reads.

Text logs are the interchange format; repeated analysis runs want
something faster.  ``save_records``/``load_records`` wrap ``.npy`` files
with dtype checking, and :func:`shard_by_rack` splits an error stream
into one file per rack -- the unit of work for the shard-parallel engine
(:mod:`repro.parallel`) and the fleet engine (:mod:`repro.fleet`).

Loading supports two modes:

- eager (default): the whole array is read into memory;
- memory-mapped (``mmap=True``): ``np.load(mmap_mode="r")`` returns a
  read-only view backed by the page cache, so fleet-scale aggregation
  can stream per-shard slices without rehydrating 100M+ rows at once.
  :func:`iter_shards` yields those zero-copy views one shard at a time.

Zero-row shards are legal everywhere: an empty rack's file loads back
as an empty array of the stored dtype (numpy cannot always map a
zero-length buffer, so those fall back to an eager load), and
``shard_by_rack(..., include_empty=True)`` writes one shard per rack so
even an empty stream round-trips its dtype through the shard set.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.logs.integrity import (
    ShardIntegrityError,
    verify_checksum,
    write_checksum,
)
from repro.machine.topology import AstraTopology


def save_records(
    path: str | os.PathLike, records: np.ndarray, checksum: bool = True
) -> None:
    """Save a structured record array to ``.npy``.

    ``checksum`` (the default) also writes a ``.crc32c`` content-checksum
    sidecar beside the file, so later loads can detect torn, truncated or
    bit-flipped payloads (see :mod:`repro.logs.integrity`).
    """
    if records.dtype.names is None:
        raise ValueError("save_records expects a structured array")
    np.save(path, records, allow_pickle=False)
    if checksum:
        # np.save appends ".npy" when the suffix is missing; checksum the
        # file that actually landed on disk.
        path = Path(path)
        if path.suffix != ".npy":
            path = path.with_name(path.name + ".npy")
        write_checksum(path)


def load_records(
    path: str | os.PathLike,
    expected_dtype=None,
    mmap: bool = False,
    verify: bool = False,
) -> np.ndarray:
    """Load a structured record array, optionally checking its dtype.

    ``mmap`` opens the file memory-mapped read-only -- a zero-copy view
    whose pages are faulted in on access, the unit the fleet engine
    aggregates over.  Zero-row files (an empty rack's shard) cannot be
    mapped on every platform and are loaded eagerly instead; they are
    header-only, so the fallback costs nothing.

    ``verify`` checks the file against its ``.crc32c`` sidecar (when one
    exists) *before* the payload is trusted, raising
    :class:`~repro.logs.integrity.ShardIntegrityError` on a torn,
    truncated or bit-damaged file; files without a sidecar (legacy
    data, hand-written fixtures) load unverified.
    """
    if verify:
        verify_checksum(path)
    if mmap:
        try:
            out = np.load(path, mmap_mode="r", allow_pickle=False)
        except ValueError:
            out = np.load(path, allow_pickle=False)
    else:
        out = np.load(path, allow_pickle=False)
    if out.dtype.names is None:
        raise ValueError(f"{path}: not a structured record file")
    if expected_dtype is not None and out.dtype != expected_dtype:
        raise ValueError(
            f"{path}: dtype mismatch (got {out.dtype}, want {expected_dtype})"
        )
    return out


def shard_by_rack(
    errors: np.ndarray,
    directory: str | os.PathLike,
    topology: AstraTopology | None = None,
    prefix: str = "errors-rack",
    include_empty: bool = False,
) -> list[Path]:
    """Split an error stream into one npy shard per rack.

    By default only racks that actually contain records get a shard;
    ``include_empty`` writes a (zero-row) shard for every rack, so a
    shard set always round-trips the stream's dtype -- including the
    degenerate empty stream.  Returns the shard paths in rack order;
    shards concatenate back (after a time sort) to the original stream.
    """
    topo = topology or AstraTopology()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    racks = topo.rack_of(errors["node"]) if errors.size else np.zeros(0, np.int64)
    # Pad rack numbers to the topology's width so shards past rack 99
    # still list lexicographically in rack order.
    width = max(2, len(str(topo.n_racks - 1)))
    paths = []
    for rack in range(topo.n_racks):
        shard = errors[racks == rack]
        if shard.size == 0 and not include_empty:
            continue
        path = directory / f"{prefix}{rack:0{width}d}.npy"
        save_records(path, shard)
        paths.append(path)
    return paths


def iter_shards(paths, expected_dtype=None, mmap: bool = True, verify: bool = False):
    """Yield one (memory-mapped) view per shard, in the given order.

    The streaming complement of :func:`load_shards`: per-shard
    aggregation touches one shard's pages at a time instead of
    materialising the concatenated stream.  ``verify`` checksums each
    shard against its sidecar before yielding it.
    """
    for path in paths:
        yield load_records(path, expected_dtype, mmap=mmap, verify=verify)


def load_shards(
    paths, expected_dtype=None, mmap: bool = False, verify: bool = False
) -> np.ndarray:
    """Concatenate shards back into one stream.

    Streams with a ``"time"`` field come back time-ordered; structured
    arrays without one (e.g. derived or aggregate records) concatenate
    in shard order.  ``mmap`` reads each shard as a view (the
    concatenation itself still materialises; use :func:`iter_shards`
    when the whole stream should never exist in memory).  A shard set
    whose files hold zero rows total returns an empty array of the
    stored dtype instead of raising.
    """
    parts = [
        load_records(p, expected_dtype, mmap=mmap, verify=verify) for p in paths
    ]
    if not parts:
        if expected_dtype is None:
            raise ValueError("no shards and no dtype to build an empty array")
        return np.zeros(0, dtype=expected_dtype)
    out = np.concatenate(parts)
    if "time" in (out.dtype.names or ()):
        return out[np.argsort(out["time"], kind="stable")]
    return out
