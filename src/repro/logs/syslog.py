"""Correctable-error records as syslog text lines.

Astra's OS polls the memory controller's CE log every few seconds and
writes each record to the syslog (section 2.3).  The fields match the
data-release description of section 2.4: timestamp, node ID, socket, type
of failure, DIMM slot, row, rank, bank, bit position, physical address and
vendor-specific syndrome data.

The line format used here::

    2019-03-04T12:34:56 astra-n0123 kernel: EDAC CE socket=0 slot=J \
        rank=0 bank=3 row=- col=17 bit=42 addr=0x000000012340 synd=0x2b

Unavailable fields (the row on Astra; the whole positional payload for
storm records) are written as ``-``.  Parsing goes through the shared
:mod:`repro.logs.ingest` machinery: ``strict`` raises a typed error on
the first bad line, ``skip`` quarantines garbage with a per-line reason,
and ``repair`` additionally salvages truncated lines (filling the
missing trailing fields with sentinels, as the real payload-less storm
records already do) and re-sorts out-of-order timestamps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE, empty_errors
from repro.logs import fastpath
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    Quarantine,
    fastpath_enabled,
    ingest_lines,
    ingest_stream_fast,
    resort_by_time,
)
from repro.machine.node import DIMM_SLOTS, slot_index, slot_letter
from repro._util import iso


def format_ce_record(record) -> str:
    """Format one CE record as a syslog line."""

    def opt(value: int, fmt: str = "{}") -> str:
        return "-" if value < 0 else fmt.format(value)

    slot = "-" if record["slot"] < 0 else slot_letter(int(record["slot"]))
    return (
        f"{iso(float(record['time']))} astra-n{int(record['node']):04d} "
        f"kernel: EDAC CE socket={int(record['socket'])} slot={slot} "
        f"rank={int(record['rank'])} bank={opt(int(record['bank']))} "
        f"row={opt(int(record['row']))} col={opt(int(record['column']))} "
        f"bit={opt(int(record['bit_pos']))} "
        f"addr=0x{int(record['address']):012x} "
        f"synd=0x{int(record['syndrome']):02x}"
    )


#: Writer-side slot vocabulary: index -1 renders as ``-``, 0..15 as A..P.
_SLOT_CHOICES = [b"-"] + [letter.encode() for letter in DIMM_SLOTS]

#: Last epoch second that renders as a 19-char ISO timestamp (year 9999).
_ISO_MAX_S = 253402300800


def _emit_ce_chunk(chunk: np.ndarray) -> bytes | None:
    """Render a record chunk column-wise; None -> use the per-record path.

    Bails out (returning None) whenever any record would not format the
    way the column assembler assumes -- non-finite or out-of-ISO-range
    times, negative direct-printed ints, addresses wider than 12 hex
    digits, slot indices past P -- so abnormal chunks fall back to
    :func:`format_ce_record` and keep its exact behaviour, including its
    exceptions.
    """
    t = chunk["time"]
    if not np.all(np.isfinite(t)):
        return None
    t64 = t.astype(np.int64)
    if (
        np.any(t64 < 0)
        or np.any(t64 >= _ISO_MAX_S)
        or np.any(chunk["node"] < 0)
        or np.any(chunk["socket"] < 0)
        or np.any(chunk["rank"] < 0)
        or np.any(chunk["slot"] >= len(DIMM_SLOTS))
        or np.any(chunk["address"] >= np.uint64(16) ** np.uint64(12))
    ):
        return None
    slot_idx = chunk["slot"].astype(np.int64)
    slot_idx = np.where(slot_idx < 0, 0, slot_idx + 1)
    return fastpath.build_lines(
        int(chunk.size),
        [
            fastpath.iso_bytes(t64),
            b" astra-n",
            fastpath.uint_digits(chunk["node"], 4),
            b" kernel: EDAC CE socket=",
            fastpath.uint_digits(chunk["socket"]),
            b" slot=",
            fastpath.choice_bytes(slot_idx, _SLOT_CHOICES),
            b" rank=",
            fastpath.uint_digits(chunk["rank"]),
            b" bank=",
            fastpath.opt_uint_digits(chunk["bank"]),
            b" row=",
            fastpath.opt_uint_digits(chunk["row"]),
            b" col=",
            fastpath.opt_uint_digits(chunk["column"]),
            b" bit=",
            fastpath.opt_uint_digits(chunk["bit_pos"]),
            b" addr=0x",
            fastpath.hex_digits(chunk["address"], 12),
            b" synd=0x",
            fastpath.hex_digits(chunk["syndrome"], 2),
        ],
    )


def write_ce_log(errors: np.ndarray, path: str | os.PathLike,
                 fast: bool = True) -> int:
    """Write CE records to a syslog file; returns the line count.

    Uses chunked formatting so multi-million-record logs stream without
    building one giant string.  ``fast`` selects the column-wise byte
    assembler (same output, per chunk) with automatic per-record
    fallback for abnormal chunks.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    n = 0
    with open(path, "wb") as fh:
        use_fast = fastpath_enabled(fast)
        for start in range(0, errors.size, 65536):
            chunk = errors[start : start + 65536]
            payload = _emit_ce_chunk(chunk) if use_fast and chunk.size else None
            if payload is None:
                text = "\n".join(format_ce_record(r) for r in chunk)
                payload = text.encode("utf-8") + (b"\n" if chunk.size else b"")
            fh.write(payload)
            n += chunk.size
    return n


@dataclass
class ParseResult:
    """Outcome of parsing a CE log."""

    errors: np.ndarray
    stats: IngestStats

    @property
    def n_malformed(self) -> int:
        """Records neither parsed nor repaired (back-compat alias)."""
        return self.stats.quarantined


def _parse_int(token: str, default: int = -1) -> int:
    value = token.split("=", 1)[1]
    if value == "-":
        return default
    return int(value, 0)  # handles 0x prefixes


def _rows_to_array(rows: list[dict]) -> np.ndarray:
    out = empty_errors(len(rows))
    for i, row in enumerate(rows):
        for key, value in row.items():
            out[i][key] = value
    return out


#: Fused prefix table for tokens 1..13 of a canonical CE line (token 0,
#: the timestamp, is validated by :func:`fastpath.parse_iso_seconds`).
_CE_PREFIX_TABLE = fastpath.compile_prefixes(
    [
        b"astra-n", b"kernel:", b"EDAC", b"CE",
        b"socket=", b"slot=", b"rank=", b"bank=",
        b"row=", b"col=", b"bit=", b"addr=0x", b"synd=0x",
    ]
)

#: The six ``key=<decimal|->`` fields, batched into one parse pass:
#: token column, prefix length, dash default, and dtype ceiling (so the
#: eventual array assignment cannot overflow differently from the slow
#: path's Python ints).
_KV_COLS = np.array([5, 7, 8, 9, 10, 11])
_KV_PLEN = np.array([7, 5, 5, 4, 4, 4])  # socket= rank= bank= row= col= bit=
_KV_DEFAULT = np.array([0, 0, -1, -1, -1, -1], dtype=np.int64)
_KV_HI = np.array(
    [
        np.iinfo(np.int8).max, np.iinfo(np.int8).max, np.iinfo(np.int8).max,
        np.iinfo(np.int32).max, np.iinfo(np.int16).max, np.iinfo(np.int16).max,
    ],
    dtype=np.int64,
)

#: slot= value byte -> slot index (-1 for ``-``, -2 for anything else).
_SLOT_LUT = np.full(256, -2, dtype=np.int64)
_SLOT_LUT[ord("-")] = -1
for _i, _letter in enumerate(DIMM_SLOTS):
    _SLOT_LUT[ord(_letter)] = _i


def _fast_ce_chunk(chunk: "fastpath.Chunk"):
    """Column-parse canonical CE lines; returns ``(records, ok)``.

    The accepted grammar is exactly the writer's output: 14 single-space
    tokens, 19-char ISO timestamp, ``astra-n<digits>`` host, the literal
    ``kernel: EDAC CE`` marker, and the nine key=value fields in
    canonical order with in-range values.  Anything else -- reordered
    keys, extra whitespace, truncations, out-of-range values -- gets
    ``ok`` False and is re-parsed by the per-line machinery.
    """
    data = chunk.data
    ts, te, ok = fastpath.split_tokens(data, chunk.starts, chunk.ends, 14)
    ok &= fastpath.has_prefixes(data, ts[:, 1:], te[:, 1:], _CE_PREFIX_TABLE)
    w = te - ts
    # The three literal tokens must match exactly, not just by prefix.
    ok &= (w[:, 2] == 7) & (w[:, 3] == 4) & (w[:, 4] == 2)
    t_sec, ok_t = fastpath.parse_iso_seconds(data, ts[:, 0], te[:, 0])
    ok &= ok_t
    node, ok_n = fastpath.parse_uint(data, ts[:, 1] + 7, te[:, 1])
    ok &= ok_n & (node <= np.iinfo(np.int32).max)

    # slot= carries exactly one byte from the letter vocabulary (or -).
    slot = _SLOT_LUT[np.take(data, ts[:, 6] + 5, mode="clip")]
    ok &= (w[:, 6] == 6) & (slot > -2)

    # One batched parse over the six decimal fields (field-major): a
    # value is either the literal dash (taking the field's default) or
    # leading-zero-free decimal digits within the target dtype's range,
    # mirroring the slow path's ``int(x, 0)`` grammar exactly.
    n = ts.shape[0]
    vs = (ts[:, _KV_COLS] + _KV_PLEN[None, :]).T.ravel()
    ve = te[:, _KV_COLS].T.ravel()
    val, ok_v = fastpath.parse_uint(data, vs, ve)
    ok_v &= ~fastpath.leading_zero(data, vs, ve)
    dash = ((ve - vs) == 1) & (np.take(data, vs, mode="clip") == 45)
    val = val.reshape(len(_KV_COLS), n)
    ok_v = ok_v.reshape(len(_KV_COLS), n) & (val <= _KV_HI[:, None])
    dash = dash.reshape(len(_KV_COLS), n)
    ok &= np.all(dash | ok_v, axis=0)
    val = np.where(dash, _KV_DEFAULT[:, None], val)
    socket, rank, bank, row, col, bit = val

    addr, ok_a = fastpath.parse_hex(data, ts[:, 12] + 7, te[:, 12])
    ok &= ok_a & (addr <= (1 << 60) - 1)
    synd, ok_s = fastpath.parse_hex(data, ts[:, 13] + 7, te[:, 13])
    ok &= ok_s & (synd <= 255)

    out = empty_errors(int(np.count_nonzero(ok)))
    out["time"] = t_sec[ok]
    out["node"] = node[ok]
    out["socket"] = socket[ok]
    out["slot"] = slot[ok]
    out["rank"] = rank[ok]
    out["bank"] = bank[ok]
    out["row"] = row[ok]
    out["column"] = col[ok]
    out["bit_pos"] = bit[ok]
    out["address"] = addr[ok]
    out["syndrome"] = synd[ok]
    return out, ok


def ingest_ce_log(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
    fast: bool = True,
) -> ParseResult:
    """Parse a CE syslog file under an ingest policy.

    ``strict`` raises :class:`~repro.logs.ingest.MalformedRecordError`
    on the first bad line; ``skip`` quarantines bad lines; ``repair``
    additionally salvages truncated lines and re-sorts out-of-order
    timestamps.  Quarantined lines land in ``<path>.quarantine`` unless
    ``quarantine`` is False.  ``fast`` selects the chunked column-wise
    parser (identical results; see DESIGN.md section 9).
    """
    from repro import obs

    policy = IngestPolicy.coerce(policy)
    stats = IngestStats(family="errors", source="text")
    sidecar = Quarantine(path) if quarantine else None
    repair = _repair_line if policy is IngestPolicy.REPAIR else None
    with obs.span("ingest.errors", attrs={"policy": policy.value}) as sp:
        if fastpath_enabled(fast):
            with open(path, "rb") as fh:
                batches = list(
                    ingest_stream_fast(
                        fh, _parse_line, stats, policy, sidecar, repair,
                        fast_chunk=_fast_ce_chunk,
                        rows_to_records=_rows_to_array,
                    )
                )
            arr = np.concatenate(batches) if batches else empty_errors(0)
        else:
            with open(path) as fh:
                rows = list(
                    ingest_lines(fh, _parse_line, stats, policy, sidecar, repair)
                )
            arr = _rows_to_array(rows)
        if sidecar is not None:
            sidecar.flush()
        out = resort_by_time(arr, stats, policy)
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return ParseResult(errors=out, stats=stats)


def stream_ce_batches(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
    fast: bool = True,
    stats: IngestStats | None = None,
    chunk_records: int = 100_000,
):
    """Stream a CE log as ERROR_DTYPE batches under an ingest policy.

    The block-granular two-gear reader of :func:`ingest_ce_log` without
    materialising the whole stream: each yielded batch is ready for
    online aggregation (e.g. ``OnlineCoalescer.add``, whose result is
    batching-insensitive).  ``stats`` -- an :class:`IngestStats`,
    created when ``None`` -- accumulates the same per-line accounting as
    :func:`ingest_ce_log`, minus the cross-stream time re-sort: like
    :func:`iter_ce_log`, repair applies per line only, so out-of-order
    timestamps are not reclassified as repairs.
    """
    policy = IngestPolicy.coerce(policy)
    if stats is None:
        stats = IngestStats(family="errors", source="text")
    sidecar = Quarantine(path) if quarantine else None
    repair = _repair_line if policy is IngestPolicy.REPAIR else None
    try:
        if fastpath_enabled(fast):
            with open(path, "rb") as fh:
                yield from ingest_stream_fast(
                    fh, _parse_line, stats, policy, sidecar, repair,
                    fast_chunk=_fast_ce_chunk,
                    rows_to_records=_rows_to_array,
                )
        else:
            rows: list[dict] = []
            with open(path) as fh:
                for row in ingest_lines(
                    fh, _parse_line, stats, policy, sidecar, repair
                ):
                    rows.append(row)
                    if len(rows) >= chunk_records:
                        yield _rows_to_array(rows)
                        rows = []
            if rows:
                yield _rows_to_array(rows)
        stats.check_invariant()
    finally:
        if sidecar is not None:
            sidecar.flush()


def read_ce_log(path: str | os.PathLike, strict: bool = False) -> ParseResult:
    """Parse a CE syslog file back into an ERROR_DTYPE array.

    Malformed lines are skipped and counted unless ``strict`` is set, in
    which case the first bad line raises a typed ``ValueError``.  This
    is the legacy entry point; :func:`ingest_ce_log` exposes the full
    policy surface (repair, quarantine sidecars).
    """
    policy = IngestPolicy.STRICT if strict else IngestPolicy.SKIP
    return ingest_ce_log(path, policy=policy, quarantine=False)


def iter_ce_log(
    path: str | os.PathLike,
    chunk_records: int = 100_000,
    strict: bool = False,
    policy: IngestPolicy | str | None = None,
):
    """Stream a CE log as (chunk_array, n_malformed_in_chunk) pairs.

    For archive-scale logs (the study's raw data is ~8 GiB) that should
    not be materialised at once; each chunk is an ERROR_DTYPE array of at
    most ``chunk_records`` records, ready for per-chunk aggregation with
    the shard-parallel reducers.  ``policy`` overrides the boolean
    ``strict`` switch; note the streaming reader never re-sorts across
    chunk boundaries (repair applies per line only).  The streaming
    reader keeps the per-line path: its per-chunk malformed-count
    attribution depends on exactly when each line is judged, which
    block-granular parsing would shift.
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    if policy is None:
        policy = IngestPolicy.STRICT if strict else IngestPolicy.SKIP
    policy = IngestPolicy.coerce(policy)
    repair = _repair_line if policy is IngestPolicy.REPAIR else None

    rows: list[dict] = []
    stats = IngestStats(family="errors", source="text")
    quarantined_flushed = 0
    with open(path) as fh:
        for row in ingest_lines(fh, _parse_line, stats, policy, None, repair):
            rows.append(row)
            if len(rows) >= chunk_records:
                yield _rows_to_array(rows), stats.quarantined - quarantined_flushed
                rows = []
                quarantined_flushed = stats.quarantined
    if rows or stats.quarantined > quarantined_flushed:
        yield _rows_to_array(rows), stats.quarantined - quarantined_flushed


#: Fields a complete CE line must carry (strict mode requires them all).
_REQUIRED_KEYS = ("socket", "slot", "rank", "bank", "row", "col", "bit", "addr", "synd")


def _parse_line(line: str) -> dict:
    parts = line.split()
    # [timestamp, host, 'kernel:', 'EDAC', 'CE', kv...]
    if len(parts) < 13 or parts[3] != "EDAC" or parts[4] != "CE":
        raise ValueError("not a CE record")
    return _parse_fields(parts, require=True)


def _repair_line(line: str) -> dict:
    """Salvage a truncated CE line: present fields win, the rest default.

    A line qualifies for repair when its head (timestamp, host, EDAC CE
    marker) survived; missing trailing key=value fields take the same
    sentinels payload-less storm records already use.
    """
    parts = line.split()
    if len(parts) < 5 or parts[3] != "EDAC" or parts[4] != "CE":
        raise ValueError("not a repairable CE record")
    return _parse_fields(parts)


def _parse_fields(parts: list[str], require: bool = False) -> dict:
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    host = parts[1]
    if not host.startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(host[len("astra-n") :])
    kv = {p.split("=", 1)[0]: p for p in parts[5:] if "=" in p}
    if require:
        missing = [k for k in _REQUIRED_KEYS if k not in kv]
        if missing:
            raise ValueError(f"missing fields: {', '.join(missing)}")

    def get_int(key: str, default: int = -1) -> int:
        return _parse_int(kv[key], default) if key in kv else default

    slot_tok = kv["slot"].split("=", 1)[1] if "slot" in kv else "-"
    return dict(
        time=t,
        node=node,
        socket=get_int("socket", 0),
        slot=-1 if slot_tok == "-" else slot_index(slot_tok),
        rank=get_int("rank", 0),
        bank=get_int("bank"),
        row=get_int("row"),
        column=get_int("col"),
        bit_pos=get_int("bit"),
        address=get_int("addr", 0),
        syndrome=get_int("synd", 0),
    )
