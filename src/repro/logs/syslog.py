"""Correctable-error records as syslog text lines.

Astra's OS polls the memory controller's CE log every few seconds and
writes each record to the syslog (section 2.3).  The fields match the
data-release description of section 2.4: timestamp, node ID, socket, type
of failure, DIMM slot, row, rank, bank, bit position, physical address and
vendor-specific syndrome data.

The line format used here::

    2019-03-04T12:34:56 astra-n0123 kernel: EDAC CE socket=0 slot=J \
        rank=0 bank=3 row=- col=17 bit=42 addr=0x000000012340 synd=0x2b

Unavailable fields (the row on Astra; the whole positional payload for
storm records) are written as ``-``.  The parser tolerates and counts
malformed lines instead of failing, as any real log scraper must.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE, empty_errors
from repro.machine.node import slot_index, slot_letter
from repro._util import iso


def format_ce_record(record) -> str:
    """Format one CE record as a syslog line."""

    def opt(value: int, fmt: str = "{}") -> str:
        return "-" if value < 0 else fmt.format(value)

    slot = "-" if record["slot"] < 0 else slot_letter(int(record["slot"]))
    return (
        f"{iso(float(record['time']))} astra-n{int(record['node']):04d} "
        f"kernel: EDAC CE socket={int(record['socket'])} slot={slot} "
        f"rank={int(record['rank'])} bank={opt(int(record['bank']))} "
        f"row={opt(int(record['row']))} col={opt(int(record['column']))} "
        f"bit={opt(int(record['bit_pos']))} "
        f"addr=0x{int(record['address']):012x} "
        f"synd=0x{int(record['syndrome']):02x}"
    )


def write_ce_log(errors: np.ndarray, path: str | os.PathLike) -> int:
    """Write CE records to a syslog file; returns the line count.

    Uses chunked formatting so multi-million-record logs stream without
    building one giant string.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    n = 0
    with open(path, "w") as fh:
        for start in range(0, errors.size, 65536):
            chunk = errors[start : start + 65536]
            fh.write("\n".join(format_ce_record(r) for r in chunk))
            if chunk.size:
                fh.write("\n")
            n += chunk.size
    return n


@dataclass
class ParseResult:
    """Outcome of parsing a CE log."""

    errors: np.ndarray
    n_malformed: int


def _parse_int(token: str, default: int = -1) -> int:
    value = token.split("=", 1)[1]
    if value == "-":
        return default
    return int(value, 0)  # handles 0x prefixes


def read_ce_log(path: str | os.PathLike, strict: bool = False) -> ParseResult:
    """Parse a CE syslog file back into an ERROR_DTYPE array.

    Malformed lines are skipped and counted unless ``strict`` is set, in
    which case the first bad line raises ``ValueError``.
    """
    rows = []
    n_bad = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(_parse_line(line))
            except (ValueError, IndexError, KeyError) as exc:
                if strict:
                    raise ValueError(f"malformed CE line: {line!r}") from exc
                n_bad += 1
    out = empty_errors(len(rows))
    for i, row in enumerate(rows):
        for key, value in row.items():
            out[i][key] = value
    return ParseResult(errors=out, n_malformed=n_bad)


def iter_ce_log(
    path: str | os.PathLike, chunk_records: int = 100_000, strict: bool = False
):
    """Stream a CE log as (chunk_array, n_malformed_in_chunk) pairs.

    For archive-scale logs (the study's raw data is ~8 GiB) that should
    not be materialised at once; each chunk is an ERROR_DTYPE array of at
    most ``chunk_records`` records, ready for per-chunk aggregation with
    the shard-parallel reducers.
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    rows: list[dict] = []
    n_bad = 0

    def flush():
        out = empty_errors(len(rows))
        for i, row in enumerate(rows):
            for key, value in row.items():
                out[i][key] = value
        return out

    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(_parse_line(line))
            except (ValueError, IndexError, KeyError) as exc:
                if strict:
                    raise ValueError(f"malformed CE line: {line!r}") from exc
                n_bad += 1
            if len(rows) >= chunk_records:
                yield flush(), n_bad
                rows, n_bad = [], 0
    if rows or n_bad:
        yield flush(), n_bad


def _parse_line(line: str) -> dict:
    parts = line.split()
    # [timestamp, host, 'kernel:', 'EDAC', 'CE', kv...]
    if len(parts) < 13 or parts[3] != "EDAC" or parts[4] != "CE":
        raise ValueError("not a CE record")
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    host = parts[1]
    if not host.startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(host[len("astra-n") :])
    kv = {p.split("=", 1)[0]: p for p in parts[5:]}
    slot_tok = kv["slot"].split("=", 1)[1]
    return dict(
        time=t,
        node=node,
        socket=_parse_int(kv["socket"], 0),
        slot=-1 if slot_tok == "-" else slot_index(slot_tok),
        rank=_parse_int(kv["rank"], 0),
        bank=_parse_int(kv["bank"]),
        row=_parse_int(kv["row"]),
        column=_parse_int(kv["col"]),
        bit_pos=_parse_int(kv["bit"]),
        address=_parse_int(kv["addr"], 0),
        syndrome=_parse_int(kv["synd"], 0),
    )
