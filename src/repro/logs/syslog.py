"""Correctable-error records as syslog text lines.

Astra's OS polls the memory controller's CE log every few seconds and
writes each record to the syslog (section 2.3).  The fields match the
data-release description of section 2.4: timestamp, node ID, socket, type
of failure, DIMM slot, row, rank, bank, bit position, physical address and
vendor-specific syndrome data.

The line format used here::

    2019-03-04T12:34:56 astra-n0123 kernel: EDAC CE socket=0 slot=J \
        rank=0 bank=3 row=- col=17 bit=42 addr=0x000000012340 synd=0x2b

Unavailable fields (the row on Astra; the whole positional payload for
storm records) are written as ``-``.  Parsing goes through the shared
:mod:`repro.logs.ingest` machinery: ``strict`` raises a typed error on
the first bad line, ``skip`` quarantines garbage with a per-line reason,
and ``repair`` additionally salvages truncated lines (filling the
missing trailing fields with sentinels, as the real payload-less storm
records already do) and re-sorts out-of-order timestamps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE, empty_errors
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    Quarantine,
    ingest_lines,
    resort_by_time,
)
from repro.machine.node import slot_index, slot_letter
from repro._util import iso


def format_ce_record(record) -> str:
    """Format one CE record as a syslog line."""

    def opt(value: int, fmt: str = "{}") -> str:
        return "-" if value < 0 else fmt.format(value)

    slot = "-" if record["slot"] < 0 else slot_letter(int(record["slot"]))
    return (
        f"{iso(float(record['time']))} astra-n{int(record['node']):04d} "
        f"kernel: EDAC CE socket={int(record['socket'])} slot={slot} "
        f"rank={int(record['rank'])} bank={opt(int(record['bank']))} "
        f"row={opt(int(record['row']))} col={opt(int(record['column']))} "
        f"bit={opt(int(record['bit_pos']))} "
        f"addr=0x{int(record['address']):012x} "
        f"synd=0x{int(record['syndrome']):02x}"
    )


def write_ce_log(errors: np.ndarray, path: str | os.PathLike) -> int:
    """Write CE records to a syslog file; returns the line count.

    Uses chunked formatting so multi-million-record logs stream without
    building one giant string.
    """
    if errors.dtype != ERROR_DTYPE:
        raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
    n = 0
    with open(path, "w") as fh:
        for start in range(0, errors.size, 65536):
            chunk = errors[start : start + 65536]
            fh.write("\n".join(format_ce_record(r) for r in chunk))
            if chunk.size:
                fh.write("\n")
            n += chunk.size
    return n


@dataclass
class ParseResult:
    """Outcome of parsing a CE log."""

    errors: np.ndarray
    stats: IngestStats

    @property
    def n_malformed(self) -> int:
        """Records neither parsed nor repaired (back-compat alias)."""
        return self.stats.quarantined


def _parse_int(token: str, default: int = -1) -> int:
    value = token.split("=", 1)[1]
    if value == "-":
        return default
    return int(value, 0)  # handles 0x prefixes


def _rows_to_array(rows: list[dict]) -> np.ndarray:
    out = empty_errors(len(rows))
    for i, row in enumerate(rows):
        for key, value in row.items():
            out[i][key] = value
    return out


def ingest_ce_log(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
) -> ParseResult:
    """Parse a CE syslog file under an ingest policy.

    ``strict`` raises :class:`~repro.logs.ingest.MalformedRecordError`
    on the first bad line; ``skip`` quarantines bad lines; ``repair``
    additionally salvages truncated lines and re-sorts out-of-order
    timestamps.  Quarantined lines land in ``<path>.quarantine`` unless
    ``quarantine`` is False.
    """
    from repro import obs

    policy = IngestPolicy.coerce(policy)
    stats = IngestStats(family="errors", source="text")
    sidecar = Quarantine(path) if quarantine else None
    repair = _repair_line if policy is IngestPolicy.REPAIR else None
    with obs.span("ingest.errors", attrs={"policy": policy.value}) as sp:
        with open(path) as fh:
            rows = list(
                ingest_lines(fh, _parse_line, stats, policy, sidecar, repair)
            )
        if sidecar is not None:
            sidecar.flush()
        out = resort_by_time(_rows_to_array(rows), stats, policy)
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return ParseResult(errors=out, stats=stats)


def read_ce_log(path: str | os.PathLike, strict: bool = False) -> ParseResult:
    """Parse a CE syslog file back into an ERROR_DTYPE array.

    Malformed lines are skipped and counted unless ``strict`` is set, in
    which case the first bad line raises a typed ``ValueError``.  This
    is the legacy entry point; :func:`ingest_ce_log` exposes the full
    policy surface (repair, quarantine sidecars).
    """
    policy = IngestPolicy.STRICT if strict else IngestPolicy.SKIP
    return ingest_ce_log(path, policy=policy, quarantine=False)


def iter_ce_log(
    path: str | os.PathLike,
    chunk_records: int = 100_000,
    strict: bool = False,
    policy: IngestPolicy | str | None = None,
):
    """Stream a CE log as (chunk_array, n_malformed_in_chunk) pairs.

    For archive-scale logs (the study's raw data is ~8 GiB) that should
    not be materialised at once; each chunk is an ERROR_DTYPE array of at
    most ``chunk_records`` records, ready for per-chunk aggregation with
    the shard-parallel reducers.  ``policy`` overrides the boolean
    ``strict`` switch; note the streaming reader never re-sorts across
    chunk boundaries (repair applies per line only).
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    if policy is None:
        policy = IngestPolicy.STRICT if strict else IngestPolicy.SKIP
    policy = IngestPolicy.coerce(policy)
    repair = _repair_line if policy is IngestPolicy.REPAIR else None

    rows: list[dict] = []
    stats = IngestStats(family="errors", source="text")
    quarantined_flushed = 0
    with open(path) as fh:
        for row in ingest_lines(fh, _parse_line, stats, policy, None, repair):
            rows.append(row)
            if len(rows) >= chunk_records:
                yield _rows_to_array(rows), stats.quarantined - quarantined_flushed
                rows = []
                quarantined_flushed = stats.quarantined
    if rows or stats.quarantined > quarantined_flushed:
        yield _rows_to_array(rows), stats.quarantined - quarantined_flushed


#: Fields a complete CE line must carry (strict mode requires them all).
_REQUIRED_KEYS = ("socket", "slot", "rank", "bank", "row", "col", "bit", "addr", "synd")


def _parse_line(line: str) -> dict:
    parts = line.split()
    # [timestamp, host, 'kernel:', 'EDAC', 'CE', kv...]
    if len(parts) < 13 or parts[3] != "EDAC" or parts[4] != "CE":
        raise ValueError("not a CE record")
    return _parse_fields(parts, require=True)


def _repair_line(line: str) -> dict:
    """Salvage a truncated CE line: present fields win, the rest default.

    A line qualifies for repair when its head (timestamp, host, EDAC CE
    marker) survived; missing trailing key=value fields take the same
    sentinels payload-less storm records already use.
    """
    parts = line.split()
    if len(parts) < 5 or parts[3] != "EDAC" or parts[4] != "CE":
        raise ValueError("not a repairable CE record")
    return _parse_fields(parts)


def _parse_fields(parts: list[str], require: bool = False) -> dict:
    t = float(np.datetime64(parts[0]).astype("datetime64[s]").astype(np.int64))
    host = parts[1]
    if not host.startswith("astra-n"):
        raise ValueError("unknown host format")
    node = int(host[len("astra-n") :])
    kv = {p.split("=", 1)[0]: p for p in parts[5:] if "=" in p}
    if require:
        missing = [k for k in _REQUIRED_KEYS if k not in kv]
        if missing:
            raise ValueError(f"missing fields: {', '.join(missing)}")

    def get_int(key: str, default: int = -1) -> int:
        return _parse_int(kv[key], default) if key in kv else default

    slot_tok = kv["slot"].split("=", 1)[1] if "slot" in kv else "-"
    return dict(
        time=t,
        node=node,
        socket=get_int("socket", 0),
        slot=-1 if slot_tok == "-" else slot_index(slot_tok),
        rank=get_int("rank", 0),
        bank=get_int("bank"),
        row=get_int("row"),
        column=get_int("col"),
        bit_pos=get_int("bit"),
        address=get_int("addr", 0),
        syndrome=get_int("synd", 0),
    )
