"""BMC sensor logs: per-minute samples as CSV.

Section 2.2: each node's BMC reports six temperature sensors and one DC
power sensor once per minute into a back-end database; the release ships
them as text.  Format::

    timestamp,node,sensor,value
    2019-06-01T00:00:00,0123,dimm_jlnp,41.50

Raw logs include the invalid samples a real BMC produces (stuck zeros,
impossible power readings); :func:`filter_valid_samples` applies the same
sub-1% exclusion the paper describes.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import iso
from repro.logs import fastpath
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    MalformedRecordError,
    Quarantine,
    fastpath_enabled,
    ingest_lines,
    ingest_stream_fast,
    resort_by_time,
)
from repro.machine.sensors import NodeSensorComplement

#: Last epoch second that renders as a 19-char ISO timestamp (year 9999).
_ISO_MAX_S = 253402300800

#: One sensor sample.
SENSOR_SAMPLE_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("node", np.int32),
        ("sensor", np.int8),
        ("value", np.float32),
    ]
)


def _fixed2_digits(vals):
    """``%.2f`` as integer hundredths; ``None`` -> caller goes slow.

    ``round(v * 100)`` half-even equals Python's ``%.2f`` except when
    the float product lands within one ulp of a rounding tie -- there
    the tie direction depends on decimal digits the product cannot
    represent, so those (vanishingly rare) rows are re-derived from
    Python's own formatting.
    """
    v64 = np.asarray(vals, dtype=np.float64)
    if not np.all(np.isfinite(v64)):
        return None, None
    v100 = np.abs(v64) * 100.0
    if np.any(v100 >= 1e15):
        return None, None
    q = np.round(v100).astype(np.int64)
    danger = np.abs(v100 - np.floor(v100) - 0.5) <= np.maximum(
        1e-6, np.spacing(v100)
    )
    for i in np.flatnonzero(danger).tolist():
        whole, frac = f"{abs(v64[i]):.2f}".split(".")
        q[i] = int(whole) * 100 + int(frac)
    return q, np.signbit(v64).astype(np.int64)


def _emit_bmc_chunk(tt, nn, name: str, vals) -> bytes | None:
    """Render one (time-chunk, sensor) batch column-wise; None -> slow."""
    if not np.all(np.isfinite(tt)):
        return None
    t64 = np.asarray(tt).astype(np.int64)
    if np.any(t64 < 0) or np.any(t64 >= _ISO_MAX_S) or np.any(nn < 0):
        return None
    q, neg = _fixed2_digits(vals)
    if q is None:
        return None
    return fastpath.build_lines(
        int(t64.size),
        [
            fastpath.iso_bytes(t64),
            b",",
            fastpath.uint_digits(nn, 4),
            b"," + name.encode("utf-8") + b",",
            fastpath.choice_bytes(neg, [b"", b"-"]),
            fastpath.uint_digits(q // 100),
            b".",
            fastpath.uint_digits(q % 100, 2),
        ],
    )


def write_bmc_log(
    path: str | os.PathLike,
    sensor_model,
    node_ids,
    t0: float,
    t1: float,
    cadence_s: float = 60.0,
    sensors: tuple[int, ...] | None = None,
    fast: bool = True,
) -> int:
    """Sample the sensor field and write a BMC CSV; returns sample count.

    Samples every ``cadence_s`` seconds in ``[t0, t1)`` for each node and
    sensor.  Raw (possibly invalid) readings are written, as a BMC would.
    """
    if t1 <= t0:
        raise ValueError("empty time window")
    complement = NodeSensorComplement()
    sensor_list = sensors if sensors is not None else tuple(range(len(complement)))
    names = complement.names
    nodes = np.asarray(node_ids, dtype=np.int64)
    times = np.arange(t0, t1, cadence_s)

    n = 0
    use_fast = fastpath_enabled(fast)
    with open(path, "wb") as fh:
        fh.write(b"timestamp,node,sensor,value\n")
        for t_chunk_start in range(0, times.size, 4096):
            t_chunk = times[t_chunk_start : t_chunk_start + 4096]
            for s in sensor_list:
                # node-major within the chunk for locality
                tt = np.repeat(t_chunk, nodes.size)
                nn = np.tile(nodes, t_chunk.size)
                vals = sensor_model.raw_samples(nn, np.full(nn.size, s), tt)
                payload = (
                    _emit_bmc_chunk(tt, nn, names[s], vals)
                    if use_fast and tt.size else None
                )
                if payload is None:
                    lines = [
                        f"{iso(t)},{node:04d},{names[s]},{v:.2f}"
                        for t, node, v in zip(tt, nn, vals)
                    ]
                    payload = ("\n".join(lines) + "\n").encode("utf-8")
                fh.write(payload)
                n += int(tt.size)
    return n


def _parse_sample_line(line: str, name_to_idx: dict) -> tuple:
    ts, node, name, value = line.split(",")
    t = float(np.datetime64(ts).astype("datetime64[s]").astype(np.int64))
    return (t, int(node), name_to_idx[name], float(value))


def _rows_to_samples(rows: list[tuple]) -> np.ndarray:
    out = np.zeros(len(rows), dtype=SENSOR_SAMPLE_DTYPE)
    for i, row in enumerate(rows):
        out[i] = row
    return out


def _make_fast_bmc_chunk(names):
    """Build the column-wise parser for one ingest's sensor vocabulary."""
    vocab = [name.encode("utf-8") for name in names]

    def fast_chunk(chunk: "fastpath.Chunk"):
        data = chunk.data
        ts, te, ok = fastpath.split_tokens(
            data, chunk.starts, chunk.ends, 4, sep=44
        )
        t_sec, ok_t = fastpath.parse_iso_seconds(data, ts[:, 0], te[:, 0])
        ok &= ok_t
        node, ok_n = fastpath.parse_uint(data, ts[:, 1], te[:, 1])
        ok &= ok_n & (node <= np.iinfo(np.int32).max)
        sensor, ok_s = fastpath.match_vocab(data, ts[:, 2], te[:, 2], vocab)
        ok &= ok_s
        value, ok_v = fastpath.parse_decimal(data, ts[:, 3], te[:, 3])
        ok &= ok_v

        out = np.zeros(int(np.count_nonzero(ok)), dtype=SENSOR_SAMPLE_DTYPE)
        out["time"] = t_sec[ok]
        out["node"] = node[ok]
        out["sensor"] = sensor[ok]
        out["value"] = value[ok]
        return out, ok

    return fast_chunk


def ingest_bmc_log(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
    fast: bool = True,
) -> tuple[np.ndarray, IngestStats]:
    """Parse a BMC CSV under an ingest policy; returns (samples, stats).

    A missing header raises under ``strict``; the lenient policies fall
    back to treating the first line as data (the header itself fails to
    parse and is quarantined, so it still shows up in the accounting).
    ``fast`` selects the chunked column-wise parser (identical results;
    see DESIGN.md section 9).
    """
    from repro import obs

    policy = IngestPolicy.coerce(policy)
    complement = NodeSensorComplement()
    name_to_idx = {name: i for i, name in enumerate(complement.names)}
    stats = IngestStats(family="sensors", source="text")
    sidecar = Quarantine(path) if quarantine else None

    def parse(line: str) -> tuple:
        return _parse_sample_line(line, name_to_idx)

    with obs.span("ingest.sensors", attrs={"policy": policy.value}) as sp:
        if fastpath_enabled(fast):
            with open(path, "rb") as fh:
                header = fh.readline()
                if not header.startswith(b"timestamp,"):
                    if policy is IngestPolicy.STRICT:
                        raise MalformedRecordError(
                            "sensors", path, 1,
                            header.decode("utf-8").strip(), "missing header",
                        )
                    fh.seek(0)
                batches = list(
                    ingest_stream_fast(
                        fh, parse, stats, policy, sidecar,
                        fast_chunk=_make_fast_bmc_chunk(complement.names),
                        rows_to_records=_rows_to_samples,
                    )
                )
            out = (
                np.concatenate(batches) if batches
                else np.zeros(0, dtype=SENSOR_SAMPLE_DTYPE)
            )
        else:
            with open(path) as fh:
                header = fh.readline()
                if not header.startswith("timestamp,"):
                    if policy is IngestPolicy.STRICT:
                        raise MalformedRecordError(
                            "sensors", path, 1, header.strip(), "missing header"
                        )
                    fh.seek(0)
                rows = list(ingest_lines(fh, parse, stats, policy, sidecar))
            out = _rows_to_samples(rows)
        if sidecar is not None:
            sidecar.flush()
        out = resort_by_time(out, stats, policy)
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return out, stats


def read_bmc_log(path: str | os.PathLike) -> np.ndarray:
    """Parse a BMC CSV into a SENSOR_SAMPLE_DTYPE array (strict)."""
    samples, _ = ingest_bmc_log(path, policy=IngestPolicy.STRICT, quarantine=False)
    return samples


def sensor_dropout_windows(
    samples: np.ndarray, cadence_s: float = 60.0, min_gap: float = 3.0
) -> list[tuple[float, float]]:
    """Detect BMC reporting gaps: windows with no samples from any node.

    A gap longer than ``min_gap`` cadences between consecutive distinct
    sample timestamps is reported as a ``(start, end)`` dropout window --
    the sensor-side analogue of the syslog truncations the ingest layer
    quarantines.  Experiments can subtract these windows from their
    denominator instead of treating silence as healthy telemetry.
    """
    if samples.size == 0:
        return []
    times = np.unique(samples["time"])
    if times.size < 2:
        return []
    gaps = np.diff(times)
    idx = np.nonzero(gaps > min_gap * cadence_s)[0]
    return [(float(times[i]), float(times[i + 1])) for i in idx]


def filter_valid_samples(samples: np.ndarray) -> tuple[np.ndarray, float]:
    """Drop invalid samples; returns (valid_samples, excluded_fraction).

    Mirrors the paper's exclusion of non-functioning sensor readings and
    clearly-invalid power values (section 2.2); the excluded fraction on
    Astra was well under 1%.
    """
    if samples.dtype != SENSOR_SAMPLE_DTYPE:
        raise ValueError(f"expected SENSOR_SAMPLE_DTYPE, got {samples.dtype}")
    if samples.size == 0:
        return samples.copy(), 0.0
    complement = NodeSensorComplement()
    ok = complement.is_valid_sample(samples["sensor"], samples["value"])
    return samples[ok], float(1.0 - ok.mean())
