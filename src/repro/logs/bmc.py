"""BMC sensor logs: per-minute samples as CSV.

Section 2.2: each node's BMC reports six temperature sensors and one DC
power sensor once per minute into a back-end database; the release ships
them as text.  Format::

    timestamp,node,sensor,value
    2019-06-01T00:00:00,0123,dimm_jlnp,41.50

Raw logs include the invalid samples a real BMC produces (stuck zeros,
impossible power readings); :func:`filter_valid_samples` applies the same
sub-1% exclusion the paper describes.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import iso
from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    MalformedRecordError,
    Quarantine,
    ingest_lines,
    resort_by_time,
)
from repro.machine.sensors import NodeSensorComplement

#: One sensor sample.
SENSOR_SAMPLE_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("node", np.int32),
        ("sensor", np.int8),
        ("value", np.float32),
    ]
)


def write_bmc_log(
    path: str | os.PathLike,
    sensor_model,
    node_ids,
    t0: float,
    t1: float,
    cadence_s: float = 60.0,
    sensors: tuple[int, ...] | None = None,
) -> int:
    """Sample the sensor field and write a BMC CSV; returns sample count.

    Samples every ``cadence_s`` seconds in ``[t0, t1)`` for each node and
    sensor.  Raw (possibly invalid) readings are written, as a BMC would.
    """
    if t1 <= t0:
        raise ValueError("empty time window")
    complement = NodeSensorComplement()
    sensor_list = sensors if sensors is not None else tuple(range(len(complement)))
    names = complement.names
    nodes = np.asarray(node_ids, dtype=np.int64)
    times = np.arange(t0, t1, cadence_s)

    n = 0
    with open(path, "w") as fh:
        fh.write("timestamp,node,sensor,value\n")
        for t_chunk_start in range(0, times.size, 4096):
            t_chunk = times[t_chunk_start : t_chunk_start + 4096]
            for s in sensor_list:
                # node-major within the chunk for locality
                tt = np.repeat(t_chunk, nodes.size)
                nn = np.tile(nodes, t_chunk.size)
                vals = sensor_model.raw_samples(nn, np.full(nn.size, s), tt)
                lines = [
                    f"{iso(t)},{node:04d},{names[s]},{v:.2f}"
                    for t, node, v in zip(tt, nn, vals)
                ]
                fh.write("\n".join(lines))
                fh.write("\n")
                n += len(lines)
    return n


def _parse_sample_line(line: str, name_to_idx: dict) -> tuple:
    ts, node, name, value = line.split(",")
    t = float(np.datetime64(ts).astype("datetime64[s]").astype(np.int64))
    return (t, int(node), name_to_idx[name], float(value))


def ingest_bmc_log(
    path: str | os.PathLike,
    policy: IngestPolicy | str = IngestPolicy.REPAIR,
    quarantine: bool = True,
) -> tuple[np.ndarray, IngestStats]:
    """Parse a BMC CSV under an ingest policy; returns (samples, stats).

    A missing header raises under ``strict``; the lenient policies fall
    back to treating the first line as data (the header itself fails to
    parse and is quarantined, so it still shows up in the accounting).
    """
    from repro import obs

    policy = IngestPolicy.coerce(policy)
    complement = NodeSensorComplement()
    name_to_idx = {name: i for i, name in enumerate(complement.names)}
    stats = IngestStats(family="sensors", source="text")
    sidecar = Quarantine(path) if quarantine else None

    def parse(line: str) -> tuple:
        return _parse_sample_line(line, name_to_idx)

    with obs.span("ingest.sensors", attrs={"policy": policy.value}) as sp:
        with open(path) as fh:
            header = fh.readline()
            if not header.startswith("timestamp,"):
                if policy is IngestPolicy.STRICT:
                    raise MalformedRecordError(
                        "sensors", path, 1, header.strip(), "missing header"
                    )
                fh.seek(0)
            rows = list(ingest_lines(fh, parse, stats, policy, sidecar))
        if sidecar is not None:
            sidecar.flush()
        out = np.zeros(len(rows), dtype=SENSOR_SAMPLE_DTYPE)
        for i, row in enumerate(rows):
            out[i] = row
        out = resort_by_time(out, stats, policy)
        stats.check_invariant()
        sp.add(**obs.record_ingest(stats))
    return out, stats


def read_bmc_log(path: str | os.PathLike) -> np.ndarray:
    """Parse a BMC CSV into a SENSOR_SAMPLE_DTYPE array (strict)."""
    samples, _ = ingest_bmc_log(path, policy=IngestPolicy.STRICT, quarantine=False)
    return samples


def sensor_dropout_windows(
    samples: np.ndarray, cadence_s: float = 60.0, min_gap: float = 3.0
) -> list[tuple[float, float]]:
    """Detect BMC reporting gaps: windows with no samples from any node.

    A gap longer than ``min_gap`` cadences between consecutive distinct
    sample timestamps is reported as a ``(start, end)`` dropout window --
    the sensor-side analogue of the syslog truncations the ingest layer
    quarantines.  Experiments can subtract these windows from their
    denominator instead of treating silence as healthy telemetry.
    """
    if samples.size == 0:
        return []
    times = np.unique(samples["time"])
    if times.size < 2:
        return []
    gaps = np.diff(times)
    idx = np.nonzero(gaps > min_gap * cadence_s)[0]
    return [(float(times[i]), float(times[i + 1])) for i in idx]


def filter_valid_samples(samples: np.ndarray) -> tuple[np.ndarray, float]:
    """Drop invalid samples; returns (valid_samples, excluded_fraction).

    Mirrors the paper's exclusion of non-functioning sensor readings and
    clearly-invalid power values (section 2.2); the excluded fraction on
    Astra was well under 1%.
    """
    if samples.dtype != SENSOR_SAMPLE_DTYPE:
        raise ValueError(f"expected SENSOR_SAMPLE_DTYPE, got {samples.dtype}")
    if samples.size == 0:
        return samples.copy(), 0.0
    complement = NodeSensorComplement()
    ok = complement.is_valid_sample(samples["sensor"], samples["value"])
    return samples[ok], float(1.0 - ok.mean())
