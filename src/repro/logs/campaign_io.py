"""Writing and loading whole campaign directories.

``write_campaign`` lays a campaign out the way the paper's data release is
described (section 2.4): text logs per family, plus fast binary mirrors
and a small manifest.  ``load_campaign_records`` reads the binary mirrors
back for analysis.

Directory layout::

    <dir>/manifest.txt
    <dir>/ce.log            # syslog CE records (text)
    <dir>/het.log           # HET records (text)
    <dir>/errors.npy        # binary mirrors
    <dir>/replacements.npy
    <dir>/het.npy
    <dir>/shards/           # per-rack error shards (optional)

Sensor data is functional (the stateless field model); materialised BMC
logs are written on demand via :func:`repro.logs.bmc.write_bmc_log`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.faults.types import ERROR_DTYPE
from repro.logs.het import write_het_log
from repro.logs.store import load_records, save_records, shard_by_rack
from repro.logs.syslog import write_ce_log
from repro.synth.campaign import Campaign
from repro.synth.het import HET_DTYPE
from repro.synth.replacements import REPLACEMENT_DTYPE


def write_campaign(
    campaign: Campaign,
    directory: str | os.PathLike,
    text_logs: bool = True,
    shards: bool = False,
) -> Path:
    """Write a campaign to ``directory``; returns the directory path.

    ``text_logs`` controls the (slower) paper-faithful text formats;
    binary mirrors are always written.  ``shards`` additionally writes
    per-rack error shards for the parallel engine.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    save_records(directory / "errors.npy", campaign.errors)
    save_records(directory / "replacements.npy", campaign.replacements)
    save_records(directory / "het.npy", campaign.het)

    if text_logs:
        write_ce_log(campaign.errors, directory / "ce.log")
        write_het_log(campaign.het, directory / "het.log")
    if shards:
        shard_by_rack(campaign.errors, directory / "shards", campaign.topology)

    with open(directory / "manifest.txt", "w") as fh:
        fh.write(
            "astra-memrepro campaign\n"
            f"seed={campaign.seed}\n"
            f"scale={campaign.scale}\n"
            f"n_errors={campaign.n_errors}\n"
            f"n_replacements={campaign.replacements.size}\n"
            f"n_het={campaign.het.size}\n"
        )
    return directory


@dataclass
class CampaignRecords:
    """The binary record streams of a stored campaign."""

    errors: np.ndarray
    replacements: np.ndarray
    het: np.ndarray
    seed: int
    scale: float


def campaign_from_records(records: "CampaignRecords") -> Campaign:
    """Rebuild an analysable Campaign from stored record streams.

    The sensor field is regenerated deterministically from the stored
    seed (it is a pure function, not data); the ground-truth fault
    population is not reconstructable from records and is left ``None``
    -- every analysis works from the record streams alone, exactly as
    the real study did.
    """
    from repro.machine.cooling import CoolingModel
    from repro.machine.dram import AddressMap
    from repro.machine.node import NodeConfig
    from repro.machine.topology import AstraTopology
    from repro.synth.config import PaperCalibration
    from repro.synth.sensors import SensorFieldModel

    topology = AstraTopology()
    node_config = NodeConfig()
    return Campaign(
        seed=records.seed,
        scale=records.scale,
        calibration=PaperCalibration(),
        topology=topology,
        node_config=node_config,
        address_map=AddressMap(),
        population=None,
        errors=records.errors,
        replacements=records.replacements,
        het=records.het,
        sensors=SensorFieldModel(
            seed=records.seed, cooling=CoolingModel(topology=topology)
        ),
    )


def load_campaign_records(directory: str | os.PathLike) -> CampaignRecords:
    """Load the binary mirrors of a campaign directory."""
    directory = Path(directory)
    manifest = {}
    with open(directory / "manifest.txt") as fh:
        for line in fh:
            if "=" in line:
                key, value = line.strip().split("=", 1)
                manifest[key] = value
    return CampaignRecords(
        errors=load_records(directory / "errors.npy", ERROR_DTYPE),
        replacements=load_records(directory / "replacements.npy", REPLACEMENT_DTYPE),
        het=load_records(directory / "het.npy", HET_DTYPE),
        seed=int(manifest.get("seed", -1)),
        scale=float(manifest.get("scale", 1.0)),
    )
