"""Writing and loading whole campaign directories.

``write_campaign`` lays a campaign out the way the paper's data release is
described (section 2.4): text logs per family, plus fast binary mirrors
and a small manifest.  ``load_campaign_records`` reads the binary mirrors
back for analysis; when a mirror is missing or corrupt it falls back to
re-parsing the text log (under the caller's ingest policy), and raises a
typed :class:`~repro.logs.ingest.CampaignFormatError` -- naming the file
and the expected layout -- when no recovery path exists.

Directory layout::

    <dir>/manifest.txt
    <dir>/ce.log            # syslog CE records (text)
    <dir>/het.log           # HET records (text)
    <dir>/errors.npy        # binary mirrors
    <dir>/replacements.npy
    <dir>/het.npy
    <dir>/shards/           # per-rack error shards (optional)

Sensor data is functional (the stateless field model); materialised BMC
logs are written on demand via :func:`repro.logs.bmc.write_bmc_log`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.types import ERROR_DTYPE
from repro.logs.het import ingest_het_log, write_het_log
from repro.logs.ingest import CampaignFormatError, IngestPolicy, IngestStats
from repro.logs.store import load_records, save_records, shard_by_rack
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.synth.campaign import Campaign
from repro.synth.het import HET_DTYPE
from repro.synth.replacements import REPLACEMENT_DTYPE


def write_campaign(
    campaign: Campaign,
    directory: str | os.PathLike,
    text_logs: bool = True,
    shards: bool = False,
    fast: bool = True,
) -> Path:
    """Write a campaign to ``directory``; returns the directory path.

    ``text_logs`` controls the (slower) paper-faithful text formats;
    binary mirrors are always written.  ``shards`` additionally writes
    per-rack error shards for the parallel engine.  ``fast`` selects the
    column-wise text emitters (identical bytes).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    save_records(directory / "errors.npy", campaign.errors)
    save_records(directory / "replacements.npy", campaign.replacements)
    save_records(directory / "het.npy", campaign.het)

    if text_logs:
        write_ce_log(campaign.errors, directory / "ce.log", fast=fast)
        write_het_log(campaign.het, directory / "het.log", fast=fast)
    if shards:
        shard_by_rack(campaign.errors, directory / "shards", campaign.topology)

    with open(directory / "manifest.txt", "w") as fh:
        fh.write(
            "astra-memrepro campaign\n"
            f"seed={campaign.seed}\n"
            f"scale={campaign.scale}\n"
            f"n_errors={campaign.n_errors}\n"
            f"n_replacements={campaign.replacements.size}\n"
            f"n_het={campaign.het.size}\n"
        )
    return directory


@dataclass
class CampaignRecords:
    """The binary record streams of a stored campaign."""

    errors: np.ndarray
    replacements: np.ndarray
    het: np.ndarray
    seed: int
    scale: float
    #: Per-family :class:`IngestStats` describing how each stream was
    #: recovered (binary mirror, text fallback, or missing).
    ingest: dict = field(default_factory=dict)


def campaign_from_records(records: "CampaignRecords") -> Campaign:
    """Rebuild an analysable Campaign from stored record streams.

    The sensor field is regenerated deterministically from the stored
    seed (it is a pure function, not data); the ground-truth fault
    population is not reconstructable from records and is left ``None``
    -- every analysis works from the record streams alone, exactly as
    the real study did.
    """
    from repro.machine.cooling import CoolingModel
    from repro.machine.dram import AddressMap
    from repro.machine.node import NodeConfig
    from repro.machine.topology import AstraTopology
    from repro.synth.config import PaperCalibration
    from repro.synth.sensors import SensorFieldModel

    topology = AstraTopology()
    node_config = NodeConfig()
    return Campaign(
        seed=records.seed,
        scale=records.scale,
        calibration=PaperCalibration(),
        topology=topology,
        node_config=node_config,
        address_map=AddressMap(),
        population=None,
        errors=records.errors,
        replacements=records.replacements,
        het=records.het,
        sensors=SensorFieldModel(
            seed=records.seed, cooling=CoolingModel(topology=topology)
        ),
        ingest=dict(records.ingest),
    )


def _load_family(
    directory: Path,
    npy_name: str,
    dtype,
    family: str,
    text_loader,
    policy: IngestPolicy,
    fast: bool = True,
) -> tuple[np.ndarray, IngestStats]:
    """Load one record family: binary mirror, else text log, else policy.

    Returns ``(records, stats)``.  A healthy mirror counts every record
    as parsed; a corrupt/missing mirror falls back to re-parsing the
    text log when one exists.  With neither source, ``strict`` raises
    :class:`CampaignFormatError` and the lenient policies return an
    empty stream flagged ``missing`` (zero coverage) so downstream
    experiments degrade instead of crashing.
    """
    from repro import obs

    npy_path = directory / npy_name
    mirror_problem = None
    with obs.span(f"ingest.{family}") as sp:
        try:
            # verify=True checks the .crc32c sidecar first, so payload
            # damage the npy header cannot reveal (torn tail, flipped
            # bit) also routes into the text fallback below.
            records = load_records(npy_path, dtype, verify=True)
        except (OSError, ValueError, EOFError) as exc:
            mirror_problem = f"{type(exc).__name__}: {exc}"
            sp.set("error", mirror_problem)
        else:
            stats = IngestStats(
                family=family, seen=int(records.size), parsed=int(records.size),
                source="binary",
            )
            sp.set("source", "binary")
            sp.add(**obs.record_ingest(stats))
            return records, stats

    if text_loader is not None:
        text_path, loader = text_loader
        if (directory / text_path).exists():
            records, stats = loader(directory / text_path, policy, fast)
            stats.source = "text-fallback"
            return records, stats

    if policy is IngestPolicy.STRICT:
        fallback = (
            f"no {text_loader[0]} text fallback" if text_loader is not None
            else "no text fallback exists for this family"
        )
        raise CampaignFormatError(
            npy_path,
            f"binary mirror for {family!r} unreadable ({mirror_problem}; "
            f"{fallback})",
        )
    stats = IngestStats(family=family, missing=True, source="missing")
    obs.record_ingest(stats)
    return np.zeros(0, dtype=dtype), stats


def _ce_text_loader(path, policy, fast=True):
    result = ingest_ce_log(path, policy=policy, fast=fast)
    return result.errors, result.stats


def _het_text_loader(path, policy, fast=True):
    return ingest_het_log(path, policy=policy, fast=fast)


def load_campaign_records(
    directory: str | os.PathLike,
    policy: IngestPolicy | str | None = None,
    fast: bool = True,
) -> CampaignRecords:
    """Load the binary mirrors of a campaign directory.

    ``policy`` governs what happens when a mirror is missing or corrupt:
    under ``strict`` (the default) a typed :class:`CampaignFormatError`
    names the offending file and the expected layout, after trying the
    text-log fallback; ``repair``/``skip`` additionally tolerate
    families with no source at all, returning empty streams with zero
    coverage.  Per-family :class:`IngestStats` ride along on the
    returned records.
    """
    directory = Path(directory)
    policy = IngestPolicy.coerce(policy)
    manifest_path = directory / "manifest.txt"
    if not manifest_path.exists():
        raise CampaignFormatError(
            manifest_path,
            "not a campaign directory (manifest.txt missing)",
        )
    manifest = {}
    with open(manifest_path) as fh:
        for line in fh:
            if "=" in line:
                key, value = line.strip().split("=", 1)
                manifest[key] = value

    from repro import obs

    with obs.span(
        "ingest.campaign", attrs={"dir": str(directory), "policy": policy.value}
    ):
        errors, e_stats = _load_family(
            directory, "errors.npy", ERROR_DTYPE, "errors",
            ("ce.log", _ce_text_loader), policy, fast,
        )
        replacements, r_stats = _load_family(
            directory, "replacements.npy", REPLACEMENT_DTYPE, "replacements",
            None, policy, fast,
        )
        het, h_stats = _load_family(
            directory, "het.npy", HET_DTYPE, "het",
            ("het.log", _het_text_loader), policy, fast,
        )
    try:
        seed = int(manifest.get("seed", -1))
        scale = float(manifest.get("scale", 1.0))
    except ValueError as exc:
        raise CampaignFormatError(
            manifest_path, f"unreadable seed/scale ({exc})"
        ) from exc
    return CampaignRecords(
        errors=errors,
        replacements=replacements,
        het=het,
        seed=seed,
        scale=scale,
        ingest={"errors": e_stats, "replacements": r_stats, "het": h_stats},
    )
