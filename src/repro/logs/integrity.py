"""Shard integrity: CRC-32C content checksums and sidecar verification.

``.npy`` carries no checksum, so a torn write (crash mid-``write``), a
truncated copy, or a flipped bit in the payload is consumed as truth --
the header still parses and the damage silently poisons every reduction
downstream.  This module closes that hole the way production object
stores do: every binary shard/mirror gets a ``<name>.crc32c`` sidecar
written at synthesis time (CRC-32C of the full file bytes, Castagnoli
polynomial -- the same checksum ext4, iSCSI and most object stores
use), and loads verify it before the payload is trusted.  A mismatch
raises the typed :class:`ShardIntegrityError` (a ``ValueError``
subclass, so existing binary-mirror -> text-log fallback ladders treat
it exactly like an unreadable mirror), which the fleet supervisor
routes into the quarantine path instead of the reduction.

The checksum itself is computed without native dependencies at useful
speed: the register update for one byte is GF(2)-linear, so the payload
is split into fixed-width chunks whose partial CRCs are computed in
lock-step with numpy table gathers (one Python iteration per *column*
of the chunk matrix, not per byte) and then folded together with a
precomputed "advance by one chunk of zeros" linear operator.  Small
buffers take a scalar slicing-by-8 path where numpy overhead would
dominate.  Both paths produce standard CRC-32C values (e.g.
``crc32c(b"123456789") == 0xE3069283``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

#: CRC-32C (Castagnoli), reflected representation.
_POLY = 0x82F63B78

#: Chunk width for the vectorised path: one Python iteration per byte
#: column, so wider chunks mean fewer, fatter gathers.  4 KiB keeps the
#: fold loop (one iteration per chunk) short without needing huge rows.
_CHUNK = 4096

#: Buffers below this take the scalar path (numpy setup costs more than
#: it saves on a few KiB).
_VECTOR_MIN = 64 * 1024

#: Sidecar suffix appended to the checksummed file's own name, chosen so
#: ``*.npy`` globs never match a sidecar.
SIDECAR_SUFFIX = ".crc32c"


class ShardIntegrityError(ValueError):
    """A binary shard/mirror failed its content checksum.

    Subclasses ``ValueError`` so every existing "unreadable mirror"
    except-ladder (binary -> text fallback, CLI exit-2 mapping) handles
    a checksum mismatch exactly like a corrupt npy header, while
    callers that care (the fleet supervisor's quarantine path) can
    match the precise type.
    """

    def __init__(self, path, reason: str):
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which needs (path, reason) -- so a
        # worker-raised instance would fail to unpickle in the parent
        # and be misclassified as a retryable pool error.
        return (type(self), (str(self.path), self.reason))


# ----------------------------------------------------------------------
# CRC-32C kernels
# ----------------------------------------------------------------------
def _make_tables(n: int = 8) -> np.ndarray:
    """Slicing tables: ``T[k][b]`` advances byte ``b`` past ``k`` more bytes."""
    t = np.zeros((n, 256), dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ _POLY if c & 1 else c >> 1
        t[0, i] = c
    for k in range(1, n):
        for i in range(256):
            c = int(t[k - 1, i])
            t[k, i] = int(t[0, c & 0xFF]) ^ (c >> 8)
    return t


_T = _make_tables(8)
#: Python-int copies for the scalar loop (uint32 indexing is slower).
_TL = [row.tolist() for row in _T]


def _update_scalar(reg: int, data) -> int:
    """Advance the raw CRC register over ``data``, slicing-by-8."""
    t0, t1, t2, t3, t4, t5, t6, t7 = _TL
    mv = memoryview(data).cast("B")
    n = len(mv)
    i = 0
    end8 = n - (n % 8)
    while i < end8:
        b = mv[i : i + 8]
        reg = (
            t7[(reg ^ b[0]) & 0xFF]
            ^ t6[((reg >> 8) ^ b[1]) & 0xFF]
            ^ t5[((reg >> 16) ^ b[2]) & 0xFF]
            ^ t4[((reg >> 24) ^ b[3]) & 0xFF]
            ^ t3[b[4]]
            ^ t2[b[5]]
            ^ t1[b[6]]
            ^ t0[b[7]]
        )
        i += 8
    while i < n:
        reg = t0[(reg ^ mv[i]) & 0xFF] ^ (reg >> 8)
        i += 1
    return reg


def _byte_matrix() -> np.ndarray:
    """The one-zero-byte register advance as a GF(2) matrix.

    Column ``j`` is the register produced from the basis register
    ``1 << j``; applying the operator is XOR-ing the columns selected
    by the input's set bits.
    """
    cols = np.zeros(32, dtype=np.uint32)
    for j in range(32):
        cols[j] = _update_scalar(1 << j, b"\x00")
    return cols


def _mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Compose two 32-column GF(2) operators (apply ``b``, then ``a``)."""
    out = np.zeros(32, dtype=np.uint32)
    for j in range(32):
        v = int(b[j])
        acc = 0
        k = 0
        while v:
            if v & 1:
                acc ^= int(a[k])
            v >>= 1
            k += 1
        out[j] = acc
    return out


def _operator_tables(mat: np.ndarray) -> np.ndarray:
    """Expand a GF(2) operator into 4x256 byte-indexed XOR tables."""
    tables = np.zeros((4, 256), dtype=np.uint32)
    for byte_idx in range(4):
        for value in range(256):
            acc = 0
            for bit in range(8):
                if value >> bit & 1:
                    acc ^= int(mat[byte_idx * 8 + bit])
            tables[byte_idx, value] = acc
    return tables


def _advance_tables(n_bytes: int) -> np.ndarray:
    """Tables applying "advance register past ``n_bytes`` zero bytes"."""
    mat = _byte_matrix()
    # mat currently advances 1 byte; exponentiate to n_bytes.
    result = None
    power = mat
    n = n_bytes
    while n:
        if n & 1:
            result = power if result is None else _mat_mul(power, result)
        n >>= 1
        power = _mat_mul(power, power)
    assert result is not None
    return _operator_tables(result)


#: Fold operator for one full chunk of zeros, built once at import.
_FOLD = _advance_tables(_CHUNK)


def _apply_fold(reg: int) -> int:
    """Advance ``reg`` past one chunk width of zero bytes."""
    return int(
        _FOLD[0, reg & 0xFF]
        ^ _FOLD[1, (reg >> 8) & 0xFF]
        ^ _FOLD[2, (reg >> 16) & 0xFF]
        ^ _FOLD[3, (reg >> 24) & 0xFF]
    )


def _update_vector(reg: int, data: np.ndarray) -> int:
    """Advance the register over a large buffer, chunk-parallel.

    The first ``K * _CHUNK`` bytes become a ``K x _CHUNK`` matrix whose
    per-chunk partial CRCs (zero initial register) are computed with one
    table gather per byte column; the serial dependency collapses to a
    ``K``-step fold of 4 table lookups each.  The tail shorter than one
    chunk finishes on the scalar path.
    """
    n = data.size
    k = n // _CHUNK
    body = data[: k * _CHUNK].reshape(k, _CHUNK)
    t0 = _T[0]
    z = np.zeros(k, dtype=np.uint32)
    for col in range(_CHUNK):
        z = t0[(z ^ body[:, col]) & np.uint32(0xFF)] ^ (z >> np.uint32(8))
    for partial in z.tolist():
        reg = _apply_fold(reg) ^ int(partial)
    tail = data[k * _CHUNK :]
    if tail.size:
        reg = _update_scalar(reg, tail.tobytes())
    return reg


def crc32c(data, value: int = 0) -> int:
    """Standard CRC-32C of ``data`` (bytes-like), optionally chained.

    ``value`` is a previous :func:`crc32c` result to continue from, so
    large files can be checksummed in streamed blocks.
    """
    reg = (~value) & 0xFFFFFFFF
    buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
    if buf.size >= _VECTOR_MIN:
        reg = _update_vector(reg, buf)
    else:
        reg = _update_scalar(reg, buf.tobytes())
    return (~reg) & 0xFFFFFFFF


def crc32c_file(path: str | os.PathLike, block_bytes: int = 1 << 24) -> tuple:
    """``(crc32c, size)`` of a file's full contents, read in blocks."""
    value = 0
    size = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(block_bytes)
            if not block:
                break
            value = crc32c(block, value)
            size += len(block)
    return value, size


# ----------------------------------------------------------------------
# Sidecars
# ----------------------------------------------------------------------
def sidecar_path(path: str | os.PathLike) -> Path:
    """The checksum sidecar belonging to ``path``."""
    path = Path(path)
    return path.with_name(path.name + SIDECAR_SUFFIX)


def write_checksum(path: str | os.PathLike) -> Path:
    """Checksum ``path`` and write its sidecar; returns the sidecar path."""
    value, size = crc32c_file(path)
    doc = {"algorithm": "crc32c", "crc32c": f"{value:08x}", "size": size}
    side = sidecar_path(path)
    side.write_text(json.dumps(doc) + "\n")
    return side


def verify_checksum(path: str | os.PathLike, required: bool = False) -> bool:
    """Verify ``path`` against its sidecar, if one exists.

    Returns ``True`` when the checksum was present and matched and
    ``False`` when no sidecar exists (legacy data; ``required=True``
    turns that into an error).  Any mismatch -- wrong length (torn or
    truncated write) or wrong CRC (bit damage) -- raises
    :class:`ShardIntegrityError`.
    """
    side = sidecar_path(path)
    try:
        doc = json.loads(side.read_text())
    except FileNotFoundError:
        if required:
            raise ShardIntegrityError(
                path, f"no {SIDECAR_SUFFIX} sidecar to verify against"
            ) from None
        return False
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardIntegrityError(
            path, f"unreadable checksum sidecar ({exc})"
        ) from exc
    if not isinstance(doc, dict) or doc.get("algorithm") != "crc32c":
        raise ShardIntegrityError(
            path, f"unsupported checksum sidecar {side.name}"
        )
    value, size = crc32c_file(path)
    want_size = doc.get("size")
    if want_size is not None and size != int(want_size):
        raise ShardIntegrityError(
            path,
            f"size mismatch ({size} bytes vs {want_size} recorded); "
            "torn or truncated write",
        )
    want = str(doc.get("crc32c", ""))
    if f"{value:08x}" != want.lower():
        raise ShardIntegrityError(
            path,
            f"crc32c mismatch ({value:08x} vs {want} recorded); "
            "payload corrupted",
        )
    return True
