"""Pipeline observability: tracing spans, metrics, profiling hooks.

One process-global :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` serve the whole pipeline;
instrumented code calls the module-level helpers::

    from repro import obs

    with obs.span("ingest.errors") as sp:
        ...
        sp.add(records=n)
    obs.count("ingest.quarantined", stats.quarantined)

Metrics are always on (a handful of dict updates per file or
experiment); tracing is off by default and enabled by ``--trace-out``
or :func:`configure`; profiling is strictly opt-in (``--profile``).

Worker processes wrap their work in :func:`capture`, which swaps in a
fresh tracer/registry/profile store, and ship the resulting payload
back; the parent folds it in with :func:`merge_payload`, so one trace
tree and one metrics registry describe the whole run regardless of
``--jobs``.

Span naming scheme and the metric catalog are documented in DESIGN.md
section 8.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import DEFAULT_TOP_N, profiled, render_profile
from repro.obs.trace import (
    Span,
    Tracer,
    attach_tree,
    span_wall_invariant,
    stable_trace,
    stable_view,
)

__all__ = [
    "Span",
    "Tracer",
    "MetricsRegistry",
    "span",
    "count",
    "gauge",
    "observe",
    "record_ingest",
    "configure",
    "tracing_enabled",
    "profiling_enabled",
    "profile_top_n",
    "add_profile",
    "profiles",
    "render_profiles",
    "capture",
    "merge_payload",
    "export_trace",
    "export_metrics",
    "write_trace",
    "write_metrics",
    "reset",
    "get_tracer",
    "get_metrics",
    "attach_tree",
    "stable_trace",
    "stable_view",
    "span_wall_invariant",
    "profiled",
    "TRACE_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
]

#: Bumped when the ``--trace-out`` artifact layout changes.
TRACE_SCHEMA_VERSION = 1
#: Bumped when the ``--metrics-out`` artifact layout changes.
METRICS_SCHEMA_VERSION = 1

_TRACER = Tracer(enabled=False)
_METRICS = MetricsRegistry()
_PROFILES: dict[str, list[dict]] = {}
_PROFILE_ENABLED = False
_PROFILE_TOP_N = DEFAULT_TOP_N


# ----------------------------------------------------------------------
# Instrumentation entry points
# ----------------------------------------------------------------------
def span(
    name: str,
    counts: dict | None = None,
    attrs: dict | None = None,
    transient: bool = False,
    prune: bool = False,
):
    """Open a span on the current tracer (see :meth:`Tracer.span`)."""
    return _TRACER.span(
        name, counts=counts, attrs=attrs, transient=transient, prune=prune
    )


def count(name: str, n: float = 1) -> None:
    """Increment a counter on the current registry."""
    _METRICS.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current registry."""
    _METRICS.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the current registry."""
    _METRICS.observe(name, value)


def record_ingest(stats) -> dict:
    """Publish one :class:`~repro.logs.ingest.IngestStats` as metrics.

    Emits per-family counters (``ingest.<family>.seen`` ...), the
    aggregate record-accounting counters (``ingest.seen``,
    ``ingest.quarantined``, ...), and a per-family ``ingest.coverage``
    gauge.  Returns the span-count dict so callers can do
    ``sp.add(**obs.record_ingest(stats))``.
    """
    counts = {
        "seen": stats.seen,
        "parsed": stats.parsed,
        "repaired": stats.repaired,
        "quarantined": stats.quarantined,
    }
    for key, value in counts.items():
        _METRICS.count(f"ingest.{stats.family}.{key}", value)
        _METRICS.count(f"ingest.{key}", value)
    if getattr(stats, "fast_lines", 0):
        # Only emitted when the vectorised fast path engaged, so the
        # counter's absence is meaningful (and parity comparisons against
        # the per-line path exclude it).
        _METRICS.count(f"ingest.{stats.family}.fastpath_lines", stats.fast_lines)
    _METRICS.gauge(f"ingest.coverage.{stats.family}", stats.coverage)
    return counts


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure(
    trace: bool | None = None,
    profile: bool | None = None,
    profile_top_n: int | None = None,
) -> None:
    """Turn tracing / profiling on or off (None leaves a knob alone)."""
    global _PROFILE_ENABLED, _PROFILE_TOP_N
    if trace is not None:
        _TRACER.enabled = bool(trace)
    if profile is not None:
        _PROFILE_ENABLED = bool(profile)
    if profile_top_n is not None:
        _PROFILE_TOP_N = int(profile_top_n)


def tracing_enabled() -> bool:
    return _TRACER.enabled


def profiling_enabled() -> bool:
    return _PROFILE_ENABLED


def profile_top_n() -> int:
    return _PROFILE_TOP_N


def get_tracer() -> Tracer:
    return _TRACER


def get_metrics() -> MetricsRegistry:
    return _METRICS


def reset() -> None:
    """Clear all recorded traces, metrics and profiles (tests)."""
    _TRACER.reset()
    _METRICS.reset()
    _PROFILES.clear()


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def add_profile(exp_id: str, rows: list[dict]) -> None:
    _PROFILES[exp_id] = list(rows)


def profiles() -> dict[str, list[dict]]:
    return dict(_PROFILES)


def render_profiles() -> str:
    """All collected hotspot tables, ready to print."""
    return "\n\n".join(
        render_profile(exp_id, rows) for exp_id, rows in sorted(_PROFILES.items())
    )


# ----------------------------------------------------------------------
# Cross-process capture and merge
# ----------------------------------------------------------------------
class Capture:
    """Handle yielded by :func:`capture`; snapshot via :meth:`payload`."""

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry, profiles: dict):
        self.tracer = tracer
        self.metrics = metrics
        self.profiles = profiles

    def payload(self) -> dict:
        return {
            "trace": self.tracer.export(),
            "metrics": self.metrics.export(),
            "profiles": dict(self.profiles),
        }


@contextmanager
def capture(trace: bool = True):
    """Record into a fresh tracer/registry for the enclosed block.

    Used by pool workers (so their spans and counts ship back as a
    payload instead of mutating inherited state) and by tests that need
    isolated observability state.  The previous global state -- whatever
    a fork inherited -- is restored on exit.
    """
    global _TRACER, _METRICS, _PROFILES
    prev = (_TRACER, _METRICS, _PROFILES)
    cap = Capture(Tracer(enabled=trace), MetricsRegistry(), {})
    _TRACER, _METRICS, _PROFILES = cap.tracer, cap.metrics, cap.profiles
    try:
        yield cap
    finally:
        _TRACER, _METRICS, _PROFILES = prev


def merge_payload(payload: dict | None) -> list[dict]:
    """Fold a worker capture payload into the current global state.

    Metrics and profiles merge immediately; the trace roots are
    *returned* so the caller can attach them at a deterministic place
    in its own tree (see ``ExperimentRunner``).
    """
    if not payload:
        return []
    _METRICS.merge(payload.get("metrics", {}))
    for exp_id, rows in payload.get("profiles", {}).items():
        _PROFILES[exp_id] = list(rows)
    return list(payload.get("trace", {}).get("roots", ()))


# ----------------------------------------------------------------------
# Artifact export
# ----------------------------------------------------------------------
def _iso_utc(t: float) -> str:
    from repro._util import iso

    return iso(t) + "Z"


def export_trace() -> dict:
    """The ``--trace-out`` artifact as a dict."""
    now = time.time()
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "created": now,
        "created_iso": _iso_utc(now),
        **_TRACER.export(),
    }


def export_metrics() -> dict:
    """The ``--metrics-out`` artifact as a dict."""
    now = time.time()
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "created": now,
        "created_iso": _iso_utc(now),
        **_METRICS.export(),
    }


def write_trace(path) -> None:
    with open(path, "w") as fh:
        json.dump(export_trace(), fh, indent=2)
        fh.write("\n")


def write_metrics(path) -> None:
    with open(path, "w") as fh:
        json.dump(export_metrics(), fh, indent=2)
        fh.write("\n")
