"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the record-accounting side of the observability layer:
every parser, the coalescer, the campaign cache and the experiment
runner publish what they saw (``ingest.quarantined``, ``cache.hit``,
``coalesce.faults_emitted``, per-experiment latency histograms, ...)
into one process-global :class:`MetricsRegistry`
(:data:`repro.obs.METRICS`).

Counters are additive, gauges are last-write-wins, histograms bucket
observations into fixed log-spaced latency bounds so that histograms
from different processes merge deterministically (bucket counts add).
Worker processes capture their own registry and ship
:meth:`MetricsRegistry.export` dicts back to the parent, which
:meth:`MetricsRegistry.merge`\\ s them -- counter totals therefore
reconcile exactly between ``--jobs 1`` and parallel runs.
"""

from __future__ import annotations

import math
import threading

#: Upper bounds (seconds) of the fixed latency histogram buckets; the
#: implicit final bucket is +inf.  Fixed bounds make cross-process
#: merging exact.
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.buckets[idx] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def merge_dict(self, other: dict) -> None:
        if tuple(other.get("bounds", ())) != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        self.buckets = [a + b for a, b in zip(self.buckets, other["buckets"])]
        other_count = int(other.get("count", 0))
        self.count += other_count
        self.sum += float(other.get("sum", 0.0))
        if other_count:
            self.min = min(self.min, float(other["min"]))
            self.max = max(self.max, float(other["max"]))


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def export(self) -> dict:
        """Plain-dict snapshot: ``{"counters", "gauges", "histograms"}``.

        Counters that hold whole numbers export as ints so record
        accounting stays exact across JSON round-trips.
        """
        with self._lock:
            counters = {
                k: int(v) if float(v).is_integer() else v
                for k, v in sorted(self._counters.items())
            }
            return {
                "counters": counters,
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    k: h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge(self, exported: dict) -> None:
        """Fold another registry's :meth:`export` into this one."""
        with self._lock:
            for name, value in exported.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(exported.get("gauges", {}))
        for name, payload in exported.get("histograms", {}).items():
            with self._lock:
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram(
                        tuple(payload.get("bounds", DEFAULT_BOUNDS))
                    )
            hist.merge_dict(payload)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
