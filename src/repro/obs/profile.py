"""Opt-in cProfile hooks: per-experiment top-N hotspot tables.

``--profile`` turns the hooks on; the experiment registry then wraps
each experiment body in a :class:`cProfile.Profile` and records the
top-N functions by cumulative time through :func:`repro.obs.add_profile`.
Worker processes ship their hotspot rows back with the capture payload,
so parallel runs profile exactly like serial ones.

Profiling is never on by default -- cProfile's tracing overhead would
invalidate the trace/metrics timings it rides alongside.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager

#: Rows kept per profiled experiment.
DEFAULT_TOP_N = 15


def hotspots(profile: cProfile.Profile, top_n: int = DEFAULT_TOP_N) -> list[dict]:
    """Top-N functions by cumulative time as plain dict rows."""
    stats = pstats.Stats(profile)
    rows: list[dict] = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for (filename, lineno, funcname), (cc, nc, tottime, cumtime, _) in entries:
        if funcname.startswith("<built-in method builtins.exec"):
            continue
        rows.append(
            {
                "func": f"{filename}:{lineno}({funcname})",
                "ncalls": int(nc),
                "tottime_s": float(tottime),
                "cumtime_s": float(cumtime),
            }
        )
        if len(rows) >= top_n:
            break
    return rows


@contextmanager
def profiled(top_n: int = DEFAULT_TOP_N):
    """Profile the enclosed block; yields a list filled with hotspot rows."""
    rows: list[dict] = []
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield rows
    finally:
        profile.disable()
        rows.extend(hotspots(profile, top_n))


def render_profile(exp_id: str, rows: list[dict]) -> str:
    """Human-readable hotspot table for one experiment."""
    lines = [f"-- profile: {exp_id} (top {len(rows)} by cumulative time) --"]
    lines.append(f"  {'cumtime':>9}  {'tottime':>9}  {'ncalls':>8}  function")
    for row in rows:
        lines.append(
            f"  {row['cumtime_s']:>8.4f}s  {row['tottime_s']:>8.4f}s  "
            f"{row['ncalls']:>8}  {row['func']}"
        )
    return "\n".join(lines)
