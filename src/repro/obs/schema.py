"""Minimal JSON-Schema validation for the observability artifacts.

The trace and metrics files written by ``--trace-out``/``--metrics-out``
are validated -- in tests and in the CI ``obs-smoke`` job -- against the
checked-in schemas under ``schemas/``.  The container has no
``jsonschema`` package, so this module implements the small subset the
artifact schemas use:

``type`` (single or union list), ``properties``, ``required``,
``additionalProperties`` (bool or schema), ``items``, ``enum``,
``minimum``, and ``$ref`` into ``$defs`` of the same document.

Usage as a CLI (what CI runs)::

    python -m repro.obs.schema schemas/trace.schema.json trace.json
    python -m repro.obs.schema --jsonl schemas/alerts.schema.json alerts.jsonl
    python -m repro.obs.schema rollup /tmp/camp/rollups/rollup.json
    python -m repro.obs.schema query answer.json

With ``--jsonl`` the artifact is a JSON-Lines stream and every
non-empty line is validated independently against the schema.  A bare
schema *name* (no path separator, no ``.json``) resolves to the
registered ``schemas/<name>.schema.json``; ``--list`` prints the
registry.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref!r} (only local refs)")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(instance, schema: dict, root: dict | None = None, path: str = "$") -> list[str]:
    """Validate ``instance`` against ``schema``; returns error strings.

    An empty list means the instance conforms.  Errors name the failing
    JSON path so CI logs point at the offending field.
    """
    root = root if root is not None else schema
    errors: list[str] = []

    if "$ref" in schema:
        schema = _resolve_ref(schema["$ref"], root)

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below would just cascade

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")

    if "minimum" in schema and isinstance(instance, (int, float)) and not isinstance(
        instance, bool
    ):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} below minimum {schema['minimum']}")

    if isinstance(instance, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                errors.extend(validate(value, props[key], root, f"{path}.{key}"))
            elif additional is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, root, f"{path}.{key}"))

    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], root, f"{path}[{i}]"))

    return errors


def schema_dir() -> Path:
    """The repository's ``schemas/`` directory (dev checkouts)."""
    return Path(__file__).resolve().parents[3] / "schemas"


def validate_file(schema_path: str | Path, artifact_path: str | Path) -> list[str]:
    """Validate one JSON artifact file against one schema file."""
    schema = json.loads(Path(schema_path).read_text())
    instance = json.loads(Path(artifact_path).read_text())
    return validate(instance, schema)


def validate_jsonl(schema_path: str | Path, artifact_path: str | Path) -> list[str]:
    """Validate each non-empty line of a JSONL stream against a schema."""
    schema = json.loads(Path(schema_path).read_text())
    errors: list[str] = []
    with open(artifact_path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                instance = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {line_no}: invalid JSON: {exc}")
                continue
            errors.extend(
                validate(instance, schema, path=f"line {line_no}: $")
            )
    return errors


def registered_schemas() -> dict[str, Path]:
    """``{name: path}`` for every checked-in ``schemas/*.schema.json``."""
    return {
        p.name[: -len(".schema.json")]: p
        for p in sorted(schema_dir().glob("*.schema.json"))
    }


def resolve_schema(arg: str) -> str | Path:
    """Resolve a bare registered name to its schema path; paths pass through."""
    if "/" in arg or arg.endswith(".json"):
        return arg
    registry = registered_schemas()
    if arg not in registry:
        known = ", ".join(registry) or "none found"
        print(
            f"error: unknown schema name {arg!r}; known: {known}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return registry[arg]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--list":
        for name, path in registered_schemas().items():
            print(f"{name:<12} {path}")
        return 0
    jsonl = False
    if argv and argv[0] == "--jsonl":
        jsonl = True
        argv = argv[1:]
    if len(argv) != 2:
        print(
            "usage: python -m repro.obs.schema [--jsonl] "
            "<schema.json | registered name> <artifact.json>\n"
            "       python -m repro.obs.schema --list",
            file=sys.stderr,
        )
        return 2
    argv = [str(resolve_schema(argv[0])), argv[1]]
    check = validate_jsonl if jsonl else validate_file
    try:
        errors = check(argv[0], argv[1])
    except (OSError, json.JSONDecodeError) as exc:
        print(f"SCHEMA VIOLATION: {argv[1]}: {exc}", file=sys.stderr)
        return 1
    if errors:
        for err in errors:
            print(f"SCHEMA VIOLATION: {err}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: valid against {argv[0]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
