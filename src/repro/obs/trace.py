"""Hierarchical tracing spans for the analysis pipeline.

A :class:`Span` measures one named region of work -- wall time, CPU
time, record counts and free-form attributes -- and nests under
whatever span is open on the same thread, forming a trace tree.  The
:class:`Tracer` owns the per-thread span stacks and the finished roots;
:func:`repro.obs.span` is the module-level entry point the rest of the
codebase uses.

Design constraints (see DESIGN.md section 8):

- **Always timed, conditionally recorded.**  A span measures wall/CPU
  time even when tracing is disabled, so call sites can use
  ``sp.wall_s`` / ``sp.elapsed()`` in place of the old ad-hoc
  ``time.perf_counter()`` blocks; the *tree* is only built when the
  tracer is enabled, keeping the disabled path to a couple of clock
  reads per span.
- **Thread-safe.**  Span stacks are thread-local; the shared roots
  list is lock-guarded.  Spans opened on a thread with no open parent
  become roots.
- **Process-safe by merging.**  A child process captures its own trace
  (:func:`repro.obs.capture`) and ships the exported dict back; the
  parent re-attaches it with :func:`attach_tree`, so ``--jobs N`` runs
  produce one tree, not N.
- **Deterministic shape.**  Spans whose *presence* depends on
  environment state rather than on the inputs (cache hits, pool warm-up,
  retry wrappers) are flagged ``transient``; :func:`stable_view`
  projects a trace onto the (names, nesting, counts) skeleton that the
  golden-trace regression tests compare, eliding transient spans and
  promoting their stable children.  A ``prune`` span goes further: its
  entire subtree is dropped from the stable view -- used for cache
  internals, whose nested loads only exist on a hit.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Span:
    """One timed, counted region of the pipeline."""

    __slots__ = (
        "name",
        "counts",
        "attrs",
        "transient",
        "prune",
        "children",
        "wall_s",
        "cpu_s",
        "_t0",
        "_c0",
    )

    def __init__(
        self,
        name: str,
        counts: dict | None = None,
        attrs: dict | None = None,
        transient: bool = False,
        prune: bool = False,
    ) -> None:
        self.name = name
        self.counts = dict(counts) if counts else {}
        self.attrs = dict(attrs) if attrs else {}
        self.transient = bool(transient)
        self.prune = bool(prune)
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Wall seconds since the span opened (final value after close)."""
        return self.wall_s if self.wall_s else time.perf_counter() - self._t0

    def add(self, **counts: int) -> None:
        """Increment record counters on this span."""
        for key, value in counts.items():
            self.counts[key] = self.counts.get(key, 0) + int(value)

    def set(self, key: str, value) -> None:
        """Set a free-form attribute (not compared by the golden tests)."""
        self.attrs[key] = value

    def close(self) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "counts": dict(self.counts),
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }
        if self.transient:
            out["transient"] = True
        if self.prune:
            out["prune"] = True
        return out


def attach_tree(parent: Span, tree: dict) -> Span:
    """Rebuild an exported span dict as a live child of ``parent``.

    Used to merge a worker process's captured trace into the parent
    run's tree; timings and counts are preserved verbatim.
    """
    sp = Span(
        tree["name"],
        counts=tree.get("counts"),
        attrs=tree.get("attrs"),
        transient=tree.get("transient", False),
        prune=tree.get("prune", False),
    )
    sp.wall_s = float(tree.get("wall_s", 0.0))
    sp.cpu_s = float(tree.get("cpu_s", 0.0))
    for child in tree.get("children", ()):
        attach_tree(sp, child)
    parent.children.append(sp)
    return sp


class Tracer:
    """Owns the per-thread span stacks and the finished trace roots."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread (None outside spans)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        counts: dict | None = None,
        attrs: dict | None = None,
        transient: bool = False,
        prune: bool = False,
    ):
        sp = Span(name, counts=counts, attrs=attrs, transient=transient, prune=prune)
        recorded = self.enabled
        if recorded:
            stack = self._stack()
            if stack:
                stack[-1].children.append(sp)
            else:
                with self._lock:
                    self.roots.append(sp)
            stack.append(sp)
        try:
            yield sp
        finally:
            sp.close()
            if recorded:
                stack = self._stack()
                if stack and stack[-1] is sp:
                    stack.pop()
                elif sp in stack:  # pragma: no cover - unbalanced exits
                    stack.remove(sp)

    # ------------------------------------------------------------------
    def export(self) -> dict:
        """The trace tree as plain dicts: ``{"roots": [...]}``."""
        with self._lock:
            return {"roots": [sp.to_dict() for sp in self.roots]}

    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()


# ----------------------------------------------------------------------
def stable_view(node: dict) -> dict | None:
    """Project a span dict onto its deterministic skeleton.

    Keeps name, record counts and nesting; drops timings and attributes.
    A ``transient`` span is elided: it contributes nothing itself and
    its stable children are promoted into its parent's child list.  A
    ``prune`` span is dropped together with its entire subtree.
    Returns ``None`` for a transient or pruned node (callers use
    :func:`stable_children` to collect promotions).
    """
    if node.get("transient") or node.get("prune"):
        return None
    return {
        "name": node["name"],
        "counts": {k: int(v) for k, v in sorted(node.get("counts", {}).items())},
        "children": stable_children(node),
    }


def stable_children(node: dict) -> list[dict]:
    """Stable views of a node's children, with transient spans elided."""
    out: list[dict] = []
    for child in node.get("children", ()):
        if child.get("prune"):
            continue
        view = stable_view(child)
        if view is None:
            out.extend(stable_children(child))
        else:
            out.append(view)
    return out


def stable_trace(trace: dict) -> dict:
    """Stable projection of a full exported trace (golden-test input)."""
    roots: list[dict] = []
    for root in trace.get("roots", ()):
        if root.get("prune"):
            continue
        view = stable_view(root)
        if view is None:
            roots.extend(stable_children(root))
        else:
            roots.append(view)
    return {"roots": roots}


def span_wall_invariant(node: dict, tolerance: float = 0.05) -> list[str]:
    """Check that child wall times sum to no more than the parent's.

    Returns human-readable violations (empty when the invariant holds).
    Only meaningful for traces produced by a single process -- children
    merged from concurrent workers legitimately overlap their parent.
    """
    violations: list[str] = []

    def walk(n: dict) -> None:
        children = n.get("children", ())
        child_sum = sum(c.get("wall_s", 0.0) for c in children)
        parent_wall = n.get("wall_s", 0.0)
        if child_sum > parent_wall * (1 + tolerance) + 1e-6:
            violations.append(
                f"{n['name']}: child wall sum {child_sum:.6f}s exceeds "
                f"parent wall {parent_wall:.6f}s"
            )
        for c in children:
            walk(c)

    walk(node)
    return violations
