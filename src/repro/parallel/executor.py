"""Process-pool map-reduce over rack shards.

The map function must be a module-level callable (pickled by name to the
workers); each task receives one shard and returns a small reduced value
(a fault array, a count vector), so inter-process traffic stays tiny next
to the shard payload.  ``n_workers=0`` runs serially -- the correctness
baseline and the fallback for restricted environments.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.machine.topology import AstraTopology
from repro.parallel.sharding import merge_fault_arrays, shard_errors


@dataclass
class ShardMapReduce:
    """Map a function over per-rack shards, then reduce the partials."""

    map_fn: Callable
    reduce_fn: Callable
    n_workers: int = 0

    def run(self, errors: np.ndarray, topology: AstraTopology | None = None):
        """Execute over the shards of ``errors``."""
        shards = shard_errors(errors, topology)
        if not shards:
            return self.reduce_fn([])
        if self.n_workers <= 0 or len(shards) == 1:
            partials = [self.map_fn(s) for s in shards]
        else:
            with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                partials = list(pool.map(self.map_fn, shards))
        return self.reduce_fn(partials)


def _coalesce_shard(shard: np.ndarray) -> np.ndarray:
    return coalesce(shard)


def parallel_coalesce(
    errors: np.ndarray,
    topology: AstraTopology | None = None,
    n_workers: int = 0,
) -> np.ndarray:
    """Coalesce an error stream shard-parallel; equals serial coalescing.

    Exactness follows from the coalescing key never spanning racks; the
    merged fault array is re-sorted to the serial (node, slot, rank,
    bank) order.
    """
    engine = ShardMapReduce(
        map_fn=_coalesce_shard, reduce_fn=_merge_sorted, n_workers=n_workers
    )
    return engine.run(errors, topology)


def _merge_sorted(partials: list[np.ndarray]) -> np.ndarray:
    from repro.faults.types import empty_faults

    if not partials:
        return empty_faults(0)
    merged = merge_fault_arrays(partials)
    order = np.lexsort(
        (merged["bank"], merged["rank"], merged["slot"], merged["node"])
    )
    out = merged[order]
    out["fault_id"] = np.arange(out.size)
    return out
