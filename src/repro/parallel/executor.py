"""Process-pool map-reduce over rack shards.

The map function must be a module-level callable (pickled by name to the
workers); each task receives one shard and returns a small reduced value
(a fault array, a count vector), so inter-process traffic stays tiny next
to the shard payload.  ``n_workers=0`` runs serially -- the correctness
baseline and the fallback for restricted environments.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.faults.coalesce import CoalesceOptions, coalesce, merge_shard_faults
from repro.machine.topology import AstraTopology
from repro.parallel.sharding import shard_errors


@dataclass
class ShardMapReduce:
    """Map a function over per-rack shards, then reduce the partials."""

    map_fn: Callable
    reduce_fn: Callable
    n_workers: int = 0

    def run(self, errors: np.ndarray, topology: AstraTopology | None = None):
        """Execute over the shards of ``errors``."""
        shards = shard_errors(errors, topology)
        if not shards:
            return self.reduce_fn([])
        return self.reduce_fn(map_tasks(self.map_fn, shards, self.n_workers))


def map_tasks(map_fn: Callable, tasks: list, n_workers: int = 0) -> list:
    """Map a module-level callable over tasks, ``n_workers``-way parallel.

    The generic scheduler under :class:`ShardMapReduce` and the fleet
    engine: results come back in task order regardless of completion
    order (determinism is what makes parallel answers byte-identical to
    serial ones), and a pool that cannot come up or breaks mid-run
    (restricted environments, OOM-killed workers) degrades to finishing
    the remaining tasks serially in the parent rather than failing.
    """
    if n_workers <= 1 or len(tasks) <= 1:
        return [map_fn(t) for t in tasks]
    results: dict[int, object] = {}
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {i: pool.submit(map_fn, t) for i, t in enumerate(tasks)}
            for i, future in futures.items():
                results[i] = future.result()
    except (BrokenProcessPool, OSError) as exc:
        # The serial re-run below hides the pool failure from callers;
        # leave an audit trail so a fleet that silently lost its
        # parallelism (OOM-killed workers, fork limits) is visible.
        from repro import obs

        obs.count("parallel.pool_broken")
        warnings.warn(
            f"process pool broke ({type(exc).__name__}: {exc}); "
            f"finishing {len(tasks) - len(results)} of {len(tasks)} tasks "
            "serially",
            RuntimeWarning,
            stacklevel=2,
        )
    return [
        results[i] if i in results else map_fn(t) for i, t in enumerate(tasks)
    ]


def _coalesce_shard(shard: np.ndarray) -> np.ndarray:
    return coalesce(shard)


def parallel_coalesce(
    errors: np.ndarray,
    topology: AstraTopology | None = None,
    n_workers: int = 0,
) -> np.ndarray:
    """Coalesce an error stream shard-parallel; equals serial coalescing.

    Exactness follows from the coalescing key never spanning racks; the
    merged fault array is re-sorted to the serial (node, slot, rank,
    bank) order by :func:`repro.faults.coalesce.merge_shard_faults`.
    """
    engine = ShardMapReduce(
        map_fn=_coalesce_shard,
        reduce_fn=merge_shard_faults,
        n_workers=n_workers,
    )
    return engine.run(errors, topology)
