"""Shard-parallel execution of the analyses.

The study's raw data is ~8 GiB of logs; the natural unit of parallelism
is the rack (nodes never share faults across racks, and every positional
aggregation is a sum of per-rack partials).  This subpackage provides:

- :mod:`repro.parallel.sharding` -- splitting record streams into
  per-rack shards and merging partial aggregates;
- :mod:`repro.parallel.executor` -- a process-pool map-reduce over
  shards with a serial fallback, following the guides' advice to keep
  per-task work in vectorised NumPy and communication to small reduced
  arrays.
"""

from repro.parallel.sharding import shard_errors, merge_counts, merge_fault_arrays
from repro.parallel.executor import ShardMapReduce, map_tasks, parallel_coalesce

__all__ = [
    "shard_errors",
    "merge_counts",
    "merge_fault_arrays",
    "ShardMapReduce",
    "map_tasks",
    "parallel_coalesce",
]
