"""Sharding record streams by rack and merging partial results.

Sharding by rack is *exact* for this workload: the coalescing key
(node, slot, rank, bank) never spans racks, so per-shard coalescing
followed by concatenation equals whole-stream coalescing (up to row
order), and per-structure counts add.
"""

from __future__ import annotations

import numpy as np

from repro.machine.topology import AstraTopology


def shard_errors(
    errors: np.ndarray, topology: AstraTopology | None = None
) -> list[np.ndarray]:
    """Split an error stream into per-rack shards (non-empty only).

    Returns views ordered by rack id; concatenating them yields a
    rack-sorted permutation of the input.
    """
    topo = topology or AstraTopology()
    if errors.size == 0:
        return []
    racks = topo.rack_of(errors["node"].astype(np.int64))
    order = np.argsort(racks, kind="stable")
    sorted_errors = errors[order]
    sorted_racks = racks[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], sorted_racks[1:] != sorted_racks[:-1]])
    )
    bounds = np.append(boundaries, errors.size)
    return [sorted_errors[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


def merge_counts(partials: list[np.ndarray]) -> np.ndarray:
    """Sum equal-length partial count arrays (pad to the longest)."""
    if not partials:
        raise ValueError("nothing to merge")
    n = max(p.size for p in partials)
    out = np.zeros(n, dtype=np.int64)
    for p in partials:
        out[: p.size] += p
    return out


def merge_fault_arrays(partials: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-shard fault arrays, renumbering fault ids."""
    if not partials:
        raise ValueError("nothing to merge")
    out = np.concatenate(partials)
    out["fault_id"] = np.arange(out.size)
    return out
