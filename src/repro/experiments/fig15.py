"""Figure 15: Hardware Event Tracker records and uncorrectable errors.

(a) daily counts of all HET-reported events; (b) the NON-RECOVERABLE
subset.  Plus the section 3.5 headline numbers: the recording gap before
the August firmware update, 0.00948 DUEs per DIMM per year, FIT ~1081.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ue import (
    daily_counts_by_event,
    due_rate,
    due_records,
    recording_gap_respected,
)
from repro.experiments.base import ExperimentResult

EXP_ID = "fig15"
TITLE = "HET event counts; DUE rate and FIT"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('het',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    cal = campaign.calibration
    window = (cal.het_recording_start, cal.error_window[1])
    het = campaign.het

    series = daily_counts_by_event(het, window)
    for name, daily in series.items():
        if daily.sum():
            result.series[f"daily: {name}"] = daily

    dues = due_records(het)
    rate = due_rate(
        het, window, campaign.node_config.system_dimm_count(campaign.topology.n_nodes)
    )
    result.series["summary"] = {
        "HET events": int(het.size),
        "NON-RECOVERABLE events": int(dues.size),
        "DUEs per DIMM per year": round(rate.per_dimm_year, 6),
        "FIT per DIMM": round(rate.fit_per_dimm, 0),
    }

    result.check(
        "no HET records before the firmware update (the Figure 15 gap)",
        recording_gap_respected(het, cal.het_recording_start),
    )
    result.check(
        "NON-RECOVERABLE subset is uncorrectableECC + machine checks only",
        bool(
            np.isin(
                dues["event"],
                [4, 6],  # uncorrectableECC, uncorrectableMachineCheckException
            ).all()
        ),
    )
    paper_rate = cal.due_per_dimm_year * campaign.scale
    result.check(
        "DUE/DIMM/year within 25% of the paper's 0.00948 (scaled)",
        abs(rate.per_dimm_year - paper_rate) <= 0.25 * paper_rate,
    )
    result.check(
        "FIT per DIMM ~1081 (scaled)",
        abs(rate.fit_per_dimm - cal.fit_per_dimm * campaign.scale)
        <= 0.25 * cal.fit_per_dimm * campaign.scale,
    )
    result.note(
        f"paper: 0.00948 DUE/DIMM/yr, FIT ~1081; measured "
        f"{rate.per_dimm_year:.5f} and {rate.fit_per_dimm:.0f} "
        f"(x{campaign.scale:g} scale)"
    )
    return result
