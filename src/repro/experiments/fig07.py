"""Figure 7: errors and faults per DRAM rank and per DIMM slot.

Unlike socket/bank/column, these structures are genuinely non-uniform in
*faults* too: rank 0 experiences more faults than rank 1, and DIMM slots
J, E, I, P lead while A, K, L, M, N trail -- plausibly a thermal-layout
effect (section 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counts import counts_by
from repro.experiments.base import ExperimentResult, labelled_counts
from repro.machine.node import DIMM_SLOTS

EXP_ID = "fig07"
TITLE = "Errors and faults per memory rank and per DIMM slot"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)

HIGH_SLOTS = tuple("JEIP")
LOW_SLOTS = tuple("AKLMN")


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    faults = campaign.faults()
    errors = campaign.errors

    e_rank, _ = counts_by(errors, "rank")
    f_rank, _ = counts_by(faults, "rank")
    result.series["errors per rank"] = e_rank
    result.series["faults per rank"] = f_rank
    result.check("rank 0 experiences more faults than rank 1",
                 f_rank[0] > f_rank[1])
    result.check("rank 0 experiences more errors than rank 1",
                 e_rank[0] > e_rank[1])
    result.check(
        "relative rank ordering identical for faults and errors",
        (f_rank[0] > f_rank[1]) == (e_rank[0] > e_rank[1]),
    )

    e_slot, _ = counts_by(errors, "slot")
    f_slot, _ = counts_by(faults, "slot")
    result.series["errors per slot"] = labelled_counts(DIMM_SLOTS, e_slot)
    result.series["faults per slot"] = labelled_counts(DIMM_SLOTS, f_slot)

    slot_rank = {letter: i for i, letter in enumerate(DIMM_SLOTS)}
    order = np.argsort(f_slot)[::-1]
    top5 = {DIMM_SLOTS[i] for i in order[:5]}
    bottom6 = {DIMM_SLOTS[i] for i in order[-6:]}
    result.check(
        "slots J, E, I, P among the highest-fault slots",
        sum(s in top5 for s in HIGH_SLOTS) >= 3,
    )
    result.check(
        "slots A, K, L, M, N among the lowest-fault slots",
        sum(s in bottom6 for s in LOW_SLOTS) >= 4,
    )
    high = np.mean([f_slot[slot_rank[s]] for s in HIGH_SLOTS])
    low = np.mean([f_slot[slot_rank[s]] for s in LOW_SLOTS])
    result.check("high-fault slots clearly above low-fault slots",
                 high > 1.5 * low)
    result.note(
        f"fault-count slot ordering (desc): "
        f"{''.join(DIMM_SLOTS[i] for i in order)}"
    )
    return result
