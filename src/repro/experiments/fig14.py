"""Figure 14: effect of utilisation (node power) on CE rate.

One panel per temperature sensor: (node, month) samples split hot/cold at
the sensor's median monthly temperature, CE rate binned by monthly
average node power.  Astra shows no strong utilisation effect; hot
samples sit at higher power (utilisation couples to heat) but do not
systematically out-error cold samples.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.temperature import (
    monthly_ce_counts,
    monthly_node_sensor_means,
)
from repro.analysis.utilization import hot_cold_curves, monthly_node_power
from repro.experiments.base import ExperimentResult
from repro.experiments.fig13 import SERIES, _slots_for
from repro.machine.sensors import NodeSensorComplement

EXP_ID = "fig14"
TITLE = "Monthly node power vs CE rate, split hot/cold per sensor"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, grid_s: float = 6 * 3600.0, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    complement = NodeSensorComplement()
    window = campaign.calibration.sensor_window
    n_nodes = campaign.topology.n_nodes

    power = monthly_node_power(campaign.sensors, window, n_nodes, grid_s)

    for legend, sensor_name in SERIES.items():
        spec = complement.by_name(sensor_name)
        temps = monthly_node_sensor_means(
            campaign.sensors, spec.index, window, n_nodes, grid_s
        )
        ces = monthly_ce_counts(
            campaign.errors, window, n_nodes, slots=_slots_for(spec)
        )
        curves = hot_cold_curves(
            sensor_name, temps.ravel(), power.ravel(), ces.ravel()
        )
        result.series[legend] = {
            "hot power bins": np.round(curves.power_bin_centers_hot, 0),
            "hot CE rate": np.round(curves.rate_hot, 3),
            "cold power bins": np.round(curves.power_bin_centers_cold, 0),
            "cold CE rate": np.round(curves.rate_cold, 3),
        }
        result.check(
            f"{legend}: no strong power/utilisation trend in CE rate",
            not curves.strong_power_trend(),
        )
        if "CPU" in legend and "DIMM" not in legend:
            result.check(
                f"{legend}: hot samples shifted toward higher power",
                curves.hot_shifted_right(),
            )
    result.note(
        "paper: power (utilisation proxy) is not strongly correlated with "
        "correctable errors; hot samples sit at visibly higher power"
    )
    return result
