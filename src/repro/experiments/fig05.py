"""Figure 5: per-node fault counts and the CE concentration curve.

(a) histogram of correctable-fault counts per node, a power-law-like
shape; (b) the ECDF of CEs by node: >60% of nodes see none, the top 8
nodes carry over half the CEs, the top 2% about 90%.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import (
    concentration_curve,
    count_histogram,
    per_node_counts,
)
from repro.analysis.powerlaw import fit_discrete_powerlaw
from repro.experiments.base import ExperimentResult
from repro.query.views import rollup_per_node_errors

EXP_ID = "fig05"
TITLE = "Per-node fault counts (power law) and CE concentration ECDF"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    n_nodes = campaign.topology.n_nodes
    faults = campaign.faults()

    fault_counts = per_node_counts(faults, n_nodes)
    values, freq = count_histogram(fault_counts)
    result.series["fault-count histogram (count, #nodes)"] = list(
        zip(values.tolist(), freq.tolist())
    )

    # Campaigns with attached rollups (stream/fleet runs) serve the
    # per-node counts from the node cube; the view returns None unless
    # the cube geometry and error count match this campaign exactly.
    error_counts = rollup_per_node_errors(campaign)
    if error_counts is None:
        error_counts = per_node_counts(campaign.errors, n_nodes)
    else:
        result.note("per-node CE counts served from attached rollup cubes")
    curve = concentration_curve(error_counts)
    # The paper's "top 8 nodes" is a per-machine statement; a fleet has
    # one such hot set per machine.  The fraction-based checks are
    # intensive and carry over unchanged.
    top_n = 8 * getattr(campaign, "machines", 1)
    result.series["concentration"] = {
        "nodes with >=1 CE": int((error_counts > 0).sum()),
        "fraction of nodes with zero CEs": round(
            float((error_counts == 0).mean()), 3
        ),
        f"top-{top_n} share": round(curve.share_of_top(top_n), 3),
        "top-2% share": round(curve.share_of_top_fraction(0.02), 3),
    }

    result.check(
        "more than 60% of nodes experienced no CEs",
        (error_counts == 0).mean() > 0.60,
    )
    result.check(
        f"the {top_n} nodes with most CEs account for more than 50% "
        "of the total",
        curve.share_of_top(top_n) > 0.50,
    )
    result.check(
        "the top 2% of nodes account for ~90% of the total",
        0.80 <= curve.share_of_top_fraction(0.02) <= 0.97,
    )
    result.check(
        "most error nodes saw few faults (median <= 3)",
        np.median(fault_counts[fault_counts > 0]) <= 3,
    )

    fit = fit_discrete_powerlaw(fault_counts[fault_counts > 0])
    result.series["power-law fit (faults per node)"] = {
        "alpha": round(fit.alpha, 2),
        "xmin": fit.xmin,
        "ks": round(fit.ks, 3),
        "tail size": fit.n_tail,
    }
    result.check(
        "per-node fault counts resemble a power law",
        fit.plausible(ks_threshold=0.15),
    )
    result.note(
        f"paper: 1013 of 2592 nodes with >=1 CE; measured "
        f"{int((error_counts > 0).sum())} of {n_nodes}"
    )
    return result
