"""Rendering a full paper-reproduction report (text and markdown)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Render all experiment results plus a pass/fail summary table."""
    blocks = []
    total = passed = 0
    for exp_id, result in results.items():
        blocks.append(result.render())
        for ok in result.checks.values():
            total += 1
            passed += bool(ok)
    header = [
        "Astra memory-failure study: reproduction report",
        "=" * 48,
        f"experiments: {len(results)}   shape checks: {passed}/{total} pass",
        "",
    ]
    summary = ["", "summary", "-" * 48]
    for exp_id, result in results.items():
        n = len(result.checks)
        ok = sum(bool(v) for v in result.checks.values())
        flag = "OK " if ok == n else "FAIL"
        summary.append(f"  [{flag}] {exp_id:<8} {ok}/{n}  {result.title}")
    return "\n".join(header) + "\n" + "\n\n".join(blocks) + "\n".join(summary)


def render_markdown(results: dict[str, ExperimentResult]) -> str:
    """Markdown paper-vs-measured record (EXPERIMENTS.md-shaped).

    One section per experiment with a checklist of shape claims and the
    collected paper-vs-measured notes -- suitable for regenerating the
    reproduction record after a calibration change.
    """
    lines = ["# Reproduction record (auto-generated)", ""]
    total = passed = 0
    for result in results.values():
        passed += sum(bool(v) for v in result.checks.values())
        total += len(result.checks)
    lines.append(f"Shape checks passing: **{passed}/{total}**.")
    lines.append("")
    for exp_id, result in results.items():
        lines.append(f"## {exp_id} — {result.title}")
        lines.append("")
        for name, ok in result.checks.items():
            lines.append(f"- {'✅' if ok else '❌'} {name}")
        if result.notes:
            lines.append("")
            for note in result.notes:
                lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)
