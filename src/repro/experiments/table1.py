"""Table 1: component replacements during the stabilisation period."""

from __future__ import annotations

from repro.analysis.replacements import replacement_table
from repro.experiments.base import ExperimentResult
from repro.synth.replacements import Component

EXP_ID = "table1"
TITLE = "Astra component replacements, Feb 17 - Sep 17 2019"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('replacements',)

#: Paper-reported percentages per component.
PAPER_PERCENT = {
    Component.PROCESSOR: 16.1,
    Component.MOTHERBOARD: 1.8,
    Component.DIMM: 3.7,
}


def run(campaign, **_params) -> ExperimentResult:
    """Regenerate Table 1 from the campaign's replacement stream."""
    result = ExperimentResult(EXP_ID, TITLE)
    rows = replacement_table(
        campaign.replacements, campaign.topology, campaign.node_config
    )
    result.series["replacements"] = [
        (r.component.label, r.n_replaced, f"{r.percent:.1f}% of {r.population}")
        for r in rows
    ]
    scale = campaign.scale
    for r in rows:
        paper_pct = PAPER_PERCENT[r.component] * scale
        measured = r.percent
        result.check(
            f"{r.component.label}: replaced fraction ~ paper ({paper_pct:.2f}%)",
            abs(measured - paper_pct) <= max(0.15 * paper_pct, 0.05),
        )
        result.note(
            f"{r.component.label}: paper {PAPER_PERCENT[r.component]:.1f}%"
            f" (x{scale:g} scale -> {paper_pct:.2f}%), measured {measured:.2f}%"
        )
    # The field's prior is that DIMMs outnumber processor replacements in
    # absolute count -- true here too, even though processors were
    # unusually elevated by the speed upgrade (section 3.1).
    by_kind = {r.component: r.n_replaced for r in rows}
    result.check(
        "DIMM replacements outnumber processors (absolute)",
        by_kind[Component.DIMM] > by_kind[Component.PROCESSOR],
    )
    result.check(
        "processor replacement *rate* unusually high (> motherboard rate)",
        rows[0].percent > rows[1].percent,
    )
    return result
