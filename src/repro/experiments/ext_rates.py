"""Extension: per-mode fault FIT rates and persistence classes.

Not a figure in the paper; the companion tables that Sridharan-class
field studies publish from the same kind of data, computed over the
campaign.
"""

from __future__ import annotations

from repro.analysis.rates import (
    Persistence,
    fault_fit_per_device,
    per_mode_fit_table,
    persistence_summary,
)
from repro.experiments.base import ExperimentResult

EXP_ID = "ext-rates"
TITLE = "EXT: fault FIT per DIMM and persistence classes"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    faults = campaign.faults()
    window = campaign.calibration.error_window
    n_dimms = campaign.node_config.system_dimm_count(campaign.topology.n_nodes)

    overall = fault_fit_per_device(faults, window, n_dimms)
    result.series["overall fault FIT per DIMM"] = round(overall.fit, 1)
    result.series["per-mode FIT"] = [
        (label, count, round(fit, 1))
        for label, count, fit in per_mode_fit_table(faults, window, n_dimms)
    ]
    summary = persistence_summary(faults)
    result.series["persistence classes"] = {
        p.label: summary[p] for p in Persistence
    }

    result.check(
        "every fault is counted in exactly one persistence class",
        sum(summary.values()) == faults.size,
    )
    result.check(
        "transient (one-shot) faults dominate the population",
        summary[Persistence.TRANSIENT] > 0.4 * faults.size,
    )
    result.check(
        "fault FIT far above the DUE FIT (most faults stay correctable)",
        overall.fit > 10 * campaign.calibration.fit_per_dimm * campaign.scale,
    )
    result.note(
        "stabilisation-period fault FIT is orders above lifetime field "
        "studies -- the infant-mortality framing of section 3.1 extends "
        "to DRAM faults"
    )
    return result
