"""Figure 4: error/fault-mode monthly series and errors-per-fault.

(a) total CEs and per-mode attributed errors by month (log scale in the
paper), with the slightly-declining trend; (b) the errors-per-fault
distribution whose median is 1 and maximum just over 91,000.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import errors_per_fault_stats
from repro.analysis.trends import mode_monthly_series, reported_mode_totals
from repro.experiments.base import ExperimentResult
from repro.faults.types import REPORTED_MODES, FaultMode
from repro.query.views import rollup_reported_mode_totals

EXP_ID = "fig04"
TITLE = "DRAM error/fault modes by month; errors per fault"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)

#: Paper error totals per mode (full scale).
PAPER_TOTALS = {
    FaultMode.SINGLE_BIT: 1_412_738,
    FaultMode.SINGLE_WORD: 31_055,
    FaultMode.SINGLE_COLUMN: 54_126,
    FaultMode.SINGLE_BANK: 7_658,
    "total": 4_369_731,
}


def run(campaign, **_params) -> ExperimentResult:
    """Regenerate both panels from the campaign's error stream."""
    result = ExperimentResult(EXP_ID, TITLE)
    window = campaign.calibration.error_window
    series = mode_monthly_series(campaign.errors, window)

    result.series["all errors by month"] = series.all_errors
    for mode in REPORTED_MODES:
        result.series[f"{mode.label} errors by month"] = series.by_mode[mode]
    result.series["unattributed errors by month"] = series.by_mode[
        FaultMode.UNATTRIBUTED
    ]

    totals = reported_mode_totals(series)
    # Identity gate before a cube serves this figure: a campaign with
    # attached rollups must reproduce the rescan totals element-for-
    # element, and only then do the served totals come from the cube.
    cube_totals = rollup_reported_mode_totals(campaign)
    if cube_totals is not None:
        result.check(
            "rollup cube mode totals identical to the rescan series totals",
            cube_totals == totals,
        )
        if cube_totals == totals:
            totals = cube_totals
            result.note("mode totals served from attached rollup cubes")
    scale = campaign.scale
    # Totals are extensive: a fleet of ``machines`` Astra-sized systems
    # at per-machine ``scale`` carries machines-times the paper volume.
    # Per-fault extremes below stay per machine (maxima do not add).
    machines = getattr(campaign, "machines", 1)
    volume = scale * machines
    for key in (*REPORTED_MODES, "total"):
        paper = PAPER_TOTALS[key] * volume
        measured = totals[key]
        label = key.label if isinstance(key, FaultMode) else key
        result.check(
            f"{label}: error total within 10% of paper (x{volume:g})",
            abs(measured - paper) <= 0.10 * paper + 5,
        )
        result.note(f"{label}: paper {paper:.0f}, measured {measured}")

    result.check("slightly declining monthly error counts", series.declining())

    faults = campaign.faults()
    stats = errors_per_fault_stats(faults)
    result.series["errors per fault"] = {
        "n_faults": stats.n_faults,
        "median": stats.median,
        "mean": round(stats.mean, 1),
        "p90": stats.p90,
        "p99": stats.p99,
        "max": stats.maximum,
        "fraction with exactly one error": round(stats.fraction_single_error, 3),
    }
    result.check("median errors per fault is 1", stats.median == 1)
    result.check(
        "vast majority of faults produced a single error",
        stats.fraction_single_error > 0.5,
    )
    paper_max = campaign.calibration.max_errors_per_fault * scale
    result.check(
        "maximum errors per fault just over the paper's 91,000 (scaled)",
        0.9 * paper_max <= stats.maximum <= 1.6 * paper_max,
    )
    result.note(
        f"max errors/fault: paper 'just over 91,000' (x{scale:g} -> "
        f"{paper_max:.0f}), measured {stats.maximum}"
    )
    return result
