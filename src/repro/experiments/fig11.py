"""Figure 11: percentage of faults per region, by rack.

Per rack, the fraction of its faults in each vertical region: no region
systematically dominates, unlike the top-of-rack excess of Cielo/Jaguar.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.positional import region_fraction_by_rack, top_region_dominance
from repro.experiments.base import ExperimentResult

EXP_ID = "fig11"
TITLE = "Fraction of faults per region, by rack"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    faults = campaign.faults()
    fractions = region_fraction_by_rack(faults, campaign.topology)
    result.series["per-rack region fractions (bottom, middle, top)"] = [
        (rack, *np.round(row, 2).tolist())
        for rack, row in enumerate(fractions)
        if row.sum() > 0
    ]
    dominance = top_region_dominance(fractions)
    result.series["top-region plurality share"] = round(dominance, 3)
    result.check(
        "faults not significantly more likely near the top of the rack",
        dominance < 0.60,
    )
    racks_with_faults = fractions.sum(axis=1) > 0
    mean_top = fractions[racks_with_faults, 2].mean()
    result.check(
        "average top-region share near one third",
        0.20 <= mean_top <= 0.55,
    )
    result.note(
        f"top region holds the plurality in {dominance:.0%} of racks "
        "(Cielo-style top-of-rack excess would push this toward 100%)"
    )
    return result
