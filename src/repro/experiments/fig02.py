"""Figure 2: distributions of sensor values (May 20 - Sep 19 2019).

Histograms of CPU temperature, DIMM temperature (by sensor group) and
node DC power over the environmental window, with the paper's sub-1%
invalid-sample exclusion applied.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.machine.sensors import NodeSensorComplement

EXP_ID = "fig02"
TITLE = "Histograms of sensor values (environmental window)"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ()


def run(
    campaign,
    n_sample_nodes: int = 256,
    cadence_s: float = 2 * 3600.0,
    **_params,
) -> ExperimentResult:
    """Sample the sensor field over the window and histogram each sensor.

    A node subsample at two-hour cadence gives the same distribution as
    the full per-minute archive (the field is stationary per node); the
    defaults draw ~2M samples.
    """
    result = ExperimentResult(EXP_ID, TITLE)
    complement = NodeSensorComplement()
    model = campaign.sensors
    t0, t1 = campaign.calibration.sensor_window
    rng = np.random.default_rng(campaign.seed + 77)
    nodes = rng.choice(
        campaign.topology.n_nodes, size=min(n_sample_nodes, campaign.topology.n_nodes),
        replace=False,
    )
    times = np.arange(t0, t1, cadence_s)

    invalid_total = 0
    sample_total = 0
    for spec in complement.sensors:
        raw = model.raw_samples(
            nodes[:, None], np.full((1, times.size), spec.index), times[None, :]
        ).ravel()
        ok = complement.is_valid_sample(np.full(raw.size, spec.index), raw)
        invalid_total += int((~ok).sum())
        sample_total += raw.size
        vals = raw[ok]
        hist, edges = np.histogram(vals, bins=40)
        result.series[f"{spec.name} histogram"] = {
            "min": float(vals.min()),
            "mean": float(vals.mean()),
            "max": float(vals.max()),
            "bin_edges": edges,
            "counts": hist,
        }

    cpu0 = result.series["cpu0 histogram"]["mean"]
    cpu1 = result.series["cpu1 histogram"]["mean"]
    dimm_means = [
        result.series[f"{s.name} histogram"]["mean"]
        for s in complement.dimm_sensors
    ]
    power = result.series["dc_power histogram"]

    result.check("CPU temperatures hotter than DIMM temperatures",
                 min(cpu0, cpu1) > max(dimm_means))
    result.check("CPU1-side (socket 0) runs hotter than CPU2-side",
                 cpu0 > cpu1)
    result.check("DIMM temperatures in the 30-60 degC band",
                 all(30 < m < 60 for m in dimm_means))
    result.check("bulk of node power in the 240-380 W band",
                 240 <= power["mean"] <= 380)
    invalid_frac = invalid_total / sample_total
    result.check("invalid samples well under 1%", invalid_frac < 0.01)
    result.note(
        f"excluded {invalid_frac:.3%} invalid samples"
        " (paper: 'significantly less than 1%')"
    )
    return result
