"""Extension: the region x sensor mean-temperature table of section 3.4.

The paper computed mean temperatures per rack region for each of the six
sensors but omitted the table "due to space constraints", reporting only
that differences per region are well under 1 degC.  This experiment
prints the table the paper could not.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.positional import (
    mean_temperature_by_rack,
    mean_temperature_by_region,
)
from repro.experiments.base import ExperimentResult
from repro.machine.sensors import NodeSensorComplement
from repro.machine.topology import REGION_NAMES

EXP_ID = "ext-tempmap"
TITLE = "EXT: mean temperature per rack region, per sensor (omitted table)"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ()


def run(campaign, grid_s: float = 24 * 3600.0, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    complement = NodeSensorComplement()
    window = campaign.calibration.sensor_window
    topo = campaign.topology

    spans = []
    rows = []
    for spec in complement.temperature_sensors:
        means = mean_temperature_by_region(
            campaign.sensors, topo, spec.index, window, grid_s
        )
        spans.append(float(np.ptp(means)))
        rows.append((spec.name, *np.round(means, 2).tolist()))
    result.series[f"mean degC per region {REGION_NAMES}"] = rows

    rack_means = mean_temperature_by_rack(
        campaign.sensors, topo, 0, window, grid_s
    )
    result.series["per-rack CPU mean (degC)"] = np.round(rack_means, 2)

    result.check(
        "every sensor: region means differ by well under 1 degC",
        all(s < 1.0 for s in spans),
    )
    result.check(
        "rack-to-rack spread bounded (~4.2 degC)",
        float(np.ptp(rack_means)) <= 4.2,
    )
    result.note(
        f"max region span across sensors: {max(spans):.2f} degC "
        "(the paper: 'significantly less than 1degC')"
    )
    return result
