"""Figure 6: errors and faults per CPU socket, bank, and column.

The paper's methodological centrepiece: raw error counts look non-uniform
across these structures, but the fault counts behind them are consistent
with uniform-plus-noise, so conclusions drawn from errors alone (as in
several prior studies) are wrong.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.counts import counts_by
from repro.analysis.uniformity import (
    relative_spread,
    subsampled_uniformity,
)
from repro.experiments.base import ExperimentResult

EXP_ID = "fig06"
TITLE = "Errors vs faults per socket, bank, and column"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)

#: Structures plotted by the figure and their uniformity expectations.
STRUCTURES = ("socket", "bank", "column")


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    faults = campaign.faults()
    errors = campaign.errors

    for field in STRUCTURES:
        e_counts, _ = counts_by(errors, field)
        f_counts, _ = counts_by(faults, field)
        if field == "column":
            # The figure aggregates the column axis (it shows a few dozen
            # column bins, not 1,024 raw columns); bin into 16 groups so
            # per-category expectations are large enough for chi-square.
            e_counts = e_counts.reshape(16, -1).sum(axis=1)
            f_counts = f_counts.reshape(16, -1).sum(axis=1)
        result.series[f"errors per {field}"] = e_counts
        result.series[f"faults per {field}"] = f_counts

        f_test = subsampled_uniformity(
            np.maximum(f_counts, 0) + (0 if f_counts.sum() else 1),
            seed=campaign.seed,
        )
        result.check(
            f"fault counts per {field} consistent with uniform",
            f_test.is_uniform(alpha=0.001),
        )
        e_spread = relative_spread(e_counts)
        f_spread = relative_spread(f_counts)
        if field != "socket":
            # With only two sockets both streams are near-uniform (the
            # paper's Figure 6a error bars differ only mildly); the
            # errors-look-structured effect shows on banks and columns.
            result.check(
                f"error counts per {field} spread wider than fault counts",
                e_spread > f_spread,
            )
        result.note(
            f"{field}: relative spread errors {e_spread:.2f} vs faults "
            f"{f_spread:.2f} (errors-only analyses see structure that "
            "faults do not support)"
        )
    return result
