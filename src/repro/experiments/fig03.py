"""Figure 3: distribution of hardware replacements by day."""

from __future__ import annotations

import numpy as np

from repro.analysis.replacements import (
    daily_replacement_series,
    infant_mortality_ratio,
)
from repro.experiments.base import ExperimentResult
from repro.synth.replacements import Component

EXP_ID = "fig03"
TITLE = "Daily hardware replacement counts (processor / motherboard / DIMM)"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('replacements',)


def run(campaign, **_params) -> ExperimentResult:
    """Regenerate the three daily replacement series and their features."""
    result = ExperimentResult(EXP_ID, TITLE)
    window = campaign.calibration.inventory_window
    daily = {
        kind: daily_replacement_series(campaign.replacements, kind, window)
        for kind in Component
    }
    for kind, series in daily.items():
        result.series[f"{kind.label} daily"] = series
        result.check(
            f"{kind.label}: infant-mortality burst at bring-up",
            infant_mortality_ratio(series) > 1.0,
        )

    proc = daily[Component.PROCESSOR]
    result.check(
        "processors: second uptick (memory-controller speed upgrade)",
        proc[115:145].sum() > 2 * proc[55:85].sum(),
    )
    mb = daily[Component.MOTHERBOARD]
    result.check(
        "motherboards: second uptick after months of sustained use",
        mb[155:185].sum() >= mb[55:85].sum(),
    )
    dimm = daily[Component.DIMM]
    result.check(
        "DIMMs: elevated mid-period replacements (cooling issues)",
        dimm[85:125].sum() > dimm[40:80].sum(),
    )
    tail = dimm[130:195]
    result.check(
        "DIMMs: steady ageing tail in the later period",
        tail.sum() > 0 and (tail > 0).mean() > 0.3,
    )
    # Pool components for the endgame check: motherboards replace in
    # single digits per week, so per-kind comparisons are pure noise.
    pooled_tail = sum(d[-10:].sum() for d in daily.values())
    pooled_before = sum(d[-25:-15].sum() for d in daily.values())
    result.check(
        "end-of-period replacement burst (vendor on site)",
        pooled_tail > pooled_before,
    )
    result.note(
        "daily shapes encode section 3.1's narrative: infant mortality, "
        "the processor speed-upgrade wave, motherboard late uptick, DIMM "
        "cooling-issue plateau and ageing tail, final vendor visit"
    )
    return result
