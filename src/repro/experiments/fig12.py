"""Figure 12: errors and faults by rack.

Rack 31's error count spikes to more than twice any other rack's, yet the
spike vanishes in the fault counts -- a few faults generated enormous
error volumes.  Rack-to-rack mean temperature varies by < ~4.2 degC,
excluding temperature as the driver.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.positional import counts_by_rack, mean_temperature_by_rack
from repro.experiments.base import ExperimentResult
from repro.query.views import rollup_per_rack_errors

EXP_ID = "fig12"
TITLE = "Errors and faults per rack"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    topo = campaign.topology
    faults = campaign.faults()

    # Campaigns with attached rollups (stream/fleet runs) serve the
    # error-side counts from the rack cube; the view returns None unless
    # the cube geometry and error count match this campaign exactly.
    e_rack = rollup_per_rack_errors(campaign)
    if e_rack is None:
        e_rack = counts_by_rack(campaign.errors, topo)
    else:
        result.note("per-rack CE counts served from attached rollup cubes")
    f_rack = counts_by_rack(faults, topo)
    result.series["errors per rack"] = e_rack
    result.series["faults per rack"] = f_rack

    # The spike narrative is per machine: every Astra-sized machine in a
    # fleet has its own designated spike rack at the same local index,
    # so fold the global rack axis to machine-local racks (machines own
    # contiguous rack ranges) before the spike checks.
    machines = getattr(campaign, "machines", 1)
    if machines > 1:
        e_rack = e_rack.reshape(machines, -1).sum(axis=0)
        f_rack = f_rack.reshape(machines, -1).sum(axis=0)
        result.series["errors per machine-local rack"] = e_rack
        result.series["faults per machine-local rack"] = f_rack

    spike = int(np.argmax(e_rack))
    others = np.delete(e_rack, spike)
    result.series["error spike"] = {
        "rack": spike,
        "errors": int(e_rack[spike]),
        "next rack": int(others.max()),
    }
    result.check(
        "one rack's errors exceed twice any other rack's",
        e_rack[spike] > 2 * others.max(),
    )
    result.check(
        "the designated spike rack (31) is the spike",
        spike == campaign.calibration.spike_rack,
    )
    result.check(
        "the spike is absent from the fault counts",
        f_rack[spike] < 2 * np.delete(f_rack, spike).max(),
    )
    result.check(
        "no significant trends in faults per rack (max < 2.5x mean)",
        f_rack.max() < 2.5 * f_rack.mean(),
    )

    temps = mean_temperature_by_rack(
        campaign.sensors, topo, 0, campaign.calibration.sensor_window,
        grid_s=24 * 3600.0,
    )
    result.series["mean CPU temperature per rack"] = np.round(temps, 2)
    result.check(
        "rack mean temperatures within ~4.2 degC",
        float(np.ptp(temps)) <= 4.2,
    )
    result.note(
        "paper: 'Rack 31 experienced more than twice as many errors as any "
        "other rack ... these spikes are not present in the fault data'"
    )
    return result
