"""Experiment harness: one module per paper table/figure.

Each module exposes ``EXP_ID``, ``TITLE`` and ``run(campaign, **params)``
returning an :class:`repro.experiments.base.ExperimentResult` that holds
the regenerated rows/series and the evaluated shape claims.  The registry
(:mod:`repro.experiments.registry`) maps ids to modules; see DESIGN.md
section 4 for the per-experiment index.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    EXTENSIONS,
    list_experiments,
    run,
    run_all,
)
from repro.experiments.report import render_markdown, render_report

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "EXTENSIONS",
    "list_experiments",
    "run",
    "run_all",
    "render_report",
    "render_markdown",
]
