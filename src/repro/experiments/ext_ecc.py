"""Extension: the SEC-DED vs Chipkill outcome matrix (section 2.2)."""

from __future__ import annotations

from repro.analysis.ecc_study import PATTERNS, compare_schemes
from repro.experiments.base import ExperimentResult

EXP_ID = "ext-ecc"
TITLE = "EXT: SEC-DED (Astra) vs Chipkill outcome matrix"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ()


def run(campaign, trials: int = 1500, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    comparison = compare_schemes(trials=trials, seed=campaign.seed)
    for pattern in PATTERNS:
        for scheme in ("secded", "chipkill"):
            result.series[f"{pattern} / {scheme}"] = comparison[pattern][
                scheme
            ].summary()

    result.check(
        "both codes correct every single-bit error (the study's CEs)",
        comparison["single-bit"]["secded"].corrected == trials
        and comparison["single-bit"]["chipkill"].corrected == trials,
    )
    result.check(
        "SEC-DED turns same-device double bits into DUEs; Chipkill corrects",
        comparison["double-bit same device"]["secded"].detected == trials
        and comparison["double-bit same device"]["chipkill"].corrected == trials,
    )
    result.check(
        "a failing chip defeats SEC-DED with real miscorrection risk",
        comparison["single device failure"]["secded"].miscorrected > 0.1 * trials,
    )
    result.check(
        "Chipkill rides through a failing chip",
        comparison["single device failure"]["chipkill"].corrected == trials,
    )
    result.check(
        "Chipkill never silently corrupts under these patterns",
        all(
            comparison[p]["chipkill"].silent_fraction == 0.0 for p in PATTERNS
        ),
    )
    _scenario_sweep_checks(result, campaign)
    result.note(
        "the paper's section 3.2 remark -- multi-rank/multi-bank faults "
        "'would manifest as uncorrectable memory errors' -- is the "
        "SEC-DED column of this matrix"
    )
    return result


def _scenario_sweep_checks(result: ExperimentResult, campaign) -> None:
    """Replay the campaign through the what-if engine's strength chain.

    The invariants hold at any scale because they are set inclusions
    over the same replay, not calibrated magnitudes: a stronger code's
    corrected set contains a weaker code's, the silent-free symbol
    codes never miscorrect, and outcome accounting is conservative.
    """
    from repro.mitigation.codes import STRENGTH_ORDER
    from repro.mitigation.whatif import Scenario, replay_campaign

    scenarios = [Scenario(code=c, scrub_interval_h=24.0) for c in STRENGTH_ORDER]
    reports = replay_campaign(campaign.errors, scenarios, seed=campaign.seed)
    by_code = {r.scenario.code: r for r in reports}

    result.series["whatif sweep (scrub=24h)"] = ", ".join(
        f"{c}: due={by_code[c].due} silent={by_code[c].silent}"
        for c in STRENGTH_ORDER
    )
    result.check(
        "what-if accounting is conservative: "
        "avoided+corrected+due+silent == injected for every code",
        all(
            r.avoided + r.corrected + r.due + r.silent == r.injected
            for r in reports
        ),
    )
    ordered = [by_code[c] for c in STRENGTH_ORDER]
    result.check(
        "stronger codes never leave more events uncorrected on the "
        "same replay",
        all(
            a.uncorrected >= b.uncorrected
            for a, b in zip(ordered, ordered[1:])
        ),
    )
    result.check(
        "symbol-erasure codes are silent-free on the campaign replay",
        all(by_code[c].silent == 0 for c in STRENGTH_ORDER if c != "secded"),
    )
