"""Extension: the SEC-DED vs Chipkill outcome matrix (section 2.2)."""

from __future__ import annotations

from repro.analysis.ecc_study import PATTERNS, compare_schemes
from repro.experiments.base import ExperimentResult

EXP_ID = "ext-ecc"
TITLE = "EXT: SEC-DED (Astra) vs Chipkill outcome matrix"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ()


def run(campaign, trials: int = 1500, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    comparison = compare_schemes(trials=trials, seed=campaign.seed)
    for pattern in PATTERNS:
        for scheme in ("secded", "chipkill"):
            result.series[f"{pattern} / {scheme}"] = comparison[pattern][
                scheme
            ].summary()

    result.check(
        "both codes correct every single-bit error (the study's CEs)",
        comparison["single-bit"]["secded"].corrected == trials
        and comparison["single-bit"]["chipkill"].corrected == trials,
    )
    result.check(
        "SEC-DED turns same-device double bits into DUEs; Chipkill corrects",
        comparison["double-bit same device"]["secded"].detected == trials
        and comparison["double-bit same device"]["chipkill"].corrected == trials,
    )
    result.check(
        "a failing chip defeats SEC-DED with real miscorrection risk",
        comparison["single device failure"]["secded"].miscorrected > 0.1 * trials,
    )
    result.check(
        "Chipkill rides through a failing chip",
        comparison["single device failure"]["chipkill"].corrected == trials,
    )
    result.check(
        "Chipkill never silently corrupts under these patterns",
        all(
            comparison[p]["chipkill"].silent_fraction == 0.0 for p in PATTERNS
        ),
    )
    result.note(
        "the paper's section 3.2 remark -- multi-rank/multi-bank faults "
        "'would manifest as uncorrectable memory errors' -- is the "
        "SEC-DED column of this matrix"
    )
    return result
