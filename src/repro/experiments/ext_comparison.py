"""Extension: the section 3.4 / related-work cross-study comparison."""

from __future__ import annotations

from repro.analysis.comparison import (
    compare_with_prior_studies,
    render_comparison_table,
)
from repro.experiments.base import ExperimentResult

EXP_ID = "ext-comparison"
TITLE = "EXT: comparison with prior large-scale reliability studies"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ()


def run(campaign, grid_s: float = 24 * 3600.0, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    rows = compare_with_prior_studies(campaign, grid_s=grid_s)
    result.series["cross-study table"] = render_comparison_table(rows)
    for row in rows:
        verdict = "agrees" if row.finding.astra_agrees else "disagrees"
        result.check(
            f"Astra {verdict} with {row.finding.study}: {row.finding.claim}",
            row.consistent_with_paper,
        )
        result.note(f"{row.finding.study}: measured {row.measured}")
    return result
