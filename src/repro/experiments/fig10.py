"""Figure 10: errors and faults by rack region (bottom / middle / top).

Errors rank bottom > top > middle; faults mildly favour the top but with
a far smaller spread -- and mean temperature is so uniform across regions
(< 1 degC) that temperature cannot explain either pattern.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.positional import (
    counts_by_region,
    mean_temperature_by_region,
)
from repro.analysis.uniformity import relative_spread
from repro.experiments.base import ExperimentResult
from repro.machine.topology import REGION_NAMES

EXP_ID = "fig10"
TITLE = "Errors and faults per rack region"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    topo = campaign.topology
    faults = campaign.faults()

    e_region = counts_by_region(campaign.errors, topo)
    f_region = counts_by_region(faults, topo)
    result.series["errors per region (bottom, middle, top)"] = e_region
    result.series["faults per region (bottom, middle, top)"] = f_region

    bottom, middle, top = e_region
    result.check("errors: bottom region highest", bottom == e_region.max())
    result.check("errors: top region second", top > middle)
    result.check(
        "faults: top region experiences the most faults (mildly)",
        f_region[2] == f_region.max(),
    )
    # The paper's literal claim: "the difference in the number of faults
    # in each region is smaller than the difference in the number of
    # errors in each region".
    result.check(
        "fault spread across regions smaller than error spread",
        relative_spread(f_region) < relative_spread(e_region),
    )

    temps = mean_temperature_by_region(
        campaign.sensors, topo, 0, campaign.calibration.sensor_window,
        grid_s=24 * 3600.0,
    )
    result.series["mean CPU temperature per region"] = np.round(temps, 2)
    result.check(
        "mean temperature uniform across regions (< 1 degC difference)",
        float(np.ptp(temps)) < 1.0,
    )
    result.note(
        "paper: unlike Cielo/Jaguar, no top-of-rack excess is explainable "
        "by temperature; Astra's regions differ by well under 1 degC"
    )
    return result
