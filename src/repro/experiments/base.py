"""Experiment result containers and rendering helpers.

Every experiment module exposes ``run(campaign, **params) ->
ExperimentResult``.  A result carries:

- ``series``: the numeric rows/curves the paper's table or figure shows,
  keyed by series name (what a plotting script would consume);
- ``checks``: named boolean *shape claims* -- the qualitative statements
  the paper makes about this table/figure, evaluated on the regenerated
  data (who wins, what is uniform, where the spike is);
- ``notes``: paper-vs-measured commentary for EXPERIMENTS.md.

``render()`` produces the text report printed by the benchmarks.

Results are degradation-aware: when the campaign was ingested from
dirty telemetry, per-family ``coverage`` fractions ride along and the
``status`` property reports ``pass`` / ``pass-degraded`` / ``fail`` /
``skipped-insufficient-data`` instead of letting partial data silently
pass (or crash) the shape checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExperimentResult:
    """Outcome of regenerating one paper table or figure."""

    exp_id: str
    title: str
    series: dict = field(default_factory=dict)
    checks: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    #: Per-family usable-data fraction for the families this experiment
    #: consumed (empty means full coverage -- clean or in-memory data).
    coverage: dict = field(default_factory=dict)
    #: Set when the harness refused to run the experiment because a
    #: consumed family's coverage fell below the requested floor.
    skipped_reason: str | None = None

    @property
    def all_checks_pass(self) -> bool:
        """Whether every shape claim held on the regenerated data."""
        return all(bool(v) for v in self.checks.values())

    @property
    def degraded(self) -> bool:
        """Ran on partial data (some consumed family under 100%)."""
        return any(c < 1.0 for c in self.coverage.values())

    @property
    def status(self) -> str:
        """Degradation-aware verdict for this experiment.

        ``skipped-insufficient-data`` when the harness refused to run on
        too little data; ``fail`` when a shape check failed; otherwise
        ``pass-degraded`` on partial data and ``pass`` on full data.  A
        check failure on degraded data still reports ``fail`` -- the
        coverage context travels with it rather than excusing it.
        """
        if self.skipped_reason is not None:
            return "skipped-insufficient-data"
        if not self.all_checks_pass:
            return "fail"
        if self.degraded:
            return "pass-degraded"
        return "pass"

    def check(self, name: str, value: bool) -> None:
        """Record one shape claim."""
        self.checks[name] = bool(value)

    def note(self, text: str) -> None:
        """Record a paper-vs-measured note."""
        self.notes.append(text)

    # ------------------------------------------------------------------
    def export_csv(self, directory) -> list:
        """Write each series to ``<directory>/<exp_id>--<series>.csv``.

        Arrays become one column (``index,value``); row-tuples become
        one row per tuple; dicts become ``key,value`` pairs (array values
        inline as one row each).  Returns the written paths -- the
        hand-off point for any plotting tool.
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name, values in self.series.items():
            slug = "".join(c if c.isalnum() else "-" for c in name).strip("-")
            path = directory / f"{self.exp_id}--{slug}.csv"
            with open(path, "w") as fh:
                if isinstance(values, np.ndarray):
                    fh.write("index,value\n")
                    for i, v in enumerate(values.ravel()):
                        fh.write(f"{i},{_fmt_scalar(v)}\n")
                elif isinstance(values, (list, tuple)) and values and isinstance(
                    values[0], tuple
                ):
                    for row in values:
                        fh.write(",".join(str(x) for x in row) + "\n")
                elif isinstance(values, dict):
                    for key, val in values.items():
                        if isinstance(val, np.ndarray):
                            flat = ",".join(_fmt_scalar(x) for x in val.ravel())
                        else:
                            flat = str(val)
                        fh.write(f"{key},{flat}\n")
                else:
                    fh.write(f"{values}\n")
            written.append(path)
        return written

    # ------------------------------------------------------------------
    def render(self, max_rows: int = 40) -> str:
        """Text report: series tables, checks, notes."""
        lines = [f"== {self.exp_id}: {self.title} ==", ""]
        if self.skipped_reason is not None:
            lines.append(f"  [SKIPPED] {self.skipped_reason}")
            lines.append("")
        elif self.degraded:
            cov = ", ".join(
                f"{family}={frac:.1%}" for family, frac in sorted(self.coverage.items())
            )
            lines.append(f"  [DEGRADED] running on partial data: {cov}")
            lines.append("")
        for name, values in self.series.items():
            lines.append(f"-- {name} --")
            lines.extend(_render_series(values, max_rows))
            lines.append("")
        if self.checks:
            lines.append("-- shape checks --")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _render_series(values, max_rows: int) -> list[str]:
    if isinstance(values, dict):
        out = []
        for key, val in values.items():
            out.append(f"  {key}: {_fmt_value(val)}")
        return out
    if isinstance(values, (list, tuple)) and values and isinstance(values[0], tuple):
        return [f"  {'  '.join(str(x) for x in row)}" for row in values[:max_rows]]
    return [f"  {_fmt_value(values)}"]


def _fmt_scalar(x) -> str:
    """``:g`` for anything float-convertible, ``str()`` otherwise."""
    try:
        return format(float(x), "g")
    except (TypeError, ValueError):
        return str(x)


def _fmt_value(val) -> str:
    if isinstance(val, np.ndarray):
        if val.size > 24:
            head = ", ".join(_fmt_scalar(x) for x in val.ravel()[:24])
            body = f"[{head}, ... ({val.size} values)]"
        else:
            body = "[" + ", ".join(_fmt_scalar(x) for x in val.ravel()) + "]"
        spark = sparkline(val)
        return f"{body}\n    {spark}" if spark else body
    if isinstance(val, float):
        return f"{val:g}"
    return str(val)


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    """ASCII sparkline of a numeric series (empty string if unsuitable).

    Values are binned to ``width`` columns and mapped onto a ten-level
    density ramp -- enough to see the Figure 3 bursts or the Figure 12
    rack spike directly in the text report.
    """
    try:
        arr = np.asarray(values, dtype=np.float64).ravel()
    except (TypeError, ValueError):
        return ""  # non-numeric series have no sparkline
    if arr.size < 4 or not np.all(np.isfinite(arr)):
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = arr.min(), arr.max()
    if hi - lo < 1e-12:
        return _SPARK_CHARS[1] * arr.size
    levels = ((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[l] for l in levels)


def labelled_counts(labels, counts) -> list[tuple]:
    """Rows of (label, count) for rendering Figure 6/7-style bars."""
    return [(str(l), int(c)) for l, c in zip(labels, counts)]
