"""Extension: survival analysis of the replacement data.

Quantifies section 3.1's infant-mortality narrative with Weibull shapes,
period hazards and Kaplan-Meier end-of-window survival, per component.
"""

from __future__ import annotations

from repro.analysis.survival import replacement_survival
from repro.experiments.base import ExperimentResult
from repro.synth.replacements import Component

EXP_ID = "ext-survival"
TITLE = "EXT: Weibull / Kaplan-Meier survival of replaced components"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('replacements',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    window = campaign.calibration.inventory_window
    reports = {}
    for kind in Component:
        n_events = int((campaign.replacements["component"] == kind).sum())
        if n_events < 10:
            # Tiny scaled campaigns can have single-digit replacement
            # counts; a Weibull fit on those is numerology, not analysis.
            result.note(
                f"{kind.label}: only {n_events} events at this scale; "
                "survival fit skipped"
            )
            continue
        reports[kind] = replacement_survival(
            campaign.replacements,
            kind,
            window,
            campaign.topology,
            campaign.node_config,
        )
    if not reports:
        result.check("enough replacement events for survival analysis", False)
        return result
    for kind, r in reports.items():
        result.series[kind.label] = {
            "Weibull shape k": round(r.weibull.shape, 3),
            "Weibull scale (days)": round(r.weibull.scale, 1),
            "infant/steady hazard ratio": round(r.infant_hazard_ratio, 2),
            "survive the window": round(r.km_survival_end, 4),
        }

    if Component.DIMM in reports:
        result.check(
            "DIMMs: decreasing hazard (Weibull k < 1, infant mortality)",
            reports[Component.DIMM].weibull.decreasing_hazard,
        )
    if Component.MOTHERBOARD in reports:
        result.check(
            "motherboards: decreasing hazard",
            reports[Component.MOTHERBOARD].weibull.decreasing_hazard,
        )
    if Component.PROCESSOR in reports:
        result.check(
            "processors: upgrade wave masks ageing (k near 1)",
            0.7 <= reports[Component.PROCESSOR].weibull.shape <= 1.3,
        )
    result.check(
        "first-month hazard elevated for every fitted component",
        all(r.infant_hazard_ratio > 1.0 for r in reports.values()),
    )
    result.check(
        "large majority of every population survives the window",
        all(r.km_survival_end > 0.8 for r in reports.values()),
    )
    return result
