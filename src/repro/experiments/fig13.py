"""Figure 13: effect of temperature on CE rate (decile analysis).

The Schroeder et al. comparison: monthly average temperature per (node,
month) in deciles, against the mean monthly CE rate within each decile,
one series per temperature sensor.  On Astra the temperature range is
narrow (~7 degC CPU, ~4 degC DIMM between the first and ninth deciles)
and no increasing trend appears.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.temperature import (
    decile_curve,
    monthly_ce_counts,
    monthly_node_sensor_means,
)
from repro.experiments.base import ExperimentResult
from repro.machine.node import slot_index
from repro.machine.sensors import NodeSensorComplement

EXP_ID = "fig13"
TITLE = "Monthly temperature deciles vs CE rate (CPU and DIMM sensors)"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)

#: Figure legend name -> our sensor name.
SERIES = {
    "CPU1": "cpu0",
    "CPU2": "cpu1",
    "CPU1 DIMMs 1-4": "dimm_aceg",
    "CPU1 DIMMs 5-8": "dimm_hfdb",
    "CPU2 DIMMs 1-4": "dimm_ikmo",
    "CPU2 DIMMs 5-8": "dimm_jlnp",
}


def _slots_for(spec) -> tuple[int, ...] | None:
    if spec.slots:
        return tuple(slot_index(s) for s in spec.slots)
    # CPU sensor: all slots of its socket.
    base = spec.socket * 8
    return tuple(range(base, base + 8))


def run(campaign, grid_s: float = 6 * 3600.0, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    complement = NodeSensorComplement()
    window = campaign.calibration.sensor_window
    n_nodes = campaign.topology.n_nodes

    curves = {}
    for legend, sensor_name in SERIES.items():
        spec = complement.by_name(sensor_name)
        temps = monthly_node_sensor_means(
            campaign.sensors, spec.index, window, n_nodes, grid_s
        )
        ces = monthly_ce_counts(
            campaign.errors, window, n_nodes, slots=_slots_for(spec)
        )
        curve = decile_curve(
            temps.ravel(),
            ces.ravel().astype(np.float64),
            trim_top_fraction=0.002,
        )
        curves[legend] = curve
        result.series[legend] = {
            "decile max temp": np.round(curve.decile_max, 2),
            "mean monthly CE rate": np.round(curve.mean_rate, 3),
            "1st..9th decile span (degC)": round(curve.temperature_span(), 2),
            "increasing trend": curve.increasing_trend(),
        }

    # The no-trend claim is judged across the panels jointly, as the
    # paper does: CE deciles are storm-dominated (most node-months have
    # zero CEs and per-node temperature offsets are static), so a single
    # series can order by chance; a *real* temperature effect would order
    # every sensor's series at once.
    trending = [k for k, c in curves.items() if c.increasing_trend()]
    result.check(
        "no consistent increasing CE-rate trend across sensors "
        "(at most a chance series or two)",
        len(trending) <= 2,
    )
    if trending:
        result.note(
            f"series with a (chance-level) increasing ordering: {trending}"
        )

    cpu_span = max(
        curves["CPU1"].temperature_span(), curves["CPU2"].temperature_span()
    )
    dimm_spans = [
        curves[k].temperature_span() for k in SERIES if "DIMM" in k
    ]
    result.check(
        "CPU decile span ~7 degC (tightly controlled; Schroeder saw 20+)",
        3.0 <= cpu_span <= 12.0,
    )
    result.check(
        "DIMM decile span ~4 degC",
        all(1.0 <= s <= 8.0 for s in dimm_spans),
    )
    result.check(
        "CPU1 (downstream socket) temperatures above CPU2",
        np.median(curves["CPU1"].decile_max) > np.median(curves["CPU2"].decile_max),
    )
    result.note(
        f"measured spans: CPU {cpu_span:.1f} degC, DIMM "
        f"{max(dimm_spans):.1f} degC (paper: ~7 and ~4)"
    )
    return result
