"""Figure 9: CE counts vs mean pre-error DIMM temperature, four windows.

For each CE, the mean temperature of the errored DIMM's sensor over the
preceding hour / day / week / month; a fitted line per window.  The
paper's finding -- reproduced here because the synthetic error process is
genuinely independent of the thermal field -- is that higher temperature
does not correlate with more frequent errors.
"""

from __future__ import annotations

import numpy as np

from repro._util import DAY_S, HOUR_S
from repro.analysis.temperature import ce_count_vs_temperature
from repro.experiments.base import ExperimentResult

EXP_ID = "fig09"
TITLE = "CE count vs mean errored-DIMM temperature (1h/1d/1w/1mo windows)"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)

WINDOWS = {
    "one hour": HOUR_S,
    "one day": DAY_S,
    "one week": 7 * DAY_S,
    "one month": 30 * DAY_S,
}


def run(campaign, max_errors: int = 250_000, **_params) -> ExperimentResult:
    """Regenerate the four panels.

    ``max_errors`` caps the error subsample (uniformly drawn) so the
    window-mean evaluation stays tractable; the histogram shape is
    insensitive to the subsample at this size.
    """
    result = ExperimentResult(EXP_ID, TITLE)
    # Restrict to the environmental window, as the paper does.
    t0, t1 = campaign.calibration.sensor_window
    errors = campaign.errors
    inside = (errors["time"] >= t0) & (errors["time"] < t1)
    errors = errors[inside]
    if errors.size > max_errors:
        rng = np.random.default_rng(campaign.seed + 99)
        idx = rng.choice(errors.size, size=max_errors, replace=False)
        errors = errors[np.sort(idx)]
        result.note(f"subsampled to {max_errors} of {int(inside.sum())} errors")

    for name, window_s in WINDOWS.items():
        corr = ce_count_vs_temperature(errors, campaign.sensors, window_s)
        result.series[f"{name} window"] = {
            "slope (errors per degC bin)": round(corr.fit.slope, 2),
            "r": round(corr.fit.rvalue, 3),
            "temp range": f"{corr.bin_centers[0]:.1f}..{corr.bin_centers[-1]:.1f} degC",
        }
        result.check(
            f"{name}: no strong positive temperature correlation",
            not corr.strongly_positive(),
        )
    result.note(
        "paper: 'increases in temperature is not strongly correlated with "
        "more frequent errors' -- holds for every window length"
    )
    return result
